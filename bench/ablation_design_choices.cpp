/// Ablation of the design choices DESIGN.md §5 calls out (not a paper
/// artifact — this regenerates the evidence behind our defaults):
///   - triangle-gated SCN insertion on/off (the bottom-up core idea)
///   - vertex-splitting augmentation on/off (Sec. V-F2)
///   - η sweep (stable-relation support threshold)
///   - candidate-pair sampling rate sweep (Sec. VI-A3's 10%)
///   - WL refinement depth h sweep
/// Each arm runs the full pipeline on the same corpus and reports the
/// micro metrics on the test names plus stage statistics.

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"

using namespace iuad;

int main() {
  bench::PrintHeader("ablation_design_choices",
                     "DESIGN.md §5 — ablations of the open design choices");
  auto corpus = bench::BenchCorpus(/*seed=*/2021, /*papers=*/6000);
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  eval::TablePrinter table({"arm", "MicroA", "MicroP", "MicroR", "MicroF",
                            "SCRs", "merges", "secs"});
  auto run_arm = [&](const std::string& label,
                     const std::function<void(core::IuadConfig*)>& tweak) {
    core::IuadConfig cfg = bench::BenchIuadConfig();
    tweak(&cfg);
    core::IuadPipeline pipeline(cfg);
    iuad::Stopwatch sw;
    auto r = pipeline.Run(corpus.db);
    const double secs = sw.ElapsedSeconds();
    if (!r.ok()) {
      table.AddRow({label, "FAILED", r.status().ToString()});
      return;
    }
    auto m = eval::EvaluateOccurrences(corpus.db, r->occurrences, names);
    table.AddRow({label, bench::F4(m.accuracy), bench::F4(m.precision),
                  bench::F4(m.recall), bench::F4(m.f1),
                  std::to_string(r->scn_stats.num_scrs),
                  std::to_string(r->gcn_stats.merges), bench::F3(secs)});
  };

  run_arm("default (eta=2, gate, split, 10%, h=2)", [](core::IuadConfig*) {});
  table.AddSeparator();
  run_arm("triangle gate OFF",
          [](core::IuadConfig* c) { c->triangle_gated_insertion = false; });
  run_arm("vertex splitting OFF",
          [](core::IuadConfig* c) { c->vertex_splitting = false; });
  table.AddSeparator();
  run_arm("eta = 3", [](core::IuadConfig* c) { c->eta = 3; });
  run_arm("eta = 4", [](core::IuadConfig* c) { c->eta = 4; });
  table.AddSeparator();
  run_arm("sample rate 5%", [](core::IuadConfig* c) { c->sample_rate = 0.05; });
  run_arm("sample rate 50%", [](core::IuadConfig* c) { c->sample_rate = 0.5; });
  run_arm("sample rate 100%", [](core::IuadConfig* c) { c->sample_rate = 1.0; });
  table.AddSeparator();
  run_arm("WL depth h = 1", [](core::IuadConfig* c) { c->wl_iterations = 1; });
  run_arm("WL depth h = 3", [](core::IuadConfig* c) { c->wl_iterations = 3; });
  table.AddSeparator();
  run_arm("delta = 2", [](core::IuadConfig* c) { c->delta = 2.0; });
  run_arm("delta = -2", [](core::IuadConfig* c) { c->delta = -2.0; });
  table.Print();

  std::printf(
      "reading guide: the gate-OFF arm should show the precision cost of\n"
      "abandoning the bottom-up principle; higher eta trades recall for\n"
      "precision; sampling rate should barely matter (the paper's point);\n"
      "h moves little because stage 2's signal is mostly non-structural.\n");
  return 0;
}
