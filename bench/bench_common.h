#ifndef IUAD_BENCH_BENCH_COMMON_H_
#define IUAD_BENCH_BENCH_COMMON_H_

/// Shared setup for the reproduction benches: one standard synthetic corpus
/// (the DBLP stand-in, DESIGN.md §2) and the evaluation-name protocol of
/// Sec. VI-A1. Every bench prints the paper's published value next to the
/// measured one so the *shape* comparison is immediate; EXPERIMENTS.md
/// records the full picture.

#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/corpus_generator.h"
#include "util/strings.h"

namespace iuad::bench {

/// The standard bench corpus with DBLP-like density held constant across
/// scales: ~12-13 author-paper pairs per author (DBLP: 2.39M pairs over a
/// few hundred thousand authors) and name pools proportional to the author
/// population so the homonym mix matches the validated 5k-paper regime
/// (SCN precision ≈ 0.9, Table-IV recall structure).
inline data::Corpus BenchCorpus(uint64_t seed = 2021, int papers = 10000) {
  data::CorpusConfig cfg;
  const int authors = std::max(400, papers / 5);
  cfg.authors_per_community = 60;
  cfg.num_communities = std::max(4, authors / cfg.authors_per_community);
  cfg.num_papers = papers;
  const double author_scale = static_cast<double>(authors) / 960.0;
  cfg.given_name_pool = static_cast<int>(180 * author_scale);
  cfg.surname_pool = static_cast<int>(140 * author_scale);
  cfg.name_zipf = 0.7;
  cfg.seed = seed;
  return data::CorpusGenerator(cfg).Generate();
}

/// IUAD configuration used by all benches (paper defaults; embeddings kept
/// small for bench turnaround).
inline core::IuadConfig BenchIuadConfig() {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 24;
  cfg.word2vec.epochs = 2;
  return cfg;
}

inline std::string F4(double v) { return iuad::FormatDouble(v, 4); }
inline std::string F3(double v) { return iuad::FormatDouble(v, 3); }

inline void PrintHeader(const char* title, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("================================================================\n");
}

}  // namespace iuad::bench

#endif  // IUAD_BENCH_BENCH_COMMON_H_
