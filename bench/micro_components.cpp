/// google-benchmark micro-benchmarks for the component layers: frequent-
/// itemset mining, WL kernel construction and evaluation, similarity-vector
/// throughput, EM fitting/scoring, and per-paper incremental ingestion.
/// These back the efficiency discussion of Sec. V-F1 with numbers.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "cluster/affinity_propagation.h"
#include "cluster/dbscan.h"
#include "cluster/hac.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "em/mixture_model.h"
#include "graph/wl_kernel.h"
#include "mining/fpgrowth.h"
#include "mining/pair_miner.h"
#include "util/rng.h"

using namespace iuad;

namespace {

/// Shared fixture state, built once (google-benchmark re-enters functions).
struct Shared {
  data::Corpus corpus = bench::BenchCorpus(/*seed=*/5150, /*papers=*/4000);
  std::vector<mining::Transaction> transactions;
  core::IuadConfig cfg = bench::BenchIuadConfig();
  std::unique_ptr<core::DisambiguationResult> result;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> same_name_pairs;

  Shared() {
    mining::ItemEncoder encoder;
    for (const auto& p : corpus.db.papers()) {
      mining::Transaction t;
      for (const auto& n : p.author_names) t.push_back(encoder.Encode(n));
      transactions.push_back(std::move(t));
    }
    core::IuadPipeline pipeline(cfg);
    auto r = pipeline.Run(corpus.db);
    result = std::make_unique<core::DisambiguationResult>(std::move(*r));
    for (const auto& name : result->graph.Names()) {
      const auto& verts = result->graph.VerticesWithName(name);
      for (size_t i = 0; i + 1 < verts.size(); i += 2) {
        same_name_pairs.emplace_back(verts[i], verts[i + 1]);
      }
    }
  }
};

Shared& S() {
  static Shared* s = new Shared();
  return *s;
}

void BM_FpGrowthEta2(benchmark::State& state) {
  for (auto _ : state) {
    auto r = mining::FpGrowth(S().transactions, {2});
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_FpGrowthEta2)->Unit(benchmark::kMillisecond);

void BM_PairCounterEta2(benchmark::State& state) {
  for (auto _ : state) {
    mining::PairCounter pc;
    pc.AddAll(S().transactions);
    auto pairs = pc.FrequentPairs(2);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_PairCounterEta2)->Unit(benchmark::kMillisecond);

void BM_ScnBuild(benchmark::State& state) {
  for (auto _ : state) {
    graph::CollabGraph g;
    core::OccurrenceIndex occ;
    core::ScnBuilder scn(S().cfg);
    auto r = scn.Build(S().corpus.db, &g, &occ);
    benchmark::DoNotOptimize(r->num_vertices);
  }
}
BENCHMARK(BM_ScnBuild)->Unit(benchmark::kMillisecond);

void BM_WlKernelBuild(benchmark::State& state) {
  for (auto _ : state) {
    graph::WlVertexKernel wl(S().result->graph,
                             static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(wl.depth());
  }
}
BENCHMARK(BM_WlKernelBuild)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_SimilarityVector(benchmark::State& state) {
  core::SimilarityComputer sim(S().corpus.db, S().result->graph,
                               S().result->embeddings, S().cfg);
  size_t i = 0;
  for (auto _ : state) {
    const auto& pr = S().same_name_pairs[i++ % S().same_name_pairs.size()];
    auto gamma = sim.Compute(pr.first, pr.second);
    benchmark::DoNotOptimize(gamma[0]);
  }
}
BENCHMARK(BM_SimilarityVector)->Unit(benchmark::kMicrosecond);

void BM_EmFit(benchmark::State& state) {
  // Synthetic two-component training set of the bench's feature shape.
  iuad::Rng rng(3);
  std::vector<std::vector<double>> gammas;
  for (int i = 0; i < 4000; ++i) {
    const bool m = rng.Bernoulli(0.1);
    gammas.push_back({rng.UniformDouble() * (m ? 1.0 : 0.2),
                      rng.Exponential(m ? 1.0 : 10.0),
                      rng.Gaussian(m ? 0.6 : 0.1, 0.3),
                      rng.Exponential(m ? 1.5 : 12.0),
                      rng.Exponential(m ? 0.8 : 4.0),
                      rng.Exponential(m ? 2.0 : 15.0)});
  }
  em::MixtureConfig mc;
  mc.families = S().cfg.families;
  for (auto _ : state) {
    em::MixtureModel model(mc);
    auto st = model.Fit(gammas);
    benchmark::DoNotOptimize(model.final_log_likelihood());
    if (!st.ok()) state.SkipWithError("EM failed");
  }
}
BENCHMARK(BM_EmFit)->Unit(benchmark::kMillisecond);

void BM_MatchScore(benchmark::State& state) {
  std::vector<double> gamma{0.4, 0.2, 0.5, 0.3, 0.7, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().result->model->MatchScore(gamma));
  }
}
BENCHMARK(BM_MatchScore);

void BM_IncrementalAddPaper(benchmark::State& state) {
  // Fresh copies per run so ingestion does not accumulate across iterations.
  auto corpus = S().corpus;
  auto [history, stream] = corpus.db.HoldOutLatest(512);
  core::IuadPipeline pipeline(S().cfg);
  auto result = pipeline.Run(history);
  core::IncrementalDisambiguator inc(&history, &*result, S().cfg);
  size_t i = 0;
  for (auto _ : state) {
    auto r = inc.AddPaper(stream[i++ % stream.size()]);
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_IncrementalAddPaper)->Unit(benchmark::kMillisecond);

void BM_Clusterers(benchmark::State& state) {
  // 128-point two-blob distance matrix.
  iuad::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 128; ++i) {
    xs.push_back(rng.UniformDouble() + (i % 2 ? 10.0 : 0.0));
  }
  std::vector<std::vector<double>> d(xs.size(),
                                     std::vector<double>(xs.size(), 0.0));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < xs.size(); ++j) d[i][j] = std::abs(xs[i] - xs[j]);
  }
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (which == 0) {
      auto r = cluster::Hac(d, {});
      benchmark::DoNotOptimize(r->size());
    } else if (which == 1) {
      auto sims = d;
      for (auto& row : sims) {
        for (auto& v : row) v = -v;
      }
      auto r = cluster::AffinityPropagation(sims, {});
      benchmark::DoNotOptimize(r->size());
    } else {
      auto r = cluster::Dbscan(d, {});
      benchmark::DoNotOptimize(r->size());
    }
  }
}
BENCHMARK(BM_Clusterers)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
