/// Ingestion-throughput bench for the serve::IngestService (ROADMAP:
/// batch/async ingestion for the incremental path). Fits the pipeline on a
/// history corpus, holds out the most recent papers as the "newly
/// published" stream (the Table VI protocol), then measures papers/second
/// three ways over the SAME stream:
///
///   sequential  IncrementalDisambiguator::AddPaper, one caller — the
///               paper's <50 ms/paper baseline shape;
///   service@1   IngestService with one producer thread;
///   service@N   IngestService with N producer threads (default: nproc).
///
/// Producers partition the stream by index and pin each paper to its
/// stream position with SubmitAt, so all three runs must produce identical
/// assignments — verified here, not assumed; the process aborts on any
/// divergence. With `--json out.json` the numbers land in BENCH_ingest.json
/// (scripts/bench_ingest.sh; see the BENCH_*.json convention in ROADMAP).
///
/// Flags: --papers P (corpus size), --stream S (held-out papers),
///        --producers N, --json PATH.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/snapshot.h"
#include "serve/ingest_service.h"
#include "util/json_writer.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace iuad;

namespace {

/// Compact, order-sensitive digest of one run's assignments, for the
/// identical-output check.
std::string DigestOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string d;
  for (const auto& a : as) {
    d += a.name;
    d += ':';
    d += std::to_string(a.vertex);
    d += a.created_new ? "+n" : "";
    d += ';';
  }
  return d;
}

struct RunOutcome {
  double seconds = 0.0;
  std::vector<std::string> digests;  // per stream paper, in stream order
  size_t graph_bytes = 0;            // post-ingestion CollabGraph footprint
  int num_alive = 0;
  double papers_per_s(size_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
  double bytes_per_author() const {
    return num_alive > 0
               ? static_cast<double>(graph_bytes) / static_cast<double>(num_alive)
               : 0.0;
  }
};

/// DisambiguationResult is move-only (it owns the fitted model), so each
/// run gets a pristine copy of the fitted state by reloading the snapshot —
/// which also puts the io path itself under the bench.
bool ReloadFitted(const std::string& snapshot_path,
                  const data::PaperDatabase& db, io::Snapshot* out) {
  auto snap = io::LoadSnapshot(snapshot_path, db);
  if (!snap.ok()) {
    std::fprintf(stderr, "snapshot reload failed: %s\n",
                 snap.status().ToString().c_str());
    return false;
  }
  *out = std::move(*snap);
  return true;
}

/// Sequential baseline: plain AddPaper calls in stream order.
bool RunSequential(const data::PaperDatabase& history,
                   const std::string& snapshot_path,
                   const std::vector<data::Paper>& stream, RunOutcome* out) {
  data::PaperDatabase db = history;
  io::Snapshot snap;
  if (!ReloadFitted(snapshot_path, db, &snap)) return false;
  core::IncrementalDisambiguator inc(&db, &snap.result, snap.config);
  out->digests.reserve(stream.size());
  Stopwatch sw;
  for (const auto& paper : stream) {
    auto r = inc.AddPaper(paper);
    if (!r.ok()) {
      std::fprintf(stderr, "sequential AddPaper failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    out->digests.push_back(DigestOf(*r));
  }
  out->seconds = sw.ElapsedSeconds();
  out->graph_bytes = snap.result.graph.MemoryBytes();
  out->num_alive = snap.result.graph.num_alive();
  return true;
}

/// Service run with `producers` threads partitioning the stream by index.
bool RunService(const data::PaperDatabase& history,
                const std::string& snapshot_path,
                const std::vector<data::Paper>& stream, int producers,
                RunOutcome* out) {
  data::PaperDatabase db = history;
  io::Snapshot snap;
  if (!ReloadFitted(snapshot_path, db, &snap)) return false;
  std::vector<std::future<serve::IngestService::Assignments>> futures(
      stream.size());
  Stopwatch sw;
  {
    serve::IngestService service(&db, &snap.result, snap.config);
    std::atomic<size_t> next{0};
    auto producer = [&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        futures[i] = service.SubmitAt(i, stream[i]);
      }
    };
    std::vector<std::thread> threads;
    for (int t = 1; t < producers; ++t) threads.emplace_back(producer);
    producer();
    for (auto& t : threads) t.join();
    service.Drain();
  }  // Stop() via destructor
  out->seconds = sw.ElapsedSeconds();
  out->graph_bytes = snap.result.graph.MemoryBytes();
  out->num_alive = snap.result.graph.num_alive();
  out->digests.reserve(stream.size());
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "service AddPaper failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    out->digests.push_back(DigestOf(*r));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int papers = 6000;
  int stream_size = 400;
  int producers = 0;  // 0 = hardware concurrency
  std::string json_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--papers") == 0) papers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--stream") == 0) {
      stream_size = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--producers") == 0) {
      producers = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  producers = util::ResolveNumThreads(producers);

  bench::PrintHeader("bench_ingest",
                     "Sec. V-E serving throughput (IngestService)");
  auto corpus = bench::BenchCorpus(2021, papers);
  auto [history, stream] = corpus.db.HoldOutLatest(stream_size);
  std::printf("corpus: %d papers history, %zu-paper stream, %d producers\n",
              history.num_papers(), stream.size(), producers);

  core::IuadConfig cfg = bench::BenchIuadConfig();
  auto fitted = core::IuadPipeline(cfg).Run(history);
  if (!fitted.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  const std::string snapshot_path = "bench_ingest.snapshot.tmp";
  {
    iuad::Status st = io::SaveSnapshot(snapshot_path, history, *fitted, cfg);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  RunOutcome seq, svc1, svcN;
  const bool ran = RunSequential(history, snapshot_path, stream, &seq) &&
                   RunService(history, snapshot_path, stream, 1, &svc1) &&
                   RunService(history, snapshot_path, stream, producers, &svcN);
  std::remove(snapshot_path.c_str());
  if (!ran) return 1;

  const bool identical = seq.digests == svc1.digests &&
                         seq.digests == svcN.digests;
  std::printf(
      "papers/s: sequential %.1f | service@1 %.1f | service@%d %.1f\n",
      seq.papers_per_s(stream.size()), svc1.papers_per_s(stream.size()),
      producers, svcN.papers_per_s(stream.size()));
  std::printf("assignments identical across all three runs: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  if (!identical) return 1;  // never record a lying BENCH_* data point
  std::printf("memory: rss %.1f MiB, graph %.1f bytes/author (%d authors)\n",
              util::CurrentRssMb(), seq.bytes_per_author(), seq.num_alive);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.Field("bench", "bench_ingest")
        .Field("papers_history", history.num_papers())
        .Field("stream", static_cast<int>(stream.size()))
        .Field("producers", producers)
        .Field("identical_assignments", identical);
    json.BeginObject("papers_per_s")
        .Field("sequential", seq.papers_per_s(stream.size()), 1)
        .Field("service_1_producer", svc1.papers_per_s(stream.size()), 1)
        .Field("service_n_producers", svcN.papers_per_s(stream.size()), 1)
        .EndObject();
    json.BeginObject("seconds")
        .Field("sequential", seq.seconds)
        .Field("service_1_producer", svc1.seconds)
        .Field("service_n_producers", svcN.seconds)
        .EndObject();
    json.BeginObject("memory")
        .Field("rss_mb", util::CurrentRssMb(), 1)
        .Field("graph_bytes", static_cast<int64_t>(seq.graph_bytes))
        .Field("num_alive_authors", seq.num_alive)
        .Field("bytes_per_author", seq.bytes_per_author(), 1)
        .EndObject();
    iuad::Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
