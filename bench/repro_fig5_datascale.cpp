/// Reproduces Figure 5: data-scale analysis. IUAD runs on the first
/// 20/40/60/80/100% of the corpus in publication-year order; the paper
/// observes precision staying high at every scale while recall climbs from
/// ~50% to >81% — more data means more stable relations and more merge
/// evidence.

#include <cstdio>

#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"

using namespace iuad;

int main() {
  bench::PrintHeader("repro_fig5_datascale", "Fig. 5 — data scale analysis");
  auto corpus = bench::BenchCorpus();
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names (fixed across scales)\n",
              corpus.db.num_papers(), names.size());

  eval::TablePrinter table(
      {"scale", "MicroA", "MicroP", "MicroR", "MicroF", "papers"});
  core::IuadPipeline pipeline(bench::BenchIuadConfig());
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto slice = corpus.db.PrefixByYearFraction(fraction);
    auto result = pipeline.Run(slice);
    if (!result.ok()) {
      std::printf("run failed at %.0f%%\n", fraction * 100);
      return 1;
    }
    auto m = eval::EvaluateOccurrences(slice, result->occurrences, names);
    table.AddRow({std::to_string(static_cast<int>(fraction * 100)) + "%",
                  bench::F4(m.accuracy), bench::F4(m.precision),
                  bench::F4(m.recall), bench::F4(m.f1),
                  std::to_string(slice.num_papers())});
  }
  table.Print();
  std::printf(
      "paper's Fig. 5 shape: MicroP roughly flat and high at every scale;\n"
      "MicroR (and with it MicroF/MicroA) climbs as data grows.\n");
  return 0;
}
