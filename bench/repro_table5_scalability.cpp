/// Reproduces Table V: average time cost per name disambiguation (seconds)
/// at 20/40/60/80/100% of the corpus, for IUAD and the four unsupervised
/// baselines. The paper's claims: IUAD is the fastest method at every scale
/// (bottom-up avoids per-ego-network recomputation) and GHOST scales worst
/// (path-based similarities over ever-larger ego networks).
///
/// Timing protocol: for IUAD the full two-stage reconstruction cost is
/// divided by the number of test names (the paper's "per name" accounting —
/// one reconstruction disambiguates every name at once). For the top-down
/// baselines, Disambiguate(name) is timed per test name directly. Embedding
/// training is shared infrastructure and excluded for all methods.

#include <cstdio>
#include <memory>

#include "baselines/unsupervised.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"

using namespace iuad;

int main() {
  bench::PrintHeader("repro_table5_scalability",
                     "Table V — average time cost per name (milliseconds)");
  auto corpus = bench::BenchCorpus();
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  // Shared embeddings, trained once on the full corpus.
  core::IuadConfig cfg = bench::BenchIuadConfig();
  text::Word2Vec shared_w2v(cfg.word2vec);
  {
    std::vector<std::vector<std::string>> sentences;
    for (const auto& p : corpus.db.papers()) {
      sentences.push_back(corpus.db.KeywordsOf(p.id));
    }
    (void)shared_w2v.Train(sentences);
  }

  eval::TablePrinter table({"Algorithm", "20% (ms)", "40% (ms)", "60% (ms)",
                            "80% (ms)", "100% (ms)", "paper 100% (s)"});
  const std::vector<double> fractions{0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<std::vector<std::string>> rows(5);
  std::vector<std::string> algo_names{"ANON", "NetE", "Aminer", "GHOST",
                                      "IUAD"};
  const char* paper_100[] = {"58.489", "33.093", "6.078", "183.480", "2.599"};
  for (size_t a = 0; a < rows.size(); ++a) rows[a].push_back(algo_names[a]);

  for (double fraction : fractions) {
    auto slice = corpus.db.PrefixByYearFraction(fraction);
    // Baselines see the sliced database.
    std::vector<std::unique_ptr<baselines::UnsupervisedBaseline>> bl;
    bl.push_back(std::make_unique<baselines::AnonBaseline>(slice, &shared_w2v));
    bl.push_back(std::make_unique<baselines::NetEBaseline>(slice, &shared_w2v));
    bl.push_back(
        std::make_unique<baselines::AminerBaseline>(slice, &shared_w2v));
    bl.push_back(std::make_unique<baselines::GhostBaseline>(slice));
    for (size_t a = 0; a < bl.size(); ++a) {
      iuad::Stopwatch sw;
      for (const auto& name : names) {
        (void)bl[a]->Disambiguate(name);
      }
      rows[a].push_back(
          bench::F3(sw.ElapsedMillis() / static_cast<double>(names.size())));
    }
    // IUAD: stage 1 + stage 2 over the slice, amortized per test name.
    {
      core::ScnBuilder scn(cfg);
      core::GcnBuilder gcn(cfg);
      iuad::Stopwatch sw;
      graph::CollabGraph graph;
      core::OccurrenceIndex occ;
      std::unique_ptr<em::MixtureModel> model;
      auto s1 = scn.Build(slice, &graph, &occ);
      auto s2 = gcn.Build(slice, &graph, &occ, shared_w2v, &model);
      if (!s1.ok() || !s2.ok()) {
        std::printf("IUAD failed at %.0f%%\n", fraction * 100);
        return 1;
      }
      rows[4].push_back(
          bench::F3(sw.ElapsedMillis() / static_cast<double>(names.size())));
    }
  }
  for (size_t a = 0; a < rows.size(); ++a) {
    rows[a].push_back(paper_100[a]);
    table.AddRow(rows[a]);
  }
  table.Print();
  std::printf(
      "reading guide: IUAD's column is its FULL two-stage network\n"
      "reconstruction amortized over the test names (one build answers every\n"
      "name); it grows mildly with scale, the paper's scalability claim.\n"
      "CAVEAT (EXPERIMENTS.md): the published ANON/NetE/Aminer costs are\n"
      "dominated by per-ego-network embedding training, which the hashing\n"
      "substitution of DESIGN.md removes by design — their rows here only\n"
      "time clustering, so cross-method absolute comparisons are not\n"
      "meaningful in this reproduction; the per-scale growth trends are.\n");
  return 0;
}
