/// Sharded-serving throughput bench (ROADMAP: multi-service sharding by
/// name block). Fits the pipeline on a history corpus, holds out the most
/// recent papers as the "newly published" stream (the Table VI protocol),
/// then measures ingestion papers/second three ways over the SAME stream:
///
///   sequential  IncrementalDisambiguator::AddPaper, one caller — the
///               paper's <50 ms/paper baseline shape;
///   shard@1     shard::ShardRouter with one name-block shard (the
///               degenerate router: all scoring inline on the sequencer);
///   shard@N     ShardRouter with N shards (default: nproc) — per-byline
///               scoring fans out to the blocks' owning shards and cache
///               refreshes rebuild in parallel.
///
/// Producers partition the stream by index and pin each paper to its
/// stream position with SubmitAt, so all three runs must produce identical
/// assignments — verified here, not assumed; the process aborts on any
/// divergence (the router's whole contract is that sharding is invisible
/// in the output). With `--json out.json` the numbers land in
/// BENCH_shard.json (scripts/bench_shard.sh; see the BENCH_*.json
/// convention in ROADMAP). Note the paper-level parallelism ceiling: the
/// global sequence applies papers one at a time, so the router's win is
/// per-byline scoring fan-out + parallel refresh — multi-author papers
/// over hot blocks gain the most, and single-core CI hovers near 1.0x.
///
/// Beyond throughput, each run records per-paper commit-latency
/// percentiles (p50/p95/p99 ms) into the shared obs::Histogram — the same
/// log-bucketed instrument the serving stack scrapes, so bench numbers and
/// live metrics are bucket-for-bucket comparable. The sequential run times
/// each AddPaper; the router runs observe the gaps between successive
/// in-order future resolutions (commits are strictly sequence-ordered, so
/// the gap IS the per-paper commit cadence as a client would see it). The
/// router runs also record the pipeline counters (windows, occupancy,
/// conflict stalls, speculative rescores) from ServiceStats.
///
/// Flags: --papers P (corpus size), --stream S (held-out papers),
///        --shards N, --producers M, --depth D (pipeline_depth),
///        --json PATH.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "shard/shard_router.h"
#include "util/json_writer.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace iuad;

namespace {

/// Compact, order-sensitive digest of one run's assignments, for the
/// identical-output check.
std::string DigestOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string d;
  for (const auto& a : as) {
    d += a.name;
    d += ':';
    d += std::to_string(a.vertex);
    d += a.created_new ? "+n" : "";
    d += ';';
  }
  return d;
}

struct RunOutcome {
  double seconds = 0.0;
  std::vector<std::string> digests;  // per stream paper, in stream order
  obs::Histogram latency;            // per-paper commit latency (shared obs)
  serve::ServiceStats stats;         // router runs only (pipeline counters)
  size_t graph_bytes = 0;            // post-ingestion CollabGraph footprint
  int num_alive = 0;
  double papers_per_s(size_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
  double bytes_per_author() const {
    return num_alive > 0
               ? static_cast<double>(graph_bytes) / static_cast<double>(num_alive)
               : 0.0;
  }
};

/// Commit-latency percentile in milliseconds, from the run's histogram.
double PercentileMs(const obs::HistogramSnapshot& h, double p) {
  return h.PercentileUs(p) / 1e3;
}

/// DisambiguationResult is move-only (it owns the fitted model), so each
/// run gets a pristine copy of the fitted state by reloading the snapshot —
/// which also puts the sharded io path itself under the bench.
bool ReloadFitted(const std::string& snapshot_path,
                  const data::PaperDatabase& db, io::Snapshot* out) {
  auto snap = io::LoadSnapshot(snapshot_path, db);
  if (!snap.ok()) {
    std::fprintf(stderr, "snapshot reload failed: %s\n",
                 snap.status().ToString().c_str());
    return false;
  }
  *out = std::move(*snap);
  return true;
}

/// Sequential baseline: plain AddPaper calls in stream order.
bool RunSequential(const data::PaperDatabase& history,
                   const std::string& snapshot_path,
                   const std::vector<data::Paper>& stream, RunOutcome* out) {
  data::PaperDatabase db = history;
  io::Snapshot snap;
  if (!ReloadFitted(snapshot_path, db, &snap)) return false;
  core::IncrementalDisambiguator inc(&db, &snap.result, snap.config);
  out->digests.reserve(stream.size());
  Stopwatch sw;
  double last = 0.0;
  for (const auto& paper : stream) {
    auto r = inc.AddPaper(paper);
    if (!r.ok()) {
      std::fprintf(stderr, "sequential AddPaper failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    const double now = sw.ElapsedSeconds();
    out->latency.RecordUs((now - last) * 1e6);
    last = now;
    out->digests.push_back(DigestOf(*r));
  }
  out->seconds = sw.ElapsedSeconds();
  out->graph_bytes = snap.result.graph.MemoryBytes();
  out->num_alive = snap.result.graph.num_alive();
  return true;
}

/// Router run with `num_shards` shards, `producers` submitting threads and
/// the given pipeline depth. A collector thread observes commit latency as
/// the gap between successive in-order future resolutions.
bool RunSharded(const data::PaperDatabase& history,
                const std::string& snapshot_path,
                const std::vector<data::Paper>& stream, int num_shards,
                int producers, int depth, RunOutcome* out,
                bool trace_enabled = true) {
  data::PaperDatabase db = history;
  io::Snapshot snap;
  if (!ReloadFitted(snapshot_path, db, &snap)) return false;
  snap.config.num_shards = num_shards;
  snap.config.pipeline_depth = depth;
  snap.config.trace_enabled = trace_enabled;
  std::vector<std::future<shard::ShardRouter::Assignments>> futures(
      stream.size());
  // Producer -> collector handoff: futures[i] is only touched by the
  // collector once its producer has marked it filled (std::future itself
  // is not safe to poll while being assigned).
  std::mutex hand_mu;
  std::condition_variable hand_cv;
  std::vector<char> filled(stream.size(), 0);
  Stopwatch sw;
  {
    shard::ShardRouter router(&db, &snap.result, snap.config);
    std::atomic<size_t> next{0};
    auto producer = [&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        auto f = router.SubmitAt(i, stream[i]);
        std::lock_guard<std::mutex> lock(hand_mu);
        futures[i] = std::move(f);
        filled[i] = 1;
        hand_cv.notify_all();
      }
    };
    std::thread collector([&] {
      double last = 0.0;
      for (size_t i = 0; i < stream.size(); ++i) {
        {
          std::unique_lock<std::mutex> lock(hand_mu);
          hand_cv.wait(lock, [&] { return filled[i] == 1; });
        }
        futures[i].wait();  // resolves in sequence order; value kept for later
        const double now = sw.ElapsedSeconds();
        out->latency.RecordUs((now - last) * 1e6);
        last = now;
      }
    });
    std::vector<std::thread> threads;
    for (int t = 1; t < producers; ++t) threads.emplace_back(producer);
    producer();
    for (auto& t : threads) t.join();
    router.Drain();
    collector.join();
    out->stats = router.Stats();
  }  // Stop() via destructor
  out->seconds = sw.ElapsedSeconds();
  out->graph_bytes = snap.result.graph.MemoryBytes();
  out->num_alive = snap.result.graph.num_alive();
  out->digests.reserve(stream.size());
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "sharded AddPaper failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    out->digests.push_back(DigestOf(*r));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int papers = 6000;
  int stream_size = 400;
  int num_shards = 0;  // 0 = hardware concurrency
  int producers = 4;
  int depth = 4;  // core::IuadConfig default
  std::string json_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--papers") == 0) papers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--stream") == 0) {
      stream_size = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      num_shards = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--producers") == 0) {
      producers = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--depth") == 0) depth = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  num_shards = util::ResolveNumThreads(num_shards);
  producers = util::ResolveNumThreads(producers);

  bench::PrintHeader("bench_shard",
                     "name-block-sharded serving throughput (ShardRouter)");
  auto corpus = bench::BenchCorpus(2022, papers);
  auto [history, stream] = corpus.db.HoldOutLatest(stream_size);
  std::printf(
      "corpus: %d papers history, %zu-paper stream, %d shards, %d producers, "
      "pipeline depth %d\n",
      history.num_papers(), stream.size(), num_shards, producers, depth);

  core::IuadConfig cfg = bench::BenchIuadConfig();
  auto fitted = core::IuadPipeline(cfg).Run(history);
  if (!fitted.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  const std::string snapshot_path = "bench_shard.snapshot.tmp";
  {
    // Save with the bench's shard count so reloads exercise the sharded
    // (v2) section path end to end.
    core::IuadConfig save_cfg = cfg;
    save_cfg.num_shards = num_shards;
    iuad::Status st =
        io::SaveSnapshot(snapshot_path, history, *fitted, save_cfg);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  RunOutcome seq, shard1, shardN, no_trace;
  const bool ran =
      RunSequential(history, snapshot_path, stream, &seq) &&
      RunSharded(history, snapshot_path, stream, 1, producers, depth,
                 &shard1) &&
      RunSharded(history, snapshot_path, stream, num_shards, producers, depth,
                 &shardN) &&
      // Flight recorder off (--no-trace): the same run again, isolating the
      // recorder's papers/s overhead (acceptance: <= 3%).
      RunSharded(history, snapshot_path, stream, num_shards, producers, depth,
                 &no_trace, /*trace_enabled=*/false);
  std::remove(snapshot_path.c_str());
  if (!ran) return 1;

  const bool identical = seq.digests == shard1.digests &&
                         seq.digests == shardN.digests &&
                         seq.digests == no_trace.digests;
  std::printf(
      "papers/s: sequential %.1f | shard@1 %.1f | shard@%d %.1f\n",
      seq.papers_per_s(stream.size()), shard1.papers_per_s(stream.size()),
      num_shards, shardN.papers_per_s(stream.size()));
  std::printf("assignments identical across all three runs: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  if (!identical) return 1;  // never record a lying BENCH_* data point
  for (const auto& [label, run] :
       {std::pair<const char*, const RunOutcome*>{"sequential", &seq},
        {"router@1", &shard1}, {"router@N", &shardN}}) {
    const obs::HistogramSnapshot h = run->latency.Snapshot();
    std::printf("commit latency %-10s p50 %.2f ms | p95 %.2f ms | p99 %.2f ms\n",
                label, PercentileMs(h, 50), PercentileMs(h, 95),
                PercentileMs(h, 99));
  }
  std::printf(
      "pipeline (shard@%d): depth %d, %ld windows, occupancy %.2f, "
      "%ld conflict stalls, %ld speculative rescores\n",
      num_shards, shardN.stats.pipeline_depth,
      static_cast<long>(shardN.stats.pipeline_windows),
      shardN.stats.pipeline_occupancy,
      static_cast<long>(shardN.stats.conflict_stalls),
      static_cast<long>(shardN.stats.speculative_rescores));
  const double on_pps = shardN.papers_per_s(stream.size());
  const double off_pps = no_trace.papers_per_s(stream.size());
  const double trace_overhead_pct =
      off_pps > 0.0 ? (off_pps - on_pps) / off_pps * 100.0 : 0.0;
  std::printf(
      "trace overhead (shard@%d): %.1f papers/s recorder on | %.1f off | "
      "%.2f%% overhead\n",
      num_shards, on_pps, off_pps, trace_overhead_pct);
  std::printf("memory: rss %.1f MiB, graph %.1f bytes/author (%d authors)\n",
              util::CurrentRssMb(), shardN.bytes_per_author(),
              shardN.num_alive);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.Field("bench", "bench_shard")
        .Field("papers_history", history.num_papers())
        .Field("stream", static_cast<int>(stream.size()))
        .Field("shards", num_shards)
        .Field("producers", producers)
        .Field("pipeline_depth", depth)
        .Field("identical_assignments", identical);
    json.BeginObject("papers_per_s")
        .Field("sequential", seq.papers_per_s(stream.size()), 1)
        .Field("router_1_shard", shard1.papers_per_s(stream.size()), 1)
        .Field("router_n_shards", shardN.papers_per_s(stream.size()), 1)
        .EndObject();
    json.BeginObject("seconds")
        .Field("sequential", seq.seconds)
        .Field("router_1_shard", shard1.seconds)
        .Field("router_n_shards", shardN.seconds)
        .EndObject();
    json.BeginObject("commit_latency_ms");
    for (const auto& [label, run] :
         {std::pair<const char*, const RunOutcome*>{"sequential", &seq},
          {"router_1_shard", &shard1}, {"router_n_shards", &shardN}}) {
      const obs::HistogramSnapshot h = run->latency.Snapshot();
      json.BeginObject(label)
          .Field("p50", PercentileMs(h, 50), 2)
          .Field("p95", PercentileMs(h, 95), 2)
          .Field("p99", PercentileMs(h, 99), 2)
          .EndObject();
    }
    json.EndObject();
    json.BeginObject("pipeline")
        .Field("depth", shardN.stats.pipeline_depth)
        .Field("windows", shardN.stats.pipeline_windows)
        .Field("occupancy", shardN.stats.pipeline_occupancy, 2)
        .Field("conflict_stalls", shardN.stats.conflict_stalls)
        .Field("speculative_rescores", shardN.stats.speculative_rescores)
        .EndObject();
    json.BeginObject("trace_overhead")
        .Field("papers_per_s_recorder_on", on_pps, 1)
        .Field("papers_per_s_recorder_off", off_pps, 1)
        .Field("overhead_pct", trace_overhead_pct, 2)
        .EndObject();
    json.BeginObject("memory")
        .Field("rss_mb", util::CurrentRssMb(), 1)
        .Field("graph_bytes", static_cast<int64_t>(shardN.graph_bytes))
        .Field("num_alive_authors", shardN.num_alive)
        .Field("bytes_per_author", shardN.bytes_per_author(), 1)
        .EndObject();
    iuad::Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
