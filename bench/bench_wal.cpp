/// Durability-overhead bench for the WAL (DESIGN.md §9). Fits the pipeline
/// on a history corpus, holds out the most recent papers as the stream
/// (the Table VI protocol), then measures ingestion papers/second through
/// serve::IngestService three ways over the SAME stream:
///
///   wal_off           no --wal-dir: the throughput ceiling;
///   wal_batched       group commit at the defaults (fsync_every_n=64,
///                     fsync_interval_ms=5) — the shipping configuration,
///                     acceptance: <= 10% overhead vs wal_off;
///   wal_every_record  fsync_every_n=1 — strict per-record durability, the
///                     price of giving up group commit.
///
/// All three runs must produce identical assignments — verified here, not
/// assumed; the process aborts on any divergence, so a recorded data point
/// is also a determinism check. With `--json out.json` the numbers land in
/// BENCH_wal.json (scripts/bench_wal.sh).
///
/// Flags: --papers P (corpus size), --stream S (held-out papers),
///        --reps R (keep the fastest of R runs per mode), --json PATH.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/snapshot.h"
#include "serve/ingest_service.h"
#include "util/json_writer.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "wal/wal.h"

using namespace iuad;

namespace {

/// Compact, order-sensitive digest of one run's assignments, for the
/// identical-output check.
std::string DigestOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string d;
  for (const auto& a : as) {
    d += a.name;
    d += ':';
    d += std::to_string(a.vertex);
    d += a.created_new ? "+n" : "";
    d += ';';
  }
  return d;
}

struct RunOutcome {
  double seconds = 0.0;
  std::vector<std::string> digests;
  int64_t wal_appended = 0;
  int64_t wal_fsyncs = 0;
  int64_t wal_bytes = 0;
  double fsync_wait_us_p99 = 0.0;
  double papers_per_s(size_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
};

void RemoveFlatDir(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
}

/// One timed stream run. `wal_mode`: 0 = off, otherwise the fsync_every_n
/// to run the WAL at (with the time trigger disabled at 1 so "every
/// record" means exactly that).
bool RunStream(const data::PaperDatabase& history,
               const std::string& snapshot_path,
               const std::vector<data::Paper>& stream, int wal_mode,
               RunOutcome* out) {
  data::PaperDatabase db = history;
  auto snap = io::LoadSnapshot(snapshot_path, db);
  if (!snap.ok()) {
    std::fprintf(stderr, "snapshot reload failed: %s\n",
                 snap.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<wal::Log> log;
  const std::string wal_dir =
      "bench_wal.tmp-" + std::to_string(wal_mode) + "-" +
      std::to_string(::getpid());
  if (wal_mode > 0) {
    RemoveFlatDir(wal_dir);
    wal::Options opts;
    opts.fsync_every_n = wal_mode;
    if (wal_mode == 1) opts.fsync_interval_ms = 0.0;
    auto opened = wal::Log::Open(wal_dir, db.Fingerprint(), opts);
    if (!opened.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n",
                   opened.status().ToString().c_str());
      return false;
    }
    log = std::move(*opened);
  }
  std::vector<std::future<serve::IngestService::Assignments>> futures(
      stream.size());
  Stopwatch sw;
  serve::ServiceStats stats;
  {
    serve::IngestService service(&db, &snap->result, snap->config, log.get());
    for (size_t i = 0; i < stream.size(); ++i) {
      futures[i] = service.SubmitAt(i, stream[i]);
    }
    service.Drain();
    out->seconds = sw.ElapsedSeconds();
    stats = service.Stats();
  }  // Stop() via destructor
  if (log != nullptr && !log->status().ok()) {
    std::fprintf(stderr, "wal io error: %s\n",
                 log->status().ToString().c_str());
    return false;
  }
  out->wal_appended = stats.wal_appended;
  out->wal_fsyncs = stats.wal_fsyncs;
  out->wal_bytes = stats.wal_bytes;
  out->fsync_wait_us_p99 = stats.wal_fsync_wait_us_p99;
  out->digests.reserve(stream.size());
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "AddPaper failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    out->digests.push_back(DigestOf(*r));
  }
  log.reset();
  if (wal_mode > 0) RemoveFlatDir(wal_dir);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int papers = 6000;
  int stream_size = 400;
  int reps = 3;
  std::string json_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--papers") == 0) papers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--stream") == 0) {
      stream_size = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  if (reps < 1) reps = 1;

  bench::PrintHeader("bench_wal",
                     "durability overhead of the write-ahead log (DESIGN §9)");
  auto corpus = bench::BenchCorpus(2021, papers);
  auto [history, stream] = corpus.db.HoldOutLatest(stream_size);
  std::printf("corpus: %d papers history, %zu-paper stream\n",
              history.num_papers(), stream.size());

  core::IuadConfig cfg = bench::BenchIuadConfig();
  auto fitted = core::IuadPipeline(cfg).Run(history);
  if (!fitted.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }
  const std::string snapshot_path = "bench_wal.snapshot.tmp";
  {
    iuad::Status st = io::SaveSnapshot(snapshot_path, history, *fitted, cfg);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  // One discarded warmup pass: the first stream run in the process pays
  // page-cache and frequency warmup, which would otherwise be billed
  // entirely to whichever mode runs first. After it, each mode keeps the
  // fastest of `reps` runs — a ~1 s stream run on shared hardware swings
  // by more than the overhead being measured, and min-of-N is the
  // standard way to strip that noise from a delta.
  RunOutcome warmup;
  if (!RunStream(history, snapshot_path, stream, /*wal_mode=*/0, &warmup)) {
    std::remove(snapshot_path.c_str());
    return 1;
  }

  RunOutcome off, batched, strict;
  bool ran = true;
  struct Mode {
    int wal_mode;
    RunOutcome* out;
  };
  for (const Mode& m : {Mode{0, &off}, Mode{64, &batched}, Mode{1, &strict}}) {
    for (int rep = 0; rep < reps && ran; ++rep) {
      RunOutcome attempt;
      ran = RunStream(history, snapshot_path, stream, m.wal_mode, &attempt);
      if (!ran) break;
      if (rep == 0 || attempt.seconds < m.out->seconds) {
        *m.out = std::move(attempt);
      }
    }
  }
  std::remove(snapshot_path.c_str());
  if (!ran) return 1;

  const bool identical = off.digests == batched.digests &&
                         off.digests == strict.digests;
  const size_t n = stream.size();
  const double overhead_pct =
      off.papers_per_s(n) > 0.0
          ? 100.0 * (1.0 - batched.papers_per_s(n) / off.papers_per_s(n))
          : 0.0;
  std::printf(
      "papers/s: wal_off %.1f | wal_batched %.1f | wal_every_record %.1f\n",
      off.papers_per_s(n), batched.papers_per_s(n), strict.papers_per_s(n));
  std::printf("batched-fsync overhead vs off: %.1f%% (acceptance: <= 10%%)\n",
              overhead_pct);
  std::printf("fsyncs: batched %lld (over %lld records) | every-record %lld\n",
              static_cast<long long>(batched.wal_fsyncs),
              static_cast<long long>(batched.wal_appended),
              static_cast<long long>(strict.wal_fsyncs));
  std::printf("assignments identical across all three runs: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  if (!identical) return 1;  // never record a lying BENCH_* data point
  std::printf("memory: rss %.1f MiB\n", util::CurrentRssMb());

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.Field("bench", "bench_wal")
        .Field("papers_history", history.num_papers())
        .Field("stream", static_cast<int>(n))
        .Field("reps", reps)
        .Field("identical_assignments", identical)
        .Field("batched_overhead_pct", overhead_pct, 1);
    json.BeginObject("papers_per_s")
        .Field("wal_off", off.papers_per_s(n), 1)
        .Field("wal_batched", batched.papers_per_s(n), 1)
        .Field("wal_every_record", strict.papers_per_s(n), 1)
        .EndObject();
    json.BeginObject("seconds")
        .Field("wal_off", off.seconds)
        .Field("wal_batched", batched.seconds)
        .Field("wal_every_record", strict.seconds)
        .EndObject();
    json.BeginObject("wal_batched_io")
        .Field("appended", batched.wal_appended)
        .Field("fsyncs", batched.wal_fsyncs)
        .Field("bytes", batched.wal_bytes)
        .Field("fsync_wait_us_p99", batched.fsync_wait_us_p99, 1)
        .EndObject();
    json.BeginObject("wal_every_record_io")
        .Field("appended", strict.wal_appended)
        .Field("fsyncs", strict.wal_fsyncs)
        .Field("bytes", strict.wal_bytes)
        .Field("fsync_wait_us_p99", strict.fsync_wait_us_p99, 1)
        .EndObject();
    json.BeginObject("memory").Field("rss_mb", util::CurrentRssMb(), 1)
        .EndObject();
    iuad::Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
