/// Reproduces Table III: IUAD vs four supervised (AdaBoost, GBDT, RF,
/// XGBoost-style) and four unsupervised (ANON, NetE, Aminer, GHOST)
/// baselines, MicroA / MicroP / MicroR / MicroF over the testing names.
/// Supervised baselines train on ambiguous names disjoint from the test
/// names (the paper trains on labeled data following Treeratpituk & Giles).

#include <cstdio>
#include <memory>

#include "baselines/supervised_pipeline.h"
#include "baselines/unsupervised.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"

using namespace iuad;

namespace {

struct PaperRow {
  const char* algo;
  const char* a;
  const char* p;
  const char* r;
  const char* f;
};

// Published Table III values for the side-by-side column.
constexpr PaperRow kPaper[] = {
    {"AdaBoost", "0.6812", "0.6891", "0.8046", "0.7424"},
    {"GBDT", "0.6914", "0.7422", "0.7041", "0.7226"},
    {"RF", "0.7118", "0.7215", "0.8066", "0.7617"},
    {"XGBoost", "0.6935", "0.7467", "0.7009", "0.7231"},
    {"ANON", "0.6697", "0.8164", "0.5438", "0.6528"},
    {"NetE", "0.7318", "0.8273", "0.6702", "0.7405"},
    {"Aminer", "0.6182", "0.8235", "0.4217", "0.5578"},
    {"GHOST", "0.4800", "0.6814", "0.1675", "0.2690"},
    {"IUAD", "0.8174", "0.8608", "0.8113", "0.8353"},
};

const PaperRow& PaperRowFor(const std::string& algo) {
  for (const auto& row : kPaper) {
    if (algo == row.algo) return row;
  }
  return kPaper[8];
}

void AddRow(eval::TablePrinter* table, const std::string& algo,
            const eval::MicroMetrics& m) {
  const PaperRow& p = PaperRowFor(algo);
  table->AddRow({algo, bench::F4(m.accuracy), bench::F4(m.precision),
                 bench::F4(m.recall), bench::F4(m.f1),
                 std::string(p.a) + "/" + p.p + "/" + p.r + "/" + p.f});
}

}  // namespace

int main() {
  bench::PrintHeader("repro_table3_performance",
                     "Table III — performance compared with baselines");
  auto corpus = bench::BenchCorpus();
  const auto test_names = corpus.TestNames(2);
  // The supervised baselines train on an *external* labeled corpus — a
  // second, much smaller synthetic corpus from a different seed — mirroring
  // the paper's protocol: annotation never comes from the evaluation data
  // and labeled author data is scarce (its Sec. I argument against
  // supervised methods).
  auto labeled = bench::BenchCorpus(/*seed=*/777, /*papers=*/2500);
  const auto train_names = labeled.TestNames(2);
  std::printf("corpus: %d papers; %zu test names; %zu external training names\n",
              corpus.db.num_papers(), test_names.size(), train_names.size());

  eval::TablePrinter table(
      {"Algorithm", "MicroA", "MicroP", "MicroR", "MicroF", "paper A/P/R/F"});

  // --- IUAD (also provides the shared title embeddings). -------------------
  core::IuadPipeline pipeline(bench::BenchIuadConfig());
  iuad::Stopwatch sw;
  auto iuad_result = pipeline.Run(corpus.db);
  if (!iuad_result.ok()) {
    std::printf("IUAD failed: %s\n", iuad_result.status().ToString().c_str());
    return 1;
  }
  const double iuad_seconds = sw.ElapsedSeconds();
  auto iuad_metrics = eval::EvaluateOccurrences(
      corpus.db, iuad_result->occurrences, test_names);

  // --- Supervised baselines. ------------------------------------------------
  for (auto kind :
       {baselines::SupervisedKind::kAdaBoost, baselines::SupervisedKind::kGbdt,
        baselines::SupervisedKind::kRandomForest,
        baselines::SupervisedKind::kXgboost}) {
    // No embedding feature: vector spaces differ across corpora, so the
    // transfer protocol uses the corpus-independent features only.
    baselines::SupervisedPipeline sp(kind, corpus.db, nullptr);
    auto st = sp.TrainOn(labeled.db, train_names, /*max_pairs_per_name=*/150);
    eval::MicroMetrics m;
    if (st.ok()) {
      m = eval::EvaluateClusterer(
          corpus.db,
          [&](const std::string& n) { return sp.Disambiguate(n); },
          test_names);
    }
    AddRow(&table, sp.Name(), m);
  }
  table.AddSeparator();

  // --- Unsupervised baselines. ----------------------------------------------
  std::vector<std::unique_ptr<baselines::UnsupervisedBaseline>> unsupervised;
  unsupervised.push_back(std::make_unique<baselines::AnonBaseline>(
      corpus.db, &iuad_result->embeddings));
  unsupervised.push_back(std::make_unique<baselines::NetEBaseline>(
      corpus.db, &iuad_result->embeddings));
  unsupervised.push_back(std::make_unique<baselines::AminerBaseline>(
      corpus.db, &iuad_result->embeddings));
  unsupervised.push_back(std::make_unique<baselines::GhostBaseline>(corpus.db));
  for (const auto& baseline : unsupervised) {
    auto m = eval::EvaluateClusterer(
        corpus.db,
        [&](const std::string& n) { return baseline->Disambiguate(n); },
        test_names);
    AddRow(&table, baseline->Name(), m);
  }
  table.AddSeparator();
  AddRow(&table, "IUAD", iuad_metrics);
  table.Print();

  std::printf(
      "IUAD end-to-end: %.1fs (embed %.1fs, SCN %.1fs, GCN %.1fs); "
      "%ld merges from %ld candidate pairs\n",
      iuad_seconds, iuad_result->embed_seconds, iuad_result->scn_seconds,
      iuad_result->gcn_seconds,
      static_cast<long>(iuad_result->gcn_stats.merges),
      static_cast<long>(iuad_result->gcn_stats.candidate_pairs));
  std::printf(
      "shape check: IUAD beats every unsupervised baseline on MicroF and\n"
      "GHOST (structure-only) is the weakest, matching the paper. Known\n"
      "divergence (EXPERIMENTS.md): the supervised pair classifiers tie or\n"
      "slightly exceed IUAD here because the synthetic corpus's co-author\n"
      "overlap feature is cleaner than real DBLP's — names of co-authors are\n"
      "themselves ambiguous in reality, which is what drags the published\n"
      "supervised precision down to ~0.69-0.75.\n");
  return 0;
}
