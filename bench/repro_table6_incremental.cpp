/// Reproduces Table VI: incremental author disambiguation. The newest
/// 100 / 200 / 300 papers are held out as the "recently published" stream;
/// the GCN is built on the remainder; the stream is ingested one paper at a
/// time with the fitted model only (no retraining). Reported per holdout:
/// metrics before (on the history) and after (full data including the
/// stream), their difference, and the average time per ingested paper.

#include <cstdio>

#include "bench_common.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"

using namespace iuad;

int main() {
  bench::PrintHeader("repro_table6_incremental",
                     "Table VI — incremental author disambiguation");
  auto corpus = bench::BenchCorpus();
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  eval::TablePrinter table({"holdout", "metric", "before", "after", "Improv.",
                            "paper before/after"});
  const char* paper_rows[3][4] = {
      // MicroA, MicroP, MicroR, MicroF paper values for holdout 100/200/300.
      {"0.8154/0.8062", "0.8685/0.8649", "0.7974/0.7829", "0.8315/0.8218"},
      {"0.8104/0.8079", "0.8546/0.8588", "0.8008/0.7941", "0.8268/0.8252"},
      {"0.8166/0.8085", "0.8544/0.8606", "0.8160/0.7931", "0.8348/0.8255"},
  };
  const char* paper_ms[3] = {"47.76", "45.22", "45.40"};

  int hold_idx = 0;
  for (int holdout : {100, 200, 300}) {
    auto [history, stream] = corpus.db.HoldOutLatest(holdout);
    core::IuadConfig cfg = bench::BenchIuadConfig();
    core::IuadPipeline pipeline(cfg);
    auto result = pipeline.Run(history);
    if (!result.ok()) {
      std::printf("pipeline failed\n");
      return 1;
    }
    auto before =
        eval::EvaluateOccurrences(history, result->occurrences, names);

    core::IncrementalDisambiguator inc(&history, &*result, cfg);
    iuad::Stopwatch sw;
    for (const auto& paper : stream) {
      auto st = inc.AddPaper(paper);
      if (!st.ok()) {
        std::printf("ingest failed: %s\n", st.status().ToString().c_str());
        return 1;
      }
    }
    const double ms_per_paper =
        sw.ElapsedMillis() / static_cast<double>(stream.size());
    auto after =
        eval::EvaluateOccurrences(history, result->occurrences, names);

    auto row = [&](const char* metric, double b, double a, int paper_col) {
      table.AddRow({std::to_string(holdout), metric, bench::F4(b),
                    bench::F4(a), (a >= b ? "+" : "") + bench::F4(a - b),
                    paper_rows[hold_idx][paper_col]});
    };
    row("MicroA", before.accuracy, after.accuracy, 0);
    row("MicroP", before.precision, after.precision, 1);
    row("MicroR", before.recall, after.recall, 2);
    row("MicroF", before.f1, after.f1, 3);
    table.AddRow({std::to_string(holdout), "avg ms/paper", "-",
                  bench::F3(ms_per_paper), "-",
                  std::string(paper_ms[hold_idx]) + " ms"});
    table.AddSeparator();
    ++hold_idx;
  }
  table.Print();
  std::printf(
      "shape check: metrics move only slightly after ingesting the stream\n"
      "(the paper sees small reductions, ~0.01), and per-paper cost is tens\n"
      "of milliseconds, no retraining.\n");
  return 0;
}
