/// Reproduces Figure 6 (rationality of the six similarity functions): for
/// each γi alone, same-name SCN vertex pairs are merged whenever γi clears a
/// threshold, sweeping the threshold across the observed range (the paper
/// sweeps raw thresholds; we sweep observed quantiles, which is the same
/// curve parameterized robustly). A similarity is "more influential" when
/// its curves spread more across thresholds — the paper finds the community
/// similarities (γ5, γ6) most influential and the structural ones least,
/// since stage 1 already exhausted stable structure.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "graph/union_find.h"

using namespace iuad;

namespace {

const char* kFeatureNames[core::kNumSimilarities] = {
    "g1 WL kernel (6e)",         "g2 clique coincidence (6d)",
    "g3 research interests (6f)", "g4 time consistency (6c)",
    "g5 representative community (6a)", "g6 research community (6b)",
};

}  // namespace

int main() {
  bench::PrintHeader("repro_fig6_similarity",
                     "Fig. 6 — single-similarity GCN threshold sweeps");
  auto corpus = bench::BenchCorpus(/*seed=*/2021, /*papers=*/8000);
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  // Stage 1 once; all sweeps share the SCN snapshot.
  core::IuadConfig cfg = bench::BenchIuadConfig();
  graph::CollabGraph graph;
  core::OccurrenceIndex occ;
  core::ScnBuilder scn(cfg);
  auto scn_stats = scn.Build(corpus.db, &graph, &occ);
  if (!scn_stats.ok()) {
    std::printf("SCN failed\n");
    return 1;
  }
  text::Word2Vec w2v(cfg.word2vec);
  {
    std::vector<std::vector<std::string>> sentences;
    for (const auto& p : corpus.db.papers()) {
      sentences.push_back(corpus.db.KeywordsOf(p.id));
    }
    (void)w2v.Train(sentences);
  }
  core::SimilarityComputer sim(corpus.db, graph, w2v, cfg);

  // All candidate pairs + γ vectors, computed once.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
  std::vector<core::SimilarityVector> gammas;
  for (const auto& name : graph.Names()) {
    const auto& verts = graph.VerticesWithName(name);
    for (size_t i = 0; i < verts.size(); ++i) {
      for (size_t j = i + 1; j < verts.size(); ++j) {
        pairs.emplace_back(verts[i], verts[j]);
        gammas.push_back(sim.Compute(verts[i], verts[j]));
      }
    }
  }
  std::printf("candidate pairs: %zu\n", pairs.size());

  for (int f = 0; f < core::kNumSimilarities; ++f) {
    std::vector<double> values;
    values.reserve(gammas.size());
    for (const auto& g : gammas) values.push_back(g[static_cast<size_t>(f)]);
    std::sort(values.begin(), values.end());
    auto quantile = [&](double q) {
      return values[static_cast<size_t>(q * (values.size() - 1))];
    };
    eval::TablePrinter table(
        {"quantile", "threshold", "MicroA", "MicroP", "MicroR", "MicroF"});
    for (double q : {0.0, 0.5, 0.75, 0.9, 0.97, 0.995}) {
      const double t = quantile(q);
      graph::UnionFind uf(graph.num_vertices());
      for (size_t k = 0; k < pairs.size(); ++k) {
        if (gammas[k][static_cast<size_t>(f)] >= t &&
            (q > 0.0 || true)) {
          uf.Union(pairs[k].first, pairs[k].second);
        }
      }
      eval::PairCounts total;
      for (const auto& name : names) {
        const auto& papers = corpus.db.PapersWithName(name);
        std::vector<int> pred;
        pred.reserve(papers.size());
        for (int pid : papers) {
          const graph::VertexId v = occ.Lookup(pid, name);
          pred.push_back(v >= 0 ? uf.Find(v) : -1 - pid);
        }
        total.Add(eval::PairwiseCounts(
            pred, eval::TrueLabelsForName(corpus.db, name)));
      }
      auto m = eval::ToMetrics(total);
      table.AddRow({bench::F3(q), bench::F4(t), bench::F4(m.accuracy),
                    bench::F4(m.precision), bench::F4(m.recall),
                    bench::F4(m.f1)});
    }
    std::printf("\n--- %s ---\n", kFeatureNames[f]);
    table.Print();
  }
  std::printf(
      "\nshape check (paper Fig. 6): every γ is individually informative\n"
      "(precision rises with the threshold); the venue/community features\n"
      "show the widest useful threshold spread, the structural features the\n"
      "narrowest — stage 1 already consumed the stable structure.\n");
  return 0;
}
