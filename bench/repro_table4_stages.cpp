/// Reproduces Table IV: effect of the two stages. Runs stage 1 alone (SCN)
/// and the full pipeline (SCN + GCN) and reports the per-metric improvement.
/// The paper's signature result: recall jumps (+0.374 there) while precision
/// barely moves (-0.005), because stage 1 only asserts stable relations and
/// stage 2 merges the same-name fragments the evidence supports.

#include <cstdio>

#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"

using namespace iuad;

int main() {
  bench::PrintHeader("repro_table4_stages", "Table IV — effect of two stages");
  auto corpus = bench::BenchCorpus();
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  core::IuadPipeline pipeline(bench::BenchIuadConfig());
  auto scn = pipeline.RunScnOnly(corpus.db);
  auto gcn = pipeline.Run(corpus.db);
  if (!scn.ok() || !gcn.ok()) {
    std::printf("pipeline failed\n");
    return 1;
  }
  auto ms = eval::EvaluateOccurrences(corpus.db, scn->occurrences, names);
  auto mg = eval::EvaluateOccurrences(corpus.db, gcn->occurrences, names);

  eval::TablePrinter table({"Metric", "SCN", "GCN", "Improv.",
                            "paper SCN/GCN/Improv."});
  auto row = [&](const char* metric, double s, double g, const char* paper) {
    table.AddRow({metric, bench::F4(s), bench::F4(g),
                  (g >= s ? "+" : "") + bench::F4(g - s), paper});
  };
  row("MicroA", ms.accuracy, mg.accuracy, "0.6402 / 0.8174 / +0.1772");
  row("MicroP", ms.precision, mg.precision, "0.8662 / 0.8608 / -0.0054");
  row("MicroR", ms.recall, mg.recall, "0.4374 / 0.8113 / +0.3739");
  row("MicroF", ms.f1, mg.f1, "0.5813 / 0.8353 / +0.2540");
  table.Print();

  std::printf(
      "stage stats: SCN %ld SCRs, %d vertices; GCN merged %ld of %ld "
      "candidate pairs' vertices, recovered %ld edges\n",
      static_cast<long>(gcn->scn_stats.num_scrs), gcn->scn_stats.num_vertices,
      static_cast<long>(gcn->gcn_stats.merges),
      static_cast<long>(gcn->gcn_stats.candidate_pairs),
      static_cast<long>(gcn->gcn_stats.recovered_edges));
  std::printf(
      "shape check: the largest improvement is MicroR and precision is ~flat\n"
      "(the paper's two 'paramount findings' for this table).\n");
  return 0;
}
