/// Reproduces Table IV: effect of the two stages. Runs stage 1 alone (SCN)
/// and the full pipeline (SCN + GCN) and reports the per-metric improvement.
/// The paper's signature result: recall jumps (+0.374 there) while precision
/// barely moves (-0.005), because stage 1 only asserts stable relations and
/// stage 2 merges the same-name fragments the evidence supports.
///
/// Also the per-stage timing harness behind scripts/bench_stages.sh: with
/// `--json out.json [--threads N]` the full pipeline is run at 1 and N
/// worker threads and the per-stage seconds (embed = word2vec training,
/// scn = stage 1, gcn = WL refinement + candidate generation + γ scoring +
/// EM + merges) are written as BENCH_stages.json. Outputs are identical at
/// both thread counts by construction; only the wall-clock moves.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "util/json_writer.h"
#include "util/memory.h"
#include "util/thread_pool.h"

using namespace iuad;

namespace {

struct StageSeconds {
  double embed = 0.0;
  double scn = 0.0;
  double gcn = 0.0;
  size_t graph_bytes = 0;  // fitted CollabGraph footprint
  int num_alive = 0;
  double total() const { return embed + scn + gcn; }
};

bool TimeStages(const data::Corpus& corpus, int num_threads,
                StageSeconds* out) {
  core::IuadConfig cfg = bench::BenchIuadConfig();
  cfg.num_threads = num_threads;
  auto result = core::IuadPipeline(cfg).Run(corpus.db);
  if (!result.ok()) {
    std::fprintf(stderr, "timing run (%d threads) failed: %s\n", num_threads,
                 result.status().ToString().c_str());
    return false;
  }
  out->embed = result->embed_seconds;
  out->scn = result->scn_seconds;
  out->gcn = result->gcn_seconds;
  out->graph_bytes = result->graph.MemoryBytes();
  out->num_alive = result->graph.num_alive();
  return true;
}

bool WriteStagesJson(const std::string& path, int papers, int threads,
                     const StageSeconds& serial, const StageSeconds& par) {
  auto speedup = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  util::JsonWriter json;
  json.Field("bench", "repro_table4_stages")
      .Field("papers", papers)
      .Field("threads_serial", 1)
      .Field("threads_parallel", threads);
  json.BeginObject("stages");
  const struct {
    const char* name;
    double s, p;
  } rows[] = {{"embed", serial.embed, par.embed},
              {"scn", serial.scn, par.scn},
              {"gcn", serial.gcn, par.gcn}};
  for (const auto& row : rows) {
    json.BeginObject(row.name)
        .Field("serial_s", row.s)
        .Field("parallel_s", row.p)
        .Field("speedup", speedup(row.s, row.p), 3)
        .EndObject();
  }
  json.EndObject();
  json.BeginObject("total")
      .Field("serial_s", serial.total())
      .Field("parallel_s", par.total())
      .Field("speedup", speedup(serial.total(), par.total()), 3)
      .EndObject();
  json.BeginObject("memory")
      .Field("rss_mb", util::CurrentRssMb(), 1)
      .Field("graph_bytes", static_cast<int64_t>(par.graph_bytes))
      .Field("num_alive_authors", par.num_alive)
      .Field("bytes_per_author",
             par.num_alive > 0 ? static_cast<double>(par.graph_bytes) /
                                     static_cast<double>(par.num_alive)
                               : 0.0,
             1)
      .EndObject();
  return json.WriteFile(path).ok();
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // 0 = hardware concurrency
  std::string json_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--threads") == 0) threads = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  threads = util::ResolveNumThreads(threads);

  bench::PrintHeader("repro_table4_stages", "Table IV — effect of two stages");
  auto corpus = bench::BenchCorpus();
  const auto names = corpus.TestNames(2);
  std::printf("corpus: %d papers; %zu test names\n", corpus.db.num_papers(),
              names.size());

  core::IuadPipeline pipeline(bench::BenchIuadConfig());
  auto scn = pipeline.RunScnOnly(corpus.db);
  auto gcn = pipeline.Run(corpus.db);
  if (!scn.ok() || !gcn.ok()) {
    std::printf("pipeline failed\n");
    return 1;
  }
  auto ms = eval::EvaluateOccurrences(corpus.db, scn->occurrences, names);
  auto mg = eval::EvaluateOccurrences(corpus.db, gcn->occurrences, names);

  eval::TablePrinter table({"Metric", "SCN", "GCN", "Improv.",
                            "paper SCN/GCN/Improv."});
  auto row = [&](const char* metric, double s, double g, const char* paper) {
    table.AddRow({metric, bench::F4(s), bench::F4(g),
                  (g >= s ? "+" : "") + bench::F4(g - s), paper});
  };
  row("MicroA", ms.accuracy, mg.accuracy, "0.6402 / 0.8174 / +0.1772");
  row("MicroP", ms.precision, mg.precision, "0.8662 / 0.8608 / -0.0054");
  row("MicroR", ms.recall, mg.recall, "0.4374 / 0.8113 / +0.3739");
  row("MicroF", ms.f1, mg.f1, "0.5813 / 0.8353 / +0.2540");
  table.Print();

  std::printf(
      "stage stats: SCN %ld SCRs, %d vertices; GCN merged %ld of %ld "
      "candidate pairs' vertices, recovered %ld edges\n",
      static_cast<long>(gcn->scn_stats.num_scrs), gcn->scn_stats.num_vertices,
      static_cast<long>(gcn->gcn_stats.merges),
      static_cast<long>(gcn->gcn_stats.candidate_pairs),
      static_cast<long>(gcn->gcn_stats.recovered_edges));
  std::printf(
      "shape check: the largest improvement is MicroR and precision is ~flat\n"
      "(the paper's two 'paramount findings' for this table).\n");

  // ---- Per-stage wall-clock at 1 vs. N threads (BENCH_stages.json). ------
  StageSeconds serial, par;
  if (!TimeStages(corpus, 1, &serial) || !TimeStages(corpus, threads, &par)) {
    return 1;  // never record a zeroed data point in the BENCH_* trajectory
  }
  std::printf(
      "\nstage seconds (1 thread vs %d): embed %.3f/%.3f  scn %.3f/%.3f  "
      "gcn %.3f/%.3f  total %.3f/%.3f\n",
      threads, serial.embed, par.embed, serial.scn, par.scn, serial.gcn,
      par.gcn, serial.total(), par.total());
  if (!json_path.empty()) {
    if (!WriteStagesJson(json_path, corpus.db.num_papers(), threads, serial,
                         par)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
