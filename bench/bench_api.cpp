/// End-to-end throughput of the networked query/ingest API (src/api):
/// fits the pipeline on a history corpus, brings the fitted state up
/// behind api::Server (TCP, newline-delimited JSON), then measures
///
///   ingest/s   one client connection streaming the held-out papers in
///              batches of --batch (Frontend::SubmitBatch under the
///              protocol), compared against direct Frontend::Submit calls
///              without the wire in between — the protocol tax;
///   queries/s  N concurrent client connections (default: nproc) issuing
///              query_authors lookups against the live service.
///
/// The ingest comparison is also a correctness check: the API session's
/// assignments must be byte-identical to the direct run's, or the bench
/// aborts rather than record a lying number. With `--json out.json` the
/// numbers land in BENCH_api.json (scripts/bench_api.sh; see the
/// BENCH_*.json convention in ROADMAP).
///
/// Flags: --papers P (corpus size), --stream S (held-out papers),
///        --batch B (papers per ingest request), --clients N, --json PATH.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/codec.h"
#include "api/server.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "serve/ingest_service.h"
#include "util/json_writer.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace iuad;

namespace {

/// Minimal blocking NDJSON client over one socket.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ok_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return ok_; }

  iuad::Result<api::Response> Call(const api::Request& request) {
    const std::string line = api::EncodeRequest(request) + "\n";
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off, 0);
      if (n <= 0) return iuad::Status::IoError("send failed");
      off += static_cast<size_t>(n);
    }
    // Buffered line framing: a byte-per-recv loop would spend thousands of
    // syscalls per multi-KB ingest response and the bench would measure
    // the client, not the server.
    size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return iuad::Status::IoError("recv failed");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const std::string response_line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return api::DecodeResponse(response_line);
  }

 private:
  int fd_ = -1;
  bool ok_ = false;
  std::string buffer_;
};

std::string DigestOf(const std::vector<core::IncrementalAssignment>& as) {
  std::string d;
  for (const auto& a : as) {
    d += a.name + ":" + std::to_string(a.vertex) +
         (a.created_new ? "+n" : "") + ";";
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  int papers = 6000;
  int stream_size = 400;
  int batch = 16;
  int clients = 0;  // 0 = hardware concurrency
  std::string json_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--papers") == 0) papers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--stream") == 0) {
      stream_size = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--batch") == 0) batch = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--clients") == 0) {
      clients = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  clients = util::ResolveNumThreads(clients);

  bench::PrintHeader("bench_api",
                     "query/ingest API throughput (api::Server, Sec. V-E)");
  auto corpus = bench::BenchCorpus(2026, papers);
  auto [history, stream] = corpus.db.HoldOutLatest(stream_size);
  std::printf("corpus: %d papers history, %zu-paper stream, batch %d, "
              "%d query clients\n",
              history.num_papers(), stream.size(), batch, clients);

  core::IuadConfig cfg = bench::BenchIuadConfig();
  cfg.api_max_batch = batch;
  auto fitted = core::IuadPipeline(cfg).Run(history);
  if (!fitted.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 fitted.status().ToString().c_str());
    return 1;
  }

  // Direct baseline: the same stream through Frontend::Submit, no wire.
  std::vector<std::string> direct_digests;
  double direct_seconds = 0.0;
  {
    data::PaperDatabase db = history;
    auto result = core::IuadPipeline(cfg).Run(db);
    if (!result.ok()) return 1;
    serve::IngestService service(&db, &*result, cfg);
    std::vector<std::future<serve::Frontend::Assignments>> futures;
    Stopwatch sw;
    for (const auto& paper : stream) futures.push_back(service.Submit(paper));
    service.Drain();
    direct_seconds = sw.ElapsedSeconds();
    for (auto& f : futures) {
      auto r = f.get();
      if (!r.ok()) {
        std::fprintf(stderr, "direct ingest failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      direct_digests.push_back(DigestOf(*r));
    }
  }

  // API run: a fresh fitted state served over TCP.
  data::PaperDatabase db = history;
  serve::IngestService service(&db, &*fitted, cfg);
  api::ServerOptions options;
  options.port = 0;
  options.num_workers = clients + 1;
  options.max_batch = batch;
  api::Server server(&service, options);
  if (iuad::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<std::string> api_digests;
  double ingest_seconds = 0.0;
  {
    Client ingest_client(server.port());
    if (!ingest_client.ok()) return 1;
    int64_t id = 0;
    Stopwatch sw;
    for (size_t i = 0; i < stream.size();
         i += static_cast<size_t>(batch)) {
      api::Request request;
      request.id = id++;
      request.op = api::Op::kIngest;
      for (size_t j = i;
           j < stream.size() && j < i + static_cast<size_t>(batch); ++j) {
        request.ingest.papers.push_back(stream[j]);
      }
      auto response = ingest_client.Call(request);
      if (!response.ok() || !response->status.ok()) {
        std::fprintf(stderr, "api ingest failed: %s\n",
                     (response.ok() ? response->status : response.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      for (const auto& per_paper : response->assignments) {
        api_digests.push_back(DigestOf(per_paper));
      }
    }
    ingest_seconds = sw.ElapsedSeconds();
  }

  const bool identical = api_digests == direct_digests;
  std::printf("assignments identical (api vs direct): %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  if (!identical) return 1;

  // Query phase: N concurrent connections hammering query_authors over the
  // names the corpus actually contains.
  std::vector<std::string> names;
  for (const auto& p : history.papers()) {
    for (const auto& n : p.author_names) {
      names.push_back(n);
      if (names.size() >= 512) break;
    }
    if (names.size() >= 512) break;
  }
  const int queries_per_client = 2000;
  std::atomic<int64_t> completed{0};
  std::atomic<bool> failed{false};
  Stopwatch query_sw;
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Client client(server.port());
      if (!client.ok()) {
        failed = true;
        return;
      }
      api::Request request;
      request.op = api::Op::kQueryAuthors;
      for (int q = 0; q < queries_per_client; ++q) {
        request.id = q;
        request.query_authors.name =
            names[static_cast<size_t>(q * (t + 1)) % names.size()];
        auto response = client.Call(request);
        if (!response.ok() || !response->status.ok()) {
          failed = true;
          return;
        }
        ++completed;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double query_seconds = query_sw.ElapsedSeconds();
  server.Shutdown();
  service.Stop();
  const size_t graph_bytes = fitted->graph.MemoryBytes();
  const int num_alive = fitted->graph.num_alive();
  const double bytes_per_author =
      num_alive > 0
          ? static_cast<double>(graph_bytes) / static_cast<double>(num_alive)
          : 0.0;
  if (failed.load()) {
    std::fprintf(stderr, "query phase failed\n");
    return 1;
  }

  const double ingest_direct_ps =
      direct_seconds > 0 ? stream.size() / direct_seconds : 0.0;
  const double ingest_api_ps =
      ingest_seconds > 0 ? stream.size() / ingest_seconds : 0.0;
  const double queries_ps =
      query_seconds > 0 ? completed.load() / query_seconds : 0.0;
  std::printf("ingest papers/s: direct %.1f | api (batch %d) %.1f\n",
              ingest_direct_ps, batch, ingest_api_ps);
  std::printf("queries/s: %.0f over %d connections (%ld queries)\n",
              queries_ps, clients, static_cast<long>(completed.load()));
  std::printf("memory: rss %.1f MiB, graph %.1f bytes/author (%d authors)\n",
              util::CurrentRssMb(), bytes_per_author, num_alive);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.Field("bench", "bench_api")
        .Field("papers_history", history.num_papers())
        .Field("stream", static_cast<int>(stream.size()))
        .Field("batch", batch)
        .Field("query_clients", clients)
        .Field("identical_assignments", identical);
    json.BeginObject("ingest_papers_per_s")
        .Field("direct_frontend", ingest_direct_ps, 1)
        .Field("api_tcp", ingest_api_ps, 1)
        .EndObject();
    json.BeginObject("queries_per_s")
        .Field("query_authors", queries_ps, 1)
        .EndObject();
    json.BeginObject("memory")
        .Field("rss_mb", util::CurrentRssMb(), 1)
        .Field("graph_bytes", static_cast<int64_t>(graph_bytes))
        .Field("num_alive_authors", num_alive)
        .Field("bytes_per_author", bytes_per_author, 1)
        .EndObject();
    iuad::Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
