/// Reproduces Figure 3 (descriptive analysis of the corpus):
///   3a — # papers per name follows a power law (paper: slope = -1.677)
///   3b — co-author 2-itemset frequency follows a power law
///        (paper: slope = -3.172)
/// Both laws are the statistical foundation of the η-SCR argument
/// (Sec. IV-A): random name pairs essentially never co-occur often, while
/// real collaborators do — so frequent pairs are stable relations.

#include <cstdio>

#include "bench_common.h"
#include "eval/table_printer.h"
#include "mining/pair_miner.h"
#include "util/stats.h"

using namespace iuad;

namespace {

void PrintLogLogSeries(const char* label,
                       const std::map<int64_t, int64_t>& hist, int max_rows) {
  std::printf("%s (value -> frequency; log-log series)\n", label);
  int printed = 0;
  for (const auto& [value, freq] : hist) {
    if (printed++ >= max_rows) {
      std::printf("  ... (%zu distinct values total)\n", hist.size());
      break;
    }
    std::printf("  %6ld -> %ld\n", static_cast<long>(value),
                static_cast<long>(freq));
  }
}

}  // namespace

int main() {
  bench::PrintHeader("repro_fig3_descriptive",
                     "Fig. 3(a) papers-per-name power law; Fig. 3(b) "
                     "2-itemset frequency power law");
  auto corpus = bench::BenchCorpus(/*seed=*/2021, /*papers=*/20000);
  std::printf("corpus: %d papers, %ld author-paper pairs, %zu names\n",
              corpus.db.num_papers(),
              static_cast<long>(corpus.db.author_paper_pairs()),
              corpus.db.names().size());

  // --- Fig. 3a: papers per name. -------------------------------------------
  std::vector<int64_t> papers_per_name;
  for (const auto& name : corpus.db.names()) {
    papers_per_name.push_back(
        static_cast<int64_t>(corpus.db.PapersWithName(name).size()));
  }
  auto hist_a = FrequencyHistogram(papers_per_name);
  auto fit_a = FitPowerLaw(hist_a);
  PrintLogLogSeries("Fig 3a: # papers per name", hist_a, 12);

  // --- Fig. 3b: frequency of co-author 2-itemsets. -------------------------
  mining::ItemEncoder encoder;
  mining::PairCounter counter;
  for (const auto& paper : corpus.db.papers()) {
    mining::Transaction t;
    for (const auto& n : paper.author_names) t.push_back(encoder.Encode(n));
    counter.AddTransaction(t);
  }
  std::vector<int64_t> pair_freqs;
  for (const auto& [key, c] : counter.counts()) pair_freqs.push_back(c);
  auto hist_b = FrequencyHistogram(pair_freqs);
  auto fit_b = FitPowerLaw(hist_b);
  PrintLogLogSeries("Fig 3b: frequency of 2-itemsets", hist_b, 12);

  eval::TablePrinter table({"series", "slope (measured)", "slope (paper)",
                            "R^2", "points"});
  table.AddRow({"papers per name (3a)", bench::F3(fit_a.slope), "-1.677",
                bench::F3(fit_a.r_squared), std::to_string(fit_a.used_points)});
  table.AddRow({"2-itemset frequency (3b)", bench::F3(fit_b.slope), "-3.172",
                bench::F3(fit_b.r_squared), std::to_string(fit_b.used_points)});
  table.Print();
  std::printf(
      "shape check: both slopes negative and the pair-frequency law is the\n"
      "steeper of the two, as in the paper. Absolute slopes depend on corpus\n"
      "scale (641k papers there vs 20k here); see EXPERIMENTS.md.\n");
  return 0;
}
