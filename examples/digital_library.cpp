/// Digital-library "who's who" browser: the motivating scenario of the
/// paper's introduction (searching "Wei Wang" in DBLP returns 224 entries).
/// After reconstruction, a name query returns the *distinct authors* behind
/// the name, each with a profile assembled from the collaboration network:
/// paper count, active years, favourite venue, top collaborators.
///
/// Build & run:  ./build/examples/digital_library

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "data/corpus_generator.h"

using namespace iuad;

namespace {

/// Prints the library card of one disambiguated author vertex.
void PrintAuthorCard(const data::PaperDatabase& db,
                     const graph::CollabGraph& graph, graph::VertexId v,
                     int index) {
  const auto& vertex = graph.vertex(v);
  int min_year = 99999, max_year = 0;
  std::map<std::string, int> venues;
  for (int pid : vertex.papers) {
    const auto& p = db.paper(pid);
    min_year = std::min(min_year, p.year);
    max_year = std::max(max_year, p.year);
    ++venues[p.venue];
  }
  std::string top_venue;
  int top_cnt = 0;
  for (const auto& [venue, cnt] : venues) {
    if (cnt > top_cnt) {
      top_cnt = cnt;
      top_venue = venue;
    }
  }
  // Top collaborators = highest-weight incident edges.
  std::vector<std::pair<int, std::string>> collaborators;
  for (const auto& [nbr, papers] : graph.NeighborsOf(v)) {
    collaborators.emplace_back(static_cast<int>(papers.size()),
                               std::string(graph.NameOf(nbr)));
  }
  std::sort(collaborators.rbegin(), collaborators.rend());

  std::printf("  [%d] %zu papers, active %d-%d, mostly at \"%s\"\n", index,
              vertex.papers.size(), min_year, max_year, top_venue.c_str());
  std::printf("      collaborators:");
  for (size_t i = 0; i < collaborators.size() && i < 4; ++i) {
    std::printf(" %s(x%d)", collaborators[i].second.c_str(),
                collaborators[i].first);
  }
  std::printf("\n      sample: \"%s\"\n",
              db.paper(vertex.papers.front()).title.c_str());
}

}  // namespace

int main() {
  data::CorpusConfig corpus_cfg;
  corpus_cfg.num_communities = 12;
  corpus_cfg.authors_per_community = 40;
  corpus_cfg.num_papers = 4000;
  corpus_cfg.name_zipf = 0.65;
  corpus_cfg.seed = 99;
  auto corpus = data::CorpusGenerator(corpus_cfg).Generate();

  core::IuadConfig config;
  config.word2vec.dim = 24;
  core::IuadPipeline pipeline(config);
  auto result = pipeline.Run(corpus.db);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // "Search box": take the three most-published ambiguous names.
  auto names = corpus.TestNames(2);
  std::sort(names.begin(), names.end(),
            [&](const std::string& a, const std::string& b) {
              return corpus.db.PapersWithName(a).size() >
                     corpus.db.PapersWithName(b).size();
            });
  if (names.size() > 3) names.resize(3);

  for (const auto& name : names) {
    const auto& papers = corpus.db.PapersWithName(name);
    // Distinct alive vertices bearing this name = the library's author pages.
    auto clusters = result->occurrences.ClustersOfName(name, papers);
    std::printf("\nsearch \"%s\": %zu papers -> %zu distinct authors",
                name.c_str(), papers.size(), clusters.size());
    std::printf(" (ground truth: %zu)\n",
                corpus.TrueClustersOfName(name).size());
    int index = 1;
    for (const auto& [vertex, cluster_papers] : clusters) {
      PrintAuthorCard(corpus.db, result->graph, vertex, index++);
    }
  }
  return 0;
}
