/// Quickstart: disambiguate authors in a small bibliographic database.
///
/// Shows the minimal IUAD workflow:
///   1. put papers in a data::PaperDatabase (here: a synthetic corpus; use
///      PaperDatabase::LoadTsv for your own data),
///   2. run core::IuadPipeline to reconstruct the collaboration network,
///   3. read the answer out of the OccurrenceIndex: papers of a name,
///      grouped by the vertex (= distinct author) they were attributed to.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "eval/evaluator.h"

using namespace iuad;

int main() {
  // --- 1. A paper database. -------------------------------------------------
  // Synthetic DBLP-like corpus with planted ground truth so we can check
  // ourselves at the end. For real data:
  //   auto db = data::PaperDatabase::LoadTsv("papers.tsv");
  data::CorpusConfig corpus_cfg;
  corpus_cfg.num_communities = 10;
  corpus_cfg.authors_per_community = 40;
  corpus_cfg.num_papers = 3000;
  corpus_cfg.name_zipf = 0.6;
  corpus_cfg.seed = 42;
  auto corpus = data::CorpusGenerator(corpus_cfg).Generate();
  std::printf("database: %d papers, %zu distinct names\n",
              corpus.db.num_papers(), corpus.db.names().size());

  // --- 2. Run the pipeline. -------------------------------------------------
  core::IuadConfig config;   // paper defaults: eta = 2, delta = 0, h = 2
  config.word2vec.dim = 24;  // small embeddings are plenty at this scale
  core::IuadPipeline pipeline(config);
  auto result = pipeline.Run(corpus.db);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "reconstructed network: %d author vertices, %d edges "
      "(%ld stable relations, %ld stage-2 merges)\n",
      result->graph.num_alive(), result->graph.num_edges(),
      static_cast<long>(result->scn_stats.num_scrs),
      static_cast<long>(result->gcn_stats.merges));

  // --- 3. Read the disambiguation for one ambiguous name. --------------------
  const auto ambiguous = corpus.TestNames(2);
  if (ambiguous.empty()) {
    std::printf("no ambiguous names in this corpus\n");
    return 0;
  }
  const std::string& name = ambiguous.front();
  const auto& papers = corpus.db.PapersWithName(name);
  auto clusters = result->occurrences.ClustersOfName(name, papers);
  std::printf("\nname \"%s\": %zu papers attributed to %zu distinct authors\n",
              name.c_str(), papers.size(), clusters.size());
  int author_no = 1;
  for (const auto& [vertex, cluster_papers] : clusters) {
    std::printf("  author #%d (%zu papers), e.g. \"%s\" (%s, %d)\n",
                author_no++, cluster_papers.size(),
                corpus.db.paper(cluster_papers.front()).title.c_str(),
                corpus.db.paper(cluster_papers.front()).venue.c_str(),
                corpus.db.paper(cluster_papers.front()).year);
  }

  // --- 4. Because this corpus is synthetic, we can grade ourselves. ----------
  auto metrics =
      eval::EvaluateOccurrences(corpus.db, result->occurrences, ambiguous);
  std::printf("\npairwise micro metrics over %zu ambiguous names: %s\n",
              ambiguous.size(), eval::FormatMetrics(metrics).c_str());
  std::printf("(truth says \"%s\" is really %zu people)\n", name.c_str(),
              corpus.TrueClustersOfName(name).size());
  return 0;
}
