/// Incremental ingestion: run IUAD once over a historical database, then
/// stream newly published papers into the live network — Sec. V-E of the
/// paper, and the reason IUAD can sit behind a digital library that
/// receives new records continuously. No retraining happens; each
/// occurrence is assigned by the fitted generative model's score.
///
/// This example drives the redesigned serving surface: the stream goes
/// through serve::Frontend — the one interface the IngestService, the
/// sharded ShardRouter, and the networked query API (src/api) all share —
/// as a single SubmitBatch call that reserves one contiguous sequence
/// range for the whole batch, and the post-ingestion lookups use the
/// frontend's published read views instead of poking the raw result.
///
/// Build & run:  ./build/examples/incremental_stream

#include <cstdio>
#include <future>
#include <vector>

#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "serve/frontend.h"
#include "serve/ingest_service.h"
#include "util/stopwatch.h"

using namespace iuad;

int main() {
  // Historical corpus + a stream of the 150 most recent papers.
  data::CorpusConfig corpus_cfg;
  corpus_cfg.num_communities = 10;
  corpus_cfg.authors_per_community = 40;
  corpus_cfg.num_papers = 3000;
  corpus_cfg.seed = 7;
  auto corpus = data::CorpusGenerator(corpus_cfg).Generate();
  auto [history, stream] = corpus.db.HoldOutLatest(150);
  std::printf("history: %d papers; stream: %zu new papers\n",
              history.num_papers(), stream.size());

  core::IuadConfig config;
  config.word2vec.dim = 24;
  core::IuadPipeline pipeline(config);
  auto result = pipeline.Run(history);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("built network: %d author vertices\n\n",
              result->graph.num_alive());

  // Bring up the serving front end and ingest the whole stream as one
  // batch. The futures resolve in sequence order with exactly the
  // assignments sequential AddPaper calls would produce.
  serve::IngestService service(&history, &*result, config);
  serve::Frontend& frontend = service;
  int joined = 0, founded = 0;
  iuad::Stopwatch sw;
  auto futures = frontend.SubmitBatch(stream);
  for (auto& future : futures) {
    auto assignments = future.get();
    if (!assignments.ok()) {
      std::printf("ingest failed: %s\n",
                  assignments.status().ToString().c_str());
      return 1;
    }
    for (const auto& a : *assignments) {
      if (a.created_new) {
        ++founded;
      } else {
        ++joined;
      }
    }
  }
  const double ms = sw.ElapsedMillis();
  std::printf("ingested %zu papers in %.1f ms (%.2f ms/paper)\n",
              stream.size(), ms, ms / static_cast<double>(stream.size()));
  std::printf("occurrences joining an existing author: %d\n", joined);
  std::printf("occurrences founding a new author:      %d\n", founded);

  // Resolved futures mean the papers are applied, not that a fresh read
  // view is published (reads lag by up to one refresh window) — drain
  // before reading stats and the decision trail below.
  frontend.Drain();
  const auto stats = frontend.Stats();
  std::printf("service state: epoch %ld, %ld papers applied, "
              "%d alive vertices\n",
              static_cast<long>(stats.epoch),
              static_cast<long>(stats.papers_applied),
              stats.num_alive_vertices);
  const auto& last = stream.back();
  std::printf("\nlast paper: \"%s\" (%s, %d) by:\n", last.title.c_str(),
              last.venue.c_str(), last.year);
  for (const auto& name : last.author_names) {
    for (const auto& rec : frontend.AuthorsByName(name)) {
      const auto papers = frontend.PublicationsOf(rec.vertex);
      if (papers.empty() || papers.back() != history.num_papers() - 1) {
        continue;  // a same-name candidate that did not absorb this byline
      }
      std::printf("  %-24s -> author vertex %d (now %zu papers)\n",
                  name.c_str(), rec.vertex, papers.size());
    }
  }
  frontend.Stop();
  return 0;
}
