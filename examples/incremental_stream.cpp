/// Incremental ingestion: run IUAD once over a historical database, then
/// stream newly published papers into the live network one at a time —
/// Sec. V-E of the paper, and the reason IUAD can sit behind a digital
/// library that receives new records continuously. No retraining happens;
/// each occurrence is assigned by the fitted generative model's score.
///
/// Build & run:  ./build/examples/incremental_stream

#include <cstdio>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "util/stopwatch.h"

using namespace iuad;

int main() {
  // Historical corpus + a stream of the 150 most recent papers.
  data::CorpusConfig corpus_cfg;
  corpus_cfg.num_communities = 10;
  corpus_cfg.authors_per_community = 40;
  corpus_cfg.num_papers = 3000;
  corpus_cfg.seed = 7;
  auto corpus = data::CorpusGenerator(corpus_cfg).Generate();
  auto [history, stream] = corpus.db.HoldOutLatest(150);
  std::printf("history: %d papers; stream: %zu new papers\n",
              history.num_papers(), stream.size());

  core::IuadConfig config;
  config.word2vec.dim = 24;
  core::IuadPipeline pipeline(config);
  auto result = pipeline.Run(history);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("built network: %d author vertices\n\n",
              result->graph.num_alive());

  // Stream the new papers. The disambiguator mutates `history` (it appends
  // the papers) and `result` (graph, occurrence index) in place.
  core::IncrementalDisambiguator ingest(&history, &*result, config);
  int joined = 0, founded = 0;
  iuad::Stopwatch sw;
  for (const auto& paper : stream) {
    auto assignments = ingest.AddPaper(paper);
    if (!assignments.ok()) {
      std::printf("ingest failed: %s\n",
                  assignments.status().ToString().c_str());
      return 1;
    }
    for (const auto& a : *assignments) {
      if (a.created_new) {
        ++founded;
      } else {
        ++joined;
      }
    }
  }
  const double ms = sw.ElapsedMillis();
  std::printf("ingested %zu papers in %.1f ms (%.2f ms/paper)\n",
              stream.size(), ms, ms / static_cast<double>(stream.size()));
  std::printf("occurrences joining an existing author: %d\n", joined);
  std::printf("occurrences founding a new author:      %d\n", founded);

  // Show one concrete decision trail.
  const auto& last = stream.back();
  std::printf("\nlast paper: \"%s\" (%s, %d) by:\n", last.title.c_str(),
              last.venue.c_str(), last.year);
  for (const auto& name : last.author_names) {
    const graph::VertexId v =
        result->occurrences.Lookup(history.num_papers() - 1, name);
    if (v < 0) continue;
    std::printf("  %-24s -> author vertex %d (now %zu papers)\n", name.c_str(),
                v, result->graph.vertex(v).papers.size());
  }
  return 0;
}
