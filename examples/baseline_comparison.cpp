/// Head-to-head on one ambiguous name: runs IUAD and all four unsupervised
/// baselines over the same database and prints each method's clustering of
/// a single name side by side with the ground truth — a compact way to *see*
/// the difference between bottom-up network reconstruction and top-down
/// ego-network clustering.
///
/// Build & run:  ./build/examples/baseline_comparison

#include <cstdio>
#include <map>
#include <memory>

#include "baselines/unsupervised.h"
#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

using namespace iuad;

namespace {

/// Renders a clustering as a compact partition string, e.g. "AAB BA".
std::string RenderPartition(const std::vector<int>& labels) {
  std::string out;
  for (int l : labels) {
    out.push_back(l < 26 ? static_cast<char>('A' + l) : '+');
  }
  return out;
}

}  // namespace

int main() {
  data::CorpusConfig corpus_cfg;
  corpus_cfg.num_communities = 10;
  corpus_cfg.authors_per_community = 40;
  corpus_cfg.num_papers = 3500;
  corpus_cfg.seed = 1234;
  auto corpus = data::CorpusGenerator(corpus_cfg).Generate();

  core::IuadConfig config;
  config.word2vec.dim = 24;
  core::IuadPipeline pipeline(config);
  auto result = pipeline.Run(corpus.db);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Pick the ambiguous name with the most true authors (the hard case).
  auto names = corpus.TestNames(2);
  std::string name;
  size_t most_authors = 0;
  for (const auto& n : names) {
    const size_t k = corpus.TrueClustersOfName(n).size();
    if (k > most_authors) {
      most_authors = k;
      name = n;
    }
  }
  const auto& papers = corpus.db.PapersWithName(name);
  std::printf("name \"%s\": %zu papers, %zu true authors\n", name.c_str(),
              papers.size(), most_authors);
  std::printf("each column below is one paper; same letter = same author\n\n");

  const auto truth = eval::TrueLabelsForName(corpus.db, name);
  std::printf("  %-12s %s\n", "TRUTH", RenderPartition(truth).c_str());

  // IUAD's answer, densified to letters.
  {
    std::vector<int> pred;
    std::map<graph::VertexId, int> remap;
    for (int pid : papers) {
      const graph::VertexId v = result->occurrences.Lookup(pid, name);
      auto [it, inserted] = remap.try_emplace(v, static_cast<int>(remap.size()));
      pred.push_back(it->second);
    }
    auto m = eval::ToMetrics(eval::PairwiseCounts(pred, truth));
    std::printf("  %-12s %s   (%s)\n", "IUAD", RenderPartition(pred).c_str(),
                eval::FormatMetrics(m).c_str());
  }

  std::vector<std::unique_ptr<baselines::UnsupervisedBaseline>> competitors;
  competitors.push_back(std::make_unique<baselines::AnonBaseline>(
      corpus.db, &result->embeddings));
  competitors.push_back(std::make_unique<baselines::NetEBaseline>(
      corpus.db, &result->embeddings));
  competitors.push_back(std::make_unique<baselines::AminerBaseline>(
      corpus.db, &result->embeddings));
  competitors.push_back(std::make_unique<baselines::GhostBaseline>(corpus.db));
  for (const auto& baseline : competitors) {
    auto pred = baseline->Disambiguate(name);
    auto m = eval::ToMetrics(eval::PairwiseCounts(pred, truth));
    std::printf("  %-12s %s   (%s)\n", baseline->Name().c_str(),
                RenderPartition(pred).c_str(),
                eval::FormatMetrics(m).c_str());
  }
  std::printf(
      "\ntypical reading: top-down methods either shatter the name (many\n"
      "letters) or glue authors together; IUAD's bottom-up construction\n"
      "tracks the true partition more closely.\n");
  return 0;
}
