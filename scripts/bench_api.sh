#!/usr/bin/env bash
# Query/ingest API throughput trajectory (ROADMAP: accumulate BENCH_*.json).
# Runs bench_api: fits the pipeline, serves the fitted state over
# api::Server (TCP, newline-delimited JSON), streams the held-out papers
# through the protocol in batches, and hammers query_authors from
# BENCH_CLIENTS concurrent connections. Writes BENCH_api.json with end-to-end
# ingest/s (direct Frontend vs API) and queries/s. The bench verifies the
# API session's assignments are byte-identical to direct submission and
# fails otherwise, so a recorded data point is also a protocol-correctness
# check.
#
# Env knobs:
#   BENCH_CLIENTS  query connection count (default: nproc)
#   BENCH_PAPERS   corpus size (default: 6000)
#   BENCH_STREAM   held-out stream size (default: 400)
#   BENCH_BATCH    papers per ingest request (default: 16)
#   BENCH_OUT      output path (default: BENCH_api.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS="${BENCH_CLIENTS:-$(nproc)}"
PAPERS="${BENCH_PAPERS:-6000}"
STREAM="${BENCH_STREAM:-400}"
BATCH="${BENCH_BATCH:-16}"
OUT="${BENCH_OUT:-BENCH_api.json}"

cmake -B build -S . >/dev/null
cmake --build build --target bench_bench_api -j "$(nproc)" >/dev/null
./build/bench_bench_api --papers "$PAPERS" --stream "$STREAM" \
  --batch "$BATCH" --clients "$CLIENTS" --json "$OUT"
