#!/usr/bin/env bash
# Per-stage wall-clock trajectory (ROADMAP: accumulate BENCH_*.json).
# Runs repro_table4_stages' timing harness — the full pipeline at 1 and
# BENCH_THREADS worker threads — and writes BENCH_stages.json with per-stage
# seconds (embed / scn / gcn) and speedups. Output of the pipeline is
# identical at both thread counts; only wall-clock differs.
#
# Env knobs:
#   BENCH_THREADS  parallel thread count (default: nproc)
#   BENCH_OUT      output path (default: BENCH_stages.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${BENCH_THREADS:-$(nproc)}"
OUT="${BENCH_OUT:-BENCH_stages.json}"

cmake -B build -S . >/dev/null
cmake --build build --target bench_repro_table4_stages -j "$(nproc)" >/dev/null
./build/bench_repro_table4_stages --threads "$THREADS" --json "$OUT"
