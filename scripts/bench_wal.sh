#!/usr/bin/env bash
# Durability-overhead trajectory (ROADMAP: accumulate BENCH_*.json).
# Runs bench_wal: fits the pipeline on a history corpus, saves/reloads a
# snapshot, then streams the held-out papers through serve::IngestService
# three times over the same stream — WAL off, WAL with batched group-commit
# fsync (the shipping defaults), and WAL with fsync-every-record — and
# writes BENCH_wal.json with papers/s for each plus the batched-mode
# overhead percentage (acceptance: <= 10% vs WAL off). The bench itself
# verifies all three runs produce identical assignments and fails
# otherwise, so a recorded data point is also a determinism check.
#
# Env knobs:
#   BENCH_PAPERS  corpus size (default: 6000)
#   BENCH_STREAM  held-out stream size (default: 400)
#   BENCH_OUT     output path (default: BENCH_wal.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

PAPERS="${BENCH_PAPERS:-6000}"
STREAM="${BENCH_STREAM:-400}"
OUT="${BENCH_OUT:-BENCH_wal.json}"

cmake -B build -S . >/dev/null
cmake --build build --target bench_bench_wal -j "$(nproc)" >/dev/null
./build/bench_bench_wal --papers "$PAPERS" --stream "$STREAM" --json "$OUT"
