#!/usr/bin/env bash
# Ingestion-throughput trajectory (ROADMAP: accumulate BENCH_*.json).
# Runs bench_ingest: fits the pipeline on a history corpus, saves/reloads a
# snapshot, then streams the held-out papers through serve::IngestService —
# sequentially, with 1 producer, and with BENCH_PRODUCERS producers — and
# writes BENCH_ingest.json with papers/s for each. The bench itself verifies
# all three runs produce identical assignments and fails otherwise, so a
# recorded data point is also a determinism check.
#
# Env knobs:
#   BENCH_PRODUCERS  producer thread count (default: nproc)
#   BENCH_PAPERS     corpus size (default: 6000)
#   BENCH_STREAM     held-out stream size (default: 400)
#   BENCH_OUT        output path (default: BENCH_ingest.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

PRODUCERS="${BENCH_PRODUCERS:-$(nproc)}"
PAPERS="${BENCH_PAPERS:-6000}"
STREAM="${BENCH_STREAM:-400}"
OUT="${BENCH_OUT:-BENCH_ingest.json}"

cmake -B build -S . >/dev/null
cmake --build build --target bench_bench_ingest -j "$(nproc)" >/dev/null
./build/bench_bench_ingest --papers "$PAPERS" --stream "$STREAM" \
  --producers "$PRODUCERS" --json "$OUT"
