#!/usr/bin/env bash
# Sharded-serving throughput trajectory (ROADMAP: accumulate BENCH_*.json).
# Runs bench_shard: fits the pipeline on a history corpus, saves/reloads a
# sharded (v2) snapshot, then streams the held-out papers through
# shard::ShardRouter — sequentially, with 1 shard, and with BENCH_SHARDS
# shards at BENCH_DEPTH pipeline depth — and writes BENCH_shard.json with
# papers/s, commit-latency percentiles, and the pipeline counters for each.
# The bench itself verifies all three runs produce identical assignments
# and fails otherwise, so a recorded data point is also a determinism
# check. Note: single-core CI hovers near 1.0x; rerun on multicore
# hardware for real scaling numbers.
#
# Env knobs:
#   BENCH_SHARDS     shard count (default: nproc)
#   BENCH_PRODUCERS  producer thread count (default: 4)
#   BENCH_DEPTH      pipeline depth for the N-shard run (default: 4)
#   BENCH_PAPERS     corpus size (default: 6000)
#   BENCH_STREAM     held-out stream size (default: 400)
#   BENCH_OUT        output path (default: BENCH_shard.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS="${BENCH_SHARDS:-$(nproc)}"
PRODUCERS="${BENCH_PRODUCERS:-4}"
DEPTH="${BENCH_DEPTH:-4}"
PAPERS="${BENCH_PAPERS:-6000}"
STREAM="${BENCH_STREAM:-400}"
OUT="${BENCH_OUT:-BENCH_shard.json}"

cmake -B build -S . >/dev/null
cmake --build build --target bench_bench_shard -j "$(nproc)" >/dev/null
./build/bench_bench_shard --papers "$PAPERS" --stream "$STREAM" \
  --shards "$SHARDS" --producers "$PRODUCERS" --depth "$DEPTH" \
  --json "$OUT"
