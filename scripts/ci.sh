#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, tests, bench,
# examples, CLI), run the full test suite. This is the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

# IUAD_SANITIZE=1 switches the whole gate to an ASan+UBSan build;
# IUAD_SANITIZE=tsan to a ThreadSanitizer build. Each sanitizer gets its own
# build tree, so the regular ./build stays warm. Heavier and slower — run
# them when touching memory layout, concurrency, or raw-byte io paths. The
# TSan preset runs only the concurrent suites (the pipelined shard router,
# the single-applier service, and the API server) rather than the whole
# gate: that is where the thread schedules live, and TSan's ~10x slowdown on
# the fit-heavy suites buys nothing.
BUILD_DIR=build
CMAKE_EXTRA=()
TSAN_ONLY=0
if [[ "${IUAD_SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=build-asan
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  CMAKE_EXTRA=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS"
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  )
  echo "ci: ASan+UBSan preset (IUAD_SANITIZE=1) -> $BUILD_DIR"
elif [[ "${IUAD_SANITIZE:-0}" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  TSAN_ONLY=1
  SAN_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  CMAKE_EXTRA=(
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS"
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  )
  echo "ci: ThreadSanitizer preset (IUAD_SANITIZE=tsan) -> $BUILD_DIR"
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_EXTRA[@]}"
if [[ "$TSAN_ONLY" == "1" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target shard_test serve_test api_test obs_test util_test wal_test
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)" \
    -R '^(shard_test|serve_test|api_test|obs_test|util_test|wal_test)$')
  echo "tsan gate (shard_test serve_test api_test obs_test util_test wal_test): OK"
  exit 0
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# Snapshot persistence smoke: a pipeline run saved with --save-snapshot must
# reload cleanly into the serving path and ingest a stream (end-to-end check
# of src/io + src/serve through the CLI, beyond the unit suites).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"./$BUILD_DIR"/iuad_main generate "$SMOKE_DIR/corpus.tsv" --papers 1500 --seed 5
"./$BUILD_DIR"/iuad_main generate "$SMOKE_DIR/stream.tsv" --papers 60 --seed 55
"./$BUILD_DIR"/iuad_main run "$SMOKE_DIR/corpus.tsv" \
  --save-snapshot "$SMOKE_DIR/corpus.snap"
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" \
  --stream "$SMOKE_DIR/stream.tsv" --producers 4
echo "snapshot save/load smoke: OK"

# Sharded-serving smoke: the same snapshot serves through the 4-shard
# ShardRouter, checkpoints the post-ingestion state on stop (snapshot v2 +
# post-ingestion corpus), and that checkpoint must reload cleanly — the
# fit-once / serve / checkpoint / resume loop through the CLI.
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" \
  --stream "$SMOKE_DIR/stream.tsv" --shards 4 --producers 4 \
  --save-snapshot-on-stop "$SMOKE_DIR/post.snap" \
  --save-corpus "$SMOKE_DIR/post.tsv"
test -s "$SMOKE_DIR/post.snap" && test -s "$SMOKE_DIR/post.tsv"
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/post.tsv" \
  --load-snapshot "$SMOKE_DIR/post.snap"
echo "sharded serve + checkpoint-on-stop smoke: OK"

# Query-API smoke: drive a scripted NDJSON ingest+query session through
# `iuad serve --stdio` (the socket-free transport of the same dispatcher the
# TCP server uses) and assert on the responses. The ingest-response lines
# must be byte-identical between the 1-shard and 2-shard front ends — the
# serve::Frontend equivalence contract, end to end through the CLI.
cat > "$SMOKE_DIR/session.ndjson" <<'EOF'
{"id":1,"op":"stats"}
{"id":2,"op":"ingest","papers":[{"title":"smoke paper one","venue":"VenueX","year":2024,"authors":["Api Smoke Author","Second Smoke Author"]},{"title":"smoke paper two","venue":"VenueY","year":2025,"authors":["Api Smoke Author"]}]}
{"id":3,"op":"flush"}
{"id":4,"op":"query_authors","name":"Api Smoke Author"}
{"id":5,"op":"not_an_op"}
{"id":6,"op":"metrics"}
EOF
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio \
  < "$SMOKE_DIR/session.ndjson" > "$SMOKE_DIR/out1.txt"
grep '"op":"ingest","ok":true,"assignments":' "$SMOKE_DIR/out1.txt" >/dev/null
grep -F '{"id":3,"op":"flush","ok":true,"applied":2}' "$SMOKE_DIR/out1.txt" \
  >/dev/null
grep '"op":"query_authors","ok":true,"authors":\[{"vertex":' \
  "$SMOKE_DIR/out1.txt" >/dev/null
grep '"id":-1,.*"ok":false,.*InvalidArgument' "$SMOKE_DIR/out1.txt" >/dev/null
grep '"id":6,"op":"metrics","ok":true,"metrics":{"counters":\[{"name":' \
  "$SMOKE_DIR/out1.txt" >/dev/null
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio --shards 2 \
  < "$SMOKE_DIR/session.ndjson" > "$SMOKE_DIR/out2.txt"
diff <(grep '"op":"ingest"' "$SMOKE_DIR/out1.txt") \
     <(grep '"op":"ingest"' "$SMOKE_DIR/out2.txt")
echo "query API stdio smoke: OK"

# Metrics scrape smoke: a live --stdio session with --metrics-port 0 must
# be scrapeable over plain HTTP while the service is up, and the scrape
# must be internally consistent — the papers we ingested equal the
# iuad_papers_applied counter equal the commit-latency histogram count.
mkfifo "$SMOKE_DIR/in.fifo"
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio --metrics-port 0 \
  < "$SMOKE_DIR/in.fifo" > "$SMOKE_DIR/out3.txt" 2> "$SMOKE_DIR/err3.txt" &
SERVE_PID=$!
exec 9> "$SMOKE_DIR/in.fifo"  # hold the write end open across requests
METRICS_PORT=""
for _ in $(seq 1 200); do
  METRICS_PORT=$(sed -n \
    's/.*metrics exposition listening on port \([0-9]*\).*/\1/p' \
    "$SMOKE_DIR/err3.txt" | head -1)
  [[ -n "$METRICS_PORT" ]] && break
  sleep 0.05
done
test -n "$METRICS_PORT"
printf '%s\n' '{"id":1,"op":"ingest","papers":[{"title":"scrape paper one","venue":"VenueX","year":2024,"authors":["Scrape Smoke Author"]},{"title":"scrape paper two","venue":"VenueY","year":2025,"authors":["Scrape Smoke Author"]}]}' >&9
printf '%s\n' '{"id":2,"op":"flush"}' >&9
for _ in $(seq 1 200); do
  grep -q '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out3.txt" \
    && break
  sleep 0.05
done
grep '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out3.txt" \
  >/dev/null
exec 8<>"/dev/tcp/127.0.0.1/$METRICS_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&8
cat <&8 > "$SMOKE_DIR/scrape.txt"
exec 8<&- 8>&-
grep -q 'iuad_papers_applied 2' "$SMOKE_DIR/scrape.txt"
grep -q 'iuad_commit_latency_us_count 2' "$SMOKE_DIR/scrape.txt"
grep -q 'iuad_requests ' "$SMOKE_DIR/scrape.txt"
grep -q '# TYPE iuad_commit_latency_us histogram' "$SMOKE_DIR/scrape.txt"
exec 9>&-  # EOF on stdin shuts the session down cleanly
wait "$SERVE_PID"
echo "metrics scrape smoke: OK"

# Tracing smoke: a live session with --trace-out must answer the trace op
# and the /trace scrape path with valid Chrome trace JSON, surface a
# slow-commit exemplar through GetStats (threshold forced to ~1ns so every
# commit breaches), and on shutdown write a Perfetto-loadable trace file
# holding at least one complete "paper" span per ingested paper.
mkfifo "$SMOKE_DIR/in4.fifo"
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio --metrics-port 0 \
  --trace-out "$SMOKE_DIR/trace.json" --slow-commit-ms 0.000001 \
  < "$SMOKE_DIR/in4.fifo" > "$SMOKE_DIR/out4.txt" 2> "$SMOKE_DIR/err4.txt" &
SERVE_PID=$!
exec 9> "$SMOKE_DIR/in4.fifo"
TRACE_METRICS_PORT=""
for _ in $(seq 1 200); do
  TRACE_METRICS_PORT=$(sed -n \
    's/.*metrics exposition listening on port \([0-9]*\).*/\1/p' \
    "$SMOKE_DIR/err4.txt" | head -1)
  [[ -n "$TRACE_METRICS_PORT" ]] && break
  sleep 0.05
done
test -n "$TRACE_METRICS_PORT"
printf '%s\n' '{"id":1,"op":"ingest","papers":[{"title":"trace paper one","venue":"VenueX","year":2024,"authors":["Trace Smoke Author"]},{"title":"trace paper two","venue":"VenueY","year":2025,"authors":["Trace Smoke Author"]}]}' >&9
printf '%s\n' '{"id":2,"op":"flush"}' >&9
for _ in $(seq 1 200); do
  grep -q '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out4.txt" \
    && break
  sleep 0.05
done
grep '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out4.txt" \
  >/dev/null
# Every commit breached the forced threshold, so GetStats carries exemplars.
printf '%s\n' '{"id":3,"op":"stats"}' >&9
# The trace op drains the recorder as a Chrome trace payload.
printf '%s\n' '{"id":4,"op":"trace"}' >&9
for _ in $(seq 1 200); do
  grep -q '"id":4,"op":"trace","ok":true' "$SMOKE_DIR/out4.txt" && break
  sleep 0.05
done
grep '"id":3,"op":"stats","ok":true' "$SMOKE_DIR/out4.txt" \
  | grep '"slow_commits":\[{"seq":' >/dev/null
grep '"id":4,"op":"trace","ok":true,"trace":{"traceEvents":\[{"name":' \
  "$SMOKE_DIR/out4.txt" >/dev/null
# The /trace scrape path serves the same document shape over HTTP.
exec 8<>"/dev/tcp/127.0.0.1/$TRACE_METRICS_PORT"
printf 'GET /trace HTTP/1.0\r\n\r\n' >&8
cat <&8 > "$SMOKE_DIR/trace_scrape.txt"
exec 8<&- 8>&-
sed '1,/^\r\{0,1\}$/d' "$SMOKE_DIR/trace_scrape.txt" \
  | python3 -m json.tool >/dev/null
# And the build-info satellite rides on the /metrics scrape.
exec 8<>"/dev/tcp/127.0.0.1/$TRACE_METRICS_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&8
cat <&8 > "$SMOKE_DIR/scrape4.txt"
exec 8<&- 8>&-
grep -q 'iuad_build_info{version=' "$SMOKE_DIR/scrape4.txt"
grep -q 'iuad_uptime_seconds ' "$SMOKE_DIR/scrape4.txt"
exec 9>&-
wait "$SERVE_PID"
test -s "$SMOKE_DIR/trace.json"
python3 -m json.tool "$SMOKE_DIR/trace.json" >/dev/null
# One complete end-to-end "paper" span per ingested paper (the op:trace
# drain above is non-destructive, so the shutdown file still holds them).
PAPER_SPANS=$(grep -o '"name":"paper"' "$SMOKE_DIR/trace.json" | wc -l)
test "$PAPER_SPANS" -ge 2
echo "tracing smoke: OK ($PAPER_SPANS paper spans)"

# Durability smoke: ingest through a WAL-backed session, kill -9 the
# process with no shutdown whatsoever, then serve again from the same
# --wal-dir — recovery must replay the committed papers and the recovered
# state must still answer queries for them (DESIGN.md §9, end to end
# through the CLI).
mkfifo "$SMOKE_DIR/in5.fifo"
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio \
  --wal-dir "$SMOKE_DIR/wal" --wal-fsync-every 1 \
  < "$SMOKE_DIR/in5.fifo" > "$SMOKE_DIR/out5.txt" 2> "$SMOKE_DIR/err5.txt" &
SERVE_PID=$!
exec 9> "$SMOKE_DIR/in5.fifo"
printf '%s\n' '{"id":1,"op":"ingest","papers":[{"title":"durable paper one","venue":"VenueX","year":2024,"authors":["Wal Smoke Author","Wal Smoke Coauthor"]},{"title":"durable paper two","venue":"VenueY","year":2025,"authors":["Wal Smoke Author"]}]}' >&9
printf '%s\n' '{"id":2,"op":"flush"}' >&9
for _ in $(seq 1 200); do
  grep -q '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out5.txt" \
    && break
  sleep 0.05
done
grep '"id":2,"op":"flush","ok":true,"applied":2' "$SMOKE_DIR/out5.txt" \
  >/dev/null
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true  # reaps the SIGKILL; nonzero status is the point
exec 9>&-
cat > "$SMOKE_DIR/recover.ndjson" <<'EOF'
{"id":3,"op":"query_authors","name":"Wal Smoke Author"}
{"id":4,"op":"stats"}
EOF
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio \
  --wal-dir "$SMOKE_DIR/wal" \
  < "$SMOKE_DIR/recover.ndjson" > "$SMOKE_DIR/out6.txt" \
  2> "$SMOKE_DIR/err6.txt"
grep -q 'WAL recovery:.*2 replayed' "$SMOKE_DIR/err6.txt"
grep '"id":4,"op":"stats","ok":true' "$SMOKE_DIR/out6.txt" \
  | grep '"recovery_replayed":2' >/dev/null
# The recovered attribution must equal an uninterrupted run's: same ingest
# + query session, no crash, no WAL — the determinism-as-recovery-oracle
# check, byte for byte on the query response.
cat > "$SMOKE_DIR/uninterrupted.ndjson" <<'EOF'
{"id":1,"op":"ingest","papers":[{"title":"durable paper one","venue":"VenueX","year":2024,"authors":["Wal Smoke Author","Wal Smoke Coauthor"]},{"title":"durable paper two","venue":"VenueY","year":2025,"authors":["Wal Smoke Author"]}]}
{"id":2,"op":"flush"}
{"id":3,"op":"query_authors","name":"Wal Smoke Author"}
EOF
"./$BUILD_DIR"/iuad_main serve "$SMOKE_DIR/corpus.tsv" \
  --load-snapshot "$SMOKE_DIR/corpus.snap" --stdio \
  < "$SMOKE_DIR/uninterrupted.ndjson" > "$SMOKE_DIR/out7.txt"
grep '"id":3,"op":"query_authors","ok":true,"authors":\[{"vertex":' \
  "$SMOKE_DIR/out7.txt" >/dev/null
diff <(grep '"op":"query_authors"' "$SMOKE_DIR/out6.txt") \
     <(grep '"op":"query_authors"' "$SMOKE_DIR/out7.txt")
echo "WAL kill -9 / recover smoke: OK"

# Optional bench trajectories (BENCH_stages.json, BENCH_ingest.json,
# BENCH_shard.json, BENCH_api.json, BENCH_wal.json). Off by default to
# keep CI time bounded; set IUAD_RUN_BENCH=1 to record them.
if [[ "${IUAD_RUN_BENCH:-0}" == "1" ]]; then
  scripts/bench_stages.sh
  scripts/bench_ingest.sh
  scripts/bench_shard.sh
  scripts/bench_api.sh
  scripts/bench_wal.sh
fi
