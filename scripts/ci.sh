#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, tests, bench,
# examples, CLI), run the full test suite. This is the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure -j "$(nproc)"
