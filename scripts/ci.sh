#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, tests, bench,
# examples, CLI), run the full test suite. This is the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Optional stage-timing bench (BENCH_stages.json). Off by default to keep CI
# time bounded; set IUAD_RUN_BENCH=1 to record the trajectory.
if [[ "${IUAD_RUN_BENCH:-0}" == "1" ]]; then
  scripts/bench_stages.sh
fi
