#ifndef IUAD_OBS_TRACE_H_
#define IUAD_OBS_TRACE_H_

/// \file trace.h
/// The tracing subsystem (DESIGN.md §8): a lock-free flight recorder of
/// compact binary events, a Chrome-trace-event exporter, a bounded
/// slow-commit exemplar table, and an async-signal-safe crash dump.
///
/// Flight recorder. Per-thread SPSC ring buffers of fixed-size events
/// (monotonic ns, thread tag, event id, two u64 args). Recording is a
/// thread-local slot lookup plus four relaxed stores and one release
/// index bump — no locks, no allocation, no syscalls — and the ring
/// overwrites oldest when full, so the recorder is always-on and
/// bounded. Draining is non-destructive: readers snapshot each ring's
/// tail under acquire loads and discard any event the writer may have
/// overwritten mid-copy, so a torn read is dropped, never surfaced.
///
/// Determinism (DESIGN.md §7/§8). Nothing here is ever read on a
/// decision path; `trace_enabled` gates only the clock reads and ring
/// stores at call sites, exactly like `metrics_enabled` gates histogram
/// stamps. Call sites that time a stage for metrics reuse the same
/// stamp for the trace event (`RecordAt`), so turning tracing on adds
/// no clock reads where timing is already on.
///
/// Event model. There are no begin/end pairs to match up: an event is
/// either an instant or carries its own duration in `a1`, stamped at
/// the moment the stage *ends*. The exporter reconstructs Chrome "X"
/// (complete) events as ts = ns - dur. One record per stage keeps the
/// hot-path cost at a single ring push and makes a dropped event lose
/// one stage, never unbalance a span stack.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace iuad::obs {

// ---- Event vocabulary -------------------------------------------------------

/// Compact event ids. Paper-path events carry the paper's ingest
/// sequence number in a0, making every event attributable to one
/// submitted paper — the trace id IS the sequence number (already
/// globally unique and causally ordered by the serialized applier).
enum class TraceEventId : uint16_t {
  kPaperSubmit = 1,    ///< instant: paper seq accepted at Submit (a0=seq).
  kPaperExtract = 2,   ///< span: enqueue wait, submit→window-extract (a0=seq, a1=ns).
  kPaperScatter = 3,   ///< span: speculative scatter-score (a0=seq, a1=ns).
  kPaperDefer = 4,     ///< instant: byline deferred by a conflicting
                       ///  in-flight paper (a0=seq, a1=blocking seq).
  kPaperRescore = 5,   ///< span: sequential rescore of deferred bylines
                       ///  (a0=seq, a1=ns).
  kPaperApply = 6,     ///< span: commit apply (a0=seq, a1=ns).
  kPaperPublish = 7,   ///< span: snapshot publish (a0=seq, a1=ns).
  kPaperCommit = 8,    ///< span: end-to-end submit→commit ("paper";
                       ///  a0=seq, a1=total ns). One per ingested paper.
  kWindowExtract = 9,  ///< instant: pipeline window extracted
                       ///  (a0=first seq, a1=window size).
  kShardScatter = 10,  ///< span: one shard's scoring slice (a0=shard, a1=ns).
  kRefresh = 11,       ///< span: shard snapshot refresh (a0=commit version,
                       ///  a1=ns).
  kRequest = 12,       ///< span: one API request (a0=op ordinal, a1=ns).
};

/// Stable display name (string literals only — safe to call from a
/// signal handler). Unknown ids map to "unknown".
const char* TraceEventName(TraceEventId id);

/// True for events whose a1 is a duration (Chrome "X"), false for
/// instants (Chrome "i").
bool TraceEventIsSpan(TraceEventId id);

/// One recorded event: 4 machine words in the ring.
struct TraceEvent {
  int64_t ns = 0;    ///< obs::NowNs() stamp (span events: stage END).
  uint16_t tid = 0;  ///< Recorder thread slot (dense small ints).
  uint16_t id = 0;   ///< TraceEventId.
  uint64_t a0 = 0;
  uint64_t a1 = 0;
};

// ---- Flight recorder --------------------------------------------------------

/// Always-on lock-free event journal. Each recording thread claims a
/// slot (max kMaxThreads) holding a private ring; only that thread
/// writes the ring, so writes need no synchronization beyond a release
/// bump of the head index that readers acquire. Instantiable for tests;
/// production code uses the process-wide Instance().
class FlightRecorder {
 public:
  static constexpr int kMaxThreads = 64;

  explicit FlightRecorder(int ring_capacity = 4096);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder. First call constructs it (with the
  /// capacity set via SetDefaultRingCapacity); the crash handler reads
  /// the raw pointer and never triggers construction.
  static FlightRecorder& Instance();

  /// Ring capacity (events per thread) used by the *next* ring claim in
  /// Instance() and by future FlightRecorder() default constructions.
  /// Call before serving starts (iuad serve does, from
  /// IuadConfig::trace_ring_capacity). Clamped to [64, 1<<20].
  static void SetDefaultRingCapacity(int capacity);

  /// Record one event on the calling thread's ring: thread-local slot
  /// lookup + four relaxed stores + one release index bump. Overwrites
  /// oldest when the ring is full. `stamp_ns` lets call sites reuse a
  /// clock read they already took for metrics.
  void RecordAt(int64_t stamp_ns, TraceEventId id, uint64_t a0 = 0,
                uint64_t a1 = 0);

  /// RecordAt with a fresh NowNs() stamp.
  void Record(TraceEventId id, uint64_t a0 = 0, uint64_t a1 = 0);

  /// Non-destructive snapshot of every ring, merged and sorted by ns.
  /// Events the writers overwrite during the copy are discarded (torn
  /// reads never surface); recording continues concurrently.
  std::vector<TraceEvent> Drain() const;

  /// Events rejected because all kMaxThreads slots were claimed.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Async-signal-safe dump of every ring to `fd` as text lines, using
  /// only write(2) and stack buffers. Called from the crash handler.
  void CrashDump(int fd) const;

 private:
  struct Ring {
    /// Next write index (monotonic; slot = head % capacity). Release-
    /// bumped after the event words are stored.
    std::atomic<uint64_t> head{0};
    /// capacity * 4 atomic words, release-published on claim so readers
    /// acquire-loading the pointer see constructed atomics. Null until
    /// a thread claims the slot.
    std::atomic<std::atomic<uint64_t>*> words{nullptr};
    int capacity = 0;
  };

  int ClaimSlot();
  int SlotForThisThread();

  const uint64_t recorder_id_;  ///< Unique per recorder instance, never
                                ///  reused — keys the thread-local slot
                                ///  cache safely across recorder
                                ///  lifetimes in tests.
  int default_capacity_;
  Ring rings_[kMaxThreads];
  std::atomic<int> claimed_slots_{0};
  std::atomic<int64_t> dropped_{0};
};

// ---- Chrome trace-event export ----------------------------------------------

/// One Chrome trace-event JSON entry (the "traceEvents" array element),
/// in canonical integer-microsecond form — also the wire form of the
/// `{"op":"trace"}` response payload, so it must round-trip exactly.
struct ChromeTraceEvent {
  std::string name;
  char ph = 'i';      ///< 'X' (complete, has dur) or 'i' (instant).
  int64_t ts_us = 0;  ///< Span events: start (ns - dur), µs.
  int64_t dur_us = 0; ///< 'X' only.
  int tid = 0;
  int64_t a0 = 0;
  int64_t a1 = 0;
};

/// Raw recorder events → Chrome events (sorted by ts_us, ties keep the
/// drain order, which is the ns order).
std::vector<ChromeTraceEvent> ChromeTraceEvents(
    const std::vector<TraceEvent>& raw);

/// Full Chrome trace JSON document: {"traceEvents":[...]} (compact, one
/// line, trailing newline) — loadable by Perfetto / chrome://tracing.
std::string ChromeTraceJson(const std::vector<ChromeTraceEvent>& events);

// ---- Slow-commit exemplars --------------------------------------------------

/// One retained slow-commit timeline: the paper's full span breakdown
/// plus which in-flight paper blocked each deferred byline.
struct SlowCommitExemplar {
  struct Stage {
    std::string name;
    int64_t ns = 0;
  };
  struct Deferral {
    std::string name;              ///< Byline author name.
    int64_t blocked_by_seq = -1;   ///< Seq of the conflicting paper.
  };
  int64_t seq = -1;
  int64_t total_ns = 0;
  std::vector<Stage> stages;
  std::vector<Deferral> deferrals;
};

/// Bounded top-K table of the slowest commits, ordered by total_ns
/// descending (ties: lower seq first). Offer/Snapshot take a mutex —
/// offers happen only on the already-slow path (a commit breached
/// slow_commit_ms), never on the per-paper fast path. Each Offer also
/// refreshes a preformatted global text rendering of the table that the
/// crash handler can write without taking any lock (best-effort: a
/// crash racing an Offer may write a torn rendering, which is
/// acceptable for a post-mortem artifact).
class ExemplarTable {
 public:
  explicit ExemplarTable(int capacity = 8);

  void Offer(SlowCommitExemplar exemplar);
  std::vector<SlowCommitExemplar> Snapshot() const;

  /// Async-signal-safe: writes the preformatted global exemplar text
  /// (whichever table rendered last) to `fd`.
  static void CrashDumpLast(int fd);

 private:
  void RenderCrashTextLocked();

  mutable std::mutex mu_;
  int capacity_;
  std::vector<SlowCommitExemplar> exemplars_;
};

// ---- Post-mortem dumps ------------------------------------------------------

/// Install a SIGSEGV/SIGABRT handler that writes the flight recorder
/// and the last exemplar table to `path` (async-signal-safe writes
/// only), restores the default handler, and re-raises. The path is
/// copied into static storage; call once, before serving starts.
void InstallCrashHandler(const std::string& path);

}  // namespace iuad::obs

#endif  // IUAD_OBS_TRACE_H_
