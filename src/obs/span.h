#ifndef IUAD_OBS_SPAN_H_
#define IUAD_OBS_SPAN_H_

/// \file span.h
/// Sequence-stamped lifecycle spans: a per-item list of (stage, duration)
/// pairs accumulated as the item moves through a path — the paper path
/// (enqueue → window-extract → scatter-score → defer/rescore → commit →
/// publish) or the request path (decode → dispatch → execute → encode).
/// Spans are plain single-threaded value objects built by the thread that
/// owns the item at each stage; they carry no atomics and are only
/// materialised when timing is enabled. Slow-commit reporting has moved to
/// the bounded exemplar table (obs/trace.h SlowCommitExemplar, surfaced by
/// GetStats) and per-stage timelines to the flight recorder, so Span is
/// now a freestanding building block for ad-hoc breakdowns and tests.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace iuad::obs {

class Span {
 public:
  Span() = default;
  explicit Span(int64_t seq) : seq_(seq) {}

  int64_t seq() const { return seq_; }
  void set_seq(int64_t seq) { seq_ = seq; }

  void Stage(const char* stage, int64_t ns) { stages_.push_back({stage, ns}); }
  bool empty() const { return stages_.empty(); }

  int64_t TotalNs() const {
    int64_t total = 0;
    for (const auto& s : stages_) total += s.ns;
    return total;
  }

  /// One-line human form, e.g. "seq=42 total=512.3ms enqueue=1.0ms
  /// scatter=12.4ms rescore=0.0ms apply=498.1ms publish=0.8ms".
  std::string Breakdown() const {
    std::string out = "seq=" + std::to_string(seq_);
    char buf[64];
    std::snprintf(buf, sizeof(buf), " total=%.3fms",
                  static_cast<double>(TotalNs()) / 1e6);
    out += buf;
    for (const auto& s : stages_) {
      std::snprintf(buf, sizeof(buf), " %s=%.3fms", s.stage,
                    static_cast<double>(s.ns) / 1e6);
      out += buf;
    }
    return out;
  }

 private:
  struct StageTiming {
    const char* stage;
    int64_t ns;
  };

  int64_t seq_ = -1;
  std::vector<StageTiming> stages_;
};

}  // namespace iuad::obs

#endif  // IUAD_OBS_SPAN_H_
