#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace iuad::obs {

namespace {

/// Precomputed upper boundaries, 10^(i/8) µs. Computed once at first use;
/// the recording path only ever binary-searches this immutable array.
const std::array<double, Histogram::kNumFiniteBounds>& Bounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kNumFiniteBounds> b{};
    for (int i = 0; i < Histogram::kNumFiniteBounds; ++i) {
      b[static_cast<size_t>(i)] = std::pow(10.0, i / 8.0);
    }
    return b;
  }();
  return bounds;
}

}  // namespace

double Histogram::BucketUpperBoundUs(int i) {
  return Bounds()[static_cast<size_t>(i)];
}

int Histogram::BucketIndexForUs(double micros) {
  if (!(micros > 0.0)) return 0;  // negatives and NaN clamp to the floor
  const auto& bounds = Bounds();
  return static_cast<int>(
      std::lower_bound(bounds.begin(), bounds.end(), micros) - bounds.begin());
}

void Histogram::RecordUs(double micros) {
  if (!(micros >= 0.0)) micros = 0.0;
  const int idx = BucketIndexForUs(micros);
  const int64_t ns = std::llround(micros * 1000.0);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  // Max ratchet: retry only while another thread raised it underneath us.
  int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::Snapshot(std::string name) const {
  HistogramSnapshot snap;
  snap.name = std::move(name);
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    snap.buckets.emplace_back(i, c);
    snap.count += c;  // derived from the buckets read, so always consistent
  }
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  std::vector<std::pair<int32_t, int64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

double HistogramSnapshot::PercentileUs(double p) const {
  if (count <= 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: the smallest rank covering fraction p of recordings.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 * count)));
  int64_t seen = 0;
  for (const auto& [idx, c] : buckets) {
    seen += c;
    if (seen >= rank) {
      if (idx >= Histogram::kNumFiniteBounds) return MaxUs();
      return std::min(Histogram::BucketUpperBoundUs(idx), MaxUs());
    }
  }
  return MaxUs();
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h->Snapshot(name));
  }
  return snap;
}

}  // namespace iuad::obs
