#ifndef IUAD_OBS_METRICS_H_
#define IUAD_OBS_METRICS_H_

/// \file metrics.h
/// Live metrics for the serving stack: relaxed-atomic counters and gauges
/// plus fixed-boundary log-bucketed latency histograms, collected in a
/// name-keyed Registry that every serve::Frontend owns (see
/// Frontend::Metrics()).
///
/// Concurrency contract. Counter/Gauge/Histogram recording is a handful of
/// relaxed atomic RMWs — wait-free, no locks, safe from any thread. The
/// one exception is the histogram max ratchet, a compare-exchange loop
/// that only retries when another thread has just raised the max
/// (lock-free; retries are bounded by the number of concurrent
/// increases). Registry lookups take a mutex but hand back stable
/// pointers: hot paths resolve their instruments once at construction and
/// never touch the registry again.
///
/// Determinism contract (DESIGN.md §7). Nothing here feeds back into
/// disambiguation: instruments are written, snapshotted, and exported,
/// never read on a decision path. Assignments are byte-identical with
/// metrics enabled or disabled; IuadConfig::metrics_enabled gates only
/// the clock reads at the recording call sites, not the registry itself,
/// so counters and the stats surface stay live even when timing is off.
///
/// Histogram shape. 64 buckets over microseconds with log-spaced upper
/// boundaries 10^(i/8) µs (8 buckets per decade, ~1 µs .. ~56 s; the last
/// bucket catches everything above). Snapshots carry raw bucket counts —
/// exact, mergeable by element-wise addition (associative and
/// commutative) — and derive `count` as the bucket sum, so a snapshot
/// taken mid-recording is still internally consistent. PercentileUs
/// returns the upper boundary of the nearest-rank bucket clamped to the
/// recorded max: an upper bound on the true percentile, tight to one
/// bucket width (a factor of 10^(1/8) ≈ 1.33).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace iuad::obs {

/// Monotonic nanoseconds for span stamps (steady_clock; no epoch meaning).
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonically increasing event count. Wait-free.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Instantaneous level (queue depth, open connections). Wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram, in raw mergeable form: sparse
/// (bucket index, count) pairs with exact int64 sums. This is also the
/// wire form of the GetMetrics payload (api/codec.cpp), so everything
/// here must round-trip exactly — percentiles are derived at display
/// time, never carried.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;    ///< Total recordings == sum of bucket counts.
  int64_t sum_ns = 0;   ///< Sum of recorded values, nanoseconds.
  int64_t max_ns = 0;   ///< Largest recorded value, nanoseconds.
  /// Non-empty buckets as (index, count), strictly increasing indices in
  /// [0, Histogram::kNumBuckets).
  std::vector<std::pair<int32_t, int64_t>> buckets;

  /// Element-wise accumulation (counts add, max takes the larger).
  void Merge(const HistogramSnapshot& other);

  /// Upper bound on the p-th percentile (p in [0,100]), microseconds:
  /// the nearest-rank bucket's upper boundary, clamped to the recorded
  /// max. 0 when empty.
  double PercentileUs(double p) const;

  double MaxUs() const { return static_cast<double>(max_ns) / 1000.0; }
  double MeanUs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / 1000.0 /
                                  static_cast<double>(count);
  }
};

/// Lock-free log-bucketed latency histogram. See file comment for the
/// bucket layout and the consistency guarantees of Snapshot().
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kNumFiniteBounds = kNumBuckets - 1;

  /// Upper boundary of bucket i in microseconds, 10^(i/8), for
  /// i < kNumFiniteBounds. The last bucket is unbounded.
  static double BucketUpperBoundUs(int i);

  /// Bucket index recording `micros` lands in (NaN/negative clamp to 0).
  static int BucketIndexForUs(double micros);

  void RecordUs(double micros);
  void RecordNs(int64_t ns) {
    RecordUs(static_cast<double>(ns) / 1000.0);
  }

  int64_t Count() const;
  HistogramSnapshot Snapshot(std::string name = "") const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

/// Full-registry snapshot, each section sorted by name (the registry maps
/// are ordered) — the canonical ordering the codec and the text
/// exposition both rely on.
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Name-keyed instrument owner. Get* creates on first use and returns a
/// pointer stable for the registry's lifetime; callers cache it and
/// record lock-free thereafter. Names should be lowercase snake_case
/// ([a-z0-9_]) so the Prometheus exposition can use them verbatim.
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace iuad::obs

#endif  // IUAD_OBS_METRICS_H_
