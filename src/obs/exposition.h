#ifndef IUAD_OBS_EXPOSITION_H_
#define IUAD_OBS_EXPOSITION_H_

/// \file exposition.h
/// Prometheus-style text exposition of a RegistrySnapshot, plus a minimal
/// HTTP/1.0 responder (`serve --metrics-port`) so standard scrapers can
/// pull it. The exposition is read-only and sits entirely off the serving
/// hot path: each scrape takes one registry snapshot and formats it.
///
/// Format. Every metric is prefixed `iuad_`; units are encoded in the
/// metric name (`*_us` histograms record microseconds). Counters and
/// gauges are single `# TYPE`-annotated lines. Histograms emit cumulative
/// `_bucket{le="<µs upper bound>"}` lines for each non-empty bucket plus
/// the mandatory `le="+Inf"` line, `_sum` / `_count` (µs / recordings),
/// and derived convenience gauges `_max` and `_p50/_p90/_p95/_p99` (µs).
/// Every scrape is suffixed with the process block (ProcessExposition):
/// `iuad_uptime_seconds`, `iuad_rss_mb`, and the constant
/// `iuad_build_info{version=...,compiler=...,sanitizer=...} 1` gauge.
///
/// Paths. `GET /trace` (and `/trace?...`) returns the flight recorder's
/// current contents as Chrome trace-event JSON (application/json); every
/// other path returns the text exposition.

#include <atomic>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace iuad::obs {

/// Renders the snapshot in the text format described above.
std::string TextExposition(const RegistrySnapshot& snapshot);

/// The process block appended to every scrape: uptime since the first
/// call of this function (anchored once, process-wide), resident set
/// size, and the constant `iuad_build_info` gauge carrying the version,
/// compiler, and sanitizer as labels.
std::string ProcessExposition();

/// Single-threaded HTTP responder: any GET returns the current registry
/// snapshot as text/plain. Scrapes are sequential — a metrics endpoint
/// serves one scraper, not traffic. Start/Shutdown mirror api::Server
/// (ephemeral port when `port` is 0, shutdown()-then-join teardown).
class MetricsServer {
 public:
  explicit MetricsServer(Registry* registry) : registry_(registry) {}
  ~MetricsServer() { Shutdown(); }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  iuad::Status Start(int port);
  /// Port actually bound (differs from Start's when that was 0).
  int bound_port() const { return bound_port_; }
  void Shutdown();

 private:
  void ServeLoop();

  Registry* registry_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread thread_;
};

}  // namespace iuad::obs

#endif  // IUAD_OBS_EXPOSITION_H_
