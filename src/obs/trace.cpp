#include "obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace iuad::obs {
namespace {

// ---- Process-wide tracing state ---------------------------------------------

/// Set by FlightRecorder::Instance(); the crash handler loads this raw
/// pointer instead of calling Instance() (a function-local static's
/// init guard is not async-signal-safe).
std::atomic<FlightRecorder*> g_instance{nullptr};

std::atomic<int> g_default_capacity{4096};

/// Unique-per-recorder ids (never reused), keying the thread-local slot
/// cache so a recorder destroyed and reconstructed at the same address
/// (tests) cannot alias a stale slot.
std::atomic<uint64_t> g_next_recorder_id{1};

/// Preformatted exemplar text for the crash handler: rendered under the
/// table mutex at Offer time (normal context, snprintf is fine there),
/// consumed with a bare write(2) in signal context. A crash racing an
/// Offer may dump a torn rendering — acceptable for a post-mortem.
char g_exemplar_text[16384];
std::atomic<size_t> g_exemplar_len{0};

char g_crash_path[512] = {0};

int ClampCapacity(int capacity) {
  if (capacity < 64) return 64;
  if (capacity > (1 << 20)) return 1 << 20;
  return capacity;
}

// ---- Async-signal-safe text building ----------------------------------------
// The crash path may not call snprintf/malloc; these append into a
// caller-owned stack buffer and the caller flushes with write(2).

size_t AppendLiteral(char* dst, size_t pos, size_t cap, const char* s) {
  while (*s != '\0' && pos < cap) dst[pos++] = *s++;
  return pos;
}

size_t AppendU64(char* dst, size_t pos, size_t cap, uint64_t v) {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < cap) dst[pos++] = digits[--n];
  return pos;
}

size_t AppendI64(char* dst, size_t pos, size_t cap, int64_t v) {
  if (v < 0) {
    if (pos < cap) dst[pos++] = '-';
    // Negate via uint64 to survive INT64_MIN.
    return AppendU64(dst, pos, cap, static_cast<uint64_t>(-(v + 1)) + 1);
  }
  return AppendU64(dst, pos, cap, static_cast<uint64_t>(v));
}

void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void WriteLiteral(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

// ---- Crash handler ----------------------------------------------------------

void CrashHandler(int sig) {
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    char buf[64];
    size_t pos = AppendLiteral(buf, 0, sizeof(buf), "iuad crash dump signal=");
    pos = AppendI64(buf, pos, sizeof(buf), sig);
    pos = AppendLiteral(buf, pos, sizeof(buf), "\n");
    WriteAll(fd, buf, pos);
    FlightRecorder* recorder = g_instance.load(std::memory_order_acquire);
    if (recorder != nullptr) recorder->CrashDump(fd);
    ExemplarTable::CrashDumpLast(fd);
    WriteLiteral(fd, "end of crash dump\n");
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition on entry; re-raising
  // leaves the signal pending so the default action (terminate/core)
  // fires when the handler returns.
  ::raise(sig);
}

}  // namespace

// ---- Event vocabulary -------------------------------------------------------

const char* TraceEventName(TraceEventId id) {
  switch (id) {
    case TraceEventId::kPaperSubmit: return "submit";
    case TraceEventId::kPaperExtract: return "enqueue";
    case TraceEventId::kPaperScatter: return "scatter";
    case TraceEventId::kPaperDefer: return "defer";
    case TraceEventId::kPaperRescore: return "rescore";
    case TraceEventId::kPaperApply: return "apply";
    case TraceEventId::kPaperPublish: return "publish";
    case TraceEventId::kPaperCommit: return "paper";
    case TraceEventId::kWindowExtract: return "window";
    case TraceEventId::kShardScatter: return "shard_scatter";
    case TraceEventId::kRefresh: return "refresh";
    case TraceEventId::kRequest: return "request";
  }
  return "unknown";
}

bool TraceEventIsSpan(TraceEventId id) {
  switch (id) {
    case TraceEventId::kPaperSubmit:
    case TraceEventId::kPaperDefer:
    case TraceEventId::kWindowExtract:
      return false;
    case TraceEventId::kPaperExtract:
    case TraceEventId::kPaperScatter:
    case TraceEventId::kPaperRescore:
    case TraceEventId::kPaperApply:
    case TraceEventId::kPaperPublish:
    case TraceEventId::kPaperCommit:
    case TraceEventId::kShardScatter:
    case TraceEventId::kRefresh:
    case TraceEventId::kRequest:
      return true;
  }
  return false;
}

// ---- FlightRecorder ---------------------------------------------------------

FlightRecorder::FlightRecorder(int ring_capacity)
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      default_capacity_(ClampCapacity(ring_capacity)) {}

FlightRecorder::~FlightRecorder() {
  for (Ring& ring : rings_) {
    delete[] ring.words.load(std::memory_order_acquire);
  }
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = [] {
    static FlightRecorder r(g_default_capacity.load(std::memory_order_relaxed));
    g_instance.store(&r, std::memory_order_release);
    return &r;
  }();
  return *recorder;
}

void FlightRecorder::SetDefaultRingCapacity(int capacity) {
  g_default_capacity.store(ClampCapacity(capacity),
                           std::memory_order_relaxed);
}

int FlightRecorder::ClaimSlot() {
  const int slot = claimed_slots_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxThreads) return -1;
  Ring& ring = rings_[slot];
  ring.capacity = default_capacity_;
  auto* words = new std::atomic<uint64_t>[static_cast<size_t>(ring.capacity) * 4]();
  ring.words.store(words, std::memory_order_release);
  return slot;
}

int FlightRecorder::SlotForThisThread() {
  // One-entry fast cache for the common single-recorder case, with a
  // map fallback keyed by the recorder's unique id so tests running
  // several recorders on one thread stay correct. The claim (and the
  // map's first insert) may allocate; recording after the claim never
  // does.
  struct Cached {
    uint64_t recorder_id = 0;
    int slot = -1;
  };
  thread_local Cached cached;
  if (cached.recorder_id == recorder_id_) return cached.slot;
  thread_local std::unordered_map<uint64_t, int> slots;
  auto it = slots.find(recorder_id_);
  if (it == slots.end()) {
    it = slots.emplace(recorder_id_, ClaimSlot()).first;
  }
  cached = {recorder_id_, it->second};
  return it->second;
}

void FlightRecorder::RecordAt(int64_t stamp_ns, TraceEventId id, uint64_t a0,
                              uint64_t a1) {
  const int slot = SlotForThisThread();
  if (slot < 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& ring = rings_[slot];
  std::atomic<uint64_t>* words = ring.words.load(std::memory_order_relaxed);
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w =
      words + (head % static_cast<uint64_t>(ring.capacity)) * 4;
  w[0].store(static_cast<uint64_t>(stamp_ns), std::memory_order_relaxed);
  w[1].store(static_cast<uint64_t>(slot) << 16 | static_cast<uint64_t>(id),
             std::memory_order_relaxed);
  w[2].store(a0, std::memory_order_relaxed);
  w[3].store(a1, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::Record(TraceEventId id, uint64_t a0, uint64_t a1) {
  RecordAt(NowNs(), id, a0, a1);
}

std::vector<TraceEvent> FlightRecorder::Drain() const {
  std::vector<TraceEvent> out;
  for (const Ring& ring : rings_) {
    const std::atomic<uint64_t>* words =
        ring.words.load(std::memory_order_acquire);
    if (words == nullptr) continue;
    const uint64_t cap = static_cast<uint64_t>(ring.capacity);
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    const uint64_t count = head < cap ? head : cap;
    const uint64_t first = head - count;
    std::vector<TraceEvent> events;
    std::vector<uint64_t> indices;
    events.reserve(count);
    indices.reserve(count);
    for (uint64_t i = first; i < head; ++i) {
      const std::atomic<uint64_t>* w = words + (i % cap) * 4;
      TraceEvent ev;
      ev.ns = static_cast<int64_t>(w[0].load(std::memory_order_relaxed));
      const uint64_t packed = w[1].load(std::memory_order_relaxed);
      ev.tid = static_cast<uint16_t>(packed >> 16);
      ev.id = static_cast<uint16_t>(packed & 0xffff);
      ev.a0 = w[2].load(std::memory_order_relaxed);
      ev.a1 = w[3].load(std::memory_order_relaxed);
      events.push_back(ev);
      indices.push_back(i);
    }
    // Torn-read guard: anything the writer may have overwritten while
    // we copied (index < head' - cap) is dropped, as is the slot the
    // writer may be mid-store on.
    const uint64_t head_after = ring.head.load(std::memory_order_acquire);
    const uint64_t min_valid = head_after > cap ? head_after - cap : 0;
    for (size_t i = 0; i < events.size(); ++i) {
      if (indices[i] >= min_valid && events[i].id != 0) {
        out.push_back(events[i]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ns < b.ns;
                   });
  return out;
}

void FlightRecorder::CrashDump(int fd) const {
  const int64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    char buf[64];
    size_t pos = AppendLiteral(buf, 0, sizeof(buf), "dropped=");
    pos = AppendI64(buf, pos, sizeof(buf), dropped);
    pos = AppendLiteral(buf, pos, sizeof(buf), "\n");
    WriteAll(fd, buf, pos);
  }
  for (const Ring& ring : rings_) {
    const std::atomic<uint64_t>* words =
        ring.words.load(std::memory_order_acquire);
    if (words == nullptr) continue;
    const uint64_t cap = static_cast<uint64_t>(ring.capacity);
    const uint64_t head = ring.head.load(std::memory_order_relaxed);
    const uint64_t count = head < cap ? head : cap;
    for (uint64_t i = head - count; i < head; ++i) {
      const std::atomic<uint64_t>* w = words + (i % cap) * 4;
      const uint64_t packed = w[1].load(std::memory_order_relaxed);
      const auto id = static_cast<TraceEventId>(packed & 0xffff);
      if (static_cast<uint16_t>(id) == 0) continue;
      char buf[192];
      size_t pos = AppendLiteral(buf, 0, sizeof(buf), "event ns=");
      pos = AppendI64(buf, pos, sizeof(buf),
                      static_cast<int64_t>(w[0].load(std::memory_order_relaxed)));
      pos = AppendLiteral(buf, pos, sizeof(buf), " tid=");
      pos = AppendU64(buf, pos, sizeof(buf), packed >> 16);
      pos = AppendLiteral(buf, pos, sizeof(buf), " id=");
      pos = AppendU64(buf, pos, sizeof(buf), packed & 0xffff);
      pos = AppendLiteral(buf, pos, sizeof(buf), " name=");
      pos = AppendLiteral(buf, pos, sizeof(buf), TraceEventName(id));
      pos = AppendLiteral(buf, pos, sizeof(buf), " a0=");
      pos = AppendU64(buf, pos, sizeof(buf),
                      w[2].load(std::memory_order_relaxed));
      pos = AppendLiteral(buf, pos, sizeof(buf), " a1=");
      pos = AppendU64(buf, pos, sizeof(buf),
                      w[3].load(std::memory_order_relaxed));
      pos = AppendLiteral(buf, pos, sizeof(buf), "\n");
      WriteAll(fd, buf, pos);
    }
  }
}

// ---- Chrome trace-event export ----------------------------------------------

std::vector<ChromeTraceEvent> ChromeTraceEvents(
    const std::vector<TraceEvent>& raw) {
  std::vector<ChromeTraceEvent> out;
  out.reserve(raw.size());
  for (const TraceEvent& ev : raw) {
    const auto id = static_cast<TraceEventId>(ev.id);
    ChromeTraceEvent c;
    c.name = TraceEventName(id);
    c.tid = ev.tid;
    c.a0 = static_cast<int64_t>(ev.a0);
    c.a1 = static_cast<int64_t>(ev.a1);
    if (TraceEventIsSpan(id)) {
      c.ph = 'X';
      c.dur_us = static_cast<int64_t>(ev.a1) / 1000;
      c.ts_us = (ev.ns - static_cast<int64_t>(ev.a1)) / 1000;
    } else {
      c.ph = 'i';
      c.ts_us = ev.ns / 1000;
    }
    out.push_back(std::move(c));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ChromeTraceEvent& a, const ChromeTraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::string ChromeTraceJson(const std::vector<ChromeTraceEvent>& events) {
  util::JsonWriter w(util::JsonWriter::Style::kCompact);
  w.BeginArray("traceEvents");
  for (const ChromeTraceEvent& ev : events) {
    w.BeginObjectElement()
        .Field("name", ev.name)
        .Field("ph", std::string(1, ev.ph))
        .Field("ts", ev.ts_us);
    if (ev.ph == 'X') w.Field("dur", ev.dur_us);
    w.Field("pid", 1)
        .Field("tid", ev.tid)
        .BeginObject("args")
        .Field("a0", ev.a0)
        .Field("a1", ev.a1)
        .EndObject()
        .EndObject();
  }
  w.EndArray();
  return w.str() + "\n";
}

// ---- ExemplarTable ----------------------------------------------------------

ExemplarTable::ExemplarTable(int capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

void ExemplarTable::Offer(SlowCommitExemplar exemplar) {
  std::lock_guard<std::mutex> lock(mu_);
  exemplars_.push_back(std::move(exemplar));
  std::stable_sort(exemplars_.begin(), exemplars_.end(),
                   [](const SlowCommitExemplar& a, const SlowCommitExemplar& b) {
                     if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
                     return a.seq < b.seq;
                   });
  if (exemplars_.size() > static_cast<size_t>(capacity_)) {
    exemplars_.resize(static_cast<size_t>(capacity_));
  }
  RenderCrashTextLocked();
}

std::vector<SlowCommitExemplar> ExemplarTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exemplars_;
}

void ExemplarTable::RenderCrashTextLocked() {
  // Normal (non-signal) context: snprintf is fine here. The handler
  // only write(2)s the finished buffer.
  size_t pos = 0;
  const size_t cap = sizeof(g_exemplar_text);
  auto append = [&](const char* fmt, auto... args) {
    if (pos >= cap) return;
    const int n = std::snprintf(g_exemplar_text + pos, cap - pos, fmt, args...);
    if (n > 0) pos = std::min(cap - 1, pos + static_cast<size_t>(n));
  };
  append("slow-commit exemplars (%zu):\n", exemplars_.size());
  for (const SlowCommitExemplar& e : exemplars_) {
    append("exemplar seq=%lld total_ns=%lld", static_cast<long long>(e.seq),
           static_cast<long long>(e.total_ns));
    for (const auto& s : e.stages) {
      append(" %s=%lldns", s.name.c_str(), static_cast<long long>(s.ns));
    }
    for (const auto& d : e.deferrals) {
      append(" deferred:%s<-seq=%lld", d.name.c_str(),
             static_cast<long long>(d.blocked_by_seq));
    }
    append("\n");
  }
  g_exemplar_len.store(pos, std::memory_order_release);
}

void ExemplarTable::CrashDumpLast(int fd) {
  const size_t len = g_exemplar_len.load(std::memory_order_acquire);
  if (len > 0) WriteAll(fd, g_exemplar_text, len);
}

// ---- InstallCrashHandler ----------------------------------------------------

void InstallCrashHandler(const std::string& path) {
  const size_t n = std::min(path.size(), sizeof(g_crash_path) - 1);
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace iuad::obs
