#include "obs/exposition.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.h"
#include "util/build_info.h"
#include "util/memory.h"

namespace iuad::obs {

namespace {

/// Uptime anchor, taken at static initialization (process start for all
/// practical purposes).
const int64_t g_process_start_ns = NowNs();

void AppendLine(std::string* out, const std::string& name,
                const char* suffix, const std::string& value) {
  out->append("iuad_");
  out->append(name);
  out->append(suffix);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

std::string FmtInt(int64_t v) { return std::to_string(v); }

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendType(std::string* out, const std::string& name, const char* type) {
  out->append("# TYPE iuad_");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendHistogram(std::string* out, const HistogramSnapshot& h) {
  AppendType(out, h.name, "histogram");
  int64_t cumulative = 0;
  for (const auto& [idx, c] : h.buckets) {
    cumulative += c;
    const std::string le =
        idx < Histogram::kNumFiniteBounds
            ? FmtDouble(Histogram::BucketUpperBoundUs(idx))
            : std::string("+Inf");
    if (le == "+Inf") continue;  // the overflow folds into the +Inf line
    out->append("iuad_");
    out->append(h.name);
    out->append("_bucket{le=\"");
    out->append(le);
    out->append("\"} ");
    out->append(FmtInt(cumulative));
    out->push_back('\n');
  }
  out->append("iuad_");
  out->append(h.name);
  out->append("_bucket{le=\"+Inf\"} ");
  out->append(FmtInt(h.count));
  out->push_back('\n');
  AppendLine(out, h.name, "_sum",
             FmtDouble(static_cast<double>(h.sum_ns) / 1000.0));
  AppendLine(out, h.name, "_count", FmtInt(h.count));
  AppendLine(out, h.name, "_max", FmtDouble(h.MaxUs()));
  AppendLine(out, h.name, "_p50", FmtDouble(h.PercentileUs(50)));
  AppendLine(out, h.name, "_p90", FmtDouble(h.PercentileUs(90)));
  AppendLine(out, h.name, "_p95", FmtDouble(h.PercentileUs(95)));
  AppendLine(out, h.name, "_p99", FmtDouble(h.PercentileUs(99)));
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string TextExposition(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    AppendType(&out, c.name, "counter");
    AppendLine(&out, c.name, "", FmtInt(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    AppendType(&out, g.name, "gauge");
    AppendLine(&out, g.name, "", FmtInt(g.value));
  }
  for (const auto& h : snapshot.histograms) AppendHistogram(&out, h);
  out.append(ProcessExposition());
  return out;
}

std::string ProcessExposition() {
  std::string out;
  AppendType(&out, "uptime_seconds", "gauge");
  AppendLine(&out, "uptime_seconds", "",
             FmtDouble(static_cast<double>(NowNs() - g_process_start_ns) /
                       1e9));
  AppendType(&out, "rss_mb", "gauge");
  AppendLine(&out, "rss_mb", "", FmtDouble(util::CurrentRssMb()));
  AppendType(&out, "build_info", "gauge");
  out.append("iuad_build_info{version=\"");
  out.append(util::BuildVersion());
  out.append("\",compiler=\"");
  out.append(util::BuildCompiler());
  out.append("\",sanitizer=\"");
  out.append(util::BuildSanitizer());
  out.append("\"} 1\n");
  return out;
}

iuad::Status MetricsServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return iuad::Status::IoError(std::string("metrics socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return iuad::Status::IoError("metrics bind port " + std::to_string(port) +
                                 ": " + err);
  }
  if (::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return iuad::Status::IoError("metrics listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread([this] { ServeLoop(); });
  return iuad::Status::OK();
}

void MetricsServer::ServeLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Shutdown) or fatal
    }
    // One recv of the GET line is all a scraper needs to send; the path
    // selects between the two read-only surfaces.
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    const std::string head(buf, n > 0 ? static_cast<size_t>(n) : 0);
    std::string body;
    const char* content_type = "text/plain; version=0.0.4";
    if (head.rfind("GET /trace", 0) == 0) {
      body = ChromeTraceJson(ChromeTraceEvents(
          FlightRecorder::Instance().Drain()));
      content_type = "application/json";
    } else {
      body = TextExposition(registry_->Snapshot());
    }
    std::string resp = "HTTP/1.0 200 OK\r\nContent-Type: " +
                       std::string(content_type) + "\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    SendAll(fd, resp);
    ::close(fd);
  }
}

void MetricsServer::Shutdown() {
  // Same teardown order as api::Server: shutdown() unblocks the accept,
  // close() waits for the join so the fd can't be reused under the loop.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace iuad::obs
