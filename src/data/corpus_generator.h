#ifndef IUAD_DATA_CORPUS_GENERATOR_H_
#define IUAD_DATA_CORPUS_GENERATOR_H_

/// \file corpus_generator.h
/// Synthetic bibliographic corpus with planted ground truth — the stand-in
/// for the paper's 641k-paper DBLP snapshot (see DESIGN.md §2).
///
/// The generator is built so that the *statistical laws the method relies
/// on* hold by construction:
///  - papers-per-name follows a power law (Fig. 3a): author productivity is
///    Zipf-distributed and author names are drawn from Zipf-weighted
///    given/surname pools, so popular names aggregate many productive
///    authors;
///  - co-author pair frequency follows a power law (Fig. 3b): collaborators
///    are chosen by preferential attachment (a repeat collaborator is chosen
///    proportionally to past joint papers), reproducing the "stable
///    collaborative relation" phenomenon of Sec. IV-A;
///  - research communities exist: authors belong to communities with their
///    own topic vocabulary and venue pool, giving signal to the interest
///    (γ3, γ4) and community (γ5, γ6) similarity functions;
///  - interests drift over a career (early/late keyword subsets), which is
///    what the time-consistency feature γ4 measures.

#include <string>
#include <unordered_map>
#include <vector>

#include "data/paper_database.h"
#include "util/rng.h"

namespace iuad::data {

/// Knobs for the synthetic corpus. Defaults produce a laptop-scale corpus
/// (~1.2k authors, 20k papers) in well under a second.
struct CorpusConfig {
  int num_communities = 20;       ///< Research communities (topics).
  int authors_per_community = 60; ///< Authors planted per community.
  int num_papers = 20000;         ///< Papers to generate.

  /// Name ambiguity. Names are "<Given> <Surname>" with both parts drawn
  /// Zipf(name_zipf) from pools of the given sizes; smaller pools / larger
  /// exponent => more homonyms (more authors sharing one name). Defaults
  /// are calibrated so author-paper density and authors-per-shared-name
  /// match the DBLP regime (~8-15 papers/author; popular names shared by
  /// up to ~a dozen authors, like the paper's Table II test names).
  int given_name_pool = 200;
  int surname_pool = 160;
  double name_zipf = 0.7;

  /// Collaboration structure. The repeat probability controls how much of
  /// the corpus is covered by η-stable relations: at 0.55 roughly half of
  /// an author's papers involve a repeated pair, leaving the long tail of
  /// one-off collaborations that stage 2 must recover (the Table IV shape).
  double repeat_collaborator_prob = 0.55;  ///< Preferential re-collaboration.
  double cross_community_rate = 0.06;     ///< New collaborator from elsewhere.
  double coauthors_mean = 2.1;            ///< Poisson mean of extra authors.
  int max_authors_per_paper = 8;

  /// Productivity: papers-per-author ~ Zipf(productivity_zipf). Kept mild so
  /// a shared name is not trivially dominated by one prolific author.
  double productivity_zipf = 1.15;

  /// Time axis.
  int min_year = 1995;
  int max_year = 2020;
  int min_career_len = 4;
  int max_career_len = 22;

  /// Text model.
  int topic_words = 60;        ///< Topic-specific vocabulary per community.
  int common_words = 400;      ///< Shared general vocabulary.
  int interests_per_author = 14;  ///< Author's personal keyword subset.
  double title_topic_frac = 0.55; ///< Title words drawn from author interest.
  double title_community_frac = 0.20; ///< ... from the community topic pool.
  int title_len_mean = 6;

  /// Venues.
  int venues_per_community = 5;
  int global_venues = 8;
  double global_venue_rate = 0.12;  ///< Papers published outside the community.

  uint64_t seed = 7;
};

/// Ground-truth profile of one planted author.
struct AuthorProfile {
  AuthorId id = kUnknownAuthor;
  std::string name;
  int community = 0;
  int career_start = 0;
  int career_end = 0;
  int num_papers = 0;  ///< Papers actually generated for this author.
};

/// A generated corpus: the database plus its planted truth.
struct Corpus {
  PaperDatabase db;
  std::vector<AuthorProfile> authors;

  /// Names borne by at least `min_authors` *published* authors — the
  /// evaluation name set (the paper's testing dataset keeps names with
  /// multiple real authors).
  std::vector<std::string> AmbiguousNames(int min_authors = 2) const;

  /// The paper's evaluation protocol (Table II): ambiguous names of
  /// *moderate* size — at least `min_authors` authors and at most
  /// `max_papers` papers. The largest homonym head (the "Wei Wang" of the
  /// corpus) is excluded exactly as the paper's 50-name testing dataset
  /// excludes it; pair counts grow quadratically in name size, so one mega
  /// name would otherwise dominate every micro metric.
  std::vector<std::string> TestNames(int min_authors = 2,
                                     int max_papers = 120) const;

  /// Map: true author id -> ids of papers where `name` appears and belongs
  /// to that author. The reference clustering for evaluation.
  std::unordered_map<AuthorId, std::vector<int>> TrueClustersOfName(
      const std::string& name) const;
};

/// Deterministic synthetic corpus generator.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config);

  /// Generates the full corpus. Repeated calls with the same config yield
  /// identical corpora.
  Corpus Generate();

 private:
  /// Builds a pronounceable synthetic word, unique across the corpus vocab.
  std::string MakeWord(iuad::Rng* rng, int min_syllables, int max_syllables);
  std::string MakeName(iuad::Rng* rng, const iuad::ZipfSampler& given_z,
                       const iuad::ZipfSampler& sur_z,
                       const std::vector<std::string>& givens,
                       const std::vector<std::string>& surnames);

  CorpusConfig config_;
  std::unordered_map<std::string, bool> used_words_;
};

}  // namespace iuad::data

#endif  // IUAD_DATA_CORPUS_GENERATOR_H_
