#include "data/paper_database.h"

#include <algorithm>
#include <numeric>

#include "text/tokenizer.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace iuad::data {

namespace {
const std::vector<int> kNoPapers;

/// FNV-1a accumulator. Strings are hashed with their length so record
/// boundaries cannot alias ("ab" + "c" vs "a" + "bc").
struct Fnv1a {
  uint64_t h = 1469598103934665603ULL;
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(uint64_t x) { Bytes(&x, sizeof(x)); }
  void I32(int32_t x) { U64(static_cast<uint64_t>(static_cast<uint32_t>(x))); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};
}  // namespace

uint64_t PaperDatabase::Fingerprint() const {
  Fnv1a f;
  f.U64(static_cast<uint64_t>(papers_.size()));
  for (const Paper& p : papers_) {
    f.I32(p.id);
    f.I32(p.year);
    f.Str(p.venue);
    f.Str(p.title);
    f.U64(p.author_names.size());
    for (const auto& name : p.author_names) f.Str(name);
    f.U64(p.true_author_ids.size());
    for (AuthorId a : p.true_author_ids) f.I32(a);
  }
  return f.h;
}

int PaperDatabase::AddPaper(Paper paper) {
  const int id = static_cast<int>(papers_.size());
  paper.id = id;
  // Index bylines.
  for (const auto& name : paper.author_names) {
    auto [it, inserted] = name_to_papers_.try_emplace(name);
    if (inserted) names_.push_back(name);
    // A name can legitimately appear once per paper; guard against duplicate
    // byline entries producing duplicate index entries.
    if (it->second.empty() || it->second.back() != id) it->second.push_back(id);
  }
  author_paper_pairs_ += static_cast<int64_t>(paper.author_names.size());
  ++venue_freq_[paper.venue];
  max_year_ = std::max(max_year_, paper.year);
  // Extract and index title keywords.
  auto kws = text::ExtractKeywords(paper.title);
  for (const auto& w : kws) ++keyword_freq_[w];
  keywords_.push_back(std::move(kws));
  papers_.push_back(std::move(paper));
  return id;
}

const std::vector<int>& PaperDatabase::PapersWithName(
    const std::string& name) const {
  auto it = name_to_papers_.find(name);
  return it == name_to_papers_.end() ? kNoPapers : it->second;
}

int64_t PaperDatabase::VenueFrequency(const std::string& venue) const {
  auto it = venue_freq_.find(venue);
  return it == venue_freq_.end() ? 0 : it->second;
}

int64_t PaperDatabase::KeywordFrequency(const std::string& word) const {
  auto it = keyword_freq_.find(word);
  return it == keyword_freq_.end() ? 0 : it->second;
}

const std::vector<std::string>& PaperDatabase::KeywordsOf(int paper_id) const {
  return keywords_[static_cast<size_t>(paper_id)];
}

PaperDatabase PaperDatabase::PrefixByYearFraction(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<int> order(papers_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return papers_[static_cast<size_t>(a)].year <
           papers_[static_cast<size_t>(b)].year;
  });
  const size_t keep = static_cast<size_t>(
      fraction * static_cast<double>(order.size()) + 0.5);
  order.resize(std::min(order.size(), keep));
  // Preserve original relative id order so ids stay stable-ish.
  std::sort(order.begin(), order.end());
  PaperDatabase out;
  for (int id : order) out.AddPaper(papers_[static_cast<size_t>(id)]);
  return out;
}

std::pair<PaperDatabase, std::vector<Paper>> PaperDatabase::HoldOutLatest(
    int holdout) const {
  std::vector<int> order(papers_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return papers_[static_cast<size_t>(a)].year <
           papers_[static_cast<size_t>(b)].year;
  });
  const size_t h = std::min(order.size(), static_cast<size_t>(std::max(0, holdout)));
  const size_t split = order.size() - h;
  std::vector<int> history(order.begin(), order.begin() + static_cast<long>(split));
  std::vector<int> stream(order.begin() + static_cast<long>(split), order.end());
  std::sort(history.begin(), history.end());
  PaperDatabase hist_db;
  for (int id : history) hist_db.AddPaper(papers_[static_cast<size_t>(id)]);
  std::vector<Paper> stream_papers;
  stream_papers.reserve(stream.size());
  for (int id : stream) stream_papers.push_back(papers_[static_cast<size_t>(id)]);
  return {std::move(hist_db), std::move(stream_papers)};
}

iuad::Status PaperDatabase::SaveTsv(const std::string& path) const {
  std::vector<TsvRow> rows;
  rows.reserve(papers_.size());
  for (const auto& p : papers_) {
    TsvRow row;
    row.push_back(std::to_string(p.id));
    row.push_back(std::to_string(p.year));
    row.push_back(p.venue);
    row.push_back(p.title);
    row.push_back(Join(p.author_names, "|"));
    if (p.true_author_ids.empty()) {
      row.push_back("?");
    } else {
      std::vector<std::string> gts;
      gts.reserve(p.true_author_ids.size());
      for (AuthorId a : p.true_author_ids) gts.push_back(std::to_string(a));
      row.push_back(Join(gts, "|"));
    }
    rows.push_back(std::move(row));
  }
  return WriteTsvFile(path, rows);
}

iuad::Result<PaperDatabase> PaperDatabase::LoadTsv(const std::string& path) {
  auto rows = ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  PaperDatabase db;
  for (const auto& row : *rows) {
    if (row.size() < 5) {
      return iuad::Status::InvalidArgument(
          "paper TSV row needs >= 5 fields, got " +
          std::to_string(row.size()));
    }
    Paper p;
    p.year = std::atoi(row[1].c_str());
    p.venue = row[2];
    p.title = row[3];
    for (auto& name : Split(row[4], '|')) {
      if (!name.empty()) p.author_names.push_back(std::move(name));
    }
    if (row.size() >= 6 && row[5] != "?") {
      for (const auto& gt : Split(row[5], '|')) {
        p.true_author_ids.push_back(std::atoi(gt.c_str()));
      }
      if (p.true_author_ids.size() != p.author_names.size()) {
        return iuad::Status::InvalidArgument(
            "ground-truth column length mismatch for paper: " + p.title);
      }
    }
    if (p.author_names.empty()) {
      return iuad::Status::InvalidArgument("paper with empty byline: " +
                                           p.title);
    }
    db.AddPaper(std::move(p));
  }
  return db;
}

}  // namespace iuad::data
