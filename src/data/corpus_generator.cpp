#include "data/corpus_generator.h"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <set>
#include <unordered_set>

#include "util/logging.h"

namespace iuad::data {

namespace {

/// Syllable inventory for pronounceable synthetic words. Chosen so that no
/// generated word collides with the stop-word list (all generated words are
/// >= 4 characters and synthetic).
const char* const kOnsets[] = {"b",  "br", "ch", "d",  "dr", "f",  "g",
                               "gr", "h",  "j",  "k",  "kl", "l",  "m",
                               "n",  "p",  "pr", "qu", "r",  "s",  "sh",
                               "st", "t",  "tr", "v",  "w",  "x",  "z"};
const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"};
const char* const kCodas[] = {"",  "n", "m", "l", "r", "s", "x",
                              "th", "nd", "rk", "st", "ng"};

std::string MakeSyllable(iuad::Rng* rng) {
  std::string s;
  s += kOnsets[rng->NextBounded(sizeof(kOnsets) / sizeof(kOnsets[0]))];
  s += kNuclei[rng->NextBounded(sizeof(kNuclei) / sizeof(kNuclei[0]))];
  s += kCodas[rng->NextBounded(sizeof(kCodas) / sizeof(kCodas[0]))];
  return s;
}

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  return s;
}

}  // namespace

CorpusGenerator::CorpusGenerator(CorpusConfig config) : config_(config) {}

std::string CorpusGenerator::MakeWord(iuad::Rng* rng, int min_syllables,
                                      int max_syllables) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    int n = static_cast<int>(
        rng->UniformInt(min_syllables, max_syllables));
    std::string w;
    for (int i = 0; i < n; ++i) w += MakeSyllable(rng);
    if (w.size() < 4) continue;
    if (!used_words_.try_emplace(w, true).second) continue;
    return w;
  }
  IUAD_CHECK(false) << "word pool exhausted; enlarge syllable inventory";
  return {};
}

std::string CorpusGenerator::MakeName(
    iuad::Rng* rng, const iuad::ZipfSampler& given_z,
    const iuad::ZipfSampler& sur_z, const std::vector<std::string>& givens,
    const std::vector<std::string>& surnames) {
  const auto& g = givens[static_cast<size_t>(given_z.Sample(rng))];
  const auto& s = surnames[static_cast<size_t>(sur_z.Sample(rng))];
  return g + " " + s;
}

Corpus CorpusGenerator::Generate() {
  iuad::Rng rng(config_.seed);
  Corpus corpus;

  // --- Vocabulary pools ------------------------------------------------
  std::vector<std::string> common_vocab;
  common_vocab.reserve(static_cast<size_t>(config_.common_words));
  for (int i = 0; i < config_.common_words; ++i) {
    common_vocab.push_back(MakeWord(&rng, 2, 3));
  }
  std::vector<std::vector<std::string>> topic_vocab(
      static_cast<size_t>(config_.num_communities));
  for (auto& topic : topic_vocab) {
    topic.reserve(static_cast<size_t>(config_.topic_words));
    for (int i = 0; i < config_.topic_words; ++i) {
      topic.push_back(MakeWord(&rng, 2, 4));
    }
  }

  // --- Venue pools ------------------------------------------------------
  std::vector<std::vector<std::string>> community_venues(
      static_cast<size_t>(config_.num_communities));
  for (int c = 0; c < config_.num_communities; ++c) {
    for (int v = 0; v < config_.venues_per_community; ++v) {
      community_venues[static_cast<size_t>(c)].push_back(
          Capitalize(MakeWord(&rng, 2, 3)) + " Symposium");
    }
  }
  std::vector<std::string> global_venues;
  for (int v = 0; v < config_.global_venues; ++v) {
    global_venues.push_back(Capitalize(MakeWord(&rng, 2, 3)) + " Journal");
  }

  // --- Name pools ---------------------------------------------------------
  std::vector<std::string> givens, surnames;
  for (int i = 0; i < config_.given_name_pool; ++i) {
    givens.push_back(Capitalize(MakeWord(&rng, 1, 2)));
  }
  for (int i = 0; i < config_.surname_pool; ++i) {
    surnames.push_back(Capitalize(MakeWord(&rng, 1, 2)));
  }
  iuad::ZipfSampler given_z(config_.given_name_pool, config_.name_zipf);
  iuad::ZipfSampler sur_z(config_.surname_pool, config_.name_zipf);

  // --- Authors --------------------------------------------------------
  const int num_authors = config_.num_communities * config_.authors_per_community;
  corpus.authors.reserve(static_cast<size_t>(num_authors));
  // Per-author interests: indices into the community topic vocabulary, split
  // into an early-career half and a late-career half to create drift.
  std::vector<std::vector<int>> interests_early(static_cast<size_t>(num_authors));
  std::vector<std::vector<int>> interests_late(static_cast<size_t>(num_authors));
  // Per-author permutation of community venues: element 0 is the author's
  // representative venue (most frequent; the γ5 signal).
  std::vector<std::vector<int>> venue_pref(static_cast<size_t>(num_authors));
  // Names are unique *within* a community: two homonymous authors in the
  // same tight research community are vanishingly rare in DBLP (and are the
  // regime the paper's Sec. IV-A independence argument assumes away), so a
  // collision inside a community is resampled.
  std::vector<std::unordered_set<std::string>> community_names(
      static_cast<size_t>(config_.num_communities));
  for (int a = 0; a < num_authors; ++a) {
    AuthorProfile prof;
    prof.id = a;
    prof.community = a / config_.authors_per_community;
    auto& taken = community_names[static_cast<size_t>(prof.community)];
    for (int attempt = 0; attempt < 64; ++attempt) {
      prof.name = MakeName(&rng, given_z, sur_z, givens, surnames);
      if (!taken.count(prof.name)) break;
    }
    taken.insert(prof.name);
    prof.career_start = static_cast<int>(
        rng.UniformInt(config_.min_year,
                       std::max(config_.min_year, config_.max_year -
                                                      config_.min_career_len)));
    const int len = static_cast<int>(
        rng.UniformInt(config_.min_career_len, config_.max_career_len));
    prof.career_end = std::min(config_.max_year, prof.career_start + len);
    // Interests: distinct picks from the community topic pool.
    std::vector<int> picks(static_cast<size_t>(config_.topic_words));
    std::iota(picks.begin(), picks.end(), 0);
    rng.Shuffle(&picks);
    const int k = std::min(config_.interests_per_author, config_.topic_words);
    auto& early = interests_early[static_cast<size_t>(a)];
    auto& late = interests_late[static_cast<size_t>(a)];
    for (int i = 0; i < k; ++i) {
      // Overlap the halves slightly: an author's field is stable even as
      // their problems drift (the premise of γ4).
      if (i < k / 2 + 2) early.push_back(picks[static_cast<size_t>(i)]);
      if (i >= k / 2 - 2) late.push_back(picks[static_cast<size_t>(i)]);
    }
    auto& vp = venue_pref[static_cast<size_t>(a)];
    vp.resize(static_cast<size_t>(config_.venues_per_community));
    std::iota(vp.begin(), vp.end(), 0);
    rng.Shuffle(&vp);
    corpus.authors.push_back(std::move(prof));
  }

  // Productivity ranks: a random permutation feeds the Zipf sampler so the
  // most productive author is a random author, not author 0.
  std::vector<int> rank_to_author(static_cast<size_t>(num_authors));
  std::iota(rank_to_author.begin(), rank_to_author.end(), 0);
  rng.Shuffle(&rank_to_author);
  iuad::ZipfSampler productivity(num_authors, config_.productivity_zipf);
  iuad::ZipfSampler venue_pick(config_.venues_per_community, 1.4);
  iuad::ZipfSampler global_venue_pick(config_.global_venues, 1.2);
  iuad::ZipfSampler common_word_pick(config_.common_words, 1.1);

  // Collaboration state: per author, accumulated co-publication counts.
  std::vector<std::unordered_map<int, int>> collab(
      static_cast<size_t>(num_authors));

  // --- Papers -----------------------------------------------------------
  for (int pidx = 0; pidx < config_.num_papers; ++pidx) {
    const int lead =
        rank_to_author[static_cast<size_t>(productivity.Sample(&rng))];
    const AuthorProfile& lead_prof = corpus.authors[static_cast<size_t>(lead)];

    // Byline assembly. No two byline authors may share a *name*: a real
    // byline lists distinct strings, and ground-truth attribution of a name
    // occurrence must be unambiguous.
    std::vector<int> byline{lead};
    std::unordered_set<std::string> byline_names{lead_prof.name};
    int extra = rng.Poisson(config_.coauthors_mean);
    extra = std::min(extra, config_.max_authors_per_paper - 1);
    for (int slot = 0; slot < extra; ++slot) {
      int candidate = -1;
      const auto& partners = collab[static_cast<size_t>(lead)];
      if (!partners.empty() &&
          rng.Bernoulli(config_.repeat_collaborator_prob)) {
        // Preferential attachment: weight by past joint papers.
        int total = 0;
        for (const auto& [other, cnt] : partners) total += cnt;
        int64_t u = rng.UniformInt(1, total);
        for (const auto& [other, cnt] : partners) {
          u -= cnt;
          if (u <= 0) {
            candidate = other;
            break;
          }
        }
      } else if (rng.Bernoulli(config_.cross_community_rate)) {
        candidate = static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(num_authors)));
      } else {
        // New collaborator inside the lead's community, biased toward
        // productive authors (hub formation).
        const int base = lead_prof.community * config_.authors_per_community;
        // Rejection-sample a community member via the productivity ranks.
        for (int tries = 0; tries < 32; ++tries) {
          int a = rank_to_author[static_cast<size_t>(productivity.Sample(&rng))];
          if (a / config_.authors_per_community == lead_prof.community) {
            candidate = a;
            break;
          }
        }
        if (candidate < 0) {
          candidate = base + static_cast<int>(rng.NextBounded(
                                 static_cast<uint64_t>(
                                     config_.authors_per_community)));
        }
      }
      if (candidate < 0 || candidate == lead) continue;
      const auto& cand_name = corpus.authors[static_cast<size_t>(candidate)].name;
      if (byline_names.count(cand_name)) continue;
      if (std::find(byline.begin(), byline.end(), candidate) != byline.end()) {
        continue;
      }
      byline.push_back(candidate);
      byline_names.insert(cand_name);
    }

    // Update preferential-attachment state for every pair in the byline.
    for (size_t i = 0; i < byline.size(); ++i) {
      for (size_t j = i + 1; j < byline.size(); ++j) {
        ++collab[static_cast<size_t>(byline[i])][byline[j]];
        ++collab[static_cast<size_t>(byline[j])][byline[i]];
      }
    }

    // Year within the lead's career.
    const int year = static_cast<int>(
        rng.UniformInt(lead_prof.career_start, lead_prof.career_end));
    const double career_pos =
        lead_prof.career_end > lead_prof.career_start
            ? static_cast<double>(year - lead_prof.career_start) /
                  (lead_prof.career_end - lead_prof.career_start)
            : 0.5;

    // Venue: lead's community venue by personal preference rank, or a
    // global venue.
    std::string venue;
    if (rng.Bernoulli(config_.global_venue_rate)) {
      venue = global_venues[static_cast<size_t>(global_venue_pick.Sample(&rng))];
    } else {
      const auto& vp = venue_pref[static_cast<size_t>(lead)];
      venue = community_venues[static_cast<size_t>(lead_prof.community)]
                              [static_cast<size_t>(
                                  vp[static_cast<size_t>(venue_pick.Sample(&rng))])];
    }

    // Title: interest words (drifting early->late), community topic words,
    // and common filler.
    const auto& topic = topic_vocab[static_cast<size_t>(lead_prof.community)];
    const auto& early = interests_early[static_cast<size_t>(lead)];
    const auto& late = interests_late[static_cast<size_t>(lead)];
    int title_len = std::max(3, rng.Poisson(config_.title_len_mean));
    std::vector<std::string> words;
    words.reserve(static_cast<size_t>(title_len));
    for (int w = 0; w < title_len; ++w) {
      const double u = rng.UniformDouble();
      if (u < config_.title_topic_frac) {
        // Personal interest, early or late subset by career position.
        const auto& pool = rng.Bernoulli(career_pos) ? late : early;
        words.push_back(
            topic[static_cast<size_t>(pool[rng.NextBounded(pool.size())])]);
      } else if (u < config_.title_topic_frac + config_.title_community_frac) {
        words.push_back(topic[rng.NextBounded(topic.size())]);
      } else {
        words.push_back(
            common_vocab[static_cast<size_t>(common_word_pick.Sample(&rng))]);
      }
    }
    std::string title = Capitalize(words[0]);
    for (size_t w = 1; w < words.size(); ++w) title += " " + words[w];

    Paper paper;
    paper.title = std::move(title);
    paper.venue = std::move(venue);
    paper.year = year;
    for (int a : byline) {
      paper.author_names.push_back(corpus.authors[static_cast<size_t>(a)].name);
      paper.true_author_ids.push_back(a);
      ++corpus.authors[static_cast<size_t>(a)].num_papers;
    }
    corpus.db.AddPaper(std::move(paper));
  }
  return corpus;
}

std::vector<std::string> Corpus::AmbiguousNames(int min_authors) const {
  std::unordered_map<std::string, std::set<AuthorId>> by_name;
  for (const auto& prof : authors) {
    if (prof.num_papers > 0) by_name[prof.name].insert(prof.id);
  }
  std::vector<std::string> out;
  for (const auto& [name, ids] : by_name) {
    if (static_cast<int>(ids.size()) >= min_authors) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Corpus::TestNames(int min_authors,
                                           int max_papers) const {
  std::vector<std::string> out;
  for (const auto& name : AmbiguousNames(min_authors)) {
    if (static_cast<int>(db.PapersWithName(name).size()) <= max_papers) {
      out.push_back(name);
    }
  }
  return out;
}

std::unordered_map<AuthorId, std::vector<int>> Corpus::TrueClustersOfName(
    const std::string& name) const {
  std::unordered_map<AuthorId, std::vector<int>> clusters;
  for (int pid : db.PapersWithName(name)) {
    AuthorId a = db.paper(pid).TrueAuthorOfName(name);
    if (a != kUnknownAuthor) clusters[a].push_back(pid);
  }
  return clusters;
}

}  // namespace iuad::data
