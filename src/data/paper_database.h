#ifndef IUAD_DATA_PAPER_DATABASE_H_
#define IUAD_DATA_PAPER_DATABASE_H_

/// \file paper_database.h
/// Indexed in-memory paper store: the input D of Algorithm 1. Maintains the
/// corpus-level statistics the similarity functions consume — venue
/// frequencies F_H(h) (Eq. 9), title-keyword frequencies F_B(b) (Eq. 7), and
/// the name → papers index that drives candidate-pair generation.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/paper.h"
#include "util/status.h"

namespace iuad::data {

/// In-memory bibliographic database with derived indices. Indices are
/// maintained incrementally on AddPaper, so the incremental disambiguation
/// path (Sec. V-E) can ingest papers one at a time.
class PaperDatabase {
 public:
  /// Adds a record; the paper's id is overwritten with a dense id, which is
  /// returned. Keywords are extracted and indexed immediately.
  int AddPaper(Paper paper);

  int num_papers() const { return static_cast<int>(papers_.size()); }
  const Paper& paper(int id) const { return papers_[static_cast<size_t>(id)]; }
  const std::vector<Paper>& papers() const { return papers_; }

  /// All distinct author names, in first-seen order.
  const std::vector<std::string>& names() const { return names_; }

  /// Ids of papers whose byline contains `name` (empty vector if unseen).
  const std::vector<int>& PapersWithName(const std::string& name) const;

  /// Number of papers published in `venue` (F_H of Eq. 9).
  int64_t VenueFrequency(const std::string& venue) const;

  /// Number of title occurrences of keyword `word` across the corpus
  /// (F_B of Eq. 7).
  int64_t KeywordFrequency(const std::string& word) const;

  /// The full frequency tables behind VenueFrequency / KeywordFrequency.
  /// SimilarityComputer snapshots them at construction so scoring between
  /// cache refreshes reads frozen corpus statistics (see similarity.h).
  const std::unordered_map<std::string, int64_t>& venue_frequencies() const {
    return venue_freq_;
  }
  const std::unordered_map<std::string, int64_t>& keyword_frequencies()
      const {
    return keyword_freq_;
  }

  /// Extracted (stop-word-filtered) title keywords of a paper, cached.
  const std::vector<std::string>& KeywordsOf(int paper_id) const;

  /// Total author-paper pairs (the dataset-size statistic the paper reports:
  /// 2,393,969 for their DBLP snapshot).
  int64_t author_paper_pairs() const { return author_paper_pairs_; }

  /// Largest year seen (0 if empty); used by the time-consistency feature.
  int max_year() const { return max_year_; }

  /// Returns a new database containing the first `fraction` of papers in
  /// year order (stable within year): the data-scale protocol of Table V /
  /// Fig. 5. `fraction` is clamped to [0, 1].
  PaperDatabase PrefixByYearFraction(double fraction) const;

  /// Splits off the `holdout` most recent papers (by year, ties broken by
  /// id) as the "newly published" stream of Table VI. Returns {history,
  /// stream-in-arrival-order}.
  std::pair<PaperDatabase, std::vector<Paper>> HoldOutLatest(int holdout) const;

  /// Order-sensitive 64-bit content hash (FNV-1a) over every record —
  /// id, year, venue, title, byline, ground truth. Two databases holding
  /// the same papers in the same order fingerprint identically across
  /// processes; snapshots (src/io) store it and refuse to load against a
  /// different corpus.
  uint64_t Fingerprint() const;

  /// Serialization. Format (TSV, one paper per row):
  ///   id <tab> year <tab> venue <tab> title <tab> name1|name2|... <tab> gt1|gt2|...
  /// The ground-truth column may be "?" for unlabeled data.
  iuad::Status SaveTsv(const std::string& path) const;
  static iuad::Result<PaperDatabase> LoadTsv(const std::string& path);

 private:
  std::vector<Paper> papers_;
  std::vector<std::vector<std::string>> keywords_;  // parallel to papers_
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::vector<int>> name_to_papers_;
  std::unordered_map<std::string, int64_t> venue_freq_;
  std::unordered_map<std::string, int64_t> keyword_freq_;
  int64_t author_paper_pairs_ = 0;
  int max_year_ = 0;
};

}  // namespace iuad::data

#endif  // IUAD_DATA_PAPER_DATABASE_H_
