#ifndef IUAD_DATA_PAPER_H_
#define IUAD_DATA_PAPER_H_

/// \file paper.h
/// The bibliographic record model (Sec. III-A: each paper carries a
/// co-author list, title, venue, and year).

#include <string>
#include <vector>

namespace iuad::data {

/// Ground-truth author identifier; kUnknownAuthor when unlabeled (real data).
using AuthorId = int;
constexpr AuthorId kUnknownAuthor = -1;

/// One bibliographic record.
struct Paper {
  /// Dense id assigned by the owning PaperDatabase.
  int id = -1;
  std::string title;
  std::string venue;
  int year = 0;
  /// Author names exactly as printed, in byline order.
  std::vector<std::string> author_names;
  /// Parallel to author_names: true author identity if known (synthetic data
  /// or labeled test sets), kUnknownAuthor otherwise. Evaluation-only; the
  /// disambiguation algorithms never read this.
  std::vector<AuthorId> true_author_ids;

  /// Byline position of `name`, or -1 if this paper has no such author.
  int PositionOfName(const std::string& name) const {
    for (size_t i = 0; i < author_names.size(); ++i) {
      if (author_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Ground-truth author of byline occurrence of `name` (first match), or
  /// kUnknownAuthor.
  AuthorId TrueAuthorOfName(const std::string& name) const {
    int pos = PositionOfName(name);
    if (pos < 0 || pos >= static_cast<int>(true_author_ids.size())) {
      return kUnknownAuthor;
    }
    return true_author_ids[static_cast<size_t>(pos)];
  }
};

}  // namespace iuad::data

#endif  // IUAD_DATA_PAPER_H_
