#include "serve/ingest_service.h"

#include <algorithm>
#include <ctime>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/memory.h"
#include "wal/wal.h"

namespace iuad::serve {

namespace {

IngestService::Assignments StoppedError() {
  return iuad::Status::FailedPrecondition(
      "ingest service is stopped; paper was not applied");
}

}  // namespace

IngestService::IngestService(data::PaperDatabase* db,
                             core::DisambiguationResult* result,
                             core::IuadConfig config, wal::Log* wal)
    : db_(db),
      result_(result),
      config_(std::move(config)),
      wal_(wal),
      inc_(db, result, config_),
      timing_(config_.metrics_enabled),
      tracing_(config_.trace_enabled),
      stamps_(timing_ || tracing_),
      start_ns_(obs::NowNs()),
      ctr_papers_applied_(registry_.GetCounter("papers_applied")),
      ctr_papers_failed_(registry_.GetCounter("papers_failed")),
      ctr_assignments_(registry_.GetCounter("assignments")),
      ctr_new_authors_(registry_.GetCounter("new_authors")),
      ctr_publishes_(registry_.GetCounter("publishes")),
      gauge_queue_depth_(registry_.GetGauge("queue_depth")),
      hist_enqueue_wait_us_(registry_.GetHistogram("enqueue_wait_us")),
      hist_apply_us_(registry_.GetHistogram("apply_us")),
      hist_publish_us_(registry_.GetHistogram("publish_us")),
      hist_commit_latency_us_(registry_.GetHistogram("commit_latency_us")),
      recorder_(&obs::FlightRecorder::Instance()),
      exemplars_(config_.trace_exemplars) {
  if (wal_ != nullptr) {
    // The WAL's instruments live in this frontend's registry so they land
    // on every scrape surface for free. Cache the pointers: Stats() is
    // const and cannot run registry lookups.
    wal_->BindMetrics(&registry_);
    ctr_wal_appended_ = registry_.GetCounter("wal_appended");
    ctr_wal_fsyncs_ = registry_.GetCounter("wal_fsyncs");
    ctr_wal_bytes_ = registry_.GetCounter("wal_bytes");
    ctr_recovery_replayed_ = registry_.GetCounter("recovery_replayed");
    gauge_wal_ckpt_seq_ = registry_.GetGauge("wal_last_checkpoint_seq");
    gauge_wal_ckpt_ts_ = registry_.GetGauge("wal_last_checkpoint_timestamp");
    hist_wal_fsync_wait_us_ = registry_.GetHistogram("wal_fsync_wait_us");
  }
  PublishView();  // epoch 0: the pre-ingestion state, queryable immediately
  applier_ = std::thread([this] { ApplierLoop(); });
}

IngestService::~IngestService() { Stop(); }

std::future<IngestService::Assignments> IngestService::Submit(
    data::Paper paper) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = next_ticket_++;
  return SubmitLocked(seq, std::move(paper), &lock);
}

std::future<IngestService::Assignments> IngestService::SubmitAt(
    uint64_t seq, data::Paper paper) {
  std::unique_lock<std::mutex> lock(mu_);
  next_ticket_ = std::max(next_ticket_, seq + 1);
  return SubmitLocked(seq, std::move(paper), &lock);
}

std::vector<std::future<IngestService::Assignments>>
IngestService::SubmitBatch(std::vector<data::Paper> papers) {
  std::vector<std::future<Assignments>> futures;
  futures.reserve(papers.size());
  if (papers.empty()) return futures;
  std::unique_lock<std::mutex> lock(mu_);
  // Reserve the whole contiguous range up front: even when a later paper
  // blocks on admission (releasing the lock), no interleaving producer can
  // claim a sequence inside the batch.
  uint64_t seq = next_ticket_;
  next_ticket_ += static_cast<uint64_t>(papers.size());
  for (auto& paper : papers) {
    futures.push_back(SubmitLocked(seq++, std::move(paper), &lock));
  }
  return futures;
}

std::future<IngestService::Assignments> IngestService::SubmitLocked(
    uint64_t seq, data::Paper paper, std::unique_lock<std::mutex>* lock) {
  std::promise<Assignments> promise;
  std::future<Assignments> future = promise.get_future();
  // Admission window: the next-to-apply sequence is always admissible, so a
  // blocked producer holding it can never deadlock the queue.
  admit_cv_.wait(*lock, [&] {
    return stopping_ ||
           seq < next_apply_ + static_cast<uint64_t>(
                                   config_.ingest_queue_capacity);
  });
  if (stopping_) {
    promise.set_value(StoppedError());
    return future;
  }
  if (seq < next_apply_ || (apply_in_flight_ && seq == next_apply_) ||
      pending_.count(seq) > 0) {
    promise.set_value(iuad::Status::InvalidArgument(
        "duplicate ingest sequence " + std::to_string(seq)));
    return future;
  }
  const int64_t submit_ns = stamps_ ? obs::NowNs() : 0;
  if (tracing_) {
    recorder_->RecordAt(submit_ns, obs::TraceEventId::kPaperSubmit, seq);
  }
  Request request{std::move(paper), std::move(promise), submit_ns};
  pending_.emplace(seq, std::move(request));
  gauge_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
  if (seq == next_apply_) ready_cv_.notify_one();
  return future;
}

void IngestService::ApplierLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] {
      return stopping_ || pending_.count(next_apply_) > 0 ||
             (drain_waiters_ > 0 && published_through_ < next_apply_);
    });

    if (pending_.count(next_apply_) > 0) {
      auto node = pending_.extract(next_apply_);
      apply_in_flight_ = true;
      gauge_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
      lock.unlock();
      const uint64_t seq = node.key();
      const int64_t submit_ns = node.mapped().submit_ns;
      const int64_t extract_ns = stamps_ ? obs::NowNs() : 0;
      if (timing_ && submit_ns > 0) {
        hist_enqueue_wait_us_->RecordNs(extract_ns - submit_ns);
      }
      if (tracing_ && submit_ns > 0) {
        recorder_->RecordAt(extract_ns, obs::TraceEventId::kPaperExtract, seq,
                            static_cast<uint64_t>(extract_ns - submit_ns));
      }
      // The applier is the sole mutator of db/result; readers only see
      // published views, so no lock is held across the actual ingestion.
      Assignments applied = inc_.AddPaper(node.mapped().paper);
      // Log the commit *attempt*, success or failure: ApplyDecisions may
      // partially mutate on failure, so recovery must re-execute the exact
      // attempt sequence (wal.h). AddPaper received the paper by const ref,
      // so the submitted form (pre dense-id rewrite) is what gets logged —
      // replay resubmits it identically. Buffered user-space; durability
      // happens at the group-commit flush below.
      if (wal_ != nullptr) wal_->Append(seq, node.mapped().paper);
      const int64_t applied_ns = stamps_ ? obs::NowNs() : 0;
      if (timing_) hist_apply_us_->RecordNs(applied_ns - extract_ns);
      if (tracing_) {
        recorder_->RecordAt(applied_ns, obs::TraceEventId::kPaperApply, seq,
                            static_cast<uint64_t>(applied_ns - extract_ns));
      }
      if (applied.ok()) {
        ctr_papers_applied_->Increment();
        ctr_assignments_->Add(static_cast<int64_t>(applied->size()));
        for (const auto& a : *applied) {
          if (a.created_new) ctr_new_authors_->Increment();
        }
        ++since_publish_;
      } else {
        ctr_papers_failed_->Increment();
      }
      if (wal_ != nullptr) {
        ++wal_since_checkpoint_;
        // Checkpoint only when THIS apply succeeded and landed exactly on a
        // similarity-refresh boundary (papers_ingested a multiple of the
        // refresh interval ⇒ Refresh() just ran inside AddPaper): that is
        // the one cache state a frontend freshly constructed from the
        // checkpoint rebuilds bit-for-bit (wal.h file comment). A failed
        // attempt may have mutated the graph after the last refresh, so it
        // never anchors a checkpoint.
        if (config_.wal_checkpoint_every_n > 0 && applied.ok() &&
            wal_since_checkpoint_ >=
                static_cast<int64_t>(config_.wal_checkpoint_every_n) &&
            inc_.papers_ingested() % config_.incremental_refresh_interval ==
                0) {
          if (iuad::Status s =
                  wal_->Checkpoint(*db_, *result_, config_, seq + 1);
              s.ok()) {
            wal_since_checkpoint_ = 0;
          } else {
            IUAD_LOG(kWarning)
                << "WAL checkpoint failed (serving continues; log "
                   "compaction is stalled): "
                << s.message();
          }
        }
      }
      const bool publish = since_publish_ >= config_.ingest_refresh_window;
      if (publish) PublishView();
      const int64_t done_ns = stamps_ ? obs::NowNs() : 0;
      if (timing_ && publish) hist_publish_us_->RecordNs(done_ns - applied_ns);
      if (tracing_ && publish) {
        recorder_->RecordAt(done_ns, obs::TraceEventId::kPaperPublish, seq,
                            static_cast<uint64_t>(done_ns - applied_ns));
      }
      if (stamps_ && applied.ok() && submit_ns > 0) {
        const int64_t latency_ns = done_ns - submit_ns;
        if (timing_) hist_commit_latency_us_->RecordNs(latency_ns);
        if (tracing_) {
          recorder_->RecordAt(done_ns, obs::TraceEventId::kPaperCommit, seq,
                              static_cast<uint64_t>(latency_ns));
        }
        if (config_.slow_commit_ms > 0.0 &&
            static_cast<double>(latency_ns) / 1e6 > config_.slow_commit_ms) {
          obs::SlowCommitExemplar exemplar;
          exemplar.seq = static_cast<int64_t>(seq);
          exemplar.total_ns = latency_ns;
          exemplar.stages.push_back({"enqueue", extract_ns - submit_ns});
          exemplar.stages.push_back({"apply", applied_ns - extract_ns});
          if (publish) {
            exemplar.stages.push_back({"publish", done_ns - applied_ns});
          }
          exemplars_.Offer(std::move(exemplar));
        }
      }
      node.mapped().promise.set_value(std::move(applied));
      lock.lock();
      apply_in_flight_ = false;
      ++next_apply_;
      if (publish) published_through_ = next_apply_;
      const bool wal_idle =
          wal_ != nullptr && pending_.count(next_apply_) == 0;
      admit_cv_.notify_all();
      applied_cv_.notify_all();
      if (wal_ != nullptr) {
        lock.unlock();
        // Group commit: while loaded, fsync on the every-N / interval
        // cadence so one fsync covers a window of commits; on the idle
        // transition force the flush so a burst's last records never sit
        // un-durable waiting for more traffic. Never under mu_ — producers
        // must not block on an fsync.
        if (wal_idle) {
          (void)wal_->Flush();
        } else {
          wal_->MaybeFlush();
        }
      }
      continue;
    }

    if (drain_waiters_ > 0 && published_through_ < next_apply_) {
      const uint64_t through = next_apply_;
      lock.unlock();
      // Drain's contract includes durability: everything applied before the
      // drain point is on disk when Drain() returns.
      if (wal_ != nullptr) (void)wal_->Flush();
      PublishView();
      lock.lock();
      published_through_ = through;
      applied_cv_.notify_all();
      continue;
    }

    // stopping_, with no applicable sequence: everything admitted in order
    // has been applied. Fail whatever is stranded behind a sequence hole.
    std::map<uint64_t, Request> stranded;
    stranded.swap(pending_);
    lock.unlock();
    for (auto& [seq, req] : stranded) {
      req.promise.set_value(StoppedError());
    }
    if (wal_ != nullptr) (void)wal_->Flush();  // Stop leaves nothing buffered
    PublishView();  // final epoch: the fully-applied state
    lock.lock();
    published_through_ = next_apply_;
    applied_cv_.notify_all();
    return;
  }
}

void IngestService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = next_ticket_;
  ++drain_waiters_;
  ready_cv_.notify_one();  // an idle applier may owe us a publish
  applied_cv_.wait(lock, [&] {
    return (next_apply_ >= target && published_through_ >= target) ||
           (stopping_ && joined_);
  });
  --drain_waiters_;
}

void IngestService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  admit_cv_.notify_all();
  applied_cv_.notify_all();
  // Exactly one caller joins; others (e.g. the destructor after an explicit
  // Stop) wait for joined_ below.
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!joined_ && !join_claimed_) {
      join_claimed_ = true;
      join_here = true;
    }
  }
  if (join_here) {
    applier_.join();
    std::lock_guard<std::mutex> lock(mu_);
    joined_ = true;
    applied_cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    applied_cv_.wait(lock, [&] { return joined_; });
  }
}

void IngestService::PublishView() {
  auto view = std::make_shared<ReadView>();
  const graph::CollabGraph& g = result_->graph;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.alive(v)) continue;
    const graph::Vertex& vx = g.vertex(v);
    view->by_name[vx.name_id].push_back(
        {v, static_cast<int>(vx.papers.size())});
    view->papers_of.emplace(v, vx.papers);
  }
  view->stats.epoch = epoch_++;
  view->stats.papers_applied = inc_.papers_ingested();
  view->stats.assignments = ctr_assignments_->Value();
  view->stats.new_authors = ctr_new_authors_->Value();
  view->stats.num_alive_vertices = g.num_alive();
  view->stats.num_edges = g.num_edges();
  view->stats.queue_capacity = config_.ingest_queue_capacity;
  // The single-applier service is the degenerate depth-1 pipeline: one
  // "window" per applied paper, nothing ever overlaps or conflicts.
  view->stats.pipeline_depth = 1;
  view->stats.pipeline_windows = view->stats.papers_applied;
  view->stats.pipeline_occupancy = view->stats.papers_applied > 0 ? 1.0 : 0.0;
  since_publish_ = 0;
  ctr_publishes_->Increment();
  std::lock_guard<std::mutex> lock(view_mu_);
  view_ = std::move(view);
}

std::shared_ptr<const IngestService::ReadView> IngestService::CurrentView()
    const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

std::vector<AuthorRecord> IngestService::AuthorsByName(
    const std::string& name) const {
  // Protocol boundary: resolve the string once, then the view is id-keyed.
  const util::NameId id = result_->graph.interner().Lookup(name);
  if (id == util::kInvalidNameId) return {};
  const auto view = CurrentView();
  auto it = view->by_name.find(id);
  if (it == view->by_name.end()) return {};
  std::vector<AuthorRecord> out = it->second;
  std::sort(out.begin(), out.end(),
            [](const AuthorRecord& a, const AuthorRecord& b) {
              return a.vertex < b.vertex;
            });
  return out;
}

std::vector<int> IngestService::PublicationsOf(graph::VertexId v) const {
  const auto view = CurrentView();
  auto it = view->papers_of.find(v);
  return it == view->papers_of.end() ? std::vector<int>{} : it->second;
}

ServiceStats IngestService::Stats() const {
  ServiceStats stats = CurrentView()->stats;
  stats.rss_mb = util::CurrentRssMb();
  stats.uptime_seconds =
      static_cast<double>(obs::NowNs() - start_ns_) / 1e9;
  stats.slow_commits = exemplars_.Snapshot();
  if (wal_ != nullptr) {
    stats.wal_appended = ctr_wal_appended_->Value();
    stats.wal_fsyncs = ctr_wal_fsyncs_->Value();
    stats.wal_bytes = ctr_wal_bytes_->Value();
    stats.recovery_replayed = ctr_recovery_replayed_->Value();
    stats.wal_last_checkpoint_seq = gauge_wal_ckpt_seq_->Value();
    const int64_t ckpt_ts = gauge_wal_ckpt_ts_->Value();
    stats.wal_last_checkpoint_age_s =
        ckpt_ts > 0
            ? static_cast<double>(std::time(nullptr) - ckpt_ts)
            : -1.0;
    stats.wal_fsync_wait_us_p99 =
        hist_wal_fsync_wait_us_->Snapshot().PercentileUs(99.0);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats.queued_now = static_cast<int>(pending_.size());
  // Everything buffered beyond the contiguous run from the next consumable
  // sequence is held for reordering: it cannot apply until a producer fills
  // the hole. While the applier holds next_apply_ extracted (in flight),
  // the run continues from the sequence after it — otherwise every queued
  // paper on a healthy, loaded service would count as held.
  uint64_t expect = next_apply_ + (apply_in_flight_ ? 1 : 0);
  for (const auto& [seq, req] : pending_) {
    if (seq == expect) {
      ++expect;
    } else {
      ++stats.reorder_held;
    }
  }
  return stats;
}

}  // namespace iuad::serve
