#ifndef IUAD_SERVE_INGEST_SERVICE_H_
#define IUAD_SERVE_INGEST_SERVICE_H_

/// \file ingest_service.h
/// Concurrent front end for the incremental path (Sec. V-E): wraps the
/// strictly single-caller IncrementalDisambiguator behind a bounded MPSC
/// request queue with one dedicated applier thread, so many producer
/// threads can stream newly published papers into a live collaboration
/// network while readers query it — the serving shape the ROADMAP
/// north-star asks for.
///
/// Threading contract:
///
///  * WRITES are totally ordered by *sequence number*. Submit() assigns the
///    next sequence at call time; SubmitAt() lets producers that partition a
///    stream among themselves pin each paper to its stream position. The
///    applier consumes strictly in sequence order (a reorder buffer holds
///    early arrivals), so the ingestion outcome equals calling
///    IncrementalDisambiguator::AddPaper sequentially in sequence order —
///    byte-identical at any producer count. Sequences must be dense: every
///    sequence in [0, N) must eventually be submitted exactly once, or the
///    applier waits forever for the hole.
///  * ADMISSION is bounded: at most config.ingest_queue_capacity papers may
///    be queued or held for reordering; Submit/SubmitAt block past that.
///    The next-to-apply sequence is always admissible, which makes the
///    bound deadlock-free.
///  * READS never touch the live graph. The applier republishes an
///    immutable ReadView (author-by-name lookup, per-vertex publication
///    lists, stats) every config.ingest_refresh_window applied papers and
///    at Drain(); AuthorsByName / PublicationsOf / Stats read the latest
///    published view through a shared_ptr epoch swap, so they are safe and
///    wait-free concurrent with ingestion — at the price of reading at most
///    one window behind.
///  * Similarity-cache refresh batching inside the applier is exactly the
///    raw incremental path's config.incremental_refresh_interval; the
///    service adds no hidden knob that would change assignments.
///
/// The PaperDatabase and DisambiguationResult passed in are owned by the
/// caller, must outlive the service, and must not be touched (read or
/// written) by anyone else until Stop()/destruction returns them to the
/// caller fully applied.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "data/paper_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"
#include "util/status.h"

namespace iuad::wal {
class Log;
}  // namespace iuad::wal

namespace iuad::serve {

/// MPSC ingestion + concurrent read service over one disambiguation
/// result: the single-applier implementation of serve::Frontend.
class IngestService : public Frontend {
 public:
  /// Starts the applier thread. `config` must already Validate() OK; the
  /// queue capacity / refresh window knobs are read from it (see config.h).
  ///
  /// `wal`, when non-null, is an opened wal::Log (caller-owned, must
  /// outlive the service) the applier logs every commit attempt into at
  /// its global sequence, flushing on the group-commit cadence and on idle
  /// transitions, and — when config.wal_checkpoint_every_n > 0 —
  /// checkpointing at similarity-refresh boundaries (DESIGN.md §9). The
  /// service binds the WAL's instruments into its own registry.
  IngestService(data::PaperDatabase* db, core::DisambiguationResult* result,
                core::IuadConfig config, wal::Log* wal = nullptr);

  /// Stops accepting work, applies everything already admitted, joins the
  /// applier. Outstanding futures all complete.
  ~IngestService() override;

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Frontend — see frontend.h for the shared submission/read contract.
  std::future<Assignments> Submit(data::Paper paper) override;
  std::future<Assignments> SubmitAt(uint64_t seq, data::Paper paper) override;
  std::vector<std::future<Assignments>> SubmitBatch(
      std::vector<data::Paper> papers) override;

  /// Blocks until every admitted paper is applied, then publishes a fresh
  /// read view. Producers may keep submitting concurrently; the drain point
  /// is whatever sequence was admitted when the call began.
  void Drain() override;

  /// Drains, refuses further submissions, joins the applier thread.
  /// Idempotent. After Stop() the caller again owns db/result exclusively.
  void Stop() override;

  std::vector<AuthorRecord> AuthorsByName(
      const std::string& name) const override;
  std::vector<int> PublicationsOf(graph::VertexId v) const override;
  /// num_shards is always 1 and the per-shard breakdown empty: this is the
  /// unsharded front end.
  ServiceStats Stats() const override;
  obs::Registry* Metrics() override { return &registry_; }

 private:
  struct Request {
    data::Paper paper;
    std::promise<Assignments> promise;
    int64_t submit_ns = 0;  ///< obs::NowNs() at admission; 0 if timing off.
  };

  /// Immutable published state; readers hold it by shared_ptr. Author
  /// lookup is keyed by interned name id — the protocol-boundary string
  /// resolves once through the graph interner (safe concurrent with the
  /// applier: the interner is a single-writer/many-reader structure and
  /// ids are never reused), so the view stores no per-name string copies.
  struct ReadView {
    std::unordered_map<util::NameId, std::vector<AuthorRecord>> by_name;
    std::unordered_map<graph::VertexId, std::vector<int>> papers_of;
    ServiceStats stats;
  };

  void ApplierLoop();
  /// Shared tail of Submit/SubmitAt: blocks on the admission window, then
  /// enqueues under the already-held lock.
  std::future<Assignments> SubmitLocked(uint64_t seq, data::Paper paper,
                                        std::unique_lock<std::mutex>* lock);
  /// Builds and swaps in a fresh ReadView. Called from the applier (and
  /// once from the constructor, before the thread exists).
  void PublishView();
  std::shared_ptr<const ReadView> CurrentView() const;

  data::PaperDatabase* db_;
  core::DisambiguationResult* result_;
  core::IuadConfig config_;
  wal::Log* wal_;  ///< Null when serving without durability.
  core::IncrementalDisambiguator inc_;
  /// Commit attempts since the last WAL checkpoint (applier-owned).
  int64_t wal_since_checkpoint_ = 0;

  mutable std::mutex mu_;
  std::condition_variable admit_cv_;    ///< Producers waiting on the window.
  std::condition_variable ready_cv_;    ///< Applier waiting for next seq.
  std::condition_variable applied_cv_;  ///< Drain waiters.
  std::map<uint64_t, Request> pending_;  ///< Reorder buffer, keyed by seq.
  uint64_t next_ticket_ = 0;  ///< Next auto-assigned sequence (Submit).
  uint64_t next_apply_ = 0;   ///< Sequence the applier consumes next.
  /// True while the applier has extracted next_apply_ from pending_ and is
  /// applying it unlocked: that sequence is occupied even though it is in
  /// neither pending_ nor the applied range, so duplicate detection must
  /// still reject it.
  bool apply_in_flight_ = false;
  /// next_apply_ at the time of the last view publication: lets Drain wait
  /// for a view that includes everything it observed as admitted.
  uint64_t published_through_ = 0;
  int drain_waiters_ = 0;
  bool stopping_ = false;
  bool join_claimed_ = false;
  bool joined_ = false;

  // Control-flow state owned by the applier thread. Event *counts* live in
  // the registry instead (single-writer, so registry counters stay exact);
  // only state that steers behavior stays as plain members — metrics must
  // never feed back into ingestion (DESIGN.md §7).
  int64_t epoch_ = 0;
  int since_publish_ = 0;

  // Observability (src/obs). Instruments are resolved once here and
  // recorded lock-free thereafter. timing_ (metrics_enabled) gates the
  // histogram records, tracing_ (trace_enabled) gates the flight-recorder
  // stores, and stamps_ — their OR — gates the clock reads both share, so
  // either surface alone pays for the stamps exactly once (DESIGN.md §8).
  obs::Registry registry_;
  const bool timing_;
  const bool tracing_;
  const bool stamps_;
  const int64_t start_ns_;  ///< Construction stamp, for uptime_seconds.
  obs::Counter* ctr_papers_applied_;
  obs::Counter* ctr_papers_failed_;
  obs::Counter* ctr_assignments_;
  obs::Counter* ctr_new_authors_;
  obs::Counter* ctr_publishes_;
  obs::Gauge* gauge_queue_depth_;
  obs::Histogram* hist_enqueue_wait_us_;
  obs::Histogram* hist_apply_us_;
  obs::Histogram* hist_publish_us_;
  obs::Histogram* hist_commit_latency_us_;
  obs::FlightRecorder* recorder_;  ///< The process-wide flight recorder.
  /// WAL instruments, cached at construction so const Stats() can read
  /// their values without touching the (non-const) registry lookup. All
  /// null when wal_ is null.
  obs::Counter* ctr_wal_appended_ = nullptr;
  obs::Counter* ctr_wal_fsyncs_ = nullptr;
  obs::Counter* ctr_wal_bytes_ = nullptr;
  obs::Counter* ctr_recovery_replayed_ = nullptr;
  obs::Gauge* gauge_wal_ckpt_seq_ = nullptr;
  obs::Gauge* gauge_wal_ckpt_ts_ = nullptr;
  obs::Histogram* hist_wal_fsync_wait_us_ = nullptr;
  /// Top-K slowest commits (config.trace_exemplars); offered to only on
  /// the already-slow path, surfaced through Stats().
  obs::ExemplarTable exemplars_;

  mutable std::mutex view_mu_;
  std::shared_ptr<const ReadView> view_;

  std::thread applier_;
};

}  // namespace iuad::serve

#endif  // IUAD_SERVE_INGEST_SERVICE_H_
