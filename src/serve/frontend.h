#ifndef IUAD_SERVE_FRONTEND_H_
#define IUAD_SERVE_FRONTEND_H_

/// \file frontend.h
/// The one serving interface. A Frontend is a live, queryable collaboration
/// network accepting newly published papers (Sec. V-E): the single-applier
/// serve::IngestService and the name-block-sharded shard::ShardRouter both
/// implement it, so everything above — the CLI serve loop, the typed
/// src/api layer, benchmarks, examples — drives one `Frontend*` and never
/// branches on the serving topology.
///
/// Shared contract (pinned by tests/serve_test.cpp, tests/shard_test.cpp,
/// tests/api_test.cpp):
///
///  * WRITES are totally ordered by sequence number; the ingestion outcome
///    equals sequential IncrementalDisambiguator::AddPaper calls in
///    sequence order, byte-identical at any producer / shard count.
///    Submit() takes the next free sequence; SubmitAt() pins one (the
///    dense-sequence contract: every sequence in [0, N) exactly once);
///    SubmitBatch() reserves one contiguous range for a whole vector under
///    a single lock acquisition, so batch producers stop round-tripping
///    the submission lock per paper.
///  * ADMISSION is bounded by config.ingest_queue_capacity; submissions
///    block past it. The next-to-apply sequence is always admissible,
///    which keeps the bound deadlock-free.
///  * READS (AuthorsByName / PublicationsOf / Stats) are wait-free against
///    ingestion: they see the last published epoch, at most one refresh
///    window behind.

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "data/paper.h"
#include "graph/collab_graph.h"
#include "obs/trace.h"
#include "util/status.h"

namespace iuad::obs {
class Registry;
}  // namespace iuad::obs

namespace iuad::serve {

/// One author candidate as seen by readers at the last published epoch.
struct AuthorRecord {
  graph::VertexId vertex = -1;
  int num_papers = 0;
};

/// Per-shard health, published with the read views. The unsharded
/// IngestService publishes none; the ShardRouter publishes one per shard.
struct ShardHealth {
  int shard = 0;
  int64_t owned_blocks = 0;      ///< Blocks placed at fit time.
  int64_t placement_weight = 0;  ///< Their summed placement weight.
  int64_t papers_scored = 0;     ///< Papers with >= 1 byline scored here.
  int64_t bylines_scored = 0;
  int64_t assignments = 0;       ///< Bylines this shard's blocks absorbed.
  int64_t new_authors = 0;       ///< Of those, newly-born vertices.
};

/// Service health counters, one shape for every Frontend. Snapshot
/// semantics: all fields are from the same published epoch except
/// queued_now and reorder_held, which are read live under the queue lock
/// (they describe the queue, not the applied state, and would otherwise
/// always publish as stale zeros).
struct ServiceStats {
  int64_t epoch = 0;             ///< Published-view epoch (0 = pre-ingest).
  int64_t papers_applied = 0;    ///< Papers fully ingested.
  int64_t assignments = 0;       ///< Byline occurrences decided.
  int64_t new_authors = 0;       ///< Occurrences that founded a new vertex.
  int num_alive_vertices = 0;
  int num_edges = 0;
  int queued_now = 0;            ///< Live queue depth (incl. reorder holds).
  /// Live reorder-buffer occupancy: admitted papers waiting behind a
  /// sequence hole (SubmitAt arrivals the applier cannot consume yet).
  /// Persistently > 0 with an idle applier means a producer died holding a
  /// sequence — the first thing on-call should look at.
  int reorder_held = 0;
  int queue_capacity = 0;        ///< config.ingest_queue_capacity, for UIs.
  int num_shards = 1;            ///< Serving topology (1 = unsharded).
  // Ingestion-pipeline health (shard_router.h). The unsharded IngestService
  // is the degenerate depth-1 pipeline: it reports depth 1, one window per
  // applied paper, occupancy 1, and zero stalls/rescores.
  int pipeline_depth = 1;        ///< config.pipeline_depth in effect.
  int64_t pipeline_windows = 0;  ///< Scoring windows formed so far.
  /// Mean papers per window whose phase-1 scoring actually overlapped with
  /// other in-flight papers (scored before every predecessor committed).
  /// ~pipeline_depth on block-disjoint traffic; 1.0 when conflicts (or
  /// depth 1) fully serialize the pipeline.
  double pipeline_occupancy = 0.0;
  /// Papers that could not overlap at all: every byline's name block was
  /// written by an uncommitted in-window predecessor, so scoring waited for
  /// the commits — the pipeline ran sequentially for them.
  int64_t conflict_stalls = 0;
  /// Bylines scored against a post-predecessor-commit snapshot because
  /// their block conflicted inside a window (the stale-decision path the
  /// OccurrenceDecision::snapshot_version stamp detects).
  int64_t speculative_rescores = 0;
  // Process-level liveness, read at Stats() call time (not epoch-bound):
  // resident set via util::CurrentRssMb and seconds since this Frontend
  // was constructed — memory visible live, not only in BENCH_*.json.
  double rss_mb = 0.0;
  double uptime_seconds = 0.0;
  /// Slowest retained commits (top-K by latency) with per-stage span
  /// breakdowns and deferral blame — populated once a commit breaches
  /// config.slow_commit_ms (DESIGN.md §8). Ordered slowest-first.
  std::vector<obs::SlowCommitExemplar> slow_commits;
  // Durability (src/wal, DESIGN.md §9). All zero / -1 when serving without
  // --wal-dir. Read live from the WAL instruments at Stats() call time, not
  // epoch-bound — durability state is process liveness, like rss_mb.
  int64_t wal_appended = 0;        ///< Commit attempts logged this session.
  int64_t wal_fsyncs = 0;          ///< Group-commit fsync batches issued.
  int64_t wal_bytes = 0;           ///< Record bytes written (excl. headers).
  int64_t recovery_replayed = 0;   ///< Tail records replayed at startup.
  /// Sequences covered by the last checkpoint (0 = none yet): everything
  /// below this lives in the snapshot, everything at or above in segments.
  int64_t wal_last_checkpoint_seq = 0;
  /// Seconds since the last checkpoint committed; -1 when no checkpoint
  /// exists (or no WAL). Alarms on this catch a stuck compactor.
  double wal_last_checkpoint_age_s = -1.0;
  double wal_fsync_wait_us_p99 = 0.0;  ///< p99 fsync stall seen by commits.
  std::vector<ShardHealth> shards;  ///< Per-shard breakdown; empty at 1.
};

/// Abstract serving front end over one fitted disambiguation result.
class Frontend {
 public:
  using Assignments = iuad::Result<std::vector<core::IncrementalAssignment>>;

  virtual ~Frontend() = default;

  /// Enqueues `paper` at the next free sequence number. Blocks while the
  /// admission window is full. The future resolves once the paper is
  /// applied, with the same assignments a sequential AddPaper call at that
  /// position would return. Fails fast (immediately-resolved future) after
  /// Stop().
  virtual std::future<Assignments> Submit(data::Paper paper) = 0;

  /// Enqueues `paper` at an explicit sequence slot (dense-sequence
  /// contract; see the header comment). Blocks while `seq` is outside the
  /// admission window. Duplicate sequences fail the returned future with
  /// InvalidArgument.
  virtual std::future<Assignments> SubmitAt(uint64_t seq,
                                            data::Paper paper) = 0;

  /// Enqueues every paper of `papers` at one contiguous, atomically
  /// reserved sequence range (in vector order). Equivalent to |papers|
  /// uncontended Submit calls, but the range reservation takes the
  /// submission lock once — and no interleaving producer can split the
  /// batch's sequences. Returns one future per paper, in order.
  virtual std::vector<std::future<Assignments>> SubmitBatch(
      std::vector<data::Paper> papers) = 0;

  /// Blocks until every paper admitted at call time is applied and a fresh
  /// read view is published.
  virtual void Drain() = 0;

  /// Drains, refuses further submissions, joins worker threads.
  /// Idempotent. After Stop() the caller again owns the database/result
  /// passed at construction.
  virtual void Stop() = 0;

  // ---- Read-only queries (epoch snapshot; safe during ingestion) ---------

  /// Alive author candidates bearing `name`, in vertex-id order.
  virtual std::vector<AuthorRecord> AuthorsByName(
      const std::string& name) const = 0;

  /// Paper ids attributed to vertex `v` at the last published epoch
  /// (empty for unknown / dead / not-yet-published vertices).
  virtual std::vector<int> PublicationsOf(graph::VertexId v) const = 0;

  virtual ServiceStats Stats() const = 0;

  /// The frontend-owned metrics registry (src/obs): every serving layer
  /// stacked on this frontend — dispatcher, API server, metrics endpoint —
  /// records into and scrapes from this one registry. Never null; valid
  /// for the frontend's lifetime (including after Stop()).
  virtual obs::Registry* Metrics() = 0;
};

}  // namespace iuad::serve

#endif  // IUAD_SERVE_FRONTEND_H_
