#include "graph/wl_kernel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <string>

namespace iuad::graph {

WlVertexKernel::WlVertexKernel(const CollabGraph& graph, int h,
                               util::ThreadPool* pool)
    : graph_(graph), h_(h) {
  const int n = graph.num_vertices();
  labels_.resize(static_cast<size_t>(h + 1),
                 std::vector<int>(static_cast<size_t>(n), -1));
  feature_cache_.resize(static_cast<size_t>(n));
  feature_cached_.assign(static_cast<size_t>(n), false);

  // Iteration 0: compress author names to dense label ids.
  for (VertexId v = 0; v < n; ++v) {
    if (!graph.alive(v)) continue;
    auto [it, inserted] = name_labels_.try_emplace(
        graph.vertex(v).name_id, static_cast<int>(name_labels_.size()));
    labels_[0][static_cast<size_t>(v)] = it->second;
  }

  // Iterations 1..h: label(v) <- compress(label(v), sorted labels of N(v)).
  // Each iteration uses a fresh compression dictionary; label ids are made
  // globally unique across iterations by an offset so ball histograms can
  // mix iterations safely. The signatures (the expensive part: neighbor
  // gathering + sort) are computed in parallel over vertices — each reads
  // only the previous iteration's labels — while compressed ids are
  // assigned in a sequential sweep in vertex order, so the id assignment
  // (first-encounter order) is identical at any thread count.
  int next_global = 1 << 20;  // iteration-0 labels occupy [0, 2^20)
  std::vector<std::vector<int>> sigs(static_cast<size_t>(n));
  for (int iter = 1; iter <= h; ++iter) {
    util::ForIndices(pool, static_cast<size_t>(n), [&](size_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      sigs[vi].clear();
      if (!graph.alive(v)) return;
      sigs[vi].reserve(graph.NeighborsOf(v).size() + 1);
      sigs[vi].push_back(
          labels_[static_cast<size_t>(iter - 1)][static_cast<size_t>(v)]);
      for (const auto& [u, papers] : graph.NeighborsOf(v)) {
        sigs[vi].push_back(
            labels_[static_cast<size_t>(iter - 1)][static_cast<size_t>(u)]);
      }
      std::sort(sigs[vi].begin() + 1, sigs[vi].end());
    });
    std::map<std::vector<int>, int> signature_label;
    for (VertexId v = 0; v < n; ++v) {
      if (!graph.alive(v)) continue;
      auto [it, inserted] =
          signature_label.try_emplace(std::move(sigs[static_cast<size_t>(v)]), 0);
      if (inserted) it->second = next_global++;
      labels_[static_cast<size_t>(iter)][static_cast<size_t>(v)] = it->second;
    }
  }
}

const std::unordered_map<int, double>& WlVertexKernel::FeaturesOf(
    VertexId v) const {
  // Vertices created after Build() have no labels or cache slot.
  static const std::unordered_map<int, double>* const kEmpty =
      new std::unordered_map<int, double>();
  if (v >= static_cast<VertexId>(labels_[0].size())) return *kEmpty;
  auto& cache = feature_cache_[static_cast<size_t>(v)];
  if (feature_cached_[static_cast<size_t>(v)]) return cache;
  cache = ComputeFeatures(v);
  feature_cached_[static_cast<size_t>(v)] = true;
  return cache;
}

void WlVertexKernel::PrewarmFeatures(const std::vector<VertexId>& vs,
                                     util::ThreadPool* pool) const {
  std::vector<VertexId> missing;
  for (VertexId v : vs) {
    if (v >= 0 && v < static_cast<VertexId>(labels_[0].size()) &&
        !feature_cached_[static_cast<size_t>(v)]) {
      missing.push_back(v);
    }
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;
  std::vector<std::unordered_map<int, double>> built(missing.size());
  util::ForIndices(pool, missing.size(),
                   [&](size_t i) { built[i] = ComputeFeatures(missing[i]); });
  // Commit sequentially: feature_cached_ is a vector<bool>, whose packed
  // bits make even distinct-index writes race.
  for (size_t i = 0; i < missing.size(); ++i) {
    feature_cache_[static_cast<size_t>(missing[i])] = std::move(built[i]);
    feature_cached_[static_cast<size_t>(missing[i])] = true;
  }
}

std::unordered_map<int, double> WlVertexKernel::ComputeFeatures(
    VertexId v) const {
  std::unordered_map<int, double> features;
  if (!graph_.alive(v)) return features;

  // BFS ball of radius h around v.
  std::vector<VertexId> ball{v};
  std::unordered_map<VertexId, int> dist{{v, 0}};
  std::queue<VertexId> q;
  q.push(v);
  const int built_n = static_cast<int>(labels_[0].size());
  while (!q.empty()) {
    VertexId u = q.front();
    q.pop();
    const int du = dist[u];
    if (du >= h_) continue;
    for (const auto& [w, papers] : graph_.NeighborsOf(u)) {
      if (dist.try_emplace(w, du + 1).second) {
        // Vertices added after Build() carry no labels; skip them (callers
        // rebuild the kernel periodically during incremental ingestion).
        if (w < built_n) ball.push_back(w);
        q.push(w);
      }
    }
  }
  // Histogram of labels over all iterations for ball members, excluding the
  // center itself (see the header: φ describes the collaboration
  // neighborhood, not the vertex).
  for (VertexId u : ball) {
    if (u == v) continue;
    for (int iter = 0; iter <= h_; ++iter) {
      features[labels_[static_cast<size_t>(iter)][static_cast<size_t>(u)]] +=
          1.0;
    }
  }
  return features;
}

double WlVertexKernel::NormalizedKernelVsNameSet(
    VertexId v, const std::vector<std::string>& names) const {
  if (!graph_.alive(v) || names.empty()) return 0.0;
  if (v >= static_cast<VertexId>(labels_[0].size())) return 0.0;
  const auto& fv = FeaturesOf(v);
  if (fv.empty()) return 0.0;
  double cross = 0.0;
  for (const auto& name : names) {
    const util::NameId id = graph_.interner().Lookup(name);
    if (id == util::kInvalidNameId) continue;
    auto it = name_labels_.find(id);
    if (it == name_labels_.end()) continue;
    auto fit = fv.find(it->second);
    if (fit != fv.end()) cross += fit->second;
  }
  const double kvv = Kernel(v, v);
  if (kvv <= 0.0) return 0.0;
  return std::min(1.0, cross / std::sqrt(static_cast<double>(names.size()) * kvv));
}

double WlVertexKernel::Kernel(VertexId u, VertexId v) const {
  const auto& fu = FeaturesOf(u);
  const auto& fv = FeaturesOf(v);
  const auto& small = fu.size() <= fv.size() ? fu : fv;
  const auto& large = fu.size() <= fv.size() ? fv : fu;
  double s = 0.0;
  for (const auto& [label, count] : small) {
    auto it = large.find(label);
    if (it != large.end()) s += count * it->second;
  }
  return s;
}

double WlVertexKernel::NormalizedKernel(VertexId u, VertexId v) const {
  const double kuu = Kernel(u, u);
  const double kvv = Kernel(v, v);
  if (kuu <= 0.0 || kvv <= 0.0) return 0.0;
  return Kernel(u, v) / std::sqrt(kuu * kvv);
}

}  // namespace iuad::graph
