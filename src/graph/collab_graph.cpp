#include "graph/collab_graph.h"

#include <algorithm>

namespace iuad::graph {

namespace {
const std::vector<VertexId> kNoVertices;
}  // namespace

void CollabGraph::Deduplicate(std::vector<int>* papers) {
  std::sort(papers->begin(), papers->end());
  papers->erase(std::unique(papers->begin(), papers->end()), papers->end());
}

VertexId CollabGraph::AddVertex(std::string name, std::vector<int> papers) {
  Deduplicate(&papers);
  const VertexId id = static_cast<VertexId>(vertices_.size());
  name_index_[name].push_back(id);
  vertices_.push_back(Vertex{std::move(name), std::move(papers), true});
  adj_.emplace_back();
  ++num_alive_;
  return id;
}

iuad::Result<CollabGraph> CollabGraph::Restore(
    std::vector<Vertex> vertices, const std::vector<EdgeRecord>& edges) {
  CollabGraph g;
  const auto n = static_cast<VertexId>(vertices.size());
  g.vertices_ = std::move(vertices);
  g.adj_.resize(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    Vertex& vx = g.vertices_[static_cast<size_t>(v)];
    g.Deduplicate(&vx.papers);
    if (vx.alive) {
      g.name_index_[vx.name].push_back(v);
      ++g.num_alive_;
    }
  }
  for (const EdgeRecord& e : edges) {
    if (e.u < 0 || e.v < 0 || e.u >= n || e.v >= n) {
      return iuad::Status::InvalidArgument("graph restore: edge endpoint " +
                                           std::to_string(e.u) + "-" +
                                           std::to_string(e.v) +
                                           " out of range");
    }
    IUAD_RETURN_NOT_OK(g.AddEdgePapers(e.u, e.v, e.papers));
  }
  return g;
}

std::vector<EdgeRecord> CollabGraph::Edges() const {
  std::vector<EdgeRecord> out;
  for (VertexId u = 0; u < num_vertices(); ++u) {
    if (!alive(u)) continue;
    for (const auto& [v, papers] : adj_[static_cast<size_t>(u)]) {
      if (u < v) out.push_back({u, v, papers});
    }
  }
  std::sort(out.begin(), out.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

iuad::Status CollabGraph::AddEdgePapers(VertexId u, VertexId v,
                                        const std::vector<int>& papers) {
  if (u == v) {
    return iuad::Status::InvalidArgument("self-loop rejected: vertex " +
                                         std::to_string(u));
  }
  if (!alive(u) || !alive(v)) {
    return iuad::Status::FailedPrecondition("edge endpoint is dead");
  }
  auto& fwd = adj_[static_cast<size_t>(u)][v];
  if (fwd.empty()) ++num_edges_;
  fwd.insert(fwd.end(), papers.begin(), papers.end());
  Deduplicate(&fwd);
  auto& bwd = adj_[static_cast<size_t>(v)][u];
  bwd.insert(bwd.end(), papers.begin(), papers.end());
  Deduplicate(&bwd);
  return iuad::Status::OK();
}

void CollabGraph::AddVertexPapers(VertexId v, const std::vector<int>& papers) {
  auto& ps = vertices_[static_cast<size_t>(v)].papers;
  ps.insert(ps.end(), papers.begin(), papers.end());
  Deduplicate(&ps);
}

void CollabGraph::SetVertexPapers(VertexId v, std::vector<int> papers) {
  Deduplicate(&papers);
  vertices_[static_cast<size_t>(v)].papers = std::move(papers);
}

iuad::Status CollabGraph::SetEdgePapers(VertexId u, VertexId v,
                                        std::vector<int> papers) {
  if (u == v) return iuad::Status::InvalidArgument("self-loop rejected");
  if (!alive(u) || !alive(v)) {
    return iuad::Status::FailedPrecondition("edge endpoint is dead");
  }
  auto& adj_u = adj_[static_cast<size_t>(u)];
  auto& adj_v = adj_[static_cast<size_t>(v)];
  const bool existed = adj_u.count(v) > 0;
  if (papers.empty()) {
    if (existed) {
      adj_u.erase(v);
      adj_v.erase(u);
      --num_edges_;
    }
    return iuad::Status::OK();
  }
  Deduplicate(&papers);
  if (!existed) ++num_edges_;
  adj_u[v] = papers;
  adj_v[u] = std::move(papers);
  return iuad::Status::OK();
}

iuad::Status CollabGraph::MergeVertices(VertexId kept, VertexId absorbed) {
  if (kept == absorbed) {
    return iuad::Status::InvalidArgument("cannot merge a vertex with itself");
  }
  if (!alive(kept) || !alive(absorbed)) {
    return iuad::Status::FailedPrecondition("merge endpoint is dead");
  }
  Vertex& k = vertices_[static_cast<size_t>(kept)];
  Vertex& a = vertices_[static_cast<size_t>(absorbed)];

  // Union paper sets.
  k.papers.insert(k.papers.end(), a.papers.begin(), a.papers.end());
  Deduplicate(&k.papers);

  // Rewire edges of `absorbed`.
  auto& a_adj = adj_[static_cast<size_t>(absorbed)];
  for (auto& [nbr, papers] : a_adj) {
    // Remove the reverse edge nbr -> absorbed first.
    adj_[static_cast<size_t>(nbr)].erase(absorbed);
    --num_edges_;
    if (nbr == kept) continue;  // drop would-be self-loop
    auto& fwd = adj_[static_cast<size_t>(kept)][nbr];
    if (fwd.empty()) ++num_edges_;
    fwd.insert(fwd.end(), papers.begin(), papers.end());
    Deduplicate(&fwd);
    auto& bwd = adj_[static_cast<size_t>(nbr)][kept];
    bwd.insert(bwd.end(), papers.begin(), papers.end());
    Deduplicate(&bwd);
  }
  a_adj.clear();

  // Retire `absorbed` from the name index.
  auto& ids = name_index_[a.name];
  ids.erase(std::remove(ids.begin(), ids.end(), absorbed), ids.end());
  a.alive = false;
  a.papers.clear();
  --num_alive_;
  return iuad::Status::OK();
}

const std::vector<VertexId>& CollabGraph::VerticesWithName(
    const std::string& name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? kNoVertices : it->second;
}

std::vector<std::string> CollabGraph::Names() const {
  std::vector<std::string> names;
  names.reserve(name_index_.size());
  for (const auto& [name, ids] : name_index_) {
    if (!ids.empty()) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<VertexId> CollabGraph::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(static_cast<size_t>(num_alive_));
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (alive(v)) out.push_back(v);
  }
  return out;
}

}  // namespace iuad::graph
