#include "graph/collab_graph.h"

#include <algorithm>

namespace iuad::graph {

namespace {
const std::vector<VertexId> kNoVertices;

/// First slot in [b, e) with neighbor id >= nbr.
const CollabGraph::HalfEdge* LowerBound(const CollabGraph::HalfEdge* b,
                                        const CollabGraph::HalfEdge* e,
                                        VertexId nbr) {
  return std::lower_bound(b, e, nbr,
                          [](const CollabGraph::HalfEdge& h, VertexId n) {
                            return h.nbr < n;
                          });
}
}  // namespace

const CollabGraph::HalfEdge* CollabGraph::NeighborView::Find(
    VertexId nbr) const {
  const HalfEdge* h = LowerBound(b_, be_, nbr);
  if (h != be_ && h->nbr == nbr) return h->edge >= 0 ? h : nullptr;
  h = LowerBound(o_, oe_, nbr);
  if (h != oe_ && h->nbr == nbr) return h;
  return nullptr;
}

void CollabGraph::Deduplicate(std::vector<int>* papers) {
  std::sort(papers->begin(), papers->end());
  papers->erase(std::unique(papers->begin(), papers->end()), papers->end());
}

VertexId CollabGraph::AddVertex(std::string_view name,
                                std::vector<int> papers) {
  return AddVertexWithId(interner_.Intern(name), std::move(papers));
}

VertexId CollabGraph::AddVertexWithId(util::NameId name_id,
                                      std::vector<int> papers) {
  Deduplicate(&papers);
  const VertexId id = static_cast<VertexId>(vertices_.size());
  if (static_cast<size_t>(name_id) >= verts_of_name_.size()) {
    verts_of_name_.resize(static_cast<size_t>(name_id) + 1);
    names_cache_valid_ = false;  // brand-new name
  } else if (verts_of_name_[static_cast<size_t>(name_id)].empty()) {
    names_cache_valid_ = false;  // name returns from (or starts) empty
  }
  verts_of_name_[static_cast<size_t>(name_id)].push_back(id);
  vertices_.push_back(Vertex{name_id, std::move(papers), true});
  row_begin_.push_back(row_begin_.back());
  overflow_.emplace_back();
  live_degree_.push_back(0);
  ++num_alive_;
  return id;
}

iuad::Result<CollabGraph> CollabGraph::Restore(
    std::vector<VertexRecord> vertices, const std::vector<EdgeRecord>& edges) {
  CollabGraph g;
  const auto n = static_cast<VertexId>(vertices.size());
  g.vertices_.reserve(vertices.size());
  for (VertexId v = 0; v < n; ++v) {
    VertexRecord& rec = vertices[static_cast<size_t>(v)];
    const util::NameId id = g.interner_.Intern(rec.name);
    if (static_cast<size_t>(id) >= g.verts_of_name_.size()) {
      g.verts_of_name_.resize(static_cast<size_t>(id) + 1);
    }
    g.Deduplicate(&rec.papers);
    g.vertices_.push_back(Vertex{id, std::move(rec.papers), rec.alive});
    g.row_begin_.push_back(0);
    g.overflow_.emplace_back();
    g.live_degree_.push_back(0);
    if (rec.alive) {
      g.verts_of_name_[static_cast<size_t>(id)].push_back(v);
      ++g.num_alive_;
    }
  }
  for (const EdgeRecord& e : edges) {
    if (e.u < 0 || e.v < 0 || e.u >= n || e.v >= n) {
      return iuad::Status::InvalidArgument("graph restore: edge endpoint " +
                                           std::to_string(e.u) + "-" +
                                           std::to_string(e.v) +
                                           " out of range");
    }
    IUAD_RETURN_NOT_OK(g.AddEdgePapers(e.u, e.v, e.papers));
  }
  g.Compact();
  return g;
}

iuad::Result<CollabGraph> CollabGraph::Restore(
    const std::vector<std::string>& names, std::vector<Vertex> vertices,
    const std::vector<EdgeRecord>& edges) {
  CollabGraph g;
  for (const auto& name : names) g.interner_.Intern(name);
  if (static_cast<size_t>(g.interner_.size()) != names.size()) {
    return iuad::Status::InvalidArgument(
        "graph restore: duplicate entry in interned name table");
  }
  g.verts_of_name_.resize(names.size());
  const auto n = static_cast<VertexId>(vertices.size());
  g.vertices_ = std::move(vertices);
  for (VertexId v = 0; v < n; ++v) {
    Vertex& vx = g.vertices_[static_cast<size_t>(v)];
    if (vx.name_id < 0 || static_cast<size_t>(vx.name_id) >= names.size()) {
      return iuad::Status::InvalidArgument(
          "graph restore: vertex name id out of table range");
    }
    g.Deduplicate(&vx.papers);
    g.row_begin_.push_back(0);
    g.overflow_.emplace_back();
    g.live_degree_.push_back(0);
    if (vx.alive) {
      g.verts_of_name_[static_cast<size_t>(vx.name_id)].push_back(v);
      ++g.num_alive_;
    }
  }
  for (const EdgeRecord& e : edges) {
    if (e.u < 0 || e.v < 0 || e.u >= n || e.v >= n) {
      return iuad::Status::InvalidArgument("graph restore: edge endpoint " +
                                           std::to_string(e.u) + "-" +
                                           std::to_string(e.v) +
                                           " out of range");
    }
    IUAD_RETURN_NOT_OK(g.AddEdgePapers(e.u, e.v, e.papers));
  }
  g.Compact();
  return g;
}

std::vector<EdgeRecord> CollabGraph::Edges() const {
  std::vector<EdgeRecord> out;
  for (VertexId u = 0; u < num_vertices(); ++u) {
    if (!alive(u)) continue;
    for (const auto& [v, papers] : NeighborsOf(u)) {
      if (u < v) out.push_back({u, v, papers});
    }
  }
  // Row iteration already yields (u, v) ascending; kept as a guarantee.
  std::sort(out.begin(), out.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  return out;
}

CollabGraph::NeighborView CollabGraph::NeighborsOf(VertexId v) const {
  const size_t sv = static_cast<size_t>(v);
  const HalfEdge* base = slots_.data();
  const std::vector<HalfEdge>& ovf = overflow_[sv];
  return NeighborView(base + row_begin_[sv], base + row_begin_[sv + 1],
                      ovf.data(), ovf.data() + ovf.size(), &edge_papers_,
                      static_cast<size_t>(live_degree_[sv]));
}

CollabGraph::HalfEdge* CollabGraph::FindHalf(VertexId u, VertexId nbr) {
  const size_t su = static_cast<size_t>(u);
  HalfEdge* b = slots_.data() + row_begin_[su];
  HalfEdge* e = slots_.data() + row_begin_[su + 1];
  HalfEdge* h = const_cast<HalfEdge*>(LowerBound(b, e, nbr));
  if (h != e && h->nbr == nbr) return h;
  auto& ovf = overflow_[su];
  h = const_cast<HalfEdge*>(
      LowerBound(ovf.data(), ovf.data() + ovf.size(), nbr));
  if (h != ovf.data() + ovf.size() && h->nbr == nbr) return h;
  return nullptr;
}

int32_t CollabGraph::AllocEdge(std::vector<int> papers) {
  if (!free_edges_.empty()) {
    const int32_t e = free_edges_.back();
    free_edges_.pop_back();
    edge_papers_[static_cast<size_t>(e)] = std::move(papers);
    return e;
  }
  edge_papers_.push_back(std::move(papers));
  return static_cast<int32_t>(edge_papers_.size() - 1);
}

void CollabGraph::FreeEdge(int32_t e) {
  std::vector<int>().swap(edge_papers_[static_cast<size_t>(e)]);
  free_edges_.push_back(e);
}

void CollabGraph::AttachHalf(VertexId u, VertexId nbr, int32_t e) {
  const size_t su = static_cast<size_t>(u);
  HalfEdge* b = slots_.data() + row_begin_[su];
  HalfEdge* be = slots_.data() + row_begin_[su + 1];
  HalfEdge* h = const_cast<HalfEdge*>(LowerBound(b, be, nbr));
  if (h != be && h->nbr == nbr) {
    h->edge = e;  // revive the tombstoned base slot in place
    ++live_base_half_edges_;
    return;
  }
  auto& ovf = overflow_[su];
  const auto at = LowerBound(ovf.data(), ovf.data() + ovf.size(), nbr);
  ovf.insert(ovf.begin() + (at - ovf.data()), HalfEdge{nbr, e});
  ++overflow_half_edges_;
}

void CollabGraph::DetachHalf(VertexId u, VertexId nbr) {
  const size_t su = static_cast<size_t>(u);
  HalfEdge* b = slots_.data() + row_begin_[su];
  HalfEdge* be = slots_.data() + row_begin_[su + 1];
  HalfEdge* h = const_cast<HalfEdge*>(LowerBound(b, be, nbr));
  if (h != be && h->nbr == nbr && h->edge >= 0) {
    h->edge = -1;
    --live_base_half_edges_;
    return;
  }
  auto& ovf = overflow_[su];
  const auto at = LowerBound(ovf.data(), ovf.data() + ovf.size(), nbr);
  if (at != ovf.data() + ovf.size() && at->nbr == nbr) {
    ovf.erase(ovf.begin() + (at - ovf.data()));
    --overflow_half_edges_;
  }
}

void CollabGraph::MaybeCompact() {
  if (overflow_half_edges_ >= 1024 &&
      overflow_half_edges_ * 4 >= live_base_half_edges_) {
    Compact();
  }
}

void CollabGraph::Compact() {
  const size_t n = vertices_.size();
  std::vector<HalfEdge> slots;
  slots.reserve(live_base_half_edges_ + overflow_half_edges_);
  std::vector<uint32_t> rows(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    rows[v] = static_cast<uint32_t>(slots.size());
    const HalfEdge* b = slots_.data() + row_begin_[v];
    const HalfEdge* be = slots_.data() + row_begin_[v + 1];
    const auto& ovf = overflow_[v];
    const HalfEdge* o = ovf.data();
    const HalfEdge* oe = ovf.data() + ovf.size();
    while (b != be || o != oe) {
      if (b != be && b->edge < 0) {
        ++b;  // drop tombstone
      } else if (o == oe || (b != be && b->nbr < o->nbr)) {
        slots.push_back(*b++);
      } else {
        slots.push_back(*o++);
      }
    }
  }
  rows[n] = static_cast<uint32_t>(slots.size());
  slots_ = std::move(slots);
  row_begin_ = std::move(rows);
  live_base_half_edges_ = slots_.size();
  std::vector<std::vector<HalfEdge>>(n).swap(overflow_);
  overflow_half_edges_ = 0;
}

iuad::Status CollabGraph::AddEdgePapers(VertexId u, VertexId v,
                                        const std::vector<int>& papers) {
  if (u == v) {
    return iuad::Status::InvalidArgument("self-loop rejected: vertex " +
                                         std::to_string(u));
  }
  if (!alive(u) || !alive(v)) {
    return iuad::Status::FailedPrecondition("edge endpoint is dead");
  }
  HalfEdge* h = FindHalf(u, v);
  if (h != nullptr && h->edge >= 0) {
    auto& ps = edge_papers_[static_cast<size_t>(h->edge)];
    ps.insert(ps.end(), papers.begin(), papers.end());
    Deduplicate(&ps);
    return iuad::Status::OK();
  }
  std::vector<int> ps = papers;
  Deduplicate(&ps);
  const int32_t e = AllocEdge(std::move(ps));
  AttachHalf(u, v, e);
  AttachHalf(v, u, e);
  ++num_edges_;
  ++live_degree_[static_cast<size_t>(u)];
  ++live_degree_[static_cast<size_t>(v)];
  MaybeCompact();
  return iuad::Status::OK();
}

void CollabGraph::AddVertexPapers(VertexId v, const std::vector<int>& papers) {
  auto& ps = vertices_[static_cast<size_t>(v)].papers;
  ps.insert(ps.end(), papers.begin(), papers.end());
  Deduplicate(&ps);
}

void CollabGraph::SetVertexPapers(VertexId v, std::vector<int> papers) {
  Deduplicate(&papers);
  vertices_[static_cast<size_t>(v)].papers = std::move(papers);
}

iuad::Status CollabGraph::SetEdgePapers(VertexId u, VertexId v,
                                        std::vector<int> papers) {
  if (u == v) return iuad::Status::InvalidArgument("self-loop rejected");
  if (!alive(u) || !alive(v)) {
    return iuad::Status::FailedPrecondition("edge endpoint is dead");
  }
  HalfEdge* h = FindHalf(u, v);
  const bool existed = h != nullptr && h->edge >= 0;
  if (papers.empty()) {
    if (existed) {
      const int32_t e = h->edge;
      DetachHalf(u, v);
      DetachHalf(v, u);
      FreeEdge(e);
      --num_edges_;
      --live_degree_[static_cast<size_t>(u)];
      --live_degree_[static_cast<size_t>(v)];
    }
    return iuad::Status::OK();
  }
  Deduplicate(&papers);
  if (existed) {
    edge_papers_[static_cast<size_t>(h->edge)] = std::move(papers);
    return iuad::Status::OK();
  }
  const int32_t e = AllocEdge(std::move(papers));
  AttachHalf(u, v, e);
  AttachHalf(v, u, e);
  ++num_edges_;
  ++live_degree_[static_cast<size_t>(u)];
  ++live_degree_[static_cast<size_t>(v)];
  MaybeCompact();
  return iuad::Status::OK();
}

iuad::Status CollabGraph::MergeVertices(VertexId kept, VertexId absorbed) {
  if (kept == absorbed) {
    return iuad::Status::InvalidArgument("cannot merge a vertex with itself");
  }
  if (!alive(kept) || !alive(absorbed)) {
    return iuad::Status::FailedPrecondition("merge endpoint is dead");
  }
  Vertex& k = vertices_[static_cast<size_t>(kept)];
  Vertex& a = vertices_[static_cast<size_t>(absorbed)];

  // Union paper sets.
  k.papers.insert(k.papers.end(), a.papers.begin(), a.papers.end());
  Deduplicate(&k.papers);

  // Materialize absorbed's live adjacency first: rewiring mutates the rows.
  std::vector<std::pair<VertexId, int32_t>> to_rewire;
  to_rewire.reserve(static_cast<size_t>(live_degree_[
      static_cast<size_t>(absorbed)]));
  for (const auto& [nbr, papers] : NeighborsOf(absorbed)) {
    (void)papers;
    to_rewire.emplace_back(nbr, FindHalf(absorbed, nbr)->edge);
  }
  for (const auto& [nbr, e] : to_rewire) {
    DetachHalf(absorbed, nbr);
    DetachHalf(nbr, absorbed);
    --num_edges_;
    --live_degree_[static_cast<size_t>(nbr)];
    if (nbr == kept) {
      FreeEdge(e);  // would-be self-loop: drop, as before
      continue;
    }
    HalfEdge* h = FindHalf(kept, nbr);
    if (h != nullptr && h->edge >= 0) {
      // Parallel edge: union paper sets, release the absorbed one.
      auto& dst = edge_papers_[static_cast<size_t>(h->edge)];
      const auto& src = edge_papers_[static_cast<size_t>(e)];
      dst.insert(dst.end(), src.begin(), src.end());
      Deduplicate(&dst);
      FreeEdge(e);
    } else {
      // Move the edge wholesale: the shared paper set keeps its slot.
      AttachHalf(kept, nbr, e);
      AttachHalf(nbr, kept, e);
      ++num_edges_;
      ++live_degree_[static_cast<size_t>(kept)];
      ++live_degree_[static_cast<size_t>(nbr)];
    }
  }
  live_degree_[static_cast<size_t>(absorbed)] = 0;

  // Retire `absorbed` from the name index.
  auto& ids = verts_of_name_[static_cast<size_t>(a.name_id)];
  ids.erase(std::remove(ids.begin(), ids.end(), absorbed), ids.end());
  if (ids.empty()) names_cache_valid_ = false;
  a.alive = false;
  std::vector<int>().swap(a.papers);
  --num_alive_;
  MaybeCompact();
  return iuad::Status::OK();
}

const std::vector<VertexId>& CollabGraph::VerticesWithName(
    std::string_view name) const {
  return VerticesWithId(interner_.Lookup(name));
}

const std::vector<VertexId>& CollabGraph::VerticesWithId(
    util::NameId id) const {
  if (id < 0 || static_cast<size_t>(id) >= verts_of_name_.size()) {
    return kNoVertices;
  }
  return verts_of_name_[static_cast<size_t>(id)];
}

const std::vector<util::NameId>& CollabGraph::NameIdsSorted() const {
  if (!names_cache_valid_) {
    sorted_name_ids_.clear();
    for (size_t id = 0; id < verts_of_name_.size(); ++id) {
      if (!verts_of_name_[id].empty()) {
        sorted_name_ids_.push_back(static_cast<util::NameId>(id));
      }
    }
    std::sort(sorted_name_ids_.begin(), sorted_name_ids_.end(),
              [this](util::NameId a, util::NameId b) {
                return interner_.View(a) < interner_.View(b);
              });
    names_cache_valid_ = true;
  }
  return sorted_name_ids_;
}

std::vector<std::string> CollabGraph::Names() const {
  const auto& ids = NameIdsSorted();
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (util::NameId id : ids) names.emplace_back(interner_.View(id));
  return names;
}

std::vector<VertexId> CollabGraph::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(static_cast<size_t>(num_alive_));
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (alive(v)) out.push_back(v);
  }
  return out;
}

size_t CollabGraph::MemoryBytes() const {
  size_t b = 0;
  b += vertices_.capacity() * sizeof(Vertex);
  for (const auto& vx : vertices_) b += vx.papers.capacity() * sizeof(int);
  b += row_begin_.capacity() * sizeof(uint32_t);
  b += slots_.capacity() * sizeof(HalfEdge);
  b += overflow_.capacity() * sizeof(std::vector<HalfEdge>);
  for (const auto& o : overflow_) b += o.capacity() * sizeof(HalfEdge);
  b += edge_papers_.capacity() * sizeof(std::vector<int>);
  for (const auto& ps : edge_papers_) b += ps.capacity() * sizeof(int);
  b += free_edges_.capacity() * sizeof(int32_t);
  b += live_degree_.capacity() * sizeof(int);
  b += verts_of_name_.capacity() * sizeof(std::vector<VertexId>);
  for (const auto& ids : verts_of_name_) {
    b += ids.capacity() * sizeof(VertexId);
  }
  b += sorted_name_ids_.capacity() * sizeof(util::NameId);
  b += interner_.MemoryBytes();
  return b;
}

}  // namespace iuad::graph
