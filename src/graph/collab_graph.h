#ifndef IUAD_GRAPH_COLLAB_GRAPH_H_
#define IUAD_GRAPH_COLLAB_GRAPH_H_

/// \file collab_graph.h
/// The collaboration network G = (V, E, P) of Definition 1: vertices are
/// *author candidates* (a name plus the set of papers attributed to that
/// candidate), and each edge (u, v) carries the paper set P_uv co-authored
/// by the two endpoints. Both the SCN and the GCN are instances of this
/// structure; GCN construction mutates it through MergeVertices.

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace iuad::graph {

using VertexId = int;

/// One author candidate.
struct Vertex {
  std::string name;
  /// Papers attributed to this candidate (sorted, unique).
  std::vector<int> papers;
  /// False after this vertex is absorbed by a merge.
  bool alive = true;
};

/// One serialized edge: endpoints (u < v) plus the shared paper set.
struct EdgeRecord {
  VertexId u = -1;
  VertexId v = -1;
  std::vector<int> papers;
};

/// Undirected multigraph-with-paper-sets. Vertex ids are dense and stable;
/// merged-away vertices stay allocated but dead (so ids held by callers
/// never dangle).
class CollabGraph {
 public:
  /// Adds a vertex for `name` holding `papers` (deduplicated, sorted).
  VertexId AddVertex(std::string name, std::vector<int> papers);

  /// Rebuilds a graph from serialized parts (snapshot load, src/io):
  /// `vertices` in id order — dead (merged-away) vertices included, so ids
  /// land exactly where they were — and `edges` between alive endpoints.
  /// The name index lists alive vertices in ascending id order, which is
  /// the order organic construction produces (AddVertex appends, merges
  /// erase), so VerticesWithName tie-breaking behaves identically to the
  /// never-serialized graph. Fails on out-of-range endpoints, self-loops,
  /// and edges touching dead vertices.
  static iuad::Result<CollabGraph> Restore(std::vector<Vertex> vertices,
                                           const std::vector<EdgeRecord>& edges);

  /// The edge list of the alive subgraph with u < v, sorted by (u, v):
  /// the canonical serialization order (snapshot save, src/io).
  std::vector<EdgeRecord> Edges() const;

  /// Adds `papers` to the edge (u, v), creating it if absent. Self-loops are
  /// rejected. Both endpoints must be alive.
  iuad::Status AddEdgePapers(VertexId u, VertexId v, const std::vector<int>& papers);

  /// Adds `papers` to vertex v's own paper set.
  void AddVertexPapers(VertexId v, const std::vector<int>& papers);

  /// Replaces vertex v's paper set (deduplicated). Used by the
  /// vertex-splitting augmentation (Sec. V-F2).
  void SetVertexPapers(VertexId v, std::vector<int> papers);

  /// Replaces the paper set of edge (u, v); an empty set removes the edge.
  /// Used by vertex-split surgery.
  iuad::Status SetEdgePapers(VertexId u, VertexId v, std::vector<int> papers);

  /// Merges `absorbed` into `kept`: paper sets union, edges rewire (parallel
  /// edges union their paper sets; the edge between the two, if any, is
  /// dropped as it becomes a self-loop). `absorbed` becomes dead.
  iuad::Status MergeVertices(VertexId kept, VertexId absorbed);

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_alive() const { return num_alive_; }
  int num_edges() const { return num_edges_; }

  const Vertex& vertex(VertexId v) const {
    return vertices_[static_cast<size_t>(v)];
  }
  bool alive(VertexId v) const { return vertices_[static_cast<size_t>(v)].alive; }

  /// Neighbor -> papers-on-edge map for an alive vertex.
  const std::unordered_map<VertexId, std::vector<int>>& NeighborsOf(
      VertexId v) const {
    return adj_[static_cast<size_t>(v)];
  }

  int DegreeOf(VertexId v) const {
    return static_cast<int>(adj_[static_cast<size_t>(v)].size());
  }

  /// Alive vertices currently bearing `name` (empty if none).
  const std::vector<VertexId>& VerticesWithName(const std::string& name) const;

  /// All names with at least one alive vertex.
  std::vector<std::string> Names() const;

  /// All alive vertex ids.
  std::vector<VertexId> AliveVertices() const;

 private:
  void Deduplicate(std::vector<int>* papers);

  std::vector<Vertex> vertices_;
  std::vector<std::unordered_map<VertexId, std::vector<int>>> adj_;
  std::unordered_map<std::string, std::vector<VertexId>> name_index_;
  int num_alive_ = 0;
  int num_edges_ = 0;
};

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_COLLAB_GRAPH_H_
