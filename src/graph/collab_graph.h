#ifndef IUAD_GRAPH_COLLAB_GRAPH_H_
#define IUAD_GRAPH_COLLAB_GRAPH_H_

/// \file collab_graph.h
/// The collaboration network G = (V, E, P) of Definition 1: vertices are
/// *author candidates* (a name plus the set of papers attributed to that
/// candidate), and each edge (u, v) carries the paper set P_uv co-authored
/// by the two endpoints. Both the SCN and the GCN are instances of this
/// structure; GCN construction mutates it through MergeVertices.
///
/// Memory layout (the million-author design, see README "Memory model"):
///  * Names are interned once in an arena (util::StringInterner); vertices,
///    the name index, and every downstream layer key on the 4-byte NameId.
///  * Adjacency is CSR-style: one contiguous array of 8-byte {nbr, edge}
///    half-edge slots with per-vertex row offsets, sorted by neighbor id.
///    Mutations land in a small per-vertex sorted overflow log (edge
///    removals tombstone their base slot in place); when the overflow grows
///    past a fraction of the base it is folded in by Compact(), which the
///    refresh points also call explicitly.
///  * Each undirected edge's paper set is stored once (edge_papers_) and
///    shared by both half-edges, halving the old fwd/bwd duplication.
///
/// NeighborsOf iterates in ascending neighbor order — deterministic by
/// construction, unlike the old per-vertex hash maps.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/interner.h"
#include "util/status.h"

namespace iuad::graph {

using VertexId = int;

/// One author candidate. The name lives in the graph's interner; use
/// CollabGraph::NameOf for the string.
struct Vertex {
  util::NameId name_id = util::kInvalidNameId;
  /// Papers attributed to this candidate (sorted, unique).
  std::vector<int> papers;
  /// False after this vertex is absorbed by a merge.
  bool alive = true;
};

/// Serialization-boundary vertex (snapshot formats that predate the
/// interner table store names inline).
struct VertexRecord {
  std::string name;
  std::vector<int> papers;
  bool alive = true;
};

/// One serialized edge: endpoints (u < v) plus the shared paper set.
struct EdgeRecord {
  VertexId u = -1;
  VertexId v = -1;
  std::vector<int> papers;
};

/// Undirected multigraph-with-paper-sets. Vertex ids are dense and stable;
/// merged-away vertices stay allocated but dead (so ids held by callers
/// never dangle).
class CollabGraph {
 public:
  /// One CSR half-edge slot: neighbor id plus the shared-paper-set index.
  /// `edge` < 0 marks a tombstoned base slot (removed edge); the neighbor
  /// id is kept so binary search over the row stays valid.
  struct HalfEdge {
    VertexId nbr = -1;
    int32_t edge = -1;
  };

  /// Read-only view of one vertex's live adjacency: a merge of the sorted
  /// base row and the sorted overflow log, iterated in ascending neighbor
  /// order. A cheap value type (four pointers); invalidated by any graph
  /// mutation — materialize first if you mutate while iterating.
  class NeighborView {
   public:
    class const_iterator {
     public:
      using value_type = std::pair<VertexId, const std::vector<int>&>;

      value_type operator*() const {
        const HalfEdge& h = Current();
        return {h.nbr, (*papers_)[static_cast<size_t>(h.edge)]};
      }
      const_iterator& operator++() {
        if (o_ == oe_ || (b_ != be_ && b_->nbr < o_->nbr)) {
          ++b_;
          SkipDead();
        } else {
          ++o_;
        }
        return *this;
      }
      bool operator==(const const_iterator& other) const {
        return b_ == other.b_ && o_ == other.o_;
      }
      bool operator!=(const const_iterator& other) const {
        return !(*this == other);
      }

     private:
      friend class NeighborView;
      const_iterator(const HalfEdge* b, const HalfEdge* be, const HalfEdge* o,
                     const HalfEdge* oe,
                     const std::vector<std::vector<int>>* papers)
          : b_(b), be_(be), o_(o), oe_(oe), papers_(papers) {
        SkipDead();
      }
      const HalfEdge& Current() const {
        if (o_ == oe_ || (b_ != be_ && b_->nbr < o_->nbr)) return *b_;
        return *o_;
      }
      void SkipDead() {
        while (b_ != be_ && b_->edge < 0) ++b_;
      }

      const HalfEdge* b_;
      const HalfEdge* be_;
      const HalfEdge* o_;
      const HalfEdge* oe_;
      const std::vector<std::vector<int>>* papers_;
    };

    const_iterator begin() const {
      return const_iterator(b_, be_, o_, oe_, papers_);
    }
    const_iterator end() const {
      return const_iterator(be_, be_, oe_, oe_, papers_);
    }
    size_t size() const { return degree_; }
    bool empty() const { return degree_ == 0; }
    /// 1 if `nbr` is a live neighbor, else 0 (unordered_map-compatible).
    size_t count(VertexId nbr) const { return Find(nbr) != nullptr ? 1 : 0; }
    /// The shared paper set of the edge to `nbr`; throws std::out_of_range
    /// if absent. The reference outlives the view (it points into the
    /// graph) but not the next mutation of that edge.
    const std::vector<int>& at(VertexId nbr) const {
      const HalfEdge* h = Find(nbr);
      if (h == nullptr) throw std::out_of_range("NeighborView::at");
      return (*papers_)[static_cast<size_t>(h->edge)];
    }

   private:
    friend class CollabGraph;
    NeighborView(const HalfEdge* b, const HalfEdge* be, const HalfEdge* o,
                 const HalfEdge* oe,
                 const std::vector<std::vector<int>>* papers, size_t degree)
        : b_(b), be_(be), o_(o), oe_(oe), papers_(papers), degree_(degree) {}
    const HalfEdge* Find(VertexId nbr) const;

    const HalfEdge* b_;
    const HalfEdge* be_;
    const HalfEdge* o_;
    const HalfEdge* oe_;
    const std::vector<std::vector<int>>* papers_;
    size_t degree_;
  };

  /// Adds a vertex for `name` holding `papers` (deduplicated, sorted).
  VertexId AddVertex(std::string_view name, std::vector<int> papers);

  /// AddVertex for a name already interned in this graph (id-preserving
  /// fast path: vertex splitting, snapshot v3 load).
  VertexId AddVertexWithId(util::NameId name_id, std::vector<int> papers);

  /// Rebuilds a graph from serialized parts (snapshot load, src/io):
  /// `vertices` in id order — dead (merged-away) vertices included, so ids
  /// land exactly where they were — and `edges` between alive endpoints.
  /// The name index lists alive vertices in ascending id order, which is
  /// the order organic construction produces (AddVertex appends, merges
  /// erase), so VerticesWithName tie-breaking behaves identically to the
  /// never-serialized graph. Fails on out-of-range endpoints, self-loops,
  /// and edges touching dead vertices. The restored adjacency is compacted.
  static iuad::Result<CollabGraph> Restore(
      std::vector<VertexRecord> vertices, const std::vector<EdgeRecord>& edges);

  /// Interned restore (snapshot v3): `names[i]` is the string of NameId i;
  /// vertices reference the table through Vertex::name_id.
  static iuad::Result<CollabGraph> Restore(
      const std::vector<std::string>& names, std::vector<Vertex> vertices,
      const std::vector<EdgeRecord>& edges);

  /// The edge list of the alive subgraph with u < v, sorted by (u, v):
  /// the canonical serialization order (snapshot save, src/io).
  std::vector<EdgeRecord> Edges() const;

  /// Adds `papers` to the edge (u, v), creating it if absent. Self-loops are
  /// rejected. Both endpoints must be alive.
  iuad::Status AddEdgePapers(VertexId u, VertexId v,
                             const std::vector<int>& papers);

  /// Adds `papers` to vertex v's own paper set.
  void AddVertexPapers(VertexId v, const std::vector<int>& papers);

  /// Replaces vertex v's paper set (deduplicated). Used by the
  /// vertex-splitting augmentation (Sec. V-F2).
  void SetVertexPapers(VertexId v, std::vector<int> papers);

  /// Replaces the paper set of edge (u, v); an empty set removes the edge.
  /// Used by vertex-split surgery.
  iuad::Status SetEdgePapers(VertexId u, VertexId v, std::vector<int> papers);

  /// Merges `absorbed` into `kept`: paper sets union, edges rewire (parallel
  /// edges union their paper sets; the edge between the two, if any, is
  /// dropped as it becomes a self-loop). `absorbed` becomes dead.
  iuad::Status MergeVertices(VertexId kept, VertexId absorbed);

  /// Folds the overflow log into the base CSR arrays and drops tombstones.
  /// Purely a layout operation — observable state is unchanged. Called
  /// automatically when the overflow outgrows the base, and explicitly at
  /// restore/refresh points.
  void Compact();

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_alive() const { return num_alive_; }
  int num_edges() const { return num_edges_; }

  const Vertex& vertex(VertexId v) const {
    return vertices_[static_cast<size_t>(v)];
  }
  bool alive(VertexId v) const {
    return vertices_[static_cast<size_t>(v)].alive;
  }

  /// The (arena-backed) name of vertex v; valid for the graph's lifetime.
  std::string_view NameOf(VertexId v) const {
    return interner_.View(vertices_[static_cast<size_t>(v)].name_id);
  }

  /// Interns `name` without touching any vertex: returns the id any future
  /// vertex bearing that name will carry. The shard router resolves byline
  /// names to block ids up front for pipeline conflict tracking — callers
  /// must be the graph's single mutator (concurrent interner *readers* are
  /// safe; see util::StringInterner).
  util::NameId InternName(std::string_view name) {
    return interner_.Intern(name);
  }

  /// The graph's name interner. Downstream layers resolve strings to ids
  /// here (reader-safe concurrently with the single ingestion writer).
  const util::StringInterner& interner() const { return interner_; }

  /// Live neighbor -> shared-paper-set view for a vertex (empty for dead
  /// vertices). Ascending neighbor order.
  NeighborView NeighborsOf(VertexId v) const;

  int DegreeOf(VertexId v) const {
    return live_degree_[static_cast<size_t>(v)];
  }

  /// Alive vertices currently bearing `name` (empty if none).
  const std::vector<VertexId>& VerticesWithName(std::string_view name) const;

  /// Alive vertices of an interned name id (empty if none or out of range).
  const std::vector<VertexId>& VerticesWithId(util::NameId id) const;

  /// Ids of all names with at least one alive vertex, ordered by name
  /// string — the deterministic block order. Cached; rebuilt lazily after
  /// the name set changes. Not safe concurrently with mutation (the
  /// single-writer contract all mutation already follows).
  const std::vector<util::NameId>& NameIdsSorted() const;

  /// All names with at least one alive vertex, sorted. Materializes
  /// strings — prefer NameIdsSorted on hot paths.
  std::vector<std::string> Names() const;

  /// All alive vertex ids.
  std::vector<VertexId> AliveVertices() const;

  /// Heap footprint of the graph structures (vertices, CSR arrays, shared
  /// paper sets, name index, interner arena). The bytes_per_author bench
  /// metric is MemoryBytes() / num_alive().
  size_t MemoryBytes() const;

 private:
  void Deduplicate(std::vector<int>* papers);
  /// Mutable half-edge slot for (u, nbr), tombstones included; null if the
  /// neighbor id has no slot at all.
  HalfEdge* FindHalf(VertexId u, VertexId nbr);
  const HalfEdge* FindHalfConst(VertexId u, VertexId nbr) const;
  /// Allocates an edge-paper slot (freelist-backed) holding `papers`.
  int32_t AllocEdge(std::vector<int> papers);
  void FreeEdge(int32_t e);
  /// Inserts a live half-edge (u, nbr)->e, reviving a tombstone in place
  /// or splicing into the sorted overflow row.
  void AttachHalf(VertexId u, VertexId nbr, int32_t e);
  /// Removes the live half-edge (u, nbr): tombstones a base slot, erases
  /// an overflow entry.
  void DetachHalf(VertexId u, VertexId nbr);
  void MaybeCompact();

  util::StringInterner interner_;
  std::vector<Vertex> vertices_;

  // CSR adjacency: base row v is slots_[row_begin_[v] .. row_begin_[v+1]).
  std::vector<uint32_t> row_begin_{0};
  std::vector<HalfEdge> slots_;
  std::vector<std::vector<HalfEdge>> overflow_;  ///< per-vertex, sorted, live
  size_t overflow_half_edges_ = 0;
  size_t live_base_half_edges_ = 0;

  // Shared per-undirected-edge paper sets (+ freelist of removed slots).
  std::vector<std::vector<int>> edge_papers_;
  std::vector<int32_t> free_edges_;

  std::vector<int> live_degree_;

  // Name index by NameId; the sorted-id cache backs Names()/NameIdsSorted().
  std::vector<std::vector<VertexId>> verts_of_name_;
  mutable std::vector<util::NameId> sorted_name_ids_;
  mutable bool names_cache_valid_ = false;

  int num_alive_ = 0;
  int num_edges_ = 0;
};

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_COLLAB_GRAPH_H_
