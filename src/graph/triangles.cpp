#include "graph/triangles.h"

#include <algorithm>

namespace iuad::graph {

std::vector<Triangle> EnumerateTriangles(const CollabGraph& graph) {
  std::vector<Triangle> out;
  // For u < v < w ordering: for each edge (u, v) with u < v, intersect
  // higher neighbors.
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    if (!graph.alive(u)) continue;
    for (const auto& [v, papers_uv] : graph.NeighborsOf(u)) {
      if (v <= u) continue;
      // Intersect neighbors of u and v greater than v.
      const auto& nu = graph.NeighborsOf(u);
      const auto& nv = graph.NeighborsOf(v);
      const auto& smaller = nu.size() <= nv.size() ? nu : nv;
      const auto& larger = nu.size() <= nv.size() ? nv : nu;
      for (const auto& [w, papers] : smaller) {
        if (w <= v) continue;
        if (larger.count(w)) out.push_back({u, v, w});
      }
    }
  }
  return out;
}

std::vector<std::array<VertexId, 2>> TrianglesOf(const CollabGraph& graph,
                                                 VertexId v) {
  std::vector<std::array<VertexId, 2>> out;
  if (!graph.alive(v)) return out;
  const auto& nv = graph.NeighborsOf(v);
  for (const auto& [a, papers_a] : nv) {
    const auto& na = graph.NeighborsOf(a);
    for (const auto& [b, papers_b] : nv) {
      if (b <= a) continue;
      if (na.count(b)) out.push_back({a, b});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> TriangleCounts(const CollabGraph& graph) {
  std::vector<int64_t> counts(static_cast<size_t>(graph.num_vertices()), 0);
  for (const auto& t : EnumerateTriangles(graph)) {
    for (VertexId v : t) ++counts[static_cast<size_t>(v)];
  }
  return counts;
}

}  // namespace iuad::graph
