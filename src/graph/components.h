#ifndef IUAD_GRAPH_COMPONENTS_H_
#define IUAD_GRAPH_COMPONENTS_H_

/// \file components.h
/// Connected components and degree statistics over the alive subgraph.
/// Used by the descriptive-analysis bench (Fig. 3) and in tests asserting
/// SCN structural invariants.

#include <cstdint>
#include <vector>

#include "graph/collab_graph.h"

namespace iuad::graph {

/// Component id per vertex (dead vertices get -1). Ids are dense from 0.
std::vector<int> ConnectedComponents(const CollabGraph& graph,
                                     int* num_components);

/// Degrees of alive vertices (for power-law inspection).
std::vector<int64_t> DegreeSequence(const CollabGraph& graph);

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_COMPONENTS_H_
