#ifndef IUAD_GRAPH_GRAPH_IO_H_
#define IUAD_GRAPH_GRAPH_IO_H_

/// \file graph_io.h
/// TSV persistence for reconstructed collaboration networks, so a library
/// can build the GCN once and serve it later (the incremental path then
/// resumes from disk). Only alive vertices are exported; ids are re-densified
/// on save, so a loaded graph's ids are NOT the original ids — callers that
/// need stable identity should key on (name, paper set).
///
/// Format (one row per element, tab-separated):
///   V <TAB> id <TAB> name <TAB> p1|p2|...
///   E <TAB> u <TAB> v <TAB> p1|p2|...

#include <string>

#include "graph/collab_graph.h"
#include "util/status.h"

namespace iuad::graph {

/// Writes the alive subgraph of `graph` to `path`.
iuad::Status SaveGraphTsv(const CollabGraph& graph, const std::string& path);

/// Loads a graph previously written by SaveGraphTsv.
iuad::Result<CollabGraph> LoadGraphTsv(const std::string& path);

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_GRAPH_IO_H_
