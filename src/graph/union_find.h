#ifndef IUAD_GRAPH_UNION_FIND_H_
#define IUAD_GRAPH_UNION_FIND_H_

/// \file union_find.h
/// Disjoint-set union with path halving + union by size. Used to realize
/// vertex merges (GCN construction, Line 15 of Algorithm 1) and to map
/// predicted clusters during evaluation.

#include <numeric>
#include <vector>

namespace iuad::graph {

/// Standard DSU over dense ids [0, n).
class UnionFind {
 public:
  explicit UnionFind(int n = 0) { Reset(n); }

  /// Re-initializes to n singleton sets.
  void Reset(int n) {
    parent_.resize(static_cast<size_t>(n));
    std::iota(parent_.begin(), parent_.end(), 0);
    size_.assign(static_cast<size_t>(n), 1);
    num_sets_ = n;
  }

  /// Representative of x's set (with path halving).
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Unions the sets of a and b; returns the surviving representative.
  int Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
    --num_sets_;
    return a;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }
  int SetSize(int x) { return size_[static_cast<size_t>(Find(x))]; }
  int num_sets() const { return num_sets_; }
  int size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_ = 0;
};

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_UNION_FIND_H_
