#ifndef IUAD_GRAPH_WL_KERNEL_H_
#define IUAD_GRAPH_WL_KERNEL_H_

/// \file wl_kernel.h
/// Weisfeiler-Lehman subtree kernel between *vertices* of one collaboration
/// graph (γ1 of Sec. V-B1, Eq. 3-4). A vertex v is represented by its h-hop
/// neighborhood subgraph; φ⟨h⟩(v) is the histogram of WL-refined labels
/// (iterations 0..h) over that subgraph, and K⟨h⟩(u, v) = ⟨φ⟨h⟩(u), φ⟨h⟩(v)⟩.
/// Initial labels are *author names*, so two candidates sharing co-author
/// names (and co-author-of-co-author structure) score high. Eq. 4 normalizes
/// by the self-kernels, giving a value in [0, 1] with K̂(v, v) = 1 for any
/// non-isolated v.
///
/// One deliberate refinement over a literal reading of Eq. 3 (documented in
/// DESIGN.md §5): the center vertex itself is EXCLUDED from its ball
/// histogram, so φ describes the *collaboration neighborhood* only. Under a
/// literal reading every pair of isolated same-name vertices would score a
/// perfect 1.0 — "identical subgraphs" with zero shared collaborators —
/// which floods the name-candidate pair population with spurious maximal
/// similarity (SCNs contain many per-paper singletons) and destabilizes the
/// EM fit. With the exclusion, isolated vertices have empty features and
/// kernel 0: no structural evidence. Requires h >= 1 for any signal.
///
/// Refinement is run once on the whole graph (Shervashidze et al., JMLR'11);
/// per-vertex features are then ball histograms, cached on first use.

#include <unordered_map>
#include <vector>

#include "graph/collab_graph.h"
#include "util/thread_pool.h"

namespace iuad::graph {

/// WL subtree features + kernel over one graph snapshot. Rebuild after the
/// graph is mutated (merges invalidate features).
class WlVertexKernel {
 public:
  /// Runs h rounds of label refinement over the alive subgraph.
  /// h = 0 degenerates to bag-of-neighbor-names. When `pool` is given, each
  /// round's signature pass (neighbor-label gathering + sort) runs across
  /// its workers; compressed label ids are still assigned in a sequential
  /// sweep in vertex order, so labels are byte-identical at any thread
  /// count (and to the serial build).
  WlVertexKernel(const CollabGraph& graph, int h,
                 util::ThreadPool* pool = nullptr);

  /// Raw kernel ⟨φ⟨h⟩(u), φ⟨h⟩(v)⟩ (Eq. 3).
  double Kernel(VertexId u, VertexId v) const;

  /// Normalized kernel of Eq. 4, in [0, 1]; 0 if either self-kernel is 0.
  double NormalizedKernel(VertexId u, VertexId v) const;

  /// Normalized kernel between vertex v and a *hypothetical star* whose
  /// neighbors carry the given `names` — how the incremental path
  /// (Sec. V-E) scores a new paper: the unseen occurrence is a star center
  /// connected to its byline co-authors, whose iteration-0 labels are the
  /// only features known before insertion. Result: the count of `names`
  /// labels in v's ball, normalized by sqrt(|names| * K(v, v)); 0 when v is
  /// isolated, post-build, or `names` is empty.
  double NormalizedKernelVsNameSet(VertexId v,
                                   const std::vector<std::string>& names) const;

  /// Populates the lazy per-vertex feature cache for every vertex in `vs`
  /// (balls are computed concurrently on `pool` when given, committed to
  /// the cache sequentially). After the call, Kernel/NormalizedKernel over
  /// prewarmed vertices are pure reads and safe to invoke from many
  /// threads. Unknown / post-build vertex ids are ignored.
  void PrewarmFeatures(const std::vector<VertexId>& vs,
                       util::ThreadPool* pool = nullptr) const;

  /// The compressed WL label of vertex v at iteration `iter` (testing hook:
  /// two structurally-equivalent vertices share labels at every iteration).
  int LabelAt(VertexId v, int iter) const {
    return labels_[static_cast<size_t>(iter)][static_cast<size_t>(v)];
  }

  int depth() const { return h_; }

 private:
  /// Sparse feature map of the h-hop ball of v (label -> count), cached.
  const std::unordered_map<int, double>& FeaturesOf(VertexId v) const;
  /// The cache-free computation behind FeaturesOf (safe to run in
  /// parallel for distinct vertices: reads graph_ / labels_ only).
  std::unordered_map<int, double> ComputeFeatures(VertexId v) const;

  const CollabGraph& graph_;
  int h_;
  /// labels_[i][v]: compressed label of v at iteration i (i = 0..h).
  std::vector<std::vector<int>> labels_;
  /// Iteration-0 dictionary (interned author name id -> label id), kept for
  /// the isolated-vertex kernel. Keyed by util::NameId: names are resolved
  /// through the graph's interner, so no strings are hashed after build.
  std::unordered_map<util::NameId, int> name_labels_;
  mutable std::vector<std::unordered_map<int, double>> feature_cache_;
  mutable std::vector<bool> feature_cached_;
};

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_WL_KERNEL_H_
