#include "graph/graph_io.h"

#include <charconv>
#include <cstdlib>
#include <unordered_map>

#include "util/strings.h"
#include "util/tsv.h"

namespace iuad::graph {

namespace {

std::string JoinPapers(const std::vector<int>& papers) {
  std::vector<std::string> parts;
  parts.reserve(papers.size());
  for (int p : papers) parts.push_back(std::to_string(p));
  return Join(parts, "|");
}

iuad::Result<std::vector<int>> ParsePapers(const std::string& field) {
  std::vector<int> out;
  if (field.empty()) return out;
  for (std::string_view part : SplitView(field, '|')) {
    int v = 0;
    const auto [end, ec] =
        std::from_chars(part.data(), part.data() + part.size(), v);
    if (ec != std::errc() || end != part.data() + part.size()) {
      return iuad::Status::InvalidArgument("bad paper id: " +
                                           std::string(part));
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace

iuad::Status SaveGraphTsv(const CollabGraph& graph, const std::string& path) {
  std::vector<TsvRow> rows;
  // Dense re-numbering of alive vertices.
  std::unordered_map<VertexId, int> dense;
  for (VertexId v : graph.AliveVertices()) {
    const int id = static_cast<int>(dense.size());
    dense.emplace(v, id);
    rows.push_back({"V", std::to_string(id), std::string(graph.NameOf(v)),
                    JoinPapers(graph.vertex(v).papers)});
  }
  for (VertexId v : graph.AliveVertices()) {
    for (const auto& [nbr, papers] : graph.NeighborsOf(v)) {
      if (nbr < v) continue;  // each edge once
      rows.push_back({"E", std::to_string(dense.at(v)),
                      std::to_string(dense.at(nbr)), JoinPapers(papers)});
    }
  }
  return WriteTsvFile(path, rows);
}

iuad::Result<CollabGraph> LoadGraphTsv(const std::string& path) {
  auto rows = ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  CollabGraph graph;
  for (const auto& row : *rows) {
    if (row.size() != 4) {
      return iuad::Status::InvalidArgument("graph TSV row needs 4 fields");
    }
    if (row[0] == "V") {
      IUAD_ASSIGN_OR_RETURN(std::vector<int> papers, ParsePapers(row[3]));
      const VertexId v = graph.AddVertex(row[2], std::move(papers));
      if (v != std::atoi(row[1].c_str())) {
        return iuad::Status::InvalidArgument(
            "vertex ids must be dense and in order (got " + row[1] + ")");
      }
    } else if (row[0] == "E") {
      const VertexId u = std::atoi(row[1].c_str());
      const VertexId v = std::atoi(row[2].c_str());
      if (u < 0 || v < 0 || u >= graph.num_vertices() ||
          v >= graph.num_vertices()) {
        return iuad::Status::InvalidArgument("edge references unknown vertex");
      }
      IUAD_ASSIGN_OR_RETURN(std::vector<int> papers, ParsePapers(row[3]));
      IUAD_RETURN_NOT_OK(graph.AddEdgePapers(u, v, papers));
    } else {
      return iuad::Status::InvalidArgument("unknown row type: " + row[0]);
    }
  }
  return graph;
}

}  // namespace iuad::graph
