#include "graph/components.h"

#include <queue>

namespace iuad::graph {

std::vector<int> ConnectedComponents(const CollabGraph& graph,
                                     int* num_components) {
  const int n = graph.num_vertices();
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int next = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (!graph.alive(s) || comp[static_cast<size_t>(s)] != -1) continue;
    comp[static_cast<size_t>(s)] = next;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      VertexId u = q.front();
      q.pop();
      for (const auto& [v, papers] : graph.NeighborsOf(u)) {
        if (comp[static_cast<size_t>(v)] == -1) {
          comp[static_cast<size_t>(v)] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  if (num_components) *num_components = next;
  return comp;
}

std::vector<int64_t> DegreeSequence(const CollabGraph& graph) {
  std::vector<int64_t> degrees;
  degrees.reserve(static_cast<size_t>(graph.num_alive()));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.alive(v)) degrees.push_back(graph.DegreeOf(v));
  }
  return degrees;
}

}  // namespace iuad::graph
