#ifndef IUAD_GRAPH_TRIANGLES_H_
#define IUAD_GRAPH_TRIANGLES_H_

/// \file triangles.h
/// Triangle enumeration. Triangles are the "stable collaborative cliques"
/// of Sec. IV-B (a triangle of η-SCRs is itself non-random in a scale-free
/// network), and the co-author clique coincidence ratio γ2 (Eq. 5) counts
/// common triangles — the paper restricts L(·) to triangles for speed.

#include <array>
#include <vector>

#include "graph/collab_graph.h"

namespace iuad::graph {

/// A triangle as a sorted vertex triple.
using Triangle = std::array<VertexId, 3>;

/// Lists all triangles of the alive subgraph, each exactly once.
/// Runs in O(sum_e min-degree-endpoint) via neighbor intersection.
std::vector<Triangle> EnumerateTriangles(const CollabGraph& graph);

/// Triangles incident to vertex `v`: each entry is the sorted pair of the
/// two other vertices. This is L(v) of Eq. 5.
std::vector<std::array<VertexId, 2>> TrianglesOf(const CollabGraph& graph,
                                                 VertexId v);

/// Number of triangles each alive vertex participates in (dead: 0).
std::vector<int64_t> TriangleCounts(const CollabGraph& graph);

}  // namespace iuad::graph

#endif  // IUAD_GRAPH_TRIANGLES_H_
