#ifndef IUAD_ML_GBDT_H_
#define IUAD_ML_GBDT_H_

/// \file gbdt.h
/// Gradient-boosted decision trees with logistic loss. Two presets cover
/// the remaining supervised baselines of Table III: classic GBDT
/// (first-order leaf targets, no regularization) and an XGBoost-style
/// booster (second-order statistics with L2 leaf regularization λ and
/// split penalty γ).

#include <vector>

#include "ml/decision_tree.h"

namespace iuad::ml {

struct GbdtConfig {
  int num_trees = 60;
  double learning_rate = 0.2;
  GradientTree::Config tree;
  /// false: classic GBDT (unit hessians). true: second-order (XGBoost-like).
  bool second_order = false;
};

/// XGBoost-flavored defaults.
inline GbdtConfig XgboostStyleConfig() {
  GbdtConfig c;
  c.second_order = true;
  c.tree.lambda = 1.0;
  c.tree.gamma = 0.01;
  return c;
}

class Gbdt {
 public:
  explicit Gbdt(GbdtConfig config = {}) : config_(config) {}

  iuad::Status Fit(const Matrix& x, const std::vector<int>& y);

  /// P(y = 1 | x) via the logistic link over the boosted raw score.
  double PredictProba(const std::vector<float>& x) const;
  int Predict(const std::vector<float>& x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  double RawScore(const std::vector<float>& x) const;

  GbdtConfig config_;
  double base_score_ = 0.0;  ///< log-odds of the positive class prior
  std::vector<GradientTree> trees_;
};

}  // namespace iuad::ml

#endif  // IUAD_ML_GBDT_H_
