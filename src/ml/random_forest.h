#ifndef IUAD_ML_RANDOM_FOREST_H_
#define IUAD_ML_RANDOM_FOREST_H_

/// \file random_forest.h
/// Random forest classifier (Breiman 2001): bootstrap-resampled gini trees
/// with sqrt-feature subsampling, probability-averaged. The "RF" supervised
/// baseline of Table III (and the classifier family of Treeratpituk & Giles).

#include <vector>

#include "ml/decision_tree.h"

namespace iuad::ml {

struct RandomForestConfig {
  int num_trees = 50;
  TreeConfig tree;      ///< tree.max_features 0 => sqrt(m) is used.
  uint64_t seed = 17;
};

class RandomForest {
 public:
  explicit RandomForest(RandomForestConfig config = {}) : config_(config) {}

  iuad::Status Fit(const Matrix& x, const std::vector<int>& y);

  /// Mean of per-tree leaf posteriors.
  double PredictProba(const std::vector<float>& x) const;
  int Predict(const std::vector<float>& x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTreeClassifier> trees_;
};

}  // namespace iuad::ml

#endif  // IUAD_ML_RANDOM_FOREST_H_
