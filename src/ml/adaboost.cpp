#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

namespace iuad::ml {

iuad::Status AdaBoost::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.empty() || x.size() != y.size()) {
    return iuad::Status::InvalidArgument("adaboost: empty or mismatched data");
  }
  const size_t n = x.size();
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  trees_.clear();
  alphas_.clear();

  for (int round = 0; round < config_.num_rounds; ++round) {
    DecisionTreeClassifier tree(config_.tree);
    IUAD_RETURN_NOT_OK(tree.Fit(x, y, w));
    // Weighted error.
    double err = 0.0;
    std::vector<int> pred(n);
    for (size_t i = 0; i < n; ++i) {
      pred[i] = tree.Predict(x[i]);
      if (pred[i] != y[i]) err += w[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5) break;  // weak learner no better than chance: stop
    const double alpha = 0.5 * std::log((1.0 - err) / err);
    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);
    // Re-weight and renormalize.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      w[i] *= std::exp(pred[i] == y[i] ? -alpha : alpha);
      total += w[i];
    }
    for (double& wi : w) wi /= total;
    if (err < 1e-9) break;  // perfect fit
  }
  if (trees_.empty()) {
    // Degenerate data (weak learner can't beat chance): single fallback tree.
    DecisionTreeClassifier tree(config_.tree);
    IUAD_RETURN_NOT_OK(tree.Fit(x, y));
    trees_.push_back(std::move(tree));
    alphas_.push_back(1.0);
  }
  return iuad::Status::OK();
}

double AdaBoost::Margin(const std::vector<float>& x) const {
  double s = 0.0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    s += alphas_[t] * (trees_[t].Predict(x) == 1 ? 1.0 : -1.0);
  }
  return s;
}

double AdaBoost::PredictProba(const std::vector<float>& x) const {
  const double m = Margin(x);
  return 1.0 / (1.0 + std::exp(-2.0 * m));
}

}  // namespace iuad::ml
