#include "ml/pairwise_features.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace iuad::ml {

namespace {

/// Set-overlap helpers over sorted vectors.
template <typename T>
int IntersectionSize(const std::vector<T>& a, const std::vector<T>& b) {
  int n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

template <typename T>
float Jaccard(const std::vector<T>& a, const std::vector<T>& b, int common) {
  const int uni = static_cast<int>(a.size() + b.size()) - common;
  return uni > 0 ? static_cast<float>(common) / static_cast<float>(uni) : 0.0f;
}

std::vector<std::string> SortedCoauthors(const data::Paper& p,
                                         const std::string& focal) {
  std::vector<std::string> out;
  for (const auto& n : p.author_names) {
    if (n != focal) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> SortedKeywords(const data::PaperDatabase& db,
                                        int pid) {
  std::vector<std::string> kws = db.KeywordsOf(pid);
  std::sort(kws.begin(), kws.end());
  kws.erase(std::unique(kws.begin(), kws.end()), kws.end());
  return kws;
}

}  // namespace

std::vector<float> ExtractPairFeatures(const data::PaperDatabase& db,
                                       int pid_a, int pid_b,
                                       const std::string& name,
                                       const text::Word2Vec* embeddings) {
  const data::Paper& pa = db.paper(pid_a);
  const data::Paper& pb = db.paper(pid_b);
  std::vector<float> f(kNumPairFeatures, 0.0f);

  // Co-author evidence.
  const auto ca = SortedCoauthors(pa, name);
  const auto cb = SortedCoauthors(pb, name);
  const int common_coauthors = IntersectionSize(ca, cb);
  f[0] = static_cast<float>(common_coauthors);
  f[1] = Jaccard(ca, cb, common_coauthors);

  // Title-term evidence.
  const auto ka = SortedKeywords(db, pid_a);
  const auto kb = SortedKeywords(db, pid_b);
  const int common_kw = IntersectionSize(ka, kb);
  f[2] = static_cast<float>(common_kw);
  f[3] = Jaccard(ka, kb, common_kw);
  // IDF-weighted keyword overlap.
  {
    float idf = 0.0f;
    auto ia = ka.begin();
    auto ib = kb.begin();
    while (ia != ka.end() && ib != kb.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        idf += static_cast<float>(
            1.0 / std::log(2.0 + static_cast<double>(db.KeywordFrequency(*ia))));
        ++ia;
        ++ib;
      }
    }
    f[4] = idf;
  }

  // Venue evidence.
  const bool same_venue = pa.venue == pb.venue;
  f[5] = same_venue ? 1.0f : 0.0f;
  f[6] = same_venue ? static_cast<float>(
                          1.0 / std::log(2.0 + static_cast<double>(
                                                   db.VenueFrequency(pa.venue))))
                    : 0.0f;

  // Time evidence.
  f[7] = static_cast<float>(std::abs(pa.year - pb.year));

  // Byline shape.
  f[8] = static_cast<float>(
      std::abs(static_cast<int>(pa.author_names.size()) -
               static_cast<int>(pb.author_names.size())));

  // Semantic title similarity.
  if (embeddings != nullptr && embeddings->trained()) {
    f[9] = static_cast<float>(text::Cosine(embeddings->MeanOf(db.KeywordsOf(pid_a)),
                                           embeddings->MeanOf(db.KeywordsOf(pid_b))));
  }
  return f;
}

PairwiseDataset BuildPairwiseDataset(const data::PaperDatabase& db,
                                     const std::vector<std::string>& names,
                                     const text::Word2Vec* embeddings,
                                     int max_pairs_per_name, iuad::Rng* rng,
                                     bool balance_classes) {
  PairwiseDataset ds;
  for (const auto& name : names) {
    const auto& papers = db.PapersWithName(name);
    std::vector<std::pair<int, int>> pairs;
    for (size_t i = 0; i < papers.size(); ++i) {
      for (size_t j = i + 1; j < papers.size(); ++j) {
        pairs.emplace_back(papers[i], papers[j]);
      }
    }
    if (static_cast<int>(pairs.size()) > max_pairs_per_name) {
      rng->Shuffle(&pairs);
      pairs.resize(static_cast<size_t>(max_pairs_per_name));
    }
    for (const auto& [a, b] : pairs) {
      const data::AuthorId ta = db.paper(a).TrueAuthorOfName(name);
      const data::AuthorId tb = db.paper(b).TrueAuthorOfName(name);
      if (ta == data::kUnknownAuthor || tb == data::kUnknownAuthor) continue;
      ds.x.push_back(ExtractPairFeatures(db, a, b, name, embeddings));
      ds.y.push_back(ta == tb ? 1 : 0);
    }
  }
  if (!balance_classes || ds.y.empty()) return ds;

  // Subsample the majority class to a 1:1 ratio (deterministic via rng).
  size_t pos = 0;
  for (int label : ds.y) pos += static_cast<size_t>(label);
  const size_t neg = ds.y.size() - pos;
  const int majority_label = pos > neg ? 1 : 0;
  const size_t keep = std::min(pos, neg);
  if (keep == 0) return ds;  // single-class data: nothing sane to balance
  std::vector<size_t> majority_idx;
  PairwiseDataset out;
  for (size_t i = 0; i < ds.y.size(); ++i) {
    if (ds.y[i] == majority_label) {
      majority_idx.push_back(i);
    } else {
      out.x.push_back(std::move(ds.x[i]));
      out.y.push_back(ds.y[i]);
    }
  }
  rng->Shuffle(&majority_idx);
  majority_idx.resize(keep);
  for (size_t i : majority_idx) {
    out.x.push_back(std::move(ds.x[i]));
    out.y.push_back(ds.y[i]);
  }
  return out;
}

}  // namespace iuad::ml
