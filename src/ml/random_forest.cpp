#include "ml/random_forest.h"

#include <cmath>

namespace iuad::ml {

iuad::Status RandomForest::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.empty() || x.size() != y.size()) {
    return iuad::Status::InvalidArgument("forest: empty or mismatched data");
  }
  iuad::Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));
  TreeConfig tc = config_.tree;
  if (tc.max_features == 0) {
    tc.max_features = std::max(
        1, static_cast<int>(std::lround(std::sqrt(static_cast<double>(x[0].size())))));
  }
  const size_t n = x.size();
  for (int t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample.
    Matrix bx;
    std::vector<int> by;
    bx.reserve(n);
    by.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = rng.NextBounded(n);
      bx.push_back(x[j]);
      by.push_back(y[j]);
    }
    DecisionTreeClassifier tree(tc);
    IUAD_RETURN_NOT_OK(tree.Fit(bx, by, {}, &rng));
    trees_.push_back(std::move(tree));
  }
  return iuad::Status::OK();
}

double RandomForest::PredictProba(const std::vector<float>& x) const {
  if (trees_.empty()) return 0.5;
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.PredictProba(x);
  return s / static_cast<double>(trees_.size());
}

}  // namespace iuad::ml
