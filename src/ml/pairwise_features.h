#ifndef IUAD_ML_PAIRWISE_FEATURES_H_
#define IUAD_ML_PAIRWISE_FEATURES_H_

/// \file pairwise_features.h
/// Pairwise feature extraction for the supervised baselines, following
/// Treeratpituk & Giles [17]: given two papers that both carry a target
/// name, produce similarity features over co-authors, title terms, venues,
/// and time. The supervised pipeline classifies pairs and then closes the
/// prediction transitively.

#include <string>
#include <vector>

#include "data/paper_database.h"
#include "ml/decision_tree.h"
#include "text/word2vec.h"
#include "util/rng.h"

namespace iuad::ml {

/// Number of features produced by ExtractPairFeatures.
constexpr int kNumPairFeatures = 10;

/// Feature vector for papers `pid_a`, `pid_b` with focal `name`.
/// `embeddings` may be null (the embedding-cosine feature becomes 0).
std::vector<float> ExtractPairFeatures(const data::PaperDatabase& db,
                                       int pid_a, int pid_b,
                                       const std::string& name,
                                       const text::Word2Vec* embeddings);

/// Labeled pairwise dataset built from ground-truth names (training names
/// must be disjoint from evaluation names — the caller guarantees that).
/// At most `max_pairs_per_name` pairs are drawn per name; labels: 1 = same
/// true author. When `balance_classes` is set (the default, and what the
/// supervised baselines use) the majority class is subsampled to a 1:1
/// ratio — pairwise author data is heavily imbalanced and an unbalanced fit
/// degenerates to the prior.
struct PairwiseDataset {
  Matrix x;
  std::vector<int> y;
};

PairwiseDataset BuildPairwiseDataset(const data::PaperDatabase& db,
                                     const std::vector<std::string>& names,
                                     const text::Word2Vec* embeddings,
                                     int max_pairs_per_name, iuad::Rng* rng,
                                     bool balance_classes = true);

}  // namespace iuad::ml

#endif  // IUAD_ML_PAIRWISE_FEATURES_H_
