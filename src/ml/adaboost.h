#ifndef IUAD_ML_ADABOOST_H_
#define IUAD_ML_ADABOOST_H_

/// \file adaboost.h
/// AdaBoost (Freund & Schapire) over shallow gini trees. The "AdaBoost"
/// supervised baseline of Table III.

#include <vector>

#include "ml/decision_tree.h"

namespace iuad::ml {

struct AdaBoostConfig {
  int num_rounds = 50;
  TreeConfig tree{/*max_depth=*/2, /*min_samples_leaf=*/2, /*max_features=*/0};
};

class AdaBoost {
 public:
  explicit AdaBoost(AdaBoostConfig config = {}) : config_(config) {}

  iuad::Status Fit(const Matrix& x, const std::vector<int>& y);

  /// Sign-margin score mapped through a logistic for a [0, 1] output.
  double PredictProba(const std::vector<float>& x) const;
  int Predict(const std::vector<float>& x) const {
    return Margin(x) >= 0.0 ? 1 : 0;
  }
  /// Weighted vote margin in R (positive = class 1).
  double Margin(const std::vector<float>& x) const;

  int num_rounds_used() const { return static_cast<int>(trees_.size()); }

 private:
  AdaBoostConfig config_;
  std::vector<DecisionTreeClassifier> trees_;
  std::vector<double> alphas_;
};

}  // namespace iuad::ml

#endif  // IUAD_ML_ADABOOST_H_
