#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

namespace iuad::ml {

namespace {
double Sigmoid(double z) {
  if (z > 30.0) return 1.0;
  if (z < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-z));
}
}  // namespace

iuad::Status Gbdt::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.empty() || x.size() != y.size()) {
    return iuad::Status::InvalidArgument("gbdt: empty or mismatched data");
  }
  const size_t n = x.size();
  double pos = 0.0;
  for (int yi : y) pos += yi;
  const double prior = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  std::vector<double> raw(n, base_score_);
  std::vector<double> grad(n), hess(n);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));

  for (int t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(raw[i]);
      grad[i] = p - static_cast<double>(y[i]);  // dL/draw (logistic loss)
      hess[i] = config_.second_order ? std::max(1e-6, p * (1.0 - p)) : 1.0;
    }
    GradientTree tree(config_.tree);
    IUAD_RETURN_NOT_OK(tree.Fit(x, grad, hess));
    for (size_t i = 0; i < n; ++i) {
      raw[i] += config_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  return iuad::Status::OK();
}

double Gbdt::RawScore(const std::vector<float>& x) const {
  double s = base_score_;
  for (const auto& tree : trees_) s += config_.learning_rate * tree.Predict(x);
  return s;
}

double Gbdt::PredictProba(const std::vector<float>& x) const {
  return Sigmoid(RawScore(x));
}

}  // namespace iuad::ml
