#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace iuad::ml {

namespace {

/// Candidate features for a split: all, or a seeded random subset.
std::vector<int> CandidateFeatures(int num_features, int max_features,
                                   iuad::Rng* rng) {
  std::vector<int> feats(static_cast<size_t>(num_features));
  std::iota(feats.begin(), feats.end(), 0);
  if (max_features > 0 && max_features < num_features && rng != nullptr) {
    rng->Shuffle(&feats);
    feats.resize(static_cast<size_t>(max_features));
  }
  return feats;
}

}  // namespace

// --- DecisionTreeClassifier --------------------------------------------------

iuad::Status DecisionTreeClassifier::Fit(const Matrix& x,
                                         const std::vector<int>& y,
                                         const std::vector<double>& weights,
                                         iuad::Rng* rng) {
  if (x.empty() || x.size() != y.size()) {
    return iuad::Status::InvalidArgument("tree: empty or mismatched data");
  }
  std::vector<double> w = weights;
  if (w.empty()) w.assign(x.size(), 1.0);
  if (w.size() != x.size()) {
    return iuad::Status::InvalidArgument("tree: weight size mismatch");
  }
  nodes_.clear();
  std::vector<int> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  // Feature subsampling needs an RNG; fall back to a fixed-seed local one.
  iuad::Rng local(0xdecaf);
  BuildNode(x, y, w, idx, 0, static_cast<int>(idx.size()), 0,
            rng ? rng : &local);
  return iuad::Status::OK();
}

int DecisionTreeClassifier::BuildNode(const Matrix& x, const std::vector<int>& y,
                                      const std::vector<double>& w,
                                      std::vector<int>& idx, int lo, int hi,
                                      int depth, iuad::Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double w_total = 0.0, w_pos = 0.0;
  for (int i = lo; i < hi; ++i) {
    w_total += w[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    if (y[static_cast<size_t>(idx[static_cast<size_t>(i)])] == 1) {
      w_pos += w[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    }
  }
  nodes_[static_cast<size_t>(node_id)].prob =
      w_total > 0.0 ? w_pos / w_total : 0.5;

  const bool pure = w_pos <= 1e-12 || w_pos >= w_total - 1e-12;
  if (depth >= config_.max_depth || hi - lo < 2 * config_.min_samples_leaf ||
      pure) {
    return node_id;
  }

  // Best weighted-gini split over candidate features.
  const int m = static_cast<int>(x[0].size());
  double best_gain = 1e-12;
  int best_feature = -1;
  float best_threshold = 0.0f;
  const double parent_gini =
      2.0 * (w_pos / w_total) * (1.0 - w_pos / w_total) * w_total;

  std::vector<std::pair<float, int>> order;  // (feature value, sample idx)
  for (int f : CandidateFeatures(m, config_.max_features, rng)) {
    order.clear();
    for (int i = lo; i < hi; ++i) {
      const int s = idx[static_cast<size_t>(i)];
      order.emplace_back(x[static_cast<size_t>(s)][static_cast<size_t>(f)], s);
    }
    std::sort(order.begin(), order.end());
    double wl = 0.0, wl_pos = 0.0;
    for (size_t k = 0; k + 1 < order.size(); ++k) {
      const int s = order[k].second;
      wl += w[static_cast<size_t>(s)];
      if (y[static_cast<size_t>(s)] == 1) wl_pos += w[static_cast<size_t>(s)];
      if (order[k].first == order[k + 1].first) continue;  // no cut here
      if (static_cast<int>(k) + 1 < config_.min_samples_leaf ||
          static_cast<int>(order.size() - k - 1) < config_.min_samples_leaf) {
        continue;
      }
      const double wr = w_total - wl;
      const double wr_pos = w_pos - wl_pos;
      if (wl <= 0.0 || wr <= 0.0) continue;
      const double gini_l = 2.0 * (wl_pos / wl) * (1.0 - wl_pos / wl) * wl;
      const double gini_r = 2.0 * (wr_pos / wr) * (1.0 - wr_pos / wr) * wr;
      const double gain = parent_gini - gini_l - gini_r;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (order[k].first + order[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition idx[lo, hi) in place.
  const auto mid_it = std::stable_partition(
      idx.begin() + lo, idx.begin() + hi, [&](int s) {
        return x[static_cast<size_t>(s)][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return node_id;  // degenerate (ties)

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = BuildNode(x, y, w, idx, lo, mid, depth + 1, rng);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = BuildNode(x, y, w, idx, mid, hi, depth + 1, rng);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTreeClassifier::PredictProba(const std::vector<float>& x) const {
  if (nodes_.empty()) return 0.5;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const auto& nd = nodes_[static_cast<size_t>(node)];
    node = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                              : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].prob;
}

// --- GradientTree -------------------------------------------------------------

iuad::Status GradientTree::Fit(const Matrix& x,
                               const std::vector<double>& gradients,
                               const std::vector<double>& hessians) {
  if (x.empty() || x.size() != gradients.size() ||
      x.size() != hessians.size()) {
    return iuad::Status::InvalidArgument("gradient tree: data size mismatch");
  }
  nodes_.clear();
  std::vector<int> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  BuildNode(x, gradients, hessians, idx, 0, static_cast<int>(idx.size()), 0);
  return iuad::Status::OK();
}

int GradientTree::BuildNode(const Matrix& x, const std::vector<double>& g,
                            const std::vector<double>& h,
                            std::vector<int>& idx, int lo, int hi, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double gsum = 0.0, hsum = 0.0;
  for (int i = lo; i < hi; ++i) {
    gsum += g[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    hsum += h[static_cast<size_t>(idx[static_cast<size_t>(i)])];
  }
  nodes_[static_cast<size_t>(node_id)].value =
      -gsum / (hsum + config_.lambda + 1e-12);

  if (depth >= config_.max_depth || hi - lo < 2 * config_.min_samples_leaf) {
    return node_id;
  }

  auto score = [this](double gs, double hs) {
    return gs * gs / (hs + config_.lambda + 1e-12);
  };
  const double parent_score = score(gsum, hsum);
  double best_gain = config_.gamma + 1e-12;
  int best_feature = -1;
  float best_threshold = 0.0f;

  const int m = static_cast<int>(x[0].size());
  std::vector<std::pair<float, int>> order;
  for (int f = 0; f < m; ++f) {
    order.clear();
    for (int i = lo; i < hi; ++i) {
      const int s = idx[static_cast<size_t>(i)];
      order.emplace_back(x[static_cast<size_t>(s)][static_cast<size_t>(f)], s);
    }
    std::sort(order.begin(), order.end());
    double gl = 0.0, hl = 0.0;
    for (size_t k = 0; k + 1 < order.size(); ++k) {
      const int s = order[k].second;
      gl += g[static_cast<size_t>(s)];
      hl += h[static_cast<size_t>(s)];
      if (order[k].first == order[k + 1].first) continue;
      if (static_cast<int>(k) + 1 < config_.min_samples_leaf ||
          static_cast<int>(order.size() - k - 1) < config_.min_samples_leaf) {
        continue;
      }
      const double gain =
          0.5 * (score(gl, hl) + score(gsum - gl, hsum - hl) - parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (order[k].first + order[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  const auto mid_it = std::stable_partition(
      idx.begin() + lo, idx.begin() + hi, [&](int s) {
        return x[static_cast<size_t>(s)][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return node_id;

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = BuildNode(x, g, h, idx, lo, mid, depth + 1);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = BuildNode(x, g, h, idx, mid, hi, depth + 1);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double GradientTree::Predict(const std::vector<float>& x) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const auto& nd = nodes_[static_cast<size_t>(node)];
    node = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                              : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace iuad::ml
