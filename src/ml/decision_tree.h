#ifndef IUAD_ML_DECISION_TREE_H_
#define IUAD_ML_DECISION_TREE_H_

/// \file decision_tree.h
/// CART trees, from scratch: a weighted gini classifier (the weak learner
/// of AdaBoost and the base tree of RandomForest) and a second-order
/// gradient tree (the base learner of GBDT / the XGBoost-style booster).
/// These power the supervised baselines of Table III.

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace iuad::ml {

/// Row-major feature matrix.
using Matrix = std::vector<std::vector<float>>;

struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 2;
  /// Features tried per split; 0 = all (RandomForest passes sqrt(m)).
  int max_features = 0;
};

/// Binary classifier tree trained on weighted gini impurity.
class DecisionTreeClassifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig config = {}) : config_(config) {}

  /// Labels in {0, 1}; `weights` optional (empty = uniform). `rng` drives
  /// feature subsampling when config.max_features > 0.
  iuad::Status Fit(const Matrix& x, const std::vector<int>& y,
                   const std::vector<double>& weights = {},
                   iuad::Rng* rng = nullptr);

  /// P(y = 1 | x): the positive-weight fraction of the reached leaf.
  double PredictProba(const std::vector<float>& x) const;
  int Predict(const std::vector<float>& x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;       // -1: leaf
    float threshold = 0.0f; // go left when x[feature] <= threshold
    int left = -1, right = -1;
    double prob = 0.5;      // leaf posterior
  };
  int BuildNode(const Matrix& x, const std::vector<int>& y,
                const std::vector<double>& w, std::vector<int>& idx, int lo,
                int hi, int depth, iuad::Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

/// Parameters of GradientTree (namespace scope so it can serve as a default
/// argument without tripping GCC's nested-class NSDMI restriction).
struct GradientTreeConfig {
  int max_depth = 3;
  int min_samples_leaf = 4;
  double lambda = 0.0;  ///< L2 regularization on leaf values.
  double gamma = 0.0;   ///< Minimum split gain.
};

/// Regression tree on (gradient, hessian) pairs, XGBoost-style: leaf value
/// = -G / (H + lambda); split gain = 1/2 [GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)] − γ.
/// Plain first-order GBDT uses hessian = 1 per sample and λ = γ = 0.
class GradientTree {
 public:
  using Config = GradientTreeConfig;

  explicit GradientTree(Config config = {}) : config_(config) {}

  iuad::Status Fit(const Matrix& x, const std::vector<double>& gradients,
                   const std::vector<double>& hessians);

  double Predict(const std::vector<float>& x) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;
    float threshold = 0.0f;
    int left = -1, right = -1;
    double value = 0.0;
  };
  int BuildNode(const Matrix& x, const std::vector<double>& g,
                const std::vector<double>& h, std::vector<int>& idx, int lo,
                int hi, int depth);

  Config config_;
  std::vector<Node> nodes_;
};

}  // namespace iuad::ml

#endif  // IUAD_ML_DECISION_TREE_H_
