#ifndef IUAD_API_MESSAGES_H_
#define IUAD_API_MESSAGES_H_

/// \file messages.h
/// Typed request/response model of the query/ingest protocol. One Request
/// maps to one Response, correlated by caller-chosen `id`; the wire form is
/// newline-delimited JSON (codec.h), but everything above the codec —
/// Dispatcher, Server, tests — works with these structs and
/// util::Status-based errors only.
///
/// Operations (the serving surface of serve::Frontend):
///   ingest              IngestPaper: one..api_max_batch papers, applied in
///                       request order through Frontend::SubmitBatch; the
///                       response carries the per-paper assignments.
///   query_authors       QueryAuthors: author candidates bearing a name.
///   query_publications  QueryPublications: paper ids of one author vertex.
///   flush               Flush: barrier — everything admitted is applied
///                       and published when the response comes back.
///   stats               GetStats: the unified ServiceStats snapshot.
///   metrics             GetMetrics: the frontend's full obs::Registry
///                       snapshot — counters, gauges, and raw mergeable
///                       histogram buckets (percentiles are derived by the
///                       consumer, never carried on the wire).
///   trace               GetTrace: the flight recorder's current contents
///                       as Chrome trace-event entries (obs/trace.h) —
///                       Perfetto-loadable once wrapped in
///                       {"traceEvents": [...]}.

#include <cstdint>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "data/paper.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"
#include "util/status.h"

namespace iuad::api {

enum class Op {
  kIngest = 0,
  kQueryAuthors,
  kQueryPublications,
  kFlush,
  kStats,
  kMetrics,
  kTrace,
};

/// Stable wire name of an operation ("ingest", "query_authors", ...).
inline const char* OpName(Op op) {
  switch (op) {
    case Op::kIngest: return "ingest";
    case Op::kQueryAuthors: return "query_authors";
    case Op::kQueryPublications: return "query_publications";
    case Op::kFlush: return "flush";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kTrace: return "trace";
  }
  return "unknown";
}

/// New papers for the live network. More than one paper makes the request
/// a batch: the dispatcher reserves one contiguous sequence range for it
/// (Frontend::SubmitBatch), so a producer streaming thousands of papers
/// pays one round-trip per batch, not per paper.
struct IngestPaper {
  std::vector<data::Paper> papers;
};

/// Author candidates bearing `name` (routed to the owning shard when the
/// frontend is sharded).
struct QueryAuthors {
  std::string name;
};

/// Paper ids attributed to author vertex `vertex`.
struct QueryPublications {
  int64_t vertex = -1;
};

/// Apply-and-publish barrier; carries no payload.
struct Flush {};

/// ServiceStats snapshot; carries no payload.
struct GetStats {};

/// obs::Registry snapshot; carries no payload. The response holds the raw
/// mergeable form (HistogramSnapshot buckets, not percentiles), so scrapes
/// from several processes can be merged exactly.
struct GetMetrics {};

/// Flight-recorder drain; carries no payload. The response holds the
/// Chrome trace-event entries in canonical integer-microsecond form.
struct GetTrace {};

/// One protocol request. `op` selects which payload member is meaningful;
/// the others stay default-constructed (and are neither encoded nor
/// compared).
struct Request {
  int64_t id = 0;  ///< Echoed verbatim in the response.
  Op op = Op::kStats;
  IngestPaper ingest;
  QueryAuthors query_authors;
  QueryPublications query_publications;
};

/// One protocol response. `status` is the outcome: non-OK responses carry
/// no payload (the wire encodes the StatusCode by name plus the message),
/// OK responses carry the payload member selected by `op`.
struct Response {
  int64_t id = 0;
  Op op = Op::kStats;
  iuad::Status status;

  /// kIngest: per submitted paper, in request order.
  std::vector<std::vector<core::IncrementalAssignment>> assignments;
  /// kQueryAuthors.
  std::vector<serve::AuthorRecord> authors;
  /// kQueryPublications.
  std::vector<int> paper_ids;
  /// kFlush: papers applied once the barrier passed.
  int64_t applied = 0;
  /// kStats.
  serve::ServiceStats stats;
  /// kMetrics.
  obs::RegistrySnapshot metrics;
  /// kTrace.
  std::vector<obs::ChromeTraceEvent> trace;
};

}  // namespace iuad::api

#endif  // IUAD_API_MESSAGES_H_
