#ifndef IUAD_API_DISPATCHER_H_
#define IUAD_API_DISPATCHER_H_

/// \file dispatcher.h
/// Executes typed protocol requests against any serve::Frontend — the one
/// piece of request logic every transport shares. The TCP server, the
/// stdio mode, tests, and benchmarks all funnel through Dispatcher, so a
/// scripted NDJSON session and direct Frontend::Submit calls produce
/// byte-identical assignments (pinned by tests/api_test.cpp).
///
/// Semantics:
///  * Execute() is synchronous: ingest requests wait for their papers'
///    futures, so the response carries the final assignments and responses
///    go back in request order — which is what makes a single-connection
///    session equivalent to sequential submission.
///  * Backpressure is protocol-level, not TCP-level: a batch larger than
///    api_max_batch, or an ingest arriving while the frontend's bounded
///    queue is full (live queued_now at capacity, i.e. other connections
///    already saturate the applier), is answered with ResourceExhausted
///    instead of blocking the connection indefinitely. Clients retry;
///    admission inside an accepted batch still blocks briefly as its own
///    papers drain.
///  * A batch is all-or-nothing at admission but not at application: if a
///    paper fails mid-batch (e.g. the fitted model is absent), the
///    response is that paper's error and the batch's other papers may
///    still have been applied — exactly the sequential-AddPaper behavior.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/messages.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"

namespace iuad::api {

class Dispatcher {
 public:
  struct Options {
    /// Largest paper batch one ingest request may carry
    /// (core::IuadConfig::api_max_batch).
    int max_batch = 64;
    /// Wire-decoding limits for untrusted transports.
    WireLimits limits;
    /// Gates the clock reads behind the request-path stage histograms
    /// (decode_us / request_us_<op> / encode_us); request counters stay
    /// live regardless (core::IuadConfig::metrics_enabled).
    bool metrics_enabled = true;
    /// Gates per-request flight-recorder events ("request" spans in the
    /// drained trace; core::IuadConfig::trace_enabled). The trace op
    /// itself always answers — with an empty drain when recording is off.
    bool trace_enabled = true;
  };

  /// `frontend` is caller-owned and must outlive the dispatcher. All
  /// instruments live in the frontend's registry, so every transport
  /// stacked on one frontend records into one scrape surface.
  Dispatcher(serve::Frontend* frontend, Options options);

  /// Executes one typed request. Never throws; failures come back as the
  /// response's status.
  Response Execute(const Request& request);

  /// Decodes one wire line, executes it, encodes the response line
  /// (without trailing newline). Undecodable input yields an encoded
  /// error response with id -1 — the transport always has one line to
  /// send back per line received.
  std::string HandleLine(const std::string& line);

  /// NDJSON session loop: one request per input line, one response per
  /// output line (flushed), until EOF. Blank lines are ignored. This is
  /// the stdio transport (`iuad serve --stdio`) and the test harness.
  void ServeStream(std::istream& in, std::ostream& out);

 private:
  serve::Frontend* frontend_;
  Options options_;

  // Request-path instruments (frontend registry; see obs/metrics.h).
  // `stamps_` gates the clock reads shared by both sinks: histograms
  // record when `timing_`, flight-recorder events when `tracing_`.
  const bool timing_;
  const bool tracing_;
  const bool stamps_;
  obs::FlightRecorder* recorder_;
  obs::Counter* ctr_requests_;
  obs::Counter* ctr_request_errors_;
  obs::Histogram* hist_decode_us_;
  obs::Histogram* hist_encode_us_;
  std::vector<obs::Histogram*> hist_request_us_;  ///< Indexed by Op value.
};

}  // namespace iuad::api

#endif  // IUAD_API_DISPATCHER_H_
