#include "api/codec.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace iuad::api {

namespace {

using util::JsonValue;
using util::JsonWriter;

// ---- Encoding ---------------------------------------------------------------

/// JSON has no Inf/NaN, but assignment scores are legitimately -inf (a
/// byline with zero candidates founds a new author, Sec. V-E condition
/// (2)). Non-finite scores go over the wire as the canonical strings
/// "inf" / "-inf" / "nan"; finite ones as shortest-exact numbers.
void EncodeScore(JsonWriter* w, double score) {
  if (std::isfinite(score)) {
    w->FieldExact("score", score);
  } else if (std::isnan(score)) {
    w->Field("score", "nan");
  } else {
    w->Field("score", score > 0 ? "inf" : "-inf");
  }
}

iuad::Result<double> DecodeScore(const JsonValue& v) {
  if (v.is_number()) return v.as_double();
  if (v.is_string()) {
    if (v.as_string() == "inf") {
      return std::numeric_limits<double>::infinity();
    }
    if (v.as_string() == "-inf") {
      return -std::numeric_limits<double>::infinity();
    }
    if (v.as_string() == "nan") {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  return iuad::Status::InvalidArgument(
      "api: \"score\" must be a number or \"inf\"/\"-inf\"/\"nan\"");
}

void EncodePaper(JsonWriter* w, const data::Paper& paper) {
  w->BeginObjectElement()
      .Field("title", paper.title)
      .Field("venue", paper.venue)
      .Field("year", paper.year);
  w->BeginArray("authors");
  for (const auto& name : paper.author_names) w->Element(name);
  w->EndArray();
  // Canonical form: ground-truth labels appear only when present (and the
  // decoder rejects an explicit empty list, keeping encoding canonical).
  if (!paper.true_author_ids.empty()) {
    w->BeginArray("truth");
    for (data::AuthorId id : paper.true_author_ids) w->Element(id);
    w->EndArray();
  }
  w->EndObject();
}

void EncodeStats(JsonWriter* w, const serve::ServiceStats& stats) {
  w->BeginObject("stats")
      .Field("epoch", stats.epoch)
      .Field("papers_applied", stats.papers_applied)
      .Field("assignments", stats.assignments)
      .Field("new_authors", stats.new_authors)
      .Field("alive_vertices", stats.num_alive_vertices)
      .Field("edges", stats.num_edges)
      .Field("queued_now", stats.queued_now)
      .Field("reorder_held", stats.reorder_held)
      .Field("queue_capacity", stats.queue_capacity)
      .Field("num_shards", stats.num_shards)
      .Field("pipeline_depth", stats.pipeline_depth)
      .Field("pipeline_windows", stats.pipeline_windows)
      .FieldExact("pipeline_occupancy", stats.pipeline_occupancy)
      .Field("conflict_stalls", stats.conflict_stalls)
      .Field("speculative_rescores", stats.speculative_rescores)
      .FieldExact("rss_mb", stats.rss_mb)
      .FieldExact("uptime_seconds", stats.uptime_seconds)
      .Field("wal_appended", stats.wal_appended)
      .Field("wal_fsyncs", stats.wal_fsyncs)
      .Field("wal_bytes", stats.wal_bytes)
      .Field("recovery_replayed", stats.recovery_replayed)
      .Field("wal_last_checkpoint_seq", stats.wal_last_checkpoint_seq)
      .FieldExact("wal_last_checkpoint_age_s",
                  stats.wal_last_checkpoint_age_s)
      .FieldExact("wal_fsync_wait_us_p99", stats.wal_fsync_wait_us_p99);
  w->BeginArray("slow_commits");
  for (const obs::SlowCommitExemplar& e : stats.slow_commits) {
    w->BeginObjectElement()
        .Field("seq", e.seq)
        .Field("total_ns", e.total_ns);
    w->BeginArray("stages");
    for (const obs::SlowCommitExemplar::Stage& s : e.stages) {
      w->BeginObjectElement()
          .Field("stage", s.name)
          .Field("ns", s.ns)
          .EndObject();
    }
    w->EndArray();
    w->BeginArray("deferrals");
    for (const obs::SlowCommitExemplar::Deferral& d : e.deferrals) {
      w->BeginObjectElement()
          .Field("name", d.name)
          .Field("blocked_by", d.blocked_by_seq)
          .EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->BeginArray("shards");
  for (const serve::ShardHealth& s : stats.shards) {
    w->BeginObjectElement()
        .Field("shard", s.shard)
        .Field("owned_blocks", s.owned_blocks)
        .Field("placement_weight", s.placement_weight)
        .Field("papers_scored", s.papers_scored)
        .Field("bylines_scored", s.bylines_scored)
        .Field("assignments", s.assignments)
        .Field("new_authors", s.new_authors)
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void EncodeMetrics(JsonWriter* w, const obs::RegistrySnapshot& metrics) {
  w->BeginObject("metrics");
  w->BeginArray("counters");
  for (const obs::CounterSample& c : metrics.counters) {
    w->BeginObjectElement()
        .Field("name", c.name)
        .Field("value", c.value)
        .EndObject();
  }
  w->EndArray();
  w->BeginArray("gauges");
  for (const obs::GaugeSample& g : metrics.gauges) {
    w->BeginObjectElement()
        .Field("name", g.name)
        .Field("value", g.value)
        .EndObject();
  }
  w->EndArray();
  w->BeginArray("histograms");
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    w->BeginObjectElement()
        .Field("name", h.name)
        .Field("count", h.count)
        .Field("sum_ns", h.sum_ns)
        .Field("max_ns", h.max_ns);
    w->BeginArray("buckets");
    for (const auto& [index, count] : h.buckets) {
      w->BeginArrayElement()
          .Element(static_cast<int64_t>(index))
          .Element(count)
          .EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void EncodeTrace(JsonWriter* w, const std::vector<obs::ChromeTraceEvent>& t) {
  w->BeginObject("trace");
  w->BeginArray("traceEvents");
  for (const obs::ChromeTraceEvent& e : t) {
    w->BeginObjectElement()
        .Field("name", e.name)
        .Field("ph", std::string(1, e.ph))
        .Field("ts", e.ts_us);
    if (e.ph == 'X') w->Field("dur", e.dur_us);
    w->Field("pid", 1).Field("tid", e.tid);
    w->BeginObject("args")
        .Field("a0", e.a0)
        .Field("a1", e.a1)
        .EndObject();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

// ---- Decoding ---------------------------------------------------------------

/// Typed, consumed-key-tracking view of one JSON object: every getter marks
/// its key consumed, Finish() rejects whatever the schema did not ask for —
/// which is how "no unknown fields" falls out for free on every message
/// shape.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& value, std::string what)
      : value_(value), what_(std::move(what)),
        consumed_(value.members().size(), false) {}

  static iuad::Result<ObjectReader> For(const JsonValue& value,
                                        std::string what) {
    if (!value.is_object()) {
      return iuad::Status::InvalidArgument("api: " + what +
                                           " must be a JSON object");
    }
    return ObjectReader(value, std::move(what));
  }

  iuad::Result<int64_t> Int(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_int()) return WrongType(key, "an integer");
    return v->as_int();
  }

  iuad::Result<double> Number(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_number()) return WrongType(key, "a number");
    return v->as_double();
  }

  iuad::Result<bool> Bool(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_bool()) return WrongType(key, "a bool");
    return v->as_bool();
  }

  iuad::Result<std::string> String(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_string()) return WrongType(key, "a string");
    return v->as_string();
  }

  /// Required member of any type (the caller checks the shape).
  iuad::Result<const JsonValue*> Any(const char* key) {
    return Required(key);
  }

  iuad::Result<const JsonValue*> Array(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_array()) return WrongType(key, "an array");
    return v;
  }

  iuad::Result<const JsonValue*> Object(const char* key) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* v, Required(key));
    if (!v->is_object()) return WrongType(key, "an object");
    return v;
  }

  /// Marks `key` consumed and returns it, or nullptr when absent.
  const JsonValue* Optional(const char* key) {
    return FindAndConsume(key);
  }

  /// Rejects members no getter asked for: strict schemas, no silent
  /// tolerance of typo'd or future fields.
  iuad::Status Finish() const {
    for (size_t i = 0; i < consumed_.size(); ++i) {
      if (!consumed_[i]) {
        return iuad::Status::InvalidArgument(
            "api: " + what_ + " has unknown field \"" +
            value_.members()[i].first + "\"");
      }
    }
    return iuad::Status::OK();
  }

 private:
  const JsonValue* FindAndConsume(const char* key) {
    const auto& members = value_.members();
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == key) {
        consumed_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  iuad::Result<const JsonValue*> Required(const char* key) {
    const JsonValue* v = FindAndConsume(key);
    if (v == nullptr) {
      return iuad::Status::InvalidArgument(
          "api: " + what_ + " is missing required field \"" + key + "\"");
    }
    return v;
  }

  iuad::Status WrongType(const char* key, const char* expected) const {
    return iuad::Status::InvalidArgument("api: " + what_ + " field \"" + key +
                                         "\" must be " + expected);
  }

  const JsonValue& value_;
  std::string what_;
  std::vector<bool> consumed_;
};

iuad::Result<int> ToInt32(int64_t v, const char* what) {
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return iuad::Status::InvalidArgument(std::string("api: ") + what +
                                         " out of 32-bit range");
  }
  return static_cast<int>(v);
}

iuad::Result<Op> OpFromName(const std::string& name) {
  for (Op op : {Op::kIngest, Op::kQueryAuthors, Op::kQueryPublications,
                Op::kFlush, Op::kStats, Op::kMetrics, Op::kTrace}) {
    if (name == OpName(op)) return op;
  }
  return iuad::Status::InvalidArgument("api: unknown op \"" + name + "\"");
}

iuad::Result<data::Paper> DecodePaper(const JsonValue& value) {
  IUAD_ASSIGN_OR_RETURN(ObjectReader paper, ObjectReader::For(value, "paper"));
  data::Paper p;
  IUAD_ASSIGN_OR_RETURN(p.title, paper.String("title"));
  IUAD_ASSIGN_OR_RETURN(p.venue, paper.String("venue"));
  IUAD_ASSIGN_OR_RETURN(const int64_t year, paper.Int("year"));
  IUAD_ASSIGN_OR_RETURN(p.year, ToInt32(year, "paper year"));
  IUAD_ASSIGN_OR_RETURN(const JsonValue* authors, paper.Array("authors"));
  if (authors->items().empty()) {
    return iuad::Status::InvalidArgument(
        "api: paper with empty \"authors\" byline");
  }
  for (const JsonValue& name : authors->items()) {
    if (!name.is_string()) {
      return iuad::Status::InvalidArgument(
          "api: paper \"authors\" entries must be strings");
    }
    p.author_names.push_back(name.as_string());
  }
  if (const JsonValue* truth = paper.Optional("truth")) {
    if (!truth->is_array() || truth->items().empty()) {
      return iuad::Status::InvalidArgument(
          "api: paper \"truth\" must be a non-empty array (omit it instead)");
    }
    for (const JsonValue& id : truth->items()) {
      if (!id.is_int()) {
        return iuad::Status::InvalidArgument(
            "api: paper \"truth\" entries must be integers");
      }
      IUAD_ASSIGN_OR_RETURN(const int author, ToInt32(id.as_int(),
                                                      "truth author id"));
      p.true_author_ids.push_back(author);
    }
  }
  IUAD_RETURN_NOT_OK(paper.Finish());
  return p;
}

iuad::Result<serve::ServiceStats> DecodeStats(const JsonValue& value) {
  IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(value, "stats"));
  serve::ServiceStats stats;
  IUAD_ASSIGN_OR_RETURN(stats.epoch, r.Int("epoch"));
  IUAD_ASSIGN_OR_RETURN(stats.papers_applied, r.Int("papers_applied"));
  IUAD_ASSIGN_OR_RETURN(stats.assignments, r.Int("assignments"));
  IUAD_ASSIGN_OR_RETURN(stats.new_authors, r.Int("new_authors"));
  IUAD_ASSIGN_OR_RETURN(const int64_t alive, r.Int("alive_vertices"));
  IUAD_ASSIGN_OR_RETURN(stats.num_alive_vertices,
                        ToInt32(alive, "alive_vertices"));
  IUAD_ASSIGN_OR_RETURN(const int64_t edges, r.Int("edges"));
  IUAD_ASSIGN_OR_RETURN(stats.num_edges, ToInt32(edges, "edges"));
  IUAD_ASSIGN_OR_RETURN(const int64_t queued, r.Int("queued_now"));
  IUAD_ASSIGN_OR_RETURN(stats.queued_now, ToInt32(queued, "queued_now"));
  IUAD_ASSIGN_OR_RETURN(const int64_t held, r.Int("reorder_held"));
  IUAD_ASSIGN_OR_RETURN(stats.reorder_held, ToInt32(held, "reorder_held"));
  IUAD_ASSIGN_OR_RETURN(const int64_t cap, r.Int("queue_capacity"));
  IUAD_ASSIGN_OR_RETURN(stats.queue_capacity, ToInt32(cap, "queue_capacity"));
  IUAD_ASSIGN_OR_RETURN(const int64_t shards, r.Int("num_shards"));
  IUAD_ASSIGN_OR_RETURN(stats.num_shards, ToInt32(shards, "num_shards"));
  IUAD_ASSIGN_OR_RETURN(const int64_t depth, r.Int("pipeline_depth"));
  IUAD_ASSIGN_OR_RETURN(stats.pipeline_depth,
                        ToInt32(depth, "pipeline_depth"));
  IUAD_ASSIGN_OR_RETURN(stats.pipeline_windows, r.Int("pipeline_windows"));
  IUAD_ASSIGN_OR_RETURN(stats.pipeline_occupancy,
                        r.Number("pipeline_occupancy"));
  IUAD_ASSIGN_OR_RETURN(stats.conflict_stalls, r.Int("conflict_stalls"));
  IUAD_ASSIGN_OR_RETURN(stats.speculative_rescores,
                        r.Int("speculative_rescores"));
  IUAD_ASSIGN_OR_RETURN(stats.rss_mb, r.Number("rss_mb"));
  IUAD_ASSIGN_OR_RETURN(stats.uptime_seconds, r.Number("uptime_seconds"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_appended, r.Int("wal_appended"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_fsyncs, r.Int("wal_fsyncs"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_bytes, r.Int("wal_bytes"));
  IUAD_ASSIGN_OR_RETURN(stats.recovery_replayed, r.Int("recovery_replayed"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_last_checkpoint_seq,
                        r.Int("wal_last_checkpoint_seq"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_last_checkpoint_age_s,
                        r.Number("wal_last_checkpoint_age_s"));
  IUAD_ASSIGN_OR_RETURN(stats.wal_fsync_wait_us_p99,
                        r.Number("wal_fsync_wait_us_p99"));
  IUAD_ASSIGN_OR_RETURN(const JsonValue* slow, r.Array("slow_commits"));
  for (const JsonValue& item : slow->items()) {
    IUAD_ASSIGN_OR_RETURN(ObjectReader er,
                          ObjectReader::For(item, "slow-commit exemplar"));
    obs::SlowCommitExemplar e;
    IUAD_ASSIGN_OR_RETURN(e.seq, er.Int("seq"));
    IUAD_ASSIGN_OR_RETURN(e.total_ns, er.Int("total_ns"));
    IUAD_ASSIGN_OR_RETURN(const JsonValue* stages, er.Array("stages"));
    for (const JsonValue& stage : stages->items()) {
      IUAD_ASSIGN_OR_RETURN(ObjectReader sr,
                            ObjectReader::For(stage, "exemplar stage"));
      obs::SlowCommitExemplar::Stage s;
      IUAD_ASSIGN_OR_RETURN(s.name, sr.String("stage"));
      IUAD_ASSIGN_OR_RETURN(s.ns, sr.Int("ns"));
      IUAD_RETURN_NOT_OK(sr.Finish());
      e.stages.push_back(std::move(s));
    }
    IUAD_ASSIGN_OR_RETURN(const JsonValue* deferrals, er.Array("deferrals"));
    for (const JsonValue& deferral : deferrals->items()) {
      IUAD_ASSIGN_OR_RETURN(ObjectReader dr,
                            ObjectReader::For(deferral, "exemplar deferral"));
      obs::SlowCommitExemplar::Deferral d;
      IUAD_ASSIGN_OR_RETURN(d.name, dr.String("name"));
      IUAD_ASSIGN_OR_RETURN(d.blocked_by_seq, dr.Int("blocked_by"));
      IUAD_RETURN_NOT_OK(dr.Finish());
      e.deferrals.push_back(std::move(d));
    }
    IUAD_RETURN_NOT_OK(er.Finish());
    stats.slow_commits.push_back(std::move(e));
  }
  IUAD_ASSIGN_OR_RETURN(const JsonValue* list, r.Array("shards"));
  for (const JsonValue& item : list->items()) {
    IUAD_ASSIGN_OR_RETURN(ObjectReader sr, ObjectReader::For(item, "shard"));
    serve::ShardHealth h;
    IUAD_ASSIGN_OR_RETURN(const int64_t shard, sr.Int("shard"));
    IUAD_ASSIGN_OR_RETURN(h.shard, ToInt32(shard, "shard index"));
    IUAD_ASSIGN_OR_RETURN(h.owned_blocks, sr.Int("owned_blocks"));
    IUAD_ASSIGN_OR_RETURN(h.placement_weight, sr.Int("placement_weight"));
    IUAD_ASSIGN_OR_RETURN(h.papers_scored, sr.Int("papers_scored"));
    IUAD_ASSIGN_OR_RETURN(h.bylines_scored, sr.Int("bylines_scored"));
    IUAD_ASSIGN_OR_RETURN(h.assignments, sr.Int("assignments"));
    IUAD_ASSIGN_OR_RETURN(h.new_authors, sr.Int("new_authors"));
    IUAD_RETURN_NOT_OK(sr.Finish());
    stats.shards.push_back(h);
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return stats;
}

iuad::Result<obs::HistogramSnapshot> DecodeHistogramSnapshot(
    const JsonValue& value) {
  IUAD_ASSIGN_OR_RETURN(ObjectReader r,
                        ObjectReader::For(value, "histogram"));
  obs::HistogramSnapshot h;
  IUAD_ASSIGN_OR_RETURN(h.name, r.String("name"));
  IUAD_ASSIGN_OR_RETURN(h.count, r.Int("count"));
  IUAD_ASSIGN_OR_RETURN(h.sum_ns, r.Int("sum_ns"));
  IUAD_ASSIGN_OR_RETURN(h.max_ns, r.Int("max_ns"));
  IUAD_ASSIGN_OR_RETURN(const JsonValue* buckets, r.Array("buckets"));
  int64_t bucket_sum = 0;
  int32_t last_index = -1;
  for (const JsonValue& pair : buckets->items()) {
    if (!pair.is_array() || pair.items().size() != 2 ||
        !pair.items()[0].is_int() || !pair.items()[1].is_int()) {
      return iuad::Status::InvalidArgument(
          "api: histogram \"buckets\" entries must be [index, count] "
          "integer pairs");
    }
    const int64_t index = pair.items()[0].as_int();
    const int64_t count = pair.items()[1].as_int();
    if (index <= last_index || index >= obs::Histogram::kNumBuckets) {
      return iuad::Status::InvalidArgument(
          "api: histogram bucket indices must be strictly increasing in "
          "[0, " + std::to_string(obs::Histogram::kNumBuckets) + ")");
    }
    if (count <= 0) {
      return iuad::Status::InvalidArgument(
          "api: histogram bucket counts must be positive (empty buckets "
          "are omitted)");
    }
    last_index = static_cast<int32_t>(index);
    bucket_sum += count;
    h.buckets.emplace_back(static_cast<int32_t>(index), count);
  }
  if (h.count != bucket_sum) {
    return iuad::Status::InvalidArgument(
        "api: histogram \"count\" must equal the sum of bucket counts");
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return h;
}

/// Shared decode of the counter/gauge sample lists ({"name","value"}).
template <typename Sample>
iuad::Status DecodeSamples(const JsonValue& list, const char* what,
                           std::vector<Sample>* out) {
  for (const JsonValue& item : list.items()) {
    IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(item, what));
    Sample s;
    IUAD_ASSIGN_OR_RETURN(s.name, r.String("name"));
    IUAD_ASSIGN_OR_RETURN(s.value, r.Int("value"));
    IUAD_RETURN_NOT_OK(r.Finish());
    out->push_back(std::move(s));
  }
  return iuad::Status::OK();
}

iuad::Result<obs::RegistrySnapshot> DecodeMetrics(const JsonValue& value) {
  IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(value, "metrics"));
  obs::RegistrySnapshot metrics;
  IUAD_ASSIGN_OR_RETURN(const JsonValue* counters, r.Array("counters"));
  IUAD_RETURN_NOT_OK(DecodeSamples(*counters, "counter", &metrics.counters));
  IUAD_ASSIGN_OR_RETURN(const JsonValue* gauges, r.Array("gauges"));
  IUAD_RETURN_NOT_OK(DecodeSamples(*gauges, "gauge", &metrics.gauges));
  IUAD_ASSIGN_OR_RETURN(const JsonValue* histograms, r.Array("histograms"));
  for (const JsonValue& item : histograms->items()) {
    IUAD_ASSIGN_OR_RETURN(obs::HistogramSnapshot h,
                          DecodeHistogramSnapshot(item));
    metrics.histograms.push_back(std::move(h));
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return metrics;
}

iuad::Result<std::vector<obs::ChromeTraceEvent>> DecodeTrace(
    const JsonValue& value) {
  IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(value, "trace"));
  std::vector<obs::ChromeTraceEvent> trace;
  IUAD_ASSIGN_OR_RETURN(const JsonValue* events, r.Array("traceEvents"));
  for (const JsonValue& item : events->items()) {
    IUAD_ASSIGN_OR_RETURN(ObjectReader er,
                          ObjectReader::For(item, "trace event"));
    obs::ChromeTraceEvent e;
    IUAD_ASSIGN_OR_RETURN(e.name, er.String("name"));
    IUAD_ASSIGN_OR_RETURN(const std::string ph, er.String("ph"));
    if (ph != "X" && ph != "i") {
      return iuad::Status::InvalidArgument(
          "api: trace event \"ph\" must be \"X\" or \"i\"");
    }
    e.ph = ph[0];
    IUAD_ASSIGN_OR_RETURN(e.ts_us, er.Int("ts"));
    // "dur" is present exactly when the phase is a complete span.
    if (e.ph == 'X') {
      IUAD_ASSIGN_OR_RETURN(e.dur_us, er.Int("dur"));
    }
    IUAD_ASSIGN_OR_RETURN(const int64_t pid, er.Int("pid"));
    if (pid != 1) {
      return iuad::Status::InvalidArgument(
          "api: trace event \"pid\" must be 1 (single-process recorder)");
    }
    IUAD_ASSIGN_OR_RETURN(const int64_t tid, er.Int("tid"));
    IUAD_ASSIGN_OR_RETURN(e.tid, ToInt32(tid, "trace tid"));
    IUAD_ASSIGN_OR_RETURN(const JsonValue* args, er.Object("args"));
    IUAD_ASSIGN_OR_RETURN(ObjectReader ar,
                          ObjectReader::For(*args, "trace args"));
    IUAD_ASSIGN_OR_RETURN(e.a0, ar.Int("a0"));
    IUAD_ASSIGN_OR_RETURN(e.a1, ar.Int("a1"));
    IUAD_RETURN_NOT_OK(ar.Finish());
    IUAD_RETURN_NOT_OK(er.Finish());
    trace.push_back(std::move(e));
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return trace;
}

util::JsonReaderOptions ReaderOptions(const WireLimits& limits) {
  util::JsonReaderOptions options;
  options.max_bytes = limits.max_bytes;
  options.max_depth = limits.max_depth;
  return options;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  JsonWriter w(JsonWriter::Style::kCompact);
  w.Field("id", request.id).Field("op", OpName(request.op));
  switch (request.op) {
    case Op::kIngest: {
      w.BeginArray("papers");
      for (const data::Paper& paper : request.ingest.papers) {
        EncodePaper(&w, paper);
      }
      w.EndArray();
      break;
    }
    case Op::kQueryAuthors:
      w.Field("name", request.query_authors.name);
      break;
    case Op::kQueryPublications:
      w.Field("vertex", request.query_publications.vertex);
      break;
    case Op::kFlush:
    case Op::kStats:
    case Op::kMetrics:
    case Op::kTrace:
      break;
  }
  return w.str();
}

std::string EncodeResponse(const Response& response) {
  JsonWriter w(JsonWriter::Style::kCompact);
  w.Field("id", response.id)
      .Field("op", OpName(response.op))
      .Field("ok", response.status.ok());
  if (!response.status.ok()) {
    w.BeginObject("error")
        .Field("code", StatusCodeName(response.status.code()))
        .Field("message", response.status.message())
        .EndObject();
    return w.str();
  }
  switch (response.op) {
    case Op::kIngest: {
      w.BeginArray("assignments");
      for (const auto& per_paper : response.assignments) {
        w.BeginArrayElement();
        for (const core::IncrementalAssignment& a : per_paper) {
          w.BeginObjectElement()
              .Field("name", a.name)
              .Field("vertex", a.vertex)
              .Field("new", a.created_new);
          EncodeScore(&w, a.best_score);
          w.Field("candidates", a.num_candidates).EndObject();
        }
        w.EndArray();
      }
      w.EndArray();
      break;
    }
    case Op::kQueryAuthors: {
      w.BeginArray("authors");
      for (const serve::AuthorRecord& rec : response.authors) {
        w.BeginObjectElement()
            .Field("vertex", rec.vertex)
            .Field("papers", rec.num_papers)
            .EndObject();
      }
      w.EndArray();
      break;
    }
    case Op::kQueryPublications: {
      w.BeginArray("paper_ids");
      for (int id : response.paper_ids) w.Element(id);
      w.EndArray();
      break;
    }
    case Op::kFlush:
      w.Field("applied", response.applied);
      break;
    case Op::kStats:
      EncodeStats(&w, response.stats);
      break;
    case Op::kMetrics:
      EncodeMetrics(&w, response.metrics);
      break;
    case Op::kTrace:
      EncodeTrace(&w, response.trace);
      break;
  }
  return w.str();
}

iuad::Result<Request> DecodeRequest(const std::string& line,
                                    const WireLimits& limits) {
  IUAD_ASSIGN_OR_RETURN(JsonValue root,
                        util::ParseJson(line, ReaderOptions(limits)));
  IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(root, "request"));
  Request request;
  IUAD_ASSIGN_OR_RETURN(request.id, r.Int("id"));
  IUAD_ASSIGN_OR_RETURN(const std::string op_name, r.String("op"));
  IUAD_ASSIGN_OR_RETURN(request.op, OpFromName(op_name));
  switch (request.op) {
    case Op::kIngest: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* papers, r.Array("papers"));
      if (papers->items().empty()) {
        return iuad::Status::InvalidArgument(
            "api: ingest request with no papers");
      }
      for (const JsonValue& item : papers->items()) {
        IUAD_ASSIGN_OR_RETURN(data::Paper paper, DecodePaper(item));
        request.ingest.papers.push_back(std::move(paper));
      }
      break;
    }
    case Op::kQueryAuthors: {
      IUAD_ASSIGN_OR_RETURN(request.query_authors.name, r.String("name"));
      break;
    }
    case Op::kQueryPublications: {
      IUAD_ASSIGN_OR_RETURN(request.query_publications.vertex,
                            r.Int("vertex"));
      break;
    }
    case Op::kFlush:
    case Op::kStats:
    case Op::kMetrics:
    case Op::kTrace:
      break;
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return request;
}

iuad::Result<Response> DecodeResponse(const std::string& line,
                                      const WireLimits& limits) {
  IUAD_ASSIGN_OR_RETURN(JsonValue root,
                        util::ParseJson(line, ReaderOptions(limits)));
  IUAD_ASSIGN_OR_RETURN(ObjectReader r, ObjectReader::For(root, "response"));
  Response response;
  IUAD_ASSIGN_OR_RETURN(response.id, r.Int("id"));
  IUAD_ASSIGN_OR_RETURN(const std::string op_name, r.String("op"));
  IUAD_ASSIGN_OR_RETURN(response.op, OpFromName(op_name));
  IUAD_ASSIGN_OR_RETURN(const bool ok, r.Bool("ok"));
  if (!ok) {
    IUAD_ASSIGN_OR_RETURN(const JsonValue* error, r.Object("error"));
    IUAD_ASSIGN_OR_RETURN(ObjectReader er,
                          ObjectReader::For(*error, "error"));
    IUAD_ASSIGN_OR_RETURN(const std::string code, er.String("code"));
    IUAD_ASSIGN_OR_RETURN(const std::string message, er.String("message"));
    IUAD_RETURN_NOT_OK(er.Finish());
    const StatusCode status_code = StatusCodeFromName(code);
    if (status_code == StatusCode::kOk) {
      return iuad::Status::InvalidArgument(
          "api: error response cannot carry code \"OK\"");
    }
    response.status = iuad::Status(status_code, message);
    IUAD_RETURN_NOT_OK(r.Finish());
    return response;
  }
  switch (response.op) {
    case Op::kIngest: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* outer, r.Array("assignments"));
      for (const JsonValue& per_paper : outer->items()) {
        if (!per_paper.is_array()) {
          return iuad::Status::InvalidArgument(
              "api: \"assignments\" entries must be arrays");
        }
        std::vector<core::IncrementalAssignment> decoded;
        for (const JsonValue& item : per_paper.items()) {
          IUAD_ASSIGN_OR_RETURN(ObjectReader ar,
                                ObjectReader::For(item, "assignment"));
          core::IncrementalAssignment a;
          IUAD_ASSIGN_OR_RETURN(a.name, ar.String("name"));
          IUAD_ASSIGN_OR_RETURN(const int64_t vertex, ar.Int("vertex"));
          IUAD_ASSIGN_OR_RETURN(a.vertex, ToInt32(vertex, "vertex"));
          IUAD_ASSIGN_OR_RETURN(a.created_new, ar.Bool("new"));
          IUAD_ASSIGN_OR_RETURN(const JsonValue* score, ar.Any("score"));
          IUAD_ASSIGN_OR_RETURN(a.best_score, DecodeScore(*score));
          IUAD_ASSIGN_OR_RETURN(const int64_t cands, ar.Int("candidates"));
          IUAD_ASSIGN_OR_RETURN(a.num_candidates,
                                ToInt32(cands, "candidates"));
          IUAD_RETURN_NOT_OK(ar.Finish());
          decoded.push_back(std::move(a));
        }
        response.assignments.push_back(std::move(decoded));
      }
      break;
    }
    case Op::kQueryAuthors: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* authors, r.Array("authors"));
      for (const JsonValue& item : authors->items()) {
        IUAD_ASSIGN_OR_RETURN(ObjectReader ar,
                              ObjectReader::For(item, "author"));
        serve::AuthorRecord rec;
        IUAD_ASSIGN_OR_RETURN(const int64_t vertex, ar.Int("vertex"));
        IUAD_ASSIGN_OR_RETURN(rec.vertex, ToInt32(vertex, "vertex"));
        IUAD_ASSIGN_OR_RETURN(const int64_t papers, ar.Int("papers"));
        IUAD_ASSIGN_OR_RETURN(rec.num_papers, ToInt32(papers, "papers"));
        IUAD_RETURN_NOT_OK(ar.Finish());
        response.authors.push_back(rec);
      }
      break;
    }
    case Op::kQueryPublications: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* ids, r.Array("paper_ids"));
      for (const JsonValue& item : ids->items()) {
        if (!item.is_int()) {
          return iuad::Status::InvalidArgument(
              "api: \"paper_ids\" entries must be integers");
        }
        IUAD_ASSIGN_OR_RETURN(const int id, ToInt32(item.as_int(),
                                                    "paper id"));
        response.paper_ids.push_back(id);
      }
      break;
    }
    case Op::kFlush: {
      IUAD_ASSIGN_OR_RETURN(response.applied, r.Int("applied"));
      break;
    }
    case Op::kStats: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* stats, r.Object("stats"));
      IUAD_ASSIGN_OR_RETURN(response.stats, DecodeStats(*stats));
      break;
    }
    case Op::kMetrics: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* metrics, r.Object("metrics"));
      IUAD_ASSIGN_OR_RETURN(response.metrics, DecodeMetrics(*metrics));
      break;
    }
    case Op::kTrace: {
      IUAD_ASSIGN_OR_RETURN(const JsonValue* trace, r.Object("trace"));
      IUAD_ASSIGN_OR_RETURN(response.trace, DecodeTrace(*trace));
      break;
    }
  }
  IUAD_RETURN_NOT_OK(r.Finish());
  return response;
}

}  // namespace iuad::api
