#include "api/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <utility>

#include "util/thread_pool.h"

namespace iuad::api {

namespace {

/// Writes all of `data` to `fd`, absorbing short writes and EINTR. False
/// on a dead peer (EPIPE & friends) — the caller just closes.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string TurnedAwayLine() {
  Response busy;
  busy.id = -1;
  busy.op = Op::kStats;
  busy.status = iuad::Status::ResourceExhausted(
      "server at connection capacity; retry");
  return EncodeResponse(busy) + "\n";
}

}  // namespace

/// Accepted-connection hand-off queue plus live-connection registry (so
/// Shutdown can unblock workers parked in recv on idle sessions).
struct Server::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;       ///< Accepted fds awaiting a worker.
  std::set<int> live;            ///< Fds currently owned by a worker.
  bool stopping = false;
  size_t max_pending = 0;
};

Server::Server(serve::Frontend* frontend, ServerOptions options)
    : frontend_(frontend),
      options_(std::move(options)),
      dispatcher_(frontend,
                  Dispatcher::Options{options_.max_batch, options_.limits,
                                      options_.metrics_enabled,
                                      options_.trace_enabled}),
      ctr_connections_accepted_(
          frontend->Metrics()->GetCounter("connections_accepted")),
      ctr_connections_turned_away_(
          frontend->Metrics()->GetCounter("connections_turned_away")),
      ctr_bytes_in_(frontend->Metrics()->GetCounter("bytes_in")),
      ctr_bytes_out_(frontend->Metrics()->GetCounter("bytes_out")),
      gauge_connections_active_(
          frontend->Metrics()->GetGauge("connections_active")),
      state_(std::make_unique<State>()) {}

Server::~Server() { Shutdown(); }

iuad::Status Server::Start() {
  const int num_workers = util::ResolveNumThreads(options_.num_workers);
  state_->max_pending = static_cast<size_t>(2 * num_workers);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return iuad::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return iuad::Status::IoError("bind port " +
                                 std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return iuad::Status::IoError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }

  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return iuad::Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (Shutdown) or fatal: stop accepting either way.
      return;
    }
    bool turned_away = false;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->stopping || state_->pending.size() >= state_->max_pending) {
        turned_away = true;
      } else {
        state_->pending.push_back(fd);
        state_->cv.notify_one();
      }
    }
    if (turned_away) {
      // Backpressure surfaces in-protocol: one error line, then close.
      ctr_connections_turned_away_->Increment();
      const std::string line = TurnedAwayLine();
      if (WriteAll(fd, line)) {
        ctr_bytes_out_->Add(static_cast<int64_t>(line.size()));
      }
      ::close(fd);
    } else {
      ctr_connections_accepted_->Increment();
    }
  }
}

void Server::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [&] {
        return state_->stopping || !state_->pending.empty();
      });
      if (state_->pending.empty()) return;  // stopping, nothing queued
      fd = state_->pending.front();
      state_->pending.pop_front();
      state_->live.insert(fd);
    }
    gauge_connections_active_->Add(1);
    ServeConnection(fd);
    gauge_connections_active_->Add(-1);
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->live.erase(fd);
    }
    ::close(fd);
  }
}

void Server::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Dispatch every complete line currently buffered.
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = dispatcher_.HandleLine(line) + "\n";
      if (!WriteAll(fd, response)) return;
      ctr_bytes_out_->Add(static_cast<int64_t>(response.size()));
    }
    buffer.erase(0, start);
    // A peer streaming garbage without newlines must not grow the buffer
    // forever; past the wire limit the line could never decode anyway.
    if (buffer.size() > options_.limits.max_bytes) {
      Response overflow;
      overflow.id = -1;
      overflow.op = Op::kStats;
      overflow.status = iuad::Status::InvalidArgument(
          "request line exceeds " +
          std::to_string(options_.limits.max_bytes) + " bytes");
      const std::string line = EncodeResponse(overflow) + "\n";
      if (WriteAll(fd, line)) {
        ctr_bytes_out_->Add(static_cast<int64_t>(line.size()));
      }
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF, error, or Shutdown's SHUT_RDWR
    ctr_bytes_in_->Add(n);
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->stopping) {
      // A previous Shutdown already ran (or is running); Start-less
      // servers also land here harmlessly.
      if (!acceptor_.joinable() && workers_.empty()) return;
    }
    state_->stopping = true;
    // Unblock workers parked in recv: in-flight HandleLine calls complete
    // (the dispatcher waits on applied futures), then the read fails and
    // the worker closes the session.
    for (int fd : state_->live) ::shutdown(fd, SHUT_RDWR);
    // Never-served connections get closed without a response.
    for (int fd : state_->pending) ::close(fd);
    state_->pending.clear();
  }
  state_->cv.notify_all();
  // Unblock the acceptor with shutdown() only; close() and the fd reset
  // wait until it has joined — the acceptor reads listen_fd_ around every
  // accept() call, and closing under it both races the read and risks the
  // kernel reusing the fd number for a live connection mid-accept.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Drain, not Stop: every admitted paper is applied and published, and
  // the caller keeps the frontend usable (the CLI still prints stats and
  // checkpoints after the server goes down).
  frontend_->Drain();
}

}  // namespace iuad::api
