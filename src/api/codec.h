#ifndef IUAD_API_CODEC_H_
#define IUAD_API_CODEC_H_

/// \file codec.h
/// Newline-delimited JSON wire codec for the query/ingest protocol: one
/// Request or Response per line, compact (whitespace-free) encoding, field
/// order fixed. Encoding is canonical — encode(decode(encode(x))) is
/// byte-identical to encode(x), property-tested in tests/api_test.cpp —
/// and decoding is strict: unknown fields, wrong types, duplicate keys,
/// truncated documents, and oversized payloads all fail with
/// InvalidArgument instead of being guessed at.
///
/// Wire grammar (one JSON object per line; `?` marks optional fields):
///
///   request  := {"id": int, "op": op, ...op-payload}
///   op       := "ingest" | "query_authors" | "query_publications"
///             | "flush" | "stats" | "metrics" | "trace"
///   ingest payload             "papers": [paper, ...]
///   query_authors payload      "name": string
///   query_publications payload "vertex": int
///   paper    := {"title": string, "venue": string, "year": int,
///                "authors": [string, ...], "truth"?: [int, ...]}
///
///   response := {"id": int, "op": op, "ok": true, ...op-payload}
///             | {"id": int, "op": op, "ok": false,
///                "error": {"code": string, "message": string}}
///   ingest payload             "assignments": [[assignment, ...], ...]
///                              (one inner list per submitted paper)
///   assignment := {"name": string, "vertex": int, "new": bool,
///                  "score": number, "candidates": int}
///   query_authors payload      "authors": [{"vertex": int, "papers": int}]
///   query_publications payload "paper_ids": [int, ...]
///   flush payload              "applied": int
///   stats payload              "stats": {epoch, papers_applied,
///                              assignments, new_authors, alive_vertices,
///                              edges, queued_now, reorder_held,
///                              queue_capacity, num_shards, ...,
///                              rss_mb, uptime_seconds,
///                              slow_commits: [exemplar, ...],
///                              shards: [...]}
///   exemplar   := {"seq": int, "total_ns": int,
///                  "stages": [{"stage": string, "ns": int}, ...],
///                  "deferrals": [{"name": string,
///                                 "blocked_by": int}, ...]}
///   metrics payload            "metrics": {"counters": [sample, ...],
///                              "gauges": [sample, ...],
///                              "histograms": [histogram, ...]}
///   sample     := {"name": string, "value": int}
///   histogram  := {"name": string, "count": int, "sum_ns": int,
///                  "max_ns": int, "buckets": [[index, count], ...]}
///                 (raw mergeable form: sparse non-empty buckets with
///                  strictly increasing indices, count == sum of bucket
///                  counts — the decoder enforces both)
///   trace payload              "trace": {"traceEvents": [event, ...]}
///   event      := {"name": string, "ph": "X" | "i", "ts": int,
///                  "dur"?: int, "pid": 1, "tid": int,
///                  "args": {"a0": int, "a1": int}}
///                 ("dur" present exactly when ph is "X"; ts/dur are
///                  integer microseconds — the Chrome trace-event shape,
///                  so the payload object is directly Perfetto-loadable)

#include <string>

#include "api/messages.h"
#include "util/status.h"

namespace iuad::api {

/// Decoder guards against hostile input (the TCP transport reads untrusted
/// bytes). Encoded documents this codec produces stay far inside both.
struct WireLimits {
  size_t max_bytes = 1 << 20;
  int max_depth = 32;
};

/// One compact JSON line, without the trailing newline (the transport owns
/// framing).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

iuad::Result<Request> DecodeRequest(const std::string& line,
                                    const WireLimits& limits = {});
iuad::Result<Response> DecodeResponse(const std::string& line,
                                      const WireLimits& limits = {});

}  // namespace iuad::api

#endif  // IUAD_API_CODEC_H_
