#include "api/dispatcher.h"

#include <future>
#include <string>
#include <utility>
#include <vector>

namespace iuad::api {

Response Dispatcher::Execute(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  switch (request.op) {
    case Op::kIngest: {
      const auto& papers = request.ingest.papers;
      if (papers.empty()) {
        response.status =
            iuad::Status::InvalidArgument("ingest request with no papers");
        return response;
      }
      if (papers.size() > static_cast<size_t>(options_.max_batch)) {
        response.status = iuad::Status::ResourceExhausted(
            "batch of " + std::to_string(papers.size()) +
            " papers exceeds api_max_batch = " +
            std::to_string(options_.max_batch));
        return response;
      }
      // Protocol-level backpressure: when the bounded ingest queue is
      // already at capacity (concurrent connections saturating the
      // applier), refuse instead of parking this connection on the
      // admission window for an unbounded time.
      const serve::ServiceStats live = frontend_->Stats();
      if (live.queued_now >= live.queue_capacity) {
        response.status = iuad::Status::ResourceExhausted(
            "ingest queue full (" + std::to_string(live.queued_now) + "/" +
            std::to_string(live.queue_capacity) + " queued); retry");
        return response;
      }
      auto futures = frontend_->SubmitBatch(papers);
      response.assignments.reserve(futures.size());
      for (size_t i = 0; i < futures.size(); ++i) {
        auto applied = futures[i].get();
        if (!applied.ok()) {
          response.assignments.clear();
          response.status = iuad::Status(
              applied.status().code(),
              "paper " + std::to_string(i) + ": " +
                  applied.status().message());
          return response;
        }
        response.assignments.push_back(std::move(*applied));
      }
      return response;
    }
    case Op::kQueryAuthors:
      response.authors = frontend_->AuthorsByName(request.query_authors.name);
      return response;
    case Op::kQueryPublications: {
      const int64_t vertex = request.query_publications.vertex;
      if (vertex < 0) {
        response.status =
            iuad::Status::InvalidArgument("vertex must be >= 0");
        return response;
      }
      response.paper_ids =
          frontend_->PublicationsOf(static_cast<graph::VertexId>(vertex));
      return response;
    }
    case Op::kFlush:
      frontend_->Drain();
      response.applied = frontend_->Stats().papers_applied;
      return response;
    case Op::kStats:
      response.stats = frontend_->Stats();
      return response;
  }
  response.status = iuad::Status::Internal("unhandled op");
  return response;
}

std::string Dispatcher::HandleLine(const std::string& line) {
  auto request = DecodeRequest(line, options_.limits);
  if (!request.ok()) {
    Response error;
    error.id = -1;  // the request id never decoded
    error.op = Op::kStats;
    error.status = request.status();
    return EncodeResponse(error);
  }
  return EncodeResponse(Execute(*request));
}

void Dispatcher::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    out << HandleLine(line) << '\n' << std::flush;
  }
}

}  // namespace iuad::api
