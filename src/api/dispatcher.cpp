#include "api/dispatcher.h"

#include <future>
#include <string>
#include <utility>
#include <vector>

namespace iuad::api {

Dispatcher::Dispatcher(serve::Frontend* frontend, Options options)
    : frontend_(frontend),
      options_(options),
      timing_(options.metrics_enabled),
      tracing_(options.trace_enabled),
      stamps_(timing_ || tracing_),
      recorder_(&obs::FlightRecorder::Instance()),
      ctr_requests_(frontend->Metrics()->GetCounter("requests")),
      ctr_request_errors_(frontend->Metrics()->GetCounter("request_errors")),
      hist_decode_us_(frontend->Metrics()->GetHistogram("decode_us")),
      hist_encode_us_(frontend->Metrics()->GetHistogram("encode_us")) {
  // One latency histogram per operation, indexed by the Op enum value.
  for (Op op : {Op::kIngest, Op::kQueryAuthors, Op::kQueryPublications,
                Op::kFlush, Op::kStats, Op::kMetrics, Op::kTrace}) {
    hist_request_us_.push_back(frontend->Metrics()->GetHistogram(
        std::string("request_us_") + OpName(op)));
  }
}

Response Dispatcher::Execute(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  switch (request.op) {
    case Op::kIngest: {
      const auto& papers = request.ingest.papers;
      if (papers.empty()) {
        response.status =
            iuad::Status::InvalidArgument("ingest request with no papers");
        return response;
      }
      if (papers.size() > static_cast<size_t>(options_.max_batch)) {
        response.status = iuad::Status::ResourceExhausted(
            "batch of " + std::to_string(papers.size()) +
            " papers exceeds api_max_batch = " +
            std::to_string(options_.max_batch));
        return response;
      }
      // Protocol-level backpressure: when the bounded ingest queue is
      // already at capacity (concurrent connections saturating the
      // applier), refuse instead of parking this connection on the
      // admission window for an unbounded time.
      const serve::ServiceStats live = frontend_->Stats();
      if (live.queued_now >= live.queue_capacity) {
        response.status = iuad::Status::ResourceExhausted(
            "ingest queue full (" + std::to_string(live.queued_now) + "/" +
            std::to_string(live.queue_capacity) + " queued); retry");
        return response;
      }
      auto futures = frontend_->SubmitBatch(papers);
      response.assignments.reserve(futures.size());
      for (size_t i = 0; i < futures.size(); ++i) {
        auto applied = futures[i].get();
        if (!applied.ok()) {
          response.assignments.clear();
          response.status = iuad::Status(
              applied.status().code(),
              "paper " + std::to_string(i) + ": " +
                  applied.status().message());
          return response;
        }
        response.assignments.push_back(std::move(*applied));
      }
      return response;
    }
    case Op::kQueryAuthors:
      response.authors = frontend_->AuthorsByName(request.query_authors.name);
      return response;
    case Op::kQueryPublications: {
      const int64_t vertex = request.query_publications.vertex;
      if (vertex < 0) {
        response.status =
            iuad::Status::InvalidArgument("vertex must be >= 0");
        return response;
      }
      response.paper_ids =
          frontend_->PublicationsOf(static_cast<graph::VertexId>(vertex));
      return response;
    }
    case Op::kFlush:
      frontend_->Drain();
      response.applied = frontend_->Stats().papers_applied;
      return response;
    case Op::kStats:
      response.stats = frontend_->Stats();
      return response;
    case Op::kMetrics:
      response.metrics = frontend_->Metrics()->Snapshot();
      return response;
    case Op::kTrace:
      // Draining is destructive reading only in the sense that later
      // drains see later events; the recorder itself keeps recording.
      response.trace = obs::ChromeTraceEvents(recorder_->Drain());
      return response;
  }
  response.status = iuad::Status::Internal("unhandled op");
  return response;
}

std::string Dispatcher::HandleLine(const std::string& line) {
  const int64_t start_ns = stamps_ ? obs::NowNs() : 0;
  auto request = DecodeRequest(line, options_.limits);
  const int64_t decoded_ns = stamps_ ? obs::NowNs() : 0;
  if (timing_) hist_decode_us_->RecordNs(decoded_ns - start_ns);
  ctr_requests_->Increment();
  if (!request.ok()) {
    ctr_request_errors_->Increment();
    Response error;
    error.id = -1;  // the request id never decoded
    error.op = Op::kStats;
    error.status = request.status();
    return EncodeResponse(error);
  }
  Response response = Execute(*request);
  if (!response.status.ok()) ctr_request_errors_->Increment();
  const int64_t executed_ns = stamps_ ? obs::NowNs() : 0;
  if (timing_) {
    hist_request_us_[static_cast<size_t>(request->op)]->RecordNs(
        executed_ns - decoded_ns);
  }
  if (tracing_) {
    // One "request" span per decoded line: a0 = Op value, a1 = execute
    // duration (decode and encode stay histogram-only detail).
    recorder_->RecordAt(executed_ns, obs::TraceEventId::kRequest,
                        static_cast<uint64_t>(request->op),
                        static_cast<uint64_t>(executed_ns - decoded_ns));
  }
  std::string encoded = EncodeResponse(response);
  if (timing_) hist_encode_us_->RecordNs(obs::NowNs() - executed_ns);
  return encoded;
}

void Dispatcher::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    out << HandleLine(line) << '\n' << std::flush;
  }
}

}  // namespace iuad::api
