#ifndef IUAD_API_SERVER_H_
#define IUAD_API_SERVER_H_

/// \file server.h
/// Networked transport of the query/ingest protocol: a multi-threaded TCP
/// listener speaking newline-delimited JSON (codec.h), one line per
/// request, responses in request order per connection. A stdio transport
/// (Dispatcher::ServeStream) shares the exact same dispatch path, so CI
/// can drive a scripted session through `iuad serve --stdio` without
/// sockets.
///
/// Shape:
///  * One acceptor thread and api_num_workers connection workers. Each
///    worker serves one connection at a time; up to `2 * workers` accepted
///    connections may wait in a bounded hand-off queue, and connections
///    beyond that are answered with one ResourceExhausted line and closed
///    (protocol-level backpressure — a stalled fleet of clients can't
///    accumulate unbounded server state).
///  * Graceful drain on Shutdown(): the listener closes first (no new
///    connections), live connections finish their in-flight request and
///    are then shut down, workers join, and the frontend is drained so
///    every admitted paper is applied and published before Shutdown()
///    returns. Idempotent; the destructor calls it.
///  * Ingest backpressure inside a session is the Dispatcher's
///    (RESOURCE_EXHAUSTED responses; see dispatcher.h).

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.h"
#include "serve/frontend.h"
#include "util/status.h"

namespace iuad::api {

struct ServerOptions {
  /// TCP port to bind on localhost-any (INADDR_ANY); 0 = ephemeral, read
  /// the result from port().
  int port = 0;
  /// Connection worker count; 0 = hardware concurrency.
  int num_workers = 0;
  /// Dispatcher limits (see Dispatcher::Options).
  int max_batch = 64;
  WireLimits limits;
  /// Gates request-path timing histograms (Dispatcher::Options);
  /// connection/byte counters stay live regardless.
  bool metrics_enabled = true;
  /// Gates per-request flight-recorder events (Dispatcher::Options).
  bool trace_enabled = true;
};

class Server {
 public:
  /// `frontend` is caller-owned and must outlive the server.
  Server(serve::Frontend* frontend, ServerOptions options);
  ~Server();  ///< Shutdown().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. IoError on
  /// bind/listen failure (e.g. the port is taken).
  iuad::Status Start();

  /// The actually bound TCP port (differs from options.port when that was
  /// 0). Only meaningful after a successful Start().
  int port() const { return bound_port_; }

  /// Graceful drain: stop accepting, finish in-flight requests, close
  /// connections, join threads, drain the frontend. Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  serve::Frontend* frontend_;
  ServerOptions options_;
  Dispatcher dispatcher_;

  // Transport instruments (frontend registry): connection churn and raw
  // byte traffic, which the dispatcher (one line at a time) cannot see.
  obs::Counter* ctr_connections_accepted_;
  obs::Counter* ctr_connections_turned_away_;
  obs::Counter* ctr_bytes_in_;
  obs::Counter* ctr_bytes_out_;
  obs::Gauge* gauge_connections_active_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  struct State;  // queue + live-connection tracking, hidden from the header
  std::unique_ptr<State> state_;
};

}  // namespace iuad::api

#endif  // IUAD_API_SERVER_H_
