#ifndef IUAD_SHARD_PLACEMENT_H_
#define IUAD_SHARD_PLACEMENT_H_

/// \file placement.h
/// Deterministic name-block → shard placement. The paper's bottom-up design
/// (Sec. V-E) makes author assignment a per-name-block decision — a byline
/// only ever competes against candidate vertices bearing its own name — so
/// the name block is the natural partitioning key for horizontal scale.
/// Block sizes are scale-free in real corpora (Kim, JASIST 2018): a handful
/// of blocks ("J. Lee") dwarf the median, so naive hashing overloads
/// whichever shard draws them. The size-aware policy packs the fitted
/// result's blocks greedily by scoring weight instead.
///
/// Placement is pure load balancing: scoring is deterministic wherever it
/// runs, so assignments never depend on the policy, the shard count, or
/// which process owns a block. Both the shard router (src/shard) and the
/// sharded snapshot sections (src/io, format v2) use this map, so a
/// snapshot's shard sections mirror the serving partition.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "graph/collab_graph.h"

namespace iuad::shard {

/// FNV-1a over the block name: the stateless fallback route shared by every
/// policy for blocks born after placement was built.
uint64_t NameHash(const std::string& name);

/// Immutable block → shard map. Thread-safe for concurrent ShardOf calls
/// once built.
class BlockPlacement {
 public:
  /// Builds the placement over the name blocks of `graph` (names with at
  /// least one alive vertex). Deterministic: depends only on the graph
  /// content, `num_shards`, and `policy` — never on iteration order of any
  /// hash map. `num_shards` must be >= 1 (IuadConfig::Validate enforces).
  static BlockPlacement Build(const graph::CollabGraph& graph, int num_shards,
                              core::ShardPlacement policy);

  /// Owner shard of a name block, in [0, num_shards). Blocks unknown at
  /// build time route through the hash rule.
  int ShardOf(const std::string& name) const {
    if (num_shards_ == 1) return 0;
    auto it = block_shard_.find(name);
    if (it != block_shard_.end()) return it->second;
    return static_cast<int>(NameHash(name) %
                            static_cast<uint64_t>(num_shards_));
  }

  int num_shards() const { return num_shards_; }
  int64_t num_blocks() const { return static_cast<int64_t>(block_shard_.size()); }

  /// Per-shard sum of placed block weights (candidate vertices + attributed
  /// papers) — the balance the size-aware policy optimizes, surfaced for
  /// stats and tests.
  const std::vector<int64_t>& shard_weights() const { return shard_weights_; }

 private:
  int num_shards_ = 1;
  std::unordered_map<std::string, int> block_shard_;
  std::vector<int64_t> shard_weights_;
};

}  // namespace iuad::shard

#endif  // IUAD_SHARD_PLACEMENT_H_
