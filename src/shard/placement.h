#ifndef IUAD_SHARD_PLACEMENT_H_
#define IUAD_SHARD_PLACEMENT_H_

/// \file placement.h
/// Deterministic name-block → shard placement. The paper's bottom-up design
/// (Sec. V-E) makes author assignment a per-name-block decision — a byline
/// only ever competes against candidate vertices bearing its own name — so
/// the name block is the natural partitioning key for horizontal scale.
/// Block sizes are scale-free in real corpora (Kim, JASIST 2018): a handful
/// of blocks ("J. Lee") dwarf the median, so naive hashing overloads
/// whichever shard draws them. The size-aware policy packs the fitted
/// result's blocks greedily by scoring weight instead.
///
/// Placement is pure load balancing: scoring is deterministic wherever it
/// runs, so assignments never depend on the policy, the shard count, or
/// which process owns a block. Both the shard router (src/shard) and the
/// sharded snapshot sections (src/io, format v2) use this map, so a
/// snapshot's shard sections mirror the serving partition.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "graph/collab_graph.h"
#include "util/interner.h"

namespace iuad::shard {

/// FNV-1a over the block name: the stateless fallback route shared by every
/// policy for blocks born after placement was built.
uint64_t NameHash(std::string_view name);

/// Immutable block → shard map. Thread-safe for concurrent ShardOf calls
/// once built. Internally the map is a flat array indexed by the graph's
/// interned util::NameId (the placement snapshots the interner at build
/// time, so its ids coincide with the graph's for every name known then):
/// routing an interned block is one bounds check + one array load, no
/// string hashing.
class BlockPlacement {
 public:
  /// Builds the placement over the name blocks of `graph` (names with at
  /// least one alive vertex). Deterministic: depends only on the graph
  /// content, `num_shards`, and `policy` — never on iteration order of any
  /// hash map. `num_shards` must be >= 1 (IuadConfig::Validate enforces).
  static BlockPlacement Build(const graph::CollabGraph& graph, int num_shards,
                              core::ShardPlacement policy);

  /// Owner shard of a name block, in [0, num_shards). The hot path: `id` is
  /// the block's interned id in the graph the placement was built from
  /// (kInvalidNameId is fine). Blocks unknown at build time — new ids, or
  /// names that had no alive vertex — route through the hash rule applied
  /// to `name`.
  int ShardOf(util::NameId id, std::string_view name) const {
    if (num_shards_ == 1) return 0;
    if (id >= 0 && static_cast<size_t>(id) < shard_of_id_.size() &&
        shard_of_id_[static_cast<size_t>(id)] >= 0) {
      return shard_of_id_[static_cast<size_t>(id)];
    }
    return static_cast<int>(NameHash(name) %
                            static_cast<uint64_t>(num_shards_));
  }

  /// String-keyed route for callers at the protocol boundary (and tests):
  /// resolves the id through the placement's own interner snapshot.
  int ShardOf(std::string_view name) const {
    if (num_shards_ == 1) return 0;
    return ShardOf(names_.Lookup(name), name);
  }

  int num_shards() const { return num_shards_; }
  int64_t num_blocks() const { return num_blocks_; }

  /// Per-shard sum of placed block weights (candidate vertices + attributed
  /// papers) — the balance the size-aware policy optimizes, surfaced for
  /// stats and tests.
  const std::vector<int64_t>& shard_weights() const { return shard_weights_; }

 private:
  int num_shards_ = 1;
  /// Copy of the build-time graph interner; ids match the graph's.
  util::StringInterner names_;
  /// NameId -> shard, -1 for ids that were not placed (no alive vertex).
  std::vector<int32_t> shard_of_id_;
  int64_t num_blocks_ = 0;
  std::vector<int64_t> shard_weights_;
};

}  // namespace iuad::shard

#endif  // IUAD_SHARD_PLACEMENT_H_
