#ifndef IUAD_SHARD_SHARD_ROUTER_H_
#define IUAD_SHARD_SHARD_ROUTER_H_

/// \file shard_router.h
/// Horizontally sharded serving front end for the incremental path: a
/// ShardRouter partitions the fitted DisambiguationResult's name blocks
/// across N shard workers (shard/placement.h) and drives them from one
/// global ingestion sequence. The paper's bottom-up design makes candidate
/// scoring block-local by construction — a byline competes only against
/// same-name vertices — so each byline is scored on the shard that owns its
/// block, concurrently with the other bylines of the same paper, while
/// cross-shard collaboration-edge deltas commit under a single global
/// sequence number.
///
/// Consistency contract (the whole point — pinned by tests/shard_test.cpp):
/// assignments are byte-identical to sequential
/// IncrementalDisambiguator::AddPaper calls in sequence order at ANY shard
/// count, ANY producer count, and ANY pipeline depth. The protocol that
/// guarantees it:
///
///   1. WINDOW   — the router extracts up to config.pipeline_depth
///      consecutive-sequence papers already queued (never waiting for
///      more), additionally capped so no similarity-cache refresh can fall
///      inside the window. Each in-flight paper's byline names are interned
///      to NameIds: its name-block set, which is both its read set (a
///      byline competes only against same-name vertices) and its write set
///      (commits append papers/vertices/edges only under its byline
///      blocks).
///   2. SCATTER  — bylines whose block does NOT appear in any in-window
///      predecessor's block set are scored speculatively: grouped by owning
///      shard and fanned out across all in-flight papers at once, every
///      shard reading the same frozen pre-window snapshot through its OWN
///      SimilarityComputer (profile caches partitioned by block ownership,
///      not replicated). Frozen is exact, not approximate: WL ball features
///      and corpus frequency tables are snapshotted at refresh time
///      (core::SimilarityComputer), profiles of touched vertices are
///      invalidated by commits, and γ2 (the one live cross-block read,
///      triangles) is masked out of incremental scoring — so a
///      speculatively-scored decision is bit-equal to the one sequential
///      AddPaper would compute after the disjoint predecessors commit.
///      Bylines that DO conflict are deferred (the scoreboard records which
///      commit version each decision read, so staleness is detected, not
///      assumed).
///   3. COMMIT   — strictly in sequence order, on the router thread (the
///      only writer, ever): deferred bylines are first rescored on their
///      owning shard against the now-current snapshot (the "speculative
///      rescore" path; with every predecessor committed this is exactly the
///      sequential scoring state), then the same ApplyDecisions as the
///      sequential path runs, stale profiles are invalidated on the owning
///      shards, the promise resolves, and the admission window advances.
///   4. REFRESH  — every config.incremental_refresh_interval applied papers
///      (the same cadence as the raw incremental path) every shard rebuilds
///      its similarity caches in parallel and prewarms the WL features of
///      its owned alive vertices; the window cap makes the refresh a full
///      pipeline barrier at exactly the sequential path's paper counts.
///
/// pipeline_depth = 1 degenerates to the pre-pipeline router: one paper per
/// window, nothing deferred, scatter/commit per paper.
///
/// Reads are shard-local: each shard publishes an immutable view of its
/// owned blocks every config.ingest_refresh_window applied papers (and at
/// Drain/Stop). AuthorsByName routes to the one owning shard; Stats
/// aggregates all shards plus router-level health (queue depth, reorder
/// occupancy, epoch). Submission, admission bounds, the dense-sequence
/// SubmitAt contract, and Drain/Stop semantics mirror serve::IngestService
/// exactly — the router is its N-shard generalization, and collapses to the
/// same behavior at num_shards = 1.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "data/paper_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/ingest_service.h"
#include "shard/placement.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace iuad::wal {
class Log;
}  // namespace iuad::wal

namespace iuad::shard {

/// Name-block-sharded MPSC ingestion + concurrent read service: the
/// N-shard implementation of serve::Frontend.
class ShardRouter : public serve::Frontend {
 public:
  /// Starts the router thread and its shard worker pool. `config` must
  /// already Validate() OK; num_shards / shard_placement / queue / window
  /// knobs are read from it. `db` and `result` are caller-owned, must
  /// outlive the router, and are exclusively the router's until
  /// Stop()/destruction.
  ///
  /// `wal`, when non-null, is an opened wal::Log (caller-owned, outliving
  /// the router) the router thread logs every commit attempt into,
  /// group-committing the fsync across each pipelined window and — when
  /// config.wal_checkpoint_every_n > 0 — checkpointing at shard-refresh
  /// boundaries, which the window cap pins to window boundaries
  /// (DESIGN.md §9).
  ShardRouter(data::PaperDatabase* db, core::DisambiguationResult* result,
              core::IuadConfig config, wal::Log* wal = nullptr);

  /// Stops accepting work, applies everything admitted, joins the router.
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Frontend — see frontend.h for the shared submission/read contract.
  std::future<Assignments> Submit(data::Paper paper) override;
  std::future<Assignments> SubmitAt(uint64_t seq, data::Paper paper) override;
  std::vector<std::future<Assignments>> SubmitBatch(
      std::vector<data::Paper> papers) override;

  /// Blocks until everything admitted at call time is applied and
  /// published.
  void Drain() override;

  /// Drains, refuses further submissions, joins. Idempotent.
  void Stop() override;

  // ---- Read-only queries (epoch snapshot; safe during ingestion) ---------

  /// Routed to the one shard owning `name`'s block: alive author candidates
  /// bearing `name`, in vertex-id order.
  std::vector<serve::AuthorRecord> AuthorsByName(
      const std::string& name) const override;

  /// Paper ids attributed to vertex `v` (scatter-gather: the owning shard's
  /// view answers; empty for unknown / not-yet-published vertices).
  std::vector<int> PublicationsOf(graph::VertexId v) const override;

  /// Aggregated totals + per-shard health (stats.shards) at the last
  /// published epoch; queue depth and reorder occupancy are read live.
  serve::ServiceStats Stats() const override;
  obs::Registry* Metrics() override { return &registry_; }

  /// The block→shard route for `name` (exposed for tests and ops).
  int ShardOf(const std::string& name) const {
    return placement_.ShardOf(name);
  }

 private:
  struct Request {
    data::Paper paper;
    std::promise<Assignments> promise;
    int64_t submit_ns = 0;  ///< obs::NowNs() at admission; 0 if timing off.
  };

  /// One shard's mutable state. The similarity computer is only ever used
  /// by the task the router schedules for this shard (or by the router
  /// itself between fences), never concurrently.
  struct Shard {
    std::unique_ptr<core::SimilarityComputer> sim;
    serve::ShardHealth health;
  };

  /// Immutable published read state, swapped atomically per epoch. Author
  /// lookup keys are interned name ids, not strings: the protocol-boundary
  /// name resolves through the graph interner (concurrent-reader safe, and
  /// ids are never reused) so the view itself stores no string copies.
  struct ReadView {
    /// Per shard: owned-block author lookup + publication lists.
    struct ShardView {
      std::unordered_map<util::NameId, std::vector<serve::AuthorRecord>>
          by_name;
      std::unordered_map<graph::VertexId, std::vector<int>> papers_of;
    };
    std::vector<ShardView> shards;
    serve::ServiceStats stats;
  };

  /// One pipelined paper: its request plus the conflict scoreboard entry.
  struct InFlight {
    uint64_t seq = 0;
    data::Paper paper;
    std::promise<Assignments> promise;
    std::vector<util::NameId> blocks;  ///< Per byline: owning block id.
    std::vector<int> owners;           ///< Per byline: owning shard.
    /// Per byline: block written by an in-window predecessor — do not
    /// score speculatively, rescore at commit time instead.
    std::vector<bool> deferred;
    /// Per byline: sequence of the nearest in-window predecessor that
    /// claimed this byline's block (meaningful only where deferred[i]) —
    /// the deferral-blame the scoreboard records for traces/exemplars.
    std::vector<uint64_t> blocked_by;
    std::vector<core::OccurrenceDecision> decisions;
    bool overlapped = false;  ///< >= 1 byline scored in the scatter phase.
    // Paper-path span stamps/durations (nanoseconds), filled only when
    // stage stamps are on (metrics or tracing); they feed the histograms,
    // the flight recorder, and the slow-commit exemplars.
    int64_t submit_ns = 0;   ///< Admission stamp (from Request).
    int64_t extract_ns = 0;  ///< Window-extraction stamp.
    int64_t scatter_ns = 0;  ///< Scatter-phase duration of this window.
    int64_t rescore_ns = 0;  ///< Deferred-byline rescore duration.
    int64_t apply_ns = 0;    ///< Commit (apply + invalidate) duration.
  };

  void RouterLoop();
  std::future<Assignments> SubmitLocked(uint64_t seq, data::Paper paper,
                                        std::unique_lock<std::mutex>* lock);
  /// Window/scatter/commit/refresh for one extracted window (unlocked; the
  /// per-paper commit tail re-locks to advance the applied frontier).
  void RunWindow(std::vector<InFlight> window);
  /// Speculative scatter: scores every non-deferred byline of the window,
  /// grouped by owning shard, against the frozen pre-window snapshot.
  void ScatterWindow(std::vector<InFlight>* window);
  /// Phase 2 for one in-flight paper at its turn in the sequence: rescore
  /// deferred bylines, ApplyDecisions, invalidate, count.
  Assignments CommitPaper(InFlight* w);
  /// Rebuilds every shard's similarity caches in parallel and prewarms the
  /// WL features of each shard's owned alive vertices (freezing γ1 at this
  /// snapshot; see SimilarityComputer::PrewarmStructure).
  void RefreshShards();
  void PublishView();
  std::shared_ptr<const ReadView> CurrentView() const;

  data::PaperDatabase* db_;
  core::DisambiguationResult* result_;
  core::IuadConfig config_;
  wal::Log* wal_;  ///< Null when serving without durability.
  /// Commit attempts since the last WAL checkpoint (router-thread-owned).
  int64_t wal_since_checkpoint_ = 0;
  BlockPlacement placement_;
  std::vector<Shard> shards_;
  /// Scatter pool: one slot per shard; the router thread doubles as
  /// worker 0, so num_shards = 1 degenerates to fully inline execution.
  std::unique_ptr<util::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable admit_cv_;
  std::condition_variable ready_cv_;
  std::condition_variable applied_cv_;
  std::map<uint64_t, Request> pending_;  ///< Reorder buffer, keyed by seq.
  uint64_t next_ticket_ = 0;
  uint64_t next_apply_ = 0;
  /// End of the extracted in-flight window: sequences in
  /// [next_apply_, in_flight_hi_) are being pipelined and sit in neither
  /// pending_ nor the applied range; duplicate detection must still reject
  /// them. Equals next_apply_ when the router is between windows.
  uint64_t in_flight_hi_ = 0;
  uint64_t published_through_ = 0;
  int drain_waiters_ = 0;
  bool stopping_ = false;
  bool join_claimed_ = false;
  bool joined_ = false;

  // Control-flow state owned by the router thread. Event *counts* moved
  // into the registry below (still router-thread-single-writer, so the
  // registry counters are exact); only state that steers behavior stays as
  // plain members — metrics never feed back into ingestion (DESIGN.md §7).
  int64_t epoch_ = 0;
  int since_publish_ = 0;
  int since_refresh_ = 0;
  /// Monotone count of ApplyDecisions calls (successful or not — a
  /// mid-commit failure may still have written its blocks): the version
  /// OccurrenceDecision::snapshot_version is stamped from.
  uint64_t commit_version_ = 0;

  // Observability (src/obs). Instruments are resolved once at construction
  // and recorded lock-free thereafter. timing_ (metrics_enabled) gates the
  // histogram records, tracing_ (trace_enabled) gates the flight-recorder
  // stores, and stamps_ — their OR — gates the clock reads both share, so
  // either surface alone pays for the stamps exactly once (DESIGN.md §8).
  obs::Registry registry_;
  const bool timing_;
  const bool tracing_;
  const bool stamps_;
  const int64_t start_ns_;  ///< Construction stamp, for uptime_seconds.
  obs::Counter* ctr_papers_applied_;
  obs::Counter* ctr_papers_failed_;
  obs::Counter* ctr_assignments_;
  obs::Counter* ctr_new_authors_;
  obs::Counter* ctr_windows_;            ///< Pipeline windows formed.
  obs::Counter* ctr_overlapped_papers_;  ///< >= 1 scatter-scored byline.
  obs::Counter* ctr_conflict_stalls_;    ///< Fully serialized by conflicts.
  obs::Counter* ctr_speculative_rescores_;  ///< Deferred bylines rescored.
  obs::Counter* ctr_publishes_;
  obs::Counter* ctr_refreshes_;
  obs::Gauge* gauge_queue_depth_;
  obs::Histogram* hist_enqueue_wait_us_;
  obs::Histogram* hist_scatter_us_;  ///< Whole scatter phase, per window.
  obs::Histogram* hist_rescore_us_;
  obs::Histogram* hist_apply_us_;
  obs::Histogram* hist_publish_us_;
  obs::Histogram* hist_refresh_us_;
  obs::Histogram* hist_commit_latency_us_;
  /// Per-shard scatter-task latency ("shard<i>_scatter_us"): how long each
  /// shard's slice of a window took — the skew signal for placement.
  std::vector<obs::Histogram*> hist_shard_scatter_us_;
  /// WAL instruments, cached at construction so const Stats() can read
  /// values without the (non-const) registry lookup. Null when wal_ is.
  obs::Counter* ctr_wal_appended_ = nullptr;
  obs::Counter* ctr_wal_fsyncs_ = nullptr;
  obs::Counter* ctr_wal_bytes_ = nullptr;
  obs::Counter* ctr_recovery_replayed_ = nullptr;
  obs::Gauge* gauge_wal_ckpt_seq_ = nullptr;
  obs::Gauge* gauge_wal_ckpt_ts_ = nullptr;
  obs::Histogram* hist_wal_fsync_wait_us_ = nullptr;
  obs::FlightRecorder* recorder_;  ///< The process-wide flight recorder.
  /// Top-K slowest commits (config.trace_exemplars); offered to only on
  /// the already-slow path, surfaced through Stats().
  obs::ExemplarTable exemplars_;

  mutable std::mutex view_mu_;
  std::shared_ptr<const ReadView> view_;

  std::thread router_;
};

}  // namespace iuad::shard

#endif  // IUAD_SHARD_SHARD_ROUTER_H_
