#include "shard/placement.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace iuad::shard {

uint64_t NameHash(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

BlockPlacement BlockPlacement::Build(const graph::CollabGraph& graph,
                                     int num_shards,
                                     core::ShardPlacement policy) {
  BlockPlacement p;
  p.num_shards_ = num_shards < 1 ? 1 : num_shards;
  p.shard_weights_.assign(static_cast<size_t>(p.num_shards_), 0);
  p.names_ = graph.interner();  // deep copy; ids coincide with the graph's
  p.shard_of_id_.assign(static_cast<size_t>(p.names_.size()), -1);

  // Block weight ~ scoring cost: one candidate comparison per vertex plus
  // profile builds proportional to the papers behind them.
  struct Block {
    util::NameId id = util::kInvalidNameId;
    int64_t weight = 0;
  };
  std::vector<Block> blocks;
  for (util::NameId id : graph.NameIdsSorted()) {  // sorted → deterministic
    int64_t weight = 1;
    for (graph::VertexId v : graph.VerticesWithId(id)) {
      weight += 1 + static_cast<int64_t>(graph.vertex(v).papers.size());
    }
    blocks.push_back({id, weight});
  }
  p.num_blocks_ = static_cast<int64_t>(blocks.size());

  if (p.num_shards_ == 1 || policy == core::ShardPlacement::kHash) {
    // Hash placement is stateless; materialize it only to expose weights.
    for (const Block& b : blocks) {
      const int s = static_cast<int>(NameHash(p.names_.View(b.id)) %
                                     static_cast<uint64_t>(p.num_shards_));
      p.shard_of_id_[static_cast<size_t>(b.id)] = s;
      p.shard_weights_[static_cast<size_t>(s)] += b.weight;
    }
    return p;
  }

  // Size-aware: longest-processing-time greedy — heaviest block onto the
  // currently lightest shard, ties by shard id. Deterministic given the
  // (weight desc, name asc) block order.
  std::sort(blocks.begin(), blocks.end(),
            [&p](const Block& a, const Block& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return p.names_.View(a.id) < p.names_.View(b.id);
            });
  using Load = std::pair<int64_t, int>;  // (weight, shard id)
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> lightest;
  for (int s = 0; s < p.num_shards_; ++s) lightest.emplace(0, s);
  for (const Block& b : blocks) {
    auto [load, s] = lightest.top();
    lightest.pop();
    p.shard_of_id_[static_cast<size_t>(b.id)] = s;
    p.shard_weights_[static_cast<size_t>(s)] = load + b.weight;
    lightest.emplace(load + b.weight, s);
  }
  return p;
}

}  // namespace iuad::shard
