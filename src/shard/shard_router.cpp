#include "shard/shard_router.h"

#include <algorithm>
#include <ctime>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/memory.h"
#include "wal/wal.h"

namespace iuad::shard {

namespace {

ShardRouter::Assignments StoppedError() {
  return iuad::Status::FailedPrecondition(
      "shard router is stopped; paper was not applied");
}

}  // namespace

ShardRouter::ShardRouter(data::PaperDatabase* db,
                         core::DisambiguationResult* result,
                         core::IuadConfig config, wal::Log* wal)
    : db_(db),
      result_(result),
      config_(std::move(config)),
      wal_(wal),
      placement_(BlockPlacement::Build(result->graph, config_.num_shards,
                                       config_.shard_placement)),
      timing_(config_.metrics_enabled),
      tracing_(config_.trace_enabled),
      stamps_(timing_ || tracing_),
      start_ns_(obs::NowNs()),
      ctr_papers_applied_(registry_.GetCounter("papers_applied")),
      ctr_papers_failed_(registry_.GetCounter("papers_failed")),
      ctr_assignments_(registry_.GetCounter("assignments")),
      ctr_new_authors_(registry_.GetCounter("new_authors")),
      ctr_windows_(registry_.GetCounter("pipeline_windows")),
      ctr_overlapped_papers_(registry_.GetCounter("overlapped_papers")),
      ctr_conflict_stalls_(registry_.GetCounter("conflict_stalls")),
      ctr_speculative_rescores_(
          registry_.GetCounter("speculative_rescores")),
      ctr_publishes_(registry_.GetCounter("publishes")),
      ctr_refreshes_(registry_.GetCounter("refreshes")),
      gauge_queue_depth_(registry_.GetGauge("queue_depth")),
      hist_enqueue_wait_us_(registry_.GetHistogram("enqueue_wait_us")),
      hist_scatter_us_(registry_.GetHistogram("scatter_us")),
      hist_rescore_us_(registry_.GetHistogram("rescore_us")),
      hist_apply_us_(registry_.GetHistogram("apply_us")),
      hist_publish_us_(registry_.GetHistogram("publish_us")),
      hist_refresh_us_(registry_.GetHistogram("refresh_us")),
      hist_commit_latency_us_(registry_.GetHistogram("commit_latency_us")),
      recorder_(&obs::FlightRecorder::Instance()),
      exemplars_(config_.trace_exemplars) {
  if (wal_ != nullptr) {
    // WAL instruments live in the router's registry (one scrape surface);
    // pointers cached because Stats() is const.
    wal_->BindMetrics(&registry_);
    ctr_wal_appended_ = registry_.GetCounter("wal_appended");
    ctr_wal_fsyncs_ = registry_.GetCounter("wal_fsyncs");
    ctr_wal_bytes_ = registry_.GetCounter("wal_bytes");
    ctr_recovery_replayed_ = registry_.GetCounter("recovery_replayed");
    gauge_wal_ckpt_seq_ = registry_.GetGauge("wal_last_checkpoint_seq");
    gauge_wal_ckpt_ts_ = registry_.GetGauge("wal_last_checkpoint_timestamp");
    hist_wal_fsync_wait_us_ = registry_.GetHistogram("wal_fsync_wait_us");
  }
  shards_.resize(static_cast<size_t>(placement_.num_shards()));
  hist_shard_scatter_us_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    hist_shard_scatter_us_.push_back(registry_.GetHistogram(
        "shard" + std::to_string(s) + "_scatter_us"));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].health.shard = static_cast<int>(s);
    shards_[s].health.placement_weight = placement_.shard_weights()[s];
  }
  // Owned-block counts for health: one deterministic pass over the blocks.
  const graph::CollabGraph& g = result_->graph;
  for (util::NameId id : g.NameIdsSorted()) {
    ++shards_[static_cast<size_t>(
                  placement_.ShardOf(id, g.interner().View(id)))]
          .health.owned_blocks;
  }
  pool_ = std::make_unique<util::ThreadPool>(placement_.num_shards());
  // Shard similarity caches are built against the fitted snapshot, exactly
  // like IncrementalDisambiguator's constructor Refresh (one build per
  // shard, fanned out over the pool; the router thread does not exist yet).
  RefreshShards();
  PublishView();  // epoch 0: the pre-ingestion state, queryable immediately
  router_ = std::thread([this] { RouterLoop(); });
}

ShardRouter::~ShardRouter() { Stop(); }

std::future<ShardRouter::Assignments> ShardRouter::Submit(data::Paper paper) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = next_ticket_++;
  return SubmitLocked(seq, std::move(paper), &lock);
}

std::future<ShardRouter::Assignments> ShardRouter::SubmitAt(
    uint64_t seq, data::Paper paper) {
  std::unique_lock<std::mutex> lock(mu_);
  next_ticket_ = std::max(next_ticket_, seq + 1);
  return SubmitLocked(seq, std::move(paper), &lock);
}

std::vector<std::future<ShardRouter::Assignments>> ShardRouter::SubmitBatch(
    std::vector<data::Paper> papers) {
  std::vector<std::future<Assignments>> futures;
  futures.reserve(papers.size());
  if (papers.empty()) return futures;
  std::unique_lock<std::mutex> lock(mu_);
  // Reserve the whole contiguous range up front (see
  // IngestService::SubmitBatch): a paper blocking on admission releases the
  // lock, but no interleaving producer can claim a sequence in the batch.
  uint64_t seq = next_ticket_;
  next_ticket_ += static_cast<uint64_t>(papers.size());
  for (auto& paper : papers) {
    futures.push_back(SubmitLocked(seq++, std::move(paper), &lock));
  }
  return futures;
}

std::future<ShardRouter::Assignments> ShardRouter::SubmitLocked(
    uint64_t seq, data::Paper paper, std::unique_lock<std::mutex>* lock) {
  std::promise<Assignments> promise;
  std::future<Assignments> future = promise.get_future();
  // Admission window: the next-to-apply sequence is always admissible, so a
  // blocked producer holding it can never deadlock the queue.
  admit_cv_.wait(*lock, [&] {
    return stopping_ ||
           seq < next_apply_ + static_cast<uint64_t>(
                                   config_.ingest_queue_capacity);
  });
  if (stopping_) {
    promise.set_value(StoppedError());
    return future;
  }
  // Sequences below in_flight_hi_ are applied or being pipelined; either
  // way the slot is taken (in_flight_hi_ == next_apply_ between windows).
  if (seq < in_flight_hi_ || pending_.count(seq) > 0) {
    promise.set_value(iuad::Status::InvalidArgument(
        "duplicate ingest sequence " + std::to_string(seq)));
    return future;
  }
  const int64_t submit_ns = stamps_ ? obs::NowNs() : 0;
  if (tracing_) {
    recorder_->RecordAt(submit_ns, obs::TraceEventId::kPaperSubmit, seq);
  }
  Request request{std::move(paper), std::move(promise), submit_ns};
  pending_.emplace(seq, std::move(request));
  gauge_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
  if (seq == next_apply_) ready_cv_.notify_one();
  return future;
}

void ShardRouter::RunWindow(std::vector<InFlight> window) {
  if (stamps_) {
    const int64_t extract_ns = obs::NowNs();
    if (tracing_) {
      recorder_->RecordAt(extract_ns, obs::TraceEventId::kWindowExtract,
                          window.front().seq, window.size());
    }
    for (InFlight& w : window) {
      w.extract_ns = extract_ns;
      if (w.submit_ns > 0) {
        if (timing_) hist_enqueue_wait_us_->RecordNs(extract_ns - w.submit_ns);
        if (tracing_) {
          recorder_->RecordAt(extract_ns, obs::TraceEventId::kPaperExtract,
                              w.seq,
                              static_cast<uint64_t>(extract_ns - w.submit_ns));
        }
      }
    }
  }
  // Build the conflict scoreboard: each paper's block set is both its read
  // and its write set (scoring is block-local by construction), so a byline
  // must defer exactly when its block appears in an in-window predecessor.
  // Papers that will fail validation or apply still claim their blocks —
  // conservatively matching sequential, where a mid-commit failure may
  // already have written some of them. The map value is the claiming
  // paper's sequence (nearest predecessor wins): the deferral blame the
  // traces and exemplars surface.
  graph::CollabGraph& g = result_->graph;
  std::unordered_map<util::NameId, uint64_t> claimed;
  for (InFlight& w : window) {
    const size_t n = w.paper.author_names.size();
    w.blocks.resize(n);
    w.owners.resize(n);
    w.deferred.assign(n, false);
    w.blocked_by.assign(n, 0);
    w.decisions.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string& name = w.paper.author_names[i];
      // Interning here is safe: the router thread is the graph's single
      // mutator, and a byline about to commit would intern the same id.
      w.blocks[i] = g.InternName(name);
      w.owners[i] = placement_.ShardOf(w.blocks[i], name);
      const auto it = claimed.find(w.blocks[i]);
      if (it != claimed.end()) {
        w.deferred[i] = true;
        w.blocked_by[i] = it->second;
        if (tracing_) {
          recorder_->RecordAt(w.extract_ns, obs::TraceEventId::kPaperDefer,
                              w.seq, it->second);
        }
      }
    }
    for (util::NameId b : w.blocks) claimed[b] = w.seq;
  }
  if (result_->model != nullptr) {
    const int64_t scatter_start_ns = stamps_ ? obs::NowNs() : 0;
    ScatterWindow(&window);
    if (stamps_) {
      const int64_t scatter_end_ns = obs::NowNs();
      const int64_t scatter_ns = scatter_end_ns - scatter_start_ns;
      if (timing_) hist_scatter_us_->RecordNs(scatter_ns);
      for (InFlight& w : window) {
        w.scatter_ns = scatter_ns;
        if (tracing_) {
          recorder_->RecordAt(scatter_end_ns, obs::TraceEventId::kPaperScatter,
                              w.seq, static_cast<uint64_t>(scatter_ns));
        }
      }
    }
  }
  ctr_windows_->Increment();

  // COMMIT: strictly in sequence order, single writer (this thread). The
  // per-paper tail below is identical to the pre-pipeline router's: publish
  // check, promise, frontier advance, wakeups.
  for (InFlight& w : window) {
    Assignments applied = CommitPaper(&w);
    if (wal_ != nullptr) {
      // Log the commit *attempt*, success or failure (a failed apply may
      // have written blocks — replay must re-execute the exact attempt
      // sequence). w.paper is the submitted form: CommitPaper reads it by
      // reference and never consumes it. Buffered; the fsync is group-
      // committed across the window at the end of RunWindow.
      wal_->Append(w.seq, w.paper);
      ++wal_since_checkpoint_;
      // Checkpoint only when THIS apply succeeded and triggered the shard
      // refresh (since_refresh_ just reset): the one cache state a freshly
      // constructed router rebuilds bit-for-bit (wal.h). The window cap
      // pins refreshes to a window's last paper, so a checkpoint can only
      // fire there — it never stalls mid-window.
      if (config_.wal_checkpoint_every_n > 0 && applied.ok() &&
          since_refresh_ == 0 &&
          wal_since_checkpoint_ >=
              static_cast<int64_t>(config_.wal_checkpoint_every_n)) {
        if (iuad::Status s =
                wal_->Checkpoint(*db_, *result_, config_, w.seq + 1);
            s.ok()) {
          wal_since_checkpoint_ = 0;
        } else {
          IUAD_LOG(kWarning)
              << "WAL checkpoint failed (serving continues; log "
                 "compaction is stalled): "
              << s.message();
        }
      }
    }
    const bool publish = since_publish_ >= config_.ingest_refresh_window;
    const int64_t publish_start_ns = stamps_ ? obs::NowNs() : 0;
    if (publish) PublishView();
    const int64_t done_ns = stamps_ ? obs::NowNs() : 0;
    if (timing_ && publish) {
      hist_publish_us_->RecordNs(done_ns - publish_start_ns);
    }
    if (tracing_ && publish) {
      recorder_->RecordAt(done_ns, obs::TraceEventId::kPaperPublish, w.seq,
                          static_cast<uint64_t>(done_ns - publish_start_ns));
    }
    if (stamps_ && applied.ok() && w.submit_ns > 0) {
      const int64_t latency_ns = done_ns - w.submit_ns;
      if (timing_) hist_commit_latency_us_->RecordNs(latency_ns);
      if (tracing_) {
        recorder_->RecordAt(done_ns, obs::TraceEventId::kPaperCommit, w.seq,
                            static_cast<uint64_t>(latency_ns));
      }
      if (config_.slow_commit_ms > 0.0 &&
          static_cast<double>(latency_ns) / 1e6 > config_.slow_commit_ms) {
        obs::SlowCommitExemplar exemplar;
        exemplar.seq = static_cast<int64_t>(w.seq);
        exemplar.total_ns = latency_ns;
        exemplar.stages.push_back({"enqueue", w.extract_ns - w.submit_ns});
        exemplar.stages.push_back({"scatter", w.scatter_ns});
        exemplar.stages.push_back({"rescore", w.rescore_ns});
        exemplar.stages.push_back({"apply", w.apply_ns});
        if (publish) {
          exemplar.stages.push_back({"publish", done_ns - publish_start_ns});
        }
        for (size_t i = 0; i < w.deferred.size(); ++i) {
          if (!w.deferred[i]) continue;
          exemplar.deferrals.push_back(
              {w.paper.author_names[i],
               static_cast<int64_t>(w.blocked_by[i])});
        }
        exemplars_.Offer(std::move(exemplar));
      }
    }
    w.promise.set_value(std::move(applied));
    std::lock_guard<std::mutex> lock(mu_);
    ++next_apply_;
    if (publish) published_through_ = next_apply_;
    admit_cv_.notify_all();
    applied_cv_.notify_all();
  }
  if (wal_ != nullptr) {
    // Group commit at window granularity: one fsync can cover the whole
    // window's records when the cadence fires; on the idle transition
    // (nothing consumable queued) force the flush so a burst's tail never
    // sits un-durable. Never under mu_ — producers must not block on an
    // fsync.
    bool idle;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idle = pending_.count(next_apply_) == 0;
    }
    if (idle) {
      (void)wal_->Flush();
    } else {
      wal_->MaybeFlush();
    }
  }
}

void ShardRouter::ScatterWindow(std::vector<InFlight>* window) {
  // Group every speculative (paper, byline) pair by owning shard, in window
  // order. One task per involved shard keeps each shard's SimilarityComputer
  // and its lazily-filled caches single-threaded; decisions land in slots
  // indexed by (paper, byline), so the outcome is independent of the worker
  // schedule. Invalid papers (empty byline / no model) have no entries and
  // fall through to CommitPaper's validation.
  std::vector<std::vector<std::pair<size_t, size_t>>> by_shard(
      shards_.size());
  for (size_t j = 0; j < window->size(); ++j) {
    InFlight& w = (*window)[j];
    for (size_t i = 0; i < w.blocks.size(); ++i) {
      if (w.deferred[i]) continue;
      by_shard[static_cast<size_t>(w.owners[i])].emplace_back(j, i);
      w.overlapped = true;
    }
  }
  std::vector<size_t> involved;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) involved.push_back(s);
  }
  if (involved.empty()) return;
  // Every decision in this scatter reads the same frozen snapshot: stamp
  // them all with the commit version it corresponds to.
  const uint64_t version = commit_version_;
  auto score_shard = [&](size_t s) {
    // Per-shard scatter latency: each shard's slice of the window, timed on
    // the thread that ran it (histograms and the flight recorder are both
    // safe from any thread; the skew across shards is the placement-quality
    // signal).
    const int64_t shard_start_ns = stamps_ ? obs::NowNs() : 0;
    for (const auto& [j, i] : by_shard[s]) {
      InFlight& w = (*window)[j];
      w.decisions[i] = core::ScoreOccurrence(
          *shards_[s].sim, *result_->model, result_->graph, w.paper,
          w.paper.author_names[i], config_.delta, version);
    }
    if (stamps_) {
      const int64_t shard_end_ns = obs::NowNs();
      if (timing_) {
        hist_shard_scatter_us_[s]->RecordNs(shard_end_ns - shard_start_ns);
      }
      if (tracing_) {
        recorder_->RecordAt(shard_end_ns, obs::TraceEventId::kShardScatter, s,
                            static_cast<uint64_t>(shard_end_ns -
                                                  shard_start_ns));
      }
    }
  };
  if (involved.size() == 1) {
    score_shard(involved[0]);
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done = 0;
  for (size_t k = 1; k < involved.size(); ++k) {
    pool_->Submit([&, s = involved[k]] {
      score_shard(s);
      // Notify under the lock: done_cv lives on this stack frame and an
      // unlocked notify could land after the sequencer has already woken
      // and moved on (see ThreadPool::ParallelFor for the same pattern).
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_one();
    });
  }
  score_shard(involved[0]);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == involved.size() - 1; });
}

ShardRouter::Assignments ShardRouter::CommitPaper(InFlight* w) {
  if (result_->model == nullptr) {
    return iuad::Status::FailedPrecondition(
        "incremental disambiguation requires a fitted model (run the full "
        "pipeline, not SCN-only)");
  }
  if (w->paper.author_names.empty()) {
    return iuad::Status::InvalidArgument("paper with empty byline");
  }

  // Deferred bylines: every in-window predecessor has committed by now, so
  // scoring here reads exactly the state sequential AddPaper would — the
  // rescore the stale snapshot_version stamp calls for. Inline on the
  // router thread: a conflicted block's candidates were just mutated, so
  // its shard's profile cache is warm from the invalidation path anyway.
  const size_t n = w->paper.author_names.size();
  const int64_t rescore_start_ns = stamps_ ? obs::NowNs() : 0;
  bool rescored = false;
  for (size_t i = 0; i < n; ++i) {
    if (!w->deferred[i]) continue;
    w->decisions[i] = core::ScoreOccurrence(
        *shards_[static_cast<size_t>(w->owners[i])].sim, *result_->model,
        result_->graph, w->paper, w->paper.author_names[i], config_.delta,
        commit_version_);
    ctr_speculative_rescores_->Increment();
    rescored = true;
  }
  if (stamps_ && rescored) {
    const int64_t rescore_end_ns = obs::NowNs();
    w->rescore_ns = rescore_end_ns - rescore_start_ns;
    if (timing_) hist_rescore_us_->RecordNs(w->rescore_ns);
    if (tracing_) {
      recorder_->RecordAt(rescore_end_ns, obs::TraceEventId::kPaperRescore,
                          w->seq, static_cast<uint64_t>(w->rescore_ns));
    }
  }
  if (w->overlapped) {
    ctr_overlapped_papers_->Increment();
  } else {
    ctr_conflict_stalls_->Increment();  // every byline waited on a commit
  }
  // Health counters, on the committing thread (scatter tasks only score):
  // one papers_scored per shard that scored >= 1 byline, matching the
  // pre-pipeline accounting.
  std::vector<bool> shard_seen(shards_.size(), false);
  for (size_t i = 0; i < n; ++i) {
    Shard& owner = shards_[static_cast<size_t>(w->owners[i])];
    ++owner.health.bylines_scored;
    if (!shard_seen[static_cast<size_t>(w->owners[i])]) {
      shard_seen[static_cast<size_t>(w->owners[i])] = true;
      ++owner.health.papers_scored;
    }
  }

  // Same mutation order as the sequential path, then shard-targeted profile
  // invalidation — a touched vertex is only ever scored by its block's
  // owner.
  const int64_t apply_start_ns = stamps_ ? obs::NowNs() : 0;
  std::vector<graph::VertexId> touched;
  auto applied = core::ApplyDecisions(w->paper, w->decisions, db_, result_,
                                      &touched);
  ++commit_version_;  // counts attempts: a failed apply may have written
  for (graph::VertexId v : touched) {
    const int s = placement_.ShardOf(result_->graph.vertex(v).name_id,
                                     result_->graph.NameOf(v));
    shards_[static_cast<size_t>(s)].sim->InvalidateProfile(v);
  }
  if (stamps_) {
    const int64_t apply_end_ns = obs::NowNs();
    w->apply_ns = apply_end_ns - apply_start_ns;
    if (timing_) hist_apply_us_->RecordNs(w->apply_ns);
    if (tracing_) {
      recorder_->RecordAt(apply_end_ns, obs::TraceEventId::kPaperApply,
                          w->seq, static_cast<uint64_t>(w->apply_ns));
    }
  }
  if (!applied.ok()) ctr_papers_failed_->Increment();
  if (applied.ok()) {
    ctr_papers_applied_->Increment();
    ctr_assignments_->Add(static_cast<int64_t>(applied->size()));
    for (size_t i = 0; i < applied->size(); ++i) {
      const auto& a = (*applied)[i];
      Shard& owner =
          shards_[static_cast<size_t>(placement_.ShardOf(a.name))];
      ++owner.health.assignments;
      if (a.created_new) {
        ctr_new_authors_->Increment();
        ++owner.health.new_authors;
      }
    }
    ++since_publish_;
    // REFRESH: same global cadence as the sequential path's
    // incremental_refresh_interval, fanned out across shards. The window
    // cap in RouterLoop guarantees this only fires on a window's last
    // paper, so the refresh is a full pipeline barrier.
    if (++since_refresh_ >= config_.incremental_refresh_interval) {
      RefreshShards();
    }
  }
  return applied;
}

void ShardRouter::RefreshShards() {
  const int64_t refresh_start_ns = stamps_ ? obs::NowNs() : 0;
  // Same storage hygiene as the sequential path's Refresh(): fold the
  // adjacency overflow log into the packed base arrays between fences (the
  // router is the only graph mutator; published views never read it).
  result_->graph.Compact();
  // One snapshot-bound build — the WL refinement sweep runs across the
  // shard pool, byte-identical to the serial build the sequential path
  // does — then per-shard copies: every shard needs its OWN lazily-filled
  // profile/feature caches (they are mutated during scoring), but the
  // refinement labels are a pure function of the graph snapshot, so
  // copying beats rebuilding them N times.
  shards_[0].sim = std::make_unique<core::SimilarityComputer>(
      *db_, result_->graph, result_->embeddings, config_, pool_.get());
  for (size_t s = 1; s < shards_.size(); ++s) {
    shards_[s].sim =
        std::make_unique<core::SimilarityComputer>(*shards_[0].sim);
  }
  // Freeze γ1 at this snapshot: eagerly prewarm each shard's owned alive
  // vertices (the only ones it can ever score), partitioning feature-cache
  // memory exactly like the profile caches. Without this, WL ball features
  // would be computed lazily from the LIVE adjacency mid-window and
  // pipelined scoring could diverge from sequential — which prewarms the
  // same vertices in its one computer (core::IncrementalDisambiguator).
  const graph::CollabGraph& g = result_->graph;
  std::vector<std::vector<graph::VertexId>> owned(shards_.size());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.alive(v)) continue;
    owned[static_cast<size_t>(
              placement_.ShardOf(g.vertex(v).name_id, g.NameOf(v)))]
        .push_back(v);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].sim->PrewarmStructure(owned[s], pool_.get());
  }
  since_refresh_ = 0;
  ctr_refreshes_->Increment();
  if (stamps_) {
    const int64_t refresh_end_ns = obs::NowNs();
    if (timing_) hist_refresh_us_->RecordNs(refresh_end_ns - refresh_start_ns);
    if (tracing_) {
      recorder_->RecordAt(refresh_end_ns, obs::TraceEventId::kRefresh,
                          commit_version_,
                          static_cast<uint64_t>(refresh_end_ns -
                                                refresh_start_ns));
    }
  }
}

void ShardRouter::RouterLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] {
      return stopping_ || pending_.count(next_apply_) > 0 ||
             (drain_waiters_ > 0 && published_through_ < next_apply_);
    });

    if (pending_.count(next_apply_) > 0) {
      // WINDOW: take up to pipeline_depth consecutive-sequence papers
      // already queued (never waiting for more), additionally capped by the
      // remaining refresh budget so a similarity-cache refresh can only
      // land at a window boundary — a full pipeline barrier at exactly the
      // sequential path's paper counts.
      const size_t limit = static_cast<size_t>(std::max(
          1, std::min(config_.pipeline_depth,
                      config_.incremental_refresh_interval -
                          since_refresh_)));
      std::vector<InFlight> window;
      window.reserve(limit);
      while (window.size() < limit) {
        auto it = pending_.find(next_apply_ + window.size());
        if (it == pending_.end()) break;
        InFlight w;
        w.seq = it->first;
        w.paper = std::move(it->second.paper);
        w.promise = std::move(it->second.promise);
        w.submit_ns = it->second.submit_ns;
        pending_.erase(it);
        window.push_back(std::move(w));
      }
      in_flight_hi_ = next_apply_ + static_cast<uint64_t>(window.size());
      gauge_queue_depth_->Set(static_cast<int64_t>(pending_.size()));
      lock.unlock();
      // RunWindow re-locks per committed paper to advance next_apply_; when
      // the last one lands, next_apply_ == in_flight_hi_ again.
      RunWindow(std::move(window));
      continue;
    }

    if (drain_waiters_ > 0 && published_through_ < next_apply_) {
      const uint64_t through = next_apply_;
      lock.unlock();
      // Drain's contract includes durability: everything applied before
      // the drain point is on disk when Drain() returns.
      if (wal_ != nullptr) (void)wal_->Flush();
      PublishView();
      lock.lock();
      published_through_ = through;
      applied_cv_.notify_all();
      continue;
    }

    // stopping_, with no applicable sequence: fail whatever is stranded
    // behind a sequence hole, publish the final epoch, exit.
    std::map<uint64_t, Request> stranded;
    stranded.swap(pending_);
    lock.unlock();
    for (auto& [seq, req] : stranded) {
      req.promise.set_value(StoppedError());
    }
    if (wal_ != nullptr) (void)wal_->Flush();  // Stop leaves nothing buffered
    PublishView();
    lock.lock();
    published_through_ = next_apply_;
    applied_cv_.notify_all();
    return;
  }
}

void ShardRouter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = next_ticket_;
  ++drain_waiters_;
  ready_cv_.notify_one();  // an idle router may owe us a publish
  applied_cv_.wait(lock, [&] {
    return (next_apply_ >= target && published_through_ >= target) ||
           (stopping_ && joined_);
  });
  --drain_waiters_;
}

void ShardRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  admit_cv_.notify_all();
  applied_cv_.notify_all();
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!joined_ && !join_claimed_) {
      join_claimed_ = true;
      join_here = true;
    }
  }
  if (join_here) {
    router_.join();
    std::lock_guard<std::mutex> lock(mu_);
    joined_ = true;
    applied_cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    applied_cv_.wait(lock, [&] { return joined_; });
  }
}

void ShardRouter::PublishView() {
  auto view = std::make_shared<ReadView>();
  view->shards.resize(shards_.size());
  const graph::CollabGraph& g = result_->graph;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.alive(v)) continue;
    const graph::Vertex& vx = g.vertex(v);
    ReadView::ShardView& sv = view->shards[static_cast<size_t>(
        placement_.ShardOf(vx.name_id, g.NameOf(v)))];
    sv.by_name[vx.name_id].push_back(
        {v, static_cast<int>(vx.papers.size())});
    sv.papers_of.emplace(v, vx.papers);
  }
  serve::ServiceStats& stats = view->stats;
  stats.epoch = epoch_++;
  // Registry-backed: the router thread is the sole writer of these
  // counters, so reading them here is exact, not racy-approximate.
  stats.papers_applied = ctr_papers_applied_->Value();
  stats.assignments = ctr_assignments_->Value();
  stats.new_authors = ctr_new_authors_->Value();
  stats.num_alive_vertices = g.num_alive();
  stats.num_edges = g.num_edges();
  stats.queue_capacity = config_.ingest_queue_capacity;
  stats.num_shards = placement_.num_shards();
  stats.pipeline_depth = config_.pipeline_depth;
  const int64_t windows = ctr_windows_->Value();
  stats.pipeline_windows = windows;
  stats.pipeline_occupancy =
      windows > 0 ? static_cast<double>(ctr_overlapped_papers_->Value()) /
                        static_cast<double>(windows)
                  : 0.0;
  stats.conflict_stalls = ctr_conflict_stalls_->Value();
  stats.speculative_rescores = ctr_speculative_rescores_->Value();
  for (const Shard& s : shards_) stats.shards.push_back(s.health);
  since_publish_ = 0;
  ctr_publishes_->Increment();
  std::lock_guard<std::mutex> lock(view_mu_);
  view_ = std::move(view);
}

std::shared_ptr<const ShardRouter::ReadView> ShardRouter::CurrentView()
    const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

std::vector<serve::AuthorRecord> ShardRouter::AuthorsByName(
    const std::string& name) const {
  // Protocol boundary: resolve the string once, then the view is id-keyed.
  const util::NameId id = result_->graph.interner().Lookup(name);
  if (id == util::kInvalidNameId) return {};
  const auto view = CurrentView();
  const auto& sv = view->shards[static_cast<size_t>(placement_.ShardOf(id, name))];
  auto it = sv.by_name.find(id);
  if (it == sv.by_name.end()) return {};
  std::vector<serve::AuthorRecord> out = it->second;
  std::sort(out.begin(), out.end(),
            [](const serve::AuthorRecord& a, const serve::AuthorRecord& b) {
              return a.vertex < b.vertex;
            });
  return out;
}

std::vector<int> ShardRouter::PublicationsOf(graph::VertexId v) const {
  const auto view = CurrentView();
  for (const auto& sv : view->shards) {
    auto it = sv.papers_of.find(v);
    if (it != sv.papers_of.end()) return it->second;
  }
  return {};
}

serve::ServiceStats ShardRouter::Stats() const {
  serve::ServiceStats stats = CurrentView()->stats;
  stats.rss_mb = util::CurrentRssMb();
  stats.uptime_seconds =
      static_cast<double>(obs::NowNs() - start_ns_) / 1e9;
  stats.slow_commits = exemplars_.Snapshot();
  if (wal_ != nullptr) {
    stats.wal_appended = ctr_wal_appended_->Value();
    stats.wal_fsyncs = ctr_wal_fsyncs_->Value();
    stats.wal_bytes = ctr_wal_bytes_->Value();
    stats.recovery_replayed = ctr_recovery_replayed_->Value();
    stats.wal_last_checkpoint_seq = gauge_wal_ckpt_seq_->Value();
    const int64_t ckpt_ts = gauge_wal_ckpt_ts_->Value();
    stats.wal_last_checkpoint_age_s =
        ckpt_ts > 0
            ? static_cast<double>(std::time(nullptr) - ckpt_ts)
            : -1.0;
    stats.wal_fsync_wait_us_p99 =
        hist_wal_fsync_wait_us_->Snapshot().PercentileUs(99.0);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats.queued_now = static_cast<int>(pending_.size());
  // See IngestService::Stats: the contiguous run starts after the in-flight
  // window, whose sequences sit in neither pending_ nor the applied range.
  uint64_t expect = std::max(next_apply_, in_flight_hi_);
  for (const auto& [seq, req] : pending_) {
    if (seq == expect) {
      ++expect;
    } else {
      ++stats.reorder_held;
    }
  }
  return stats;
}

}  // namespace iuad::shard
