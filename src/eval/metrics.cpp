#include "eval/metrics.h"

#include "util/strings.h"

namespace iuad::eval {

MicroMetrics ToMetrics(const PairCounts& c) {
  MicroMetrics m;
  const int64_t total = c.total();
  m.accuracy = total > 0
                   ? static_cast<double>(c.tp + c.tn) / static_cast<double>(total)
                   : 1.0;
  m.precision = (c.tp + c.fp) > 0
                    ? static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp)
                    : 0.0;
  m.recall = (c.tp + c.fn) > 0
                 ? static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn)
                 : 0.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

PairCounts PairwiseCounts(const std::vector<int>& pred,
                          const std::vector<int>& truth) {
  PairCounts c;
  const size_t n = std::min(pred.size(), truth.size());
  for (size_t i = 0; i < n; ++i) {
    if (truth[i] < 0) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (truth[j] < 0) continue;
      const bool same_pred = pred[i] == pred[j];
      const bool same_true = truth[i] == truth[j];
      if (same_pred && same_true) {
        ++c.tp;
      } else if (same_pred && !same_true) {
        ++c.fp;
      } else if (!same_pred && same_true) {
        ++c.fn;
      } else {
        ++c.tn;
      }
    }
  }
  return c;
}

std::string FormatMetrics(const MicroMetrics& m) {
  return "A=" + FormatDouble(m.accuracy, 4) + " P=" + FormatDouble(m.precision, 4) +
         " R=" + FormatDouble(m.recall, 4) + " F=" + FormatDouble(m.f1, 4);
}

}  // namespace iuad::eval
