#ifndef IUAD_EVAL_METRICS_H_
#define IUAD_EVAL_METRICS_H_

/// \file metrics.h
/// Pairwise micro metrics of Sec. VI-A2. For every pair of papers bearing a
/// target name: TP = predicted same author & truly same; FP = predicted
/// same, truly different; FN/TN symmetric. Counts are accumulated over all
/// test names before the ratios are taken (micro-averaging), which is how
/// the paper controls for per-name imbalance.

#include <cstdint>
#include <string>
#include <vector>

namespace iuad::eval {

/// Raw pair-confusion counts, accumulable across names.
struct PairCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;

  void Add(const PairCounts& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    tn += other.tn;
  }
  int64_t total() const { return tp + fp + fn + tn; }
};

/// MicroA / MicroP / MicroR / MicroF of Sec. VI-A2.
struct MicroMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Ratios from counts; degenerate denominators yield 0 (and accuracy 1 for
/// an empty pair set — nothing to get wrong).
MicroMetrics ToMetrics(const PairCounts& counts);

/// Pair confusion between two labelings of the same items. `pred` and
/// `truth` are parallel; items with truth label < 0 (unknown) are skipped.
PairCounts PairwiseCounts(const std::vector<int>& pred,
                          const std::vector<int>& truth);

/// One-line "A=0.8174 P=0.8608 R=0.8113 F=0.8353" formatting.
std::string FormatMetrics(const MicroMetrics& m);

}  // namespace iuad::eval

#endif  // IUAD_EVAL_METRICS_H_
