#ifndef IUAD_EVAL_TABLE_PRINTER_H_
#define IUAD_EVAL_TABLE_PRINTER_H_

/// \file table_printer.h
/// Fixed-width console tables so the repro benches print the same row/column
/// layout as the paper's tables.

#include <string>
#include <vector>

namespace iuad::eval {

/// Collects rows, then renders with per-column width = max cell width.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Adds a horizontal separator row.
  void AddSeparator();

  std::string ToString() const;

  /// Writes ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace iuad::eval

#endif  // IUAD_EVAL_TABLE_PRINTER_H_
