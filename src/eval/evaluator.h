#ifndef IUAD_EVAL_EVALUATOR_H_
#define IUAD_EVAL_EVALUATOR_H_

/// \file evaluator.h
/// Bridges disambiguation outputs to the pairwise micro metrics. Two output
/// shapes are supported: IUAD's OccurrenceIndex (paper+name -> vertex) and
/// the baselines' per-name clusterings (papers of a name -> cluster label).

#include <functional>
#include <string>
#include <vector>

#include "core/occurrence_index.h"
#include "data/paper_database.h"
#include "eval/metrics.h"

namespace iuad::eval {

/// Ground-truth author labels for the papers of `name` (parallel to
/// db.PapersWithName(name)); -1 for unlabeled occurrences.
std::vector<int> TrueLabelsForName(const data::PaperDatabase& db,
                                   const std::string& name);

/// Pair confusion of IUAD's attribution for one name.
PairCounts CountsForName(const data::PaperDatabase& db,
                         const core::OccurrenceIndex& occurrences,
                         const std::string& name);

/// Micro-aggregated metrics over `names`; `total_out` optionally receives
/// the accumulated counts.
MicroMetrics EvaluateOccurrences(const data::PaperDatabase& db,
                                 const core::OccurrenceIndex& occurrences,
                                 const std::vector<std::string>& names,
                                 PairCounts* total_out = nullptr);

/// A per-name disambiguator: given a name, returns predicted cluster labels
/// parallel to db.PapersWithName(name). The baseline adapter.
using NameClusterer =
    std::function<std::vector<int>(const std::string& name)>;

/// Micro-aggregated metrics of a per-name clusterer over `names`.
MicroMetrics EvaluateClusterer(const data::PaperDatabase& db,
                               const NameClusterer& clusterer,
                               const std::vector<std::string>& names,
                               PairCounts* total_out = nullptr);

}  // namespace iuad::eval

#endif  // IUAD_EVAL_EVALUATOR_H_
