#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace iuad::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      line += " " +
              PadRight(c < row.size() ? row[c] : std::string(), widths[c]) +
              " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render(headers_) + sep;
  for (const auto& row : rows_) {
    out += row.empty() ? sep : render(row);
  }
  out += sep;
  return out;
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace iuad::eval
