#include "eval/evaluator.h"

namespace iuad::eval {

std::vector<int> TrueLabelsForName(const data::PaperDatabase& db,
                                   const std::string& name) {
  const auto& papers = db.PapersWithName(name);
  std::vector<int> labels;
  labels.reserve(papers.size());
  for (int pid : papers) {
    labels.push_back(db.paper(pid).TrueAuthorOfName(name));
  }
  return labels;
}

PairCounts CountsForName(const data::PaperDatabase& db,
                         const core::OccurrenceIndex& occurrences,
                         const std::string& name) {
  const auto& papers = db.PapersWithName(name);
  std::vector<int> pred;
  pred.reserve(papers.size());
  for (int pid : papers) {
    pred.push_back(occurrences.Lookup(pid, name));
  }
  return PairwiseCounts(pred, TrueLabelsForName(db, name));
}

MicroMetrics EvaluateOccurrences(const data::PaperDatabase& db,
                                 const core::OccurrenceIndex& occurrences,
                                 const std::vector<std::string>& names,
                                 PairCounts* total_out) {
  PairCounts total;
  for (const auto& name : names) {
    total.Add(CountsForName(db, occurrences, name));
  }
  if (total_out) *total_out = total;
  return ToMetrics(total);
}

MicroMetrics EvaluateClusterer(const data::PaperDatabase& db,
                               const NameClusterer& clusterer,
                               const std::vector<std::string>& names,
                               PairCounts* total_out) {
  PairCounts total;
  for (const auto& name : names) {
    total.Add(PairwiseCounts(clusterer(name), TrueLabelsForName(db, name)));
  }
  if (total_out) *total_out = total;
  return ToMetrics(total);
}

}  // namespace iuad::eval
