#include "text/word2vec.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>

#include "util/thread_pool.h"

namespace iuad::text {

namespace {

/// Numerically-safe logistic.
inline double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Auto-sharding constants: one shard per this many encoded sentences,
/// capped. Pure functions of corpus size so the shard layout (and thus the
/// training schedule) never depends on the executing thread count.
constexpr size_t kAutoShardGrain = 2048;
constexpr int kMaxAutoShards = 16;

/// Copy-on-write row store for one shard's epoch pass: reads through to the
/// shared base matrix and materializes a (pristine, working) row pair the
/// first time a row is written. Training only ever touches the rows its
/// sentences and negative samples hit, so per-shard memory is O(dirty rows
/// * dim) instead of O(vocab * dim), and the merge can skip everything
/// else. Deques keep row references stable across first-touch insertions —
/// TrainRange holds a `Vec&` into one store while faulting rows into the
/// other (and, between negative samples, into the same one).
class CowRows {
 public:
  explicit CowRows(const std::vector<Vec>* base)
      : base_(base), slot_(base->size(), -1) {}

  /// Mutable row access; faults in a copy of the base row on first touch.
  Vec& operator[](size_t w) {
    int32_t s = slot_[w];
    if (s < 0) {
      s = static_cast<int32_t>(dirty_.size());
      slot_[w] = s;
      dirty_.push_back(w);
      pristine_.push_back((*base_)[w]);
      working_.push_back((*base_)[w]);
    }
    return working_[static_cast<size_t>(s)];
  }

  /// Rows this shard wrote, in first-touch order. The order is a function
  /// of the shard's deterministic training stream, never of thread count —
  /// and within one shard the merge touches each (row, k) once, so the
  /// visit order does not affect the float sums anyway.
  const std::vector<size_t>& dirty() const { return dirty_; }
  const Vec& pristine(size_t i) const { return pristine_[i]; }
  const Vec& working(size_t i) const { return working_[i]; }

 private:
  const std::vector<Vec>* base_;
  std::vector<int32_t> slot_;  ///< vocab id -> dirty index, -1 = clean.
  std::vector<size_t> dirty_;
  std::deque<Vec> pristine_;  ///< Base rows as of first touch.
  std::deque<Vec> working_;   ///< The shard's trained rows.
};

}  // namespace

int Word2Vec::ResolveNumShards(size_t num_sentences) const {
  if (num_sentences == 0) return 1;
  int64_t shards;
  if (config_.num_shards > 0) {
    shards = config_.num_shards;
  } else {
    shards = static_cast<int64_t>(num_sentences / kAutoShardGrain);
    shards = std::min<int64_t>(shards, kMaxAutoShards);
  }
  shards = std::min<int64_t>(shards, static_cast<int64_t>(num_sentences));
  return static_cast<int>(std::max<int64_t>(shards, 1));
}

iuad::Result<Word2Vec> Word2Vec::Restore(Word2VecConfig config,
                                         Vocabulary vocab,
                                         std::vector<Vec> in_vectors,
                                         double final_lr,
                                         int64_t trained_tokens) {
  if (vocab.size() == 0 ||
      in_vectors.size() != static_cast<size_t>(vocab.size())) {
    return iuad::Status::InvalidArgument(
        "word2vec restore: vocabulary/vector count mismatch");
  }
  for (const Vec& v : in_vectors) {
    if (v.size() != static_cast<size_t>(config.dim)) {
      return iuad::Status::InvalidArgument(
          "word2vec restore: vector dimension disagrees with config.dim");
    }
  }
  Word2Vec w2v(config);
  w2v.vocab_ = std::move(vocab);
  w2v.in_vectors_ = std::move(in_vectors);
  w2v.final_lr_ = final_lr;
  w2v.trained_tokens_ = trained_tokens;
  w2v.trained_ = true;
  return w2v;
}

iuad::Status Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  if (sentences.empty()) {
    return iuad::Status::InvalidArgument("word2vec: empty corpus");
  }

  // Pass 1: count words.
  Vocabulary full;
  for (const auto& sent : sentences) {
    for (const auto& w : sent) full.Add(w);
  }
  // Keep only words above min_count; re-index densely.
  vocab_ = Vocabulary();
  for (int id = 0; id < full.size(); ++id) {
    if (full.CountOf(id) >= config_.min_count) {
      vocab_.AddCount(full.WordOf(id), full.CountOf(id));
    }
  }
  if (vocab_.size() == 0) {
    return iuad::Status::InvalidArgument(
        "word2vec: no word meets min_count; lower min_count or enlarge corpus");
  }

  const int v = vocab_.size();
  const size_t d = static_cast<size_t>(config_.dim);
  iuad::Rng rng(config_.seed);
  in_vectors_.assign(static_cast<size_t>(v), Vec(d));
  out_vectors_.assign(static_cast<size_t>(v), Vec(d, 0.0f));
  const float init_span = 0.5f / static_cast<float>(config_.dim);
  for (auto& vec : in_vectors_) {
    for (auto& x : vec) {
      x = (static_cast<float>(rng.UniformDouble()) - 0.5f) * 2.0f * init_span;
    }
  }
  BuildNegativeTable();

  // Encode sentences as id sequences once. Only sentences kept for training
  // (>= 2 in-vocabulary words) contribute to the token count that drives
  // the learning-rate schedule: counting dropped sentences would leave
  // steps_done short of total_steps forever, so the decay never reached its
  // floor.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(sentences.size());
  int64_t total_tokens = 0;
  for (const auto& sent : sentences) {
    std::vector<int> ids;
    ids.reserve(sent.size());
    for (const auto& w : sent) {
      int id = vocab_.Lookup(w);
      if (id != Vocabulary::kUnknown) ids.push_back(id);
    }
    if (ids.size() >= 2) {
      total_tokens += static_cast<int64_t>(ids.size());
      encoded.push_back(std::move(ids));
    }
  }
  if (encoded.empty()) {
    return iuad::Status::InvalidArgument(
        "word2vec: no sentence has >= 2 in-vocabulary words");
  }
  trained_tokens_ = total_tokens;

  const double total_steps =
      static_cast<double>(config_.epochs) * static_cast<double>(total_tokens);
  const int num_shards = ResolveNumShards(encoded.size());

  if (num_shards == 1) {
    // Legacy sequential schedule: one RNG stream (continuing from the
    // initialization draws above), in-place updates.
    double last_lr = config_.learning_rate;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      TrainRange(encoded, 0, encoded.size(),
                 static_cast<double>(epoch) * static_cast<double>(total_tokens),
                 total_steps, &rng, &in_vectors_, &out_vectors_, &last_lr);
    }
    final_lr_ = last_lr;
    trained_ = true;
    return iuad::Status::OK();
  }

  // Sharded schedule (see Word2VecConfig::num_shards). Shard boundaries,
  // RNG streams, lr segments, and the merge order are all functions of
  // (seed, num_shards, corpus) — the pool size below changes wall-clock
  // only, never the result.
  const size_t S = static_cast<size_t>(num_shards);
  std::vector<size_t> sent_begin(S + 1);
  for (size_t s = 0; s <= S; ++s) {
    sent_begin[s] = util::ShardRange(encoded.size(), s, S).first;
  }
  sent_begin[S] = encoded.size();
  // token_offset[s]: tokens in sentences before shard s — the shard's
  // position on the per-epoch learning-rate schedule, matching where its
  // tokens would sit in the sequential sweep.
  std::vector<int64_t> token_offset(S + 1, 0);
  {
    size_t s = 0;
    int64_t acc = 0;
    for (size_t i = 0; i < encoded.size(); ++i) {
      while (s < S && sent_begin[s] == i) token_offset[s++] = acc;
      acc += static_cast<int64_t>(encoded[i].size());
    }
    while (s <= S) token_offset[s++] = acc;
  }

  std::vector<iuad::Rng> shard_rngs;
  shard_rngs.reserve(S);
  for (size_t s = 0; s < S; ++s) {
    shard_rngs.emplace_back(iuad::DeriveStreamSeed(config_.seed, s));
  }
  std::vector<double> shard_last_lr(S, config_.learning_rate);
  util::ThreadPool pool(util::ResolveNumThreads(config_.num_threads));

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // The live matrices ARE the epoch snapshot: they stay read-only while
    // the shards run, and each shard copies just the rows it touches.
    std::vector<CowRows> local_in(S, CowRows(&in_vectors_));
    std::vector<CowRows> local_out(S, CowRows(&out_vectors_));
    const double epoch_base =
        static_cast<double>(epoch) * static_cast<double>(total_tokens);
    pool.ParallelFor(S, [&](size_t s) {
      TrainRange(encoded, sent_begin[s], sent_begin[s + 1],
                 epoch_base + static_cast<double>(token_offset[s]), total_steps,
                 &shard_rngs[s], &local_in[s], &local_out[s],
                 &shard_last_lr[s]);
    });
    // Merge the per-shard weight deltas in fixed shard order, visiting only
    // each shard's dirty rows. Float sums in a fixed order are
    // deterministic; sparse SGNS updates make the deltas near-disjoint, so
    // summing (not averaging) keeps per-word step sizes. Clean rows have an
    // exactly-zero delta, so skipping them is bit-identical to the dense
    // merge. Deltas are computed against each row's pristine copy, not the
    // live matrix — earlier shards' merges must not leak into later deltas.
    for (size_t s = 0; s < S; ++s) {
      auto merge = [d](const CowRows& rows, std::vector<Vec>* into) {
        for (size_t i = 0; i < rows.dirty().size(); ++i) {
          Vec& dst = (*into)[rows.dirty()[i]];
          const Vec& pristine = rows.pristine(i);
          const Vec& working = rows.working(i);
          for (size_t k = 0; k < d; ++k) dst[k] += working[k] - pristine[k];
        }
      };
      merge(local_in[s], &in_vectors_);
      merge(local_out[s], &out_vectors_);
    }
  }
  final_lr_ = shard_last_lr[S - 1];
  trained_ = true;
  return iuad::Status::OK();
}

template <typename Rows>
void Word2Vec::TrainRange(const std::vector<std::vector<int>>& encoded,
                          size_t begin, size_t end, double steps_base,
                          double total_steps, iuad::Rng* rng, Rows* in,
                          Rows* out, double* last_lr) const {
  const size_t d = static_cast<size_t>(config_.dim);
  std::vector<float> grad_in(d);
  double steps_done = 0.0;
  for (size_t si = begin; si < end; ++si) {
    const auto& sent = encoded[si];
    for (size_t pos = 0; pos < sent.size(); ++pos) {
      steps_done += 1.0;
      const int center = sent[pos];
      // Frequent-word subsampling (Mikolov et al. 2013, Eq. 5 analogue).
      if (config_.subsample > 0.0) {
        double f = static_cast<double>(vocab_.CountOf(center)) /
                   static_cast<double>(vocab_.total_count());
        double keep = (std::sqrt(f / config_.subsample) + 1.0) *
                      (config_.subsample / f);
        if (keep < 1.0 && rng->UniformDouble() > keep) continue;
      }
      const double lr = std::max(
          1e-4, config_.learning_rate *
                    (1.0 - (steps_base + steps_done) / total_steps));
      *last_lr = lr;
      // Dynamic window (uniform in [1, window]) as in the reference impl.
      const int b = 1 + static_cast<int>(rng->NextBounded(
                            static_cast<uint64_t>(config_.window)));
      const int lo = std::max<int>(0, static_cast<int>(pos) - b);
      const int hi = std::min<int>(static_cast<int>(sent.size()) - 1,
                                   static_cast<int>(pos) + b);
      for (int cpos = lo; cpos <= hi; ++cpos) {
        if (cpos == static_cast<int>(pos)) continue;
        const int context = sent[static_cast<size_t>(cpos)];
        Vec& w_in = (*in)[static_cast<size_t>(center)];
        std::fill(grad_in.begin(), grad_in.end(), 0.0f);
        // One positive + `negatives` negative updates.
        for (int neg = 0; neg <= config_.negatives; ++neg) {
          int target;
          double label;
          if (neg == 0) {
            target = context;
            label = 1.0;
          } else {
            target = SampleNegative(rng);
            if (target == context) continue;
            label = 0.0;
          }
          Vec& w_out = (*out)[static_cast<size_t>(target)];
          const double score = Sigmoid(Dot(w_in, w_out));
          const float g = static_cast<float>(lr * (label - score));
          for (size_t i = 0; i < d; ++i) {
            grad_in[i] += g * w_out[i];
            w_out[i] += g * w_in[i];
          }
        }
        for (size_t i = 0; i < d; ++i) w_in[i] += grad_in[i];
      }
    }
  }
}

void Word2Vec::BuildNegativeTable() {
  // Unigram^0.75 table of fixed size; standard SGNS noise distribution.
  // Word id w fills exactly the slots [floor(cum_{w-1} * T), floor(cum_w *
  // T)), so every word's slot share matches its unigram^0.75 probability to
  // within 1/T. (The previous `i / T > acc` sweep advanced the id one slot
  // late at every boundary, systematically over-allocating early ids.)
  constexpr int kTableSize = 1 << 18;
  negative_table_.assign(kTableSize, vocab_.size() - 1);
  double total = 0.0;
  for (int id = 0; id < vocab_.size(); ++id) {
    total += std::pow(static_cast<double>(vocab_.CountOf(id)), 0.75);
  }
  double acc = 0.0;
  int slot = 0;
  for (int id = 0; id < vocab_.size() && slot < kTableSize; ++id) {
    acc += std::pow(static_cast<double>(vocab_.CountOf(id)), 0.75) / total;
    const int boundary = std::min(
        kTableSize, static_cast<int>(acc * static_cast<double>(kTableSize)));
    for (; slot < boundary; ++slot) negative_table_[static_cast<size_t>(slot)] = id;
  }
  // Rounding slack at the top of the table stays with the last id (the
  // assign() above already placed it).
}

int Word2Vec::SampleNegative(iuad::Rng* rng) const {
  return negative_table_[static_cast<size_t>(
      rng->NextBounded(negative_table_.size()))];
}

const Vec* Word2Vec::VectorOf(const std::string& word) const {
  int id = vocab_.Lookup(word);
  if (id == Vocabulary::kUnknown || !trained_) return nullptr;
  return &in_vectors_[static_cast<size_t>(id)];
}

Vec Word2Vec::MeanOf(const std::vector<std::string>& words) const {
  std::vector<const Vec*> vs;
  for (const auto& w : words) {
    if (const Vec* v = VectorOf(w)) vs.push_back(v);
  }
  return MeanVector(vs, static_cast<size_t>(config_.dim));
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  const Vec* va = VectorOf(a);
  const Vec* vb = VectorOf(b);
  if (!va || !vb) return 0.0;
  return Cosine(*va, *vb);
}

std::vector<std::pair<std::string, double>> Word2Vec::MostSimilar(
    const std::string& word, int k) const {
  std::vector<std::pair<std::string, double>> out;
  const Vec* v = VectorOf(word);
  if (!v) return out;
  for (int id = 0; id < vocab_.size(); ++id) {
    const std::string& w = vocab_.WordOf(id);
    if (w == word) continue;
    out.emplace_back(w, Cosine(*v, in_vectors_[static_cast<size_t>(id)]));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<size_t>(k));
  return out;
}

}  // namespace iuad::text
