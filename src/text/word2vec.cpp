#include "text/word2vec.h"

#include <algorithm>
#include <cmath>

namespace iuad::text {

namespace {

/// Numerically-safe logistic.
inline double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

iuad::Status Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  if (sentences.empty()) {
    return iuad::Status::InvalidArgument("word2vec: empty corpus");
  }

  // Pass 1: count words.
  Vocabulary full;
  for (const auto& sent : sentences) {
    for (const auto& w : sent) full.Add(w);
  }
  // Keep only words above min_count; re-index densely.
  vocab_ = Vocabulary();
  for (int id = 0; id < full.size(); ++id) {
    if (full.CountOf(id) >= config_.min_count) {
      vocab_.AddCount(full.WordOf(id), full.CountOf(id));
    }
  }
  if (vocab_.size() == 0) {
    return iuad::Status::InvalidArgument(
        "word2vec: no word meets min_count; lower min_count or enlarge corpus");
  }

  const int v = vocab_.size();
  const size_t d = static_cast<size_t>(config_.dim);
  iuad::Rng rng(config_.seed);
  in_vectors_.assign(static_cast<size_t>(v), Vec(d));
  out_vectors_.assign(static_cast<size_t>(v), Vec(d, 0.0f));
  const float init_span = 0.5f / static_cast<float>(config_.dim);
  for (auto& vec : in_vectors_) {
    for (auto& x : vec) {
      x = (static_cast<float>(rng.UniformDouble()) - 0.5f) * 2.0f * init_span;
    }
  }
  BuildNegativeTable();

  // Encode sentences as id sequences once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(sentences.size());
  int64_t total_tokens = 0;
  for (const auto& sent : sentences) {
    std::vector<int> ids;
    ids.reserve(sent.size());
    for (const auto& w : sent) {
      int id = vocab_.Lookup(w);
      if (id != Vocabulary::kUnknown) ids.push_back(id);
    }
    total_tokens += static_cast<int64_t>(ids.size());
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }
  if (encoded.empty()) {
    return iuad::Status::InvalidArgument(
        "word2vec: no sentence has >= 2 in-vocabulary words");
  }

  const double total_steps =
      static_cast<double>(config_.epochs) * static_cast<double>(total_tokens);
  double steps_done = 0.0;
  std::vector<float> grad_in(d);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& sent : encoded) {
      for (size_t pos = 0; pos < sent.size(); ++pos) {
        steps_done += 1.0;
        const int center = sent[pos];
        // Frequent-word subsampling (Mikolov et al. 2013, Eq. 5 analogue).
        if (config_.subsample > 0.0) {
          double f = static_cast<double>(vocab_.CountOf(center)) /
                     static_cast<double>(vocab_.total_count());
          double keep = (std::sqrt(f / config_.subsample) + 1.0) *
                        (config_.subsample / f);
          if (keep < 1.0 && rng.UniformDouble() > keep) continue;
        }
        const double lr = std::max(
            1e-4, config_.learning_rate * (1.0 - steps_done / total_steps));
        // Dynamic window (uniform in [1, window]) as in the reference impl.
        const int b =
            1 + static_cast<int>(rng.NextBounded(
                    static_cast<uint64_t>(config_.window)));
        const int lo = std::max<int>(0, static_cast<int>(pos) - b);
        const int hi = std::min<int>(static_cast<int>(sent.size()) - 1,
                                     static_cast<int>(pos) + b);
        for (int cpos = lo; cpos <= hi; ++cpos) {
          if (cpos == static_cast<int>(pos)) continue;
          const int context = sent[static_cast<size_t>(cpos)];
          Vec& w_in = in_vectors_[static_cast<size_t>(center)];
          std::fill(grad_in.begin(), grad_in.end(), 0.0f);
          // One positive + `negatives` negative updates.
          for (int neg = 0; neg <= config_.negatives; ++neg) {
            int target;
            double label;
            if (neg == 0) {
              target = context;
              label = 1.0;
            } else {
              target = SampleNegative(&rng);
              if (target == context) continue;
              label = 0.0;
            }
            Vec& w_out = out_vectors_[static_cast<size_t>(target)];
            const double score = Sigmoid(Dot(w_in, w_out));
            const float g = static_cast<float>(lr * (label - score));
            for (size_t i = 0; i < d; ++i) {
              grad_in[i] += g * w_out[i];
              w_out[i] += g * w_in[i];
            }
          }
          for (size_t i = 0; i < d; ++i) w_in[i] += grad_in[i];
        }
      }
    }
  }
  trained_ = true;
  return iuad::Status::OK();
}

void Word2Vec::BuildNegativeTable() {
  // Unigram^0.75 table of fixed size; standard SGNS noise distribution.
  constexpr int kTableSize = 1 << 18;
  negative_table_.clear();
  negative_table_.reserve(kTableSize);
  double total = 0.0;
  for (int id = 0; id < vocab_.size(); ++id) {
    total += std::pow(static_cast<double>(vocab_.CountOf(id)), 0.75);
  }
  int id = 0;
  double acc = std::pow(static_cast<double>(vocab_.CountOf(0)), 0.75) / total;
  for (int i = 0; i < kTableSize; ++i) {
    negative_table_.push_back(id);
    if (static_cast<double>(i) / kTableSize > acc && id < vocab_.size() - 1) {
      ++id;
      acc += std::pow(static_cast<double>(vocab_.CountOf(id)), 0.75) / total;
    }
  }
}

int Word2Vec::SampleNegative(iuad::Rng* rng) const {
  return negative_table_[static_cast<size_t>(
      rng->NextBounded(negative_table_.size()))];
}

const Vec* Word2Vec::VectorOf(const std::string& word) const {
  int id = vocab_.Lookup(word);
  if (id == Vocabulary::kUnknown || !trained_) return nullptr;
  return &in_vectors_[static_cast<size_t>(id)];
}

Vec Word2Vec::MeanOf(const std::vector<std::string>& words) const {
  std::vector<const Vec*> vs;
  for (const auto& w : words) {
    if (const Vec* v = VectorOf(w)) vs.push_back(v);
  }
  return MeanVector(vs, static_cast<size_t>(config_.dim));
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  const Vec* va = VectorOf(a);
  const Vec* vb = VectorOf(b);
  if (!va || !vb) return 0.0;
  return Cosine(*va, *vb);
}

std::vector<std::pair<std::string, double>> Word2Vec::MostSimilar(
    const std::string& word, int k) const {
  std::vector<std::pair<std::string, double>> out;
  const Vec* v = VectorOf(word);
  if (!v) return out;
  for (int id = 0; id < vocab_.size(); ++id) {
    const std::string& w = vocab_.WordOf(id);
    if (w == word) continue;
    out.emplace_back(w, Cosine(*v, in_vectors_[static_cast<size_t>(id)]));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<size_t>(k));
  return out;
}

}  // namespace iuad::text
