#ifndef IUAD_TEXT_VOCABULARY_H_
#define IUAD_TEXT_VOCABULARY_H_

/// \file vocabulary.h
/// Bidirectional word <-> id mapping with corpus frequencies. Backs both the
/// word2vec trainer and the corpus-frequency terms F_B(b) / F_H(h) in the
/// similarity functions (Eq. 7, Eq. 9).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace iuad::text {

/// Compact word table. Ids are dense, assigned in first-seen order.
class Vocabulary {
 public:
  static constexpr int kUnknown = -1;

  /// Adds one occurrence of `word`, creating an id on first sight.
  /// Returns the word id.
  int Add(const std::string& word);

  /// Adds `n` occurrences.
  int AddCount(const std::string& word, int64_t n);

  /// Returns the id of `word` or kUnknown.
  int Lookup(const std::string& word) const;

  /// Word string for an id (must be valid).
  const std::string& WordOf(int id) const { return words_[static_cast<size_t>(id)]; }

  /// Total occurrences recorded for `id`.
  int64_t CountOf(int id) const { return counts_[static_cast<size_t>(id)]; }

  /// Occurrences of `word`, 0 if absent.
  int64_t CountOf(const std::string& word) const;

  /// Number of distinct words.
  int size() const { return static_cast<int>(words_.size()); }

  /// Sum of all counts.
  int64_t total_count() const { return total_; }

  /// Ids whose count is at least `min_count`.
  std::vector<int> IdsWithMinCount(int64_t min_count) const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace iuad::text

#endif  // IUAD_TEXT_VOCABULARY_H_
