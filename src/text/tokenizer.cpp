#include "text/tokenizer.h"

#include <cctype>

namespace iuad::text {

std::vector<std::string> Tokenize(std::string_view title, int min_len) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char raw : title) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else {
      if (static_cast<int>(cur.size()) >= min_len) tokens.push_back(cur);
      cur.clear();
    }
  }
  if (static_cast<int>(cur.size()) >= min_len) tokens.push_back(cur);
  return tokens;
}

const std::unordered_set<std::string>& StopWords() {
  static const std::unordered_set<std::string>* kStopWords =
      new std::unordered_set<std::string>{
          // Function words.
          "a", "an", "the", "and", "or", "of", "in", "on", "for", "with",
          "to", "from", "by", "at", "as", "is", "are", "be", "its", "this",
          "that", "these", "those", "we", "our", "it", "into", "via",
          "under", "over", "between", "among", "through", "using", "use",
          "towards", "toward", "about", "can", "do", "does", "how", "what",
          "when", "where", "why", "which", "who", "whose", "not", "no",
          "than", "then", "both", "all", "any", "some", "more", "most",
          "other", "their", "there", "here", "also", "but", "if", "else",
          // Scientific filler that appears in nearly every title.
          "based", "approach", "method", "methods", "towards", "study",
          "analysis", "new", "novel", "improved", "efficient", "effective",
          "framework", "model", "models", "system", "systems", "problem",
          "problems", "case", "applications", "application",
      };
  return *kStopWords;
}

bool IsStopWord(const std::string& word) {
  return StopWords().count(word) > 0;
}

std::vector<std::string> ExtractKeywords(std::string_view title, int min_len) {
  std::vector<std::string> out;
  for (auto& tok : Tokenize(title, min_len)) {
    if (!IsStopWord(tok)) out.push_back(std::move(tok));
  }
  return out;
}

}  // namespace iuad::text
