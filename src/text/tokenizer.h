#ifndef IUAD_TEXT_TOKENIZER_H_
#define IUAD_TEXT_TOKENIZER_H_

/// \file tokenizer.h
/// Title tokenization and keyword extraction. The paper (Sec. V-B2) extracts
/// title keywords by dropping stop words and overly frequent corpus words;
/// we reproduce both filters.

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace iuad::text {

/// Lower-cases, strips punctuation/digits, and splits a title into word
/// tokens. Tokens shorter than `min_len` characters are dropped.
std::vector<std::string> Tokenize(std::string_view title, int min_len = 2);

/// The built-in English stop-word list (articles, prepositions, common
/// scientific filler such as "based", "using", "approach").
const std::unordered_set<std::string>& StopWords();

/// True if `word` is a stop word.
bool IsStopWord(const std::string& word);

/// Tokenizes and removes stop words: the keyword stream of one title.
std::vector<std::string> ExtractKeywords(std::string_view title,
                                         int min_len = 2);

}  // namespace iuad::text

#endif  // IUAD_TEXT_TOKENIZER_H_
