#ifndef IUAD_TEXT_WORD2VEC_H_
#define IUAD_TEXT_WORD2VEC_H_

/// \file word2vec.h
/// Skip-gram with negative sampling (SGNS), from scratch. Substitutes the
/// paper's pretrained Word2Vec/GloVe vectors (unavailable offline): γ3 only
/// needs keyword vectors whose cosine reflects topical relatedness, which
/// SGNS trained on the corpus's own titles provides (see DESIGN.md §2).
/// Training is sharded deterministically (see Word2VecConfig::num_shards):
/// the same seed yields byte-identical embeddings at any thread count.

#include <string>
#include <unordered_map>
#include <vector>

#include "text/embedding.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/status.h"

namespace iuad::text {

/// Training hyper-parameters. Defaults are scaled for title-length sentences
/// (a few words each) rather than prose.
struct Word2VecConfig {
  int dim = 32;                ///< Embedding dimension.
  int window = 4;              ///< Max context offset (titles are short).
  int negatives = 5;           ///< Negative samples per positive pair.
  int epochs = 3;              ///< Passes over the corpus.
  double learning_rate = 0.025;///< Initial SGD step; decays linearly to 1e-4.
  int min_count = 2;           ///< Words rarer than this are dropped.
  double subsample = 1e-3;     ///< Frequent-word subsampling threshold (0 = off).
  uint64_t seed = 42;          ///< Deterministic init + sampling.
  /// Worker threads executing the training shards (<= 0 = hardware
  /// concurrency). Affects wall-clock only: the shard layout, RNG streams,
  /// and merge order are functions of (seed, num_shards, corpus) alone, so
  /// output is byte-identical at any thread count.
  int num_threads = 1;
  /// Training shards per epoch. 0 = auto (one shard per ~2048 encoded
  /// sentences, capped at 16 — a pure function of corpus size, never of
  /// thread count). 1 forces the legacy single-stream SGD schedule.
  ///
  /// Schedule change vs. the serial trainer: with S > 1 shards, each epoch
  /// treats the weights as a read-only snapshot, trains every shard
  /// independently against it (shard s sees sentence range ShardRange(n, s,
  /// S), an RNG seeded DeriveStreamSeed(seed, s), and the learning-rate
  /// segment its tokens would occupy in the sequential sweep), then sums the
  /// per-shard weight deltas into the snapshot in fixed shard order. Shards
  /// copy weights row-by-row on first touch (a pristine/working pair per
  /// dirty row), so per-shard memory is proportional to the rows a shard
  /// actually updates, not to the vocabulary — and the merge visits only
  /// those dirty rows. Sparse SGNS updates leave untouched rows with an
  /// exactly-zero delta, so skipping them is bit-identical to the dense
  /// full-matrix merge. With S == 1 the trainer degenerates to exactly the
  /// sequential schedule (one RNG stream continuing from initialization,
  /// in-place updates).
  int num_shards = 0;
};

/// SGNS trainer and embedding table.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecConfig config = {}) : config_(config) {}

  /// Trains on tokenized sentences (keyword lists). Builds the vocabulary
  /// internally. Returns InvalidArgument for an empty corpus.
  iuad::Status Train(const std::vector<std::vector<std::string>>& sentences);

  /// Reinstates a trained embedding table from snapshot parts (src/io):
  /// the vocabulary and one input vector per vocabulary id, in id order.
  /// Restores the full inference surface — VectorOf / MeanOf / Similarity /
  /// MostSimilar and the vocabulary-frequency reads the similarity
  /// functions make — byte-identically. Training-side state (context
  /// vectors, negative table) is NOT restored: calling Train again on a
  /// restored object retrains from scratch exactly as on a fresh one.
  static iuad::Result<Word2Vec> Restore(Word2VecConfig config,
                                        Vocabulary vocab,
                                        std::vector<Vec> in_vectors,
                                        double final_lr,
                                        int64_t trained_tokens);

  /// Returns the vector of `word`, or nullptr if out-of-vocabulary.
  const Vec* VectorOf(const std::string& word) const;

  /// Mean vector of the in-vocabulary subset of `words`; zero vector if none
  /// are known. This is W(v) of Eq. 6.
  Vec MeanOf(const std::vector<std::string>& words) const;

  /// Cosine similarity between two words; 0 when either is OOV.
  double Similarity(const std::string& a, const std::string& b) const;

  /// The `k` nearest in-vocabulary neighbours of `word` by cosine.
  std::vector<std::pair<std::string, double>> MostSimilar(
      const std::string& word, int k) const;

  int dim() const { return config_.dim; }
  const Vocabulary& vocabulary() const { return vocab_; }
  bool trained() const { return trained_; }

  /// The learning rate applied to the last (non-subsampled) token of the
  /// final epoch. The linear decay reaches its 1e-4 floor exactly when the
  /// token accounting is correct, which the schedule regression test pins.
  double final_learning_rate() const { return final_lr_; }

  /// Tokens per epoch that actually drive the lr schedule (in-vocabulary
  /// tokens of kept sentences only — dropped sentences contribute nothing).
  int64_t trained_tokens() const { return trained_tokens_; }

  /// The negative-sampling table (test hook: slot shares must track the
  /// unigram^0.75 distribution). Empty before Train.
  const std::vector<int>& negative_table() const { return negative_table_; }

 private:
  void BuildNegativeTable();
  int SampleNegative(iuad::Rng* rng) const;
  /// Resolves config_.num_shards against the corpus size (see the config
  /// field comment); always in [1, num_sentences].
  int ResolveNumShards(size_t num_sentences) const;
  /// One epoch-segment of SGD over encoded sentences [begin, end), writing
  /// into *in / *out. `steps_base` positions the segment on the global
  /// learning-rate schedule (lr decays with (steps_base + local step) /
  /// total_steps). Reads only immutable members (vocab, negative table), so
  /// distinct ranges with distinct buffers may run concurrently. Rows is
  /// any row store exposing `Vec& operator[](size_t)` — a plain
  /// std::vector<Vec> for the in-place S == 1 path, or the copy-on-write
  /// per-shard store (see word2vec.cpp) for the sharded path.
  template <typename Rows>
  void TrainRange(const std::vector<std::vector<int>>& encoded, size_t begin,
                  size_t end, double steps_base, double total_steps,
                  iuad::Rng* rng, Rows* in, Rows* out, double* last_lr) const;

  Word2VecConfig config_;
  Vocabulary vocab_;
  std::vector<Vec> in_vectors_;   // word embeddings (the output of training)
  std::vector<Vec> out_vectors_;  // context-side parameters
  std::vector<int> negative_table_;
  bool trained_ = false;
  double final_lr_ = 0.0;
  int64_t trained_tokens_ = 0;
};

}  // namespace iuad::text

#endif  // IUAD_TEXT_WORD2VEC_H_
