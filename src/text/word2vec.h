#ifndef IUAD_TEXT_WORD2VEC_H_
#define IUAD_TEXT_WORD2VEC_H_

/// \file word2vec.h
/// Skip-gram with negative sampling (SGNS), from scratch. Substitutes the
/// paper's pretrained Word2Vec/GloVe vectors (unavailable offline): γ3 only
/// needs keyword vectors whose cosine reflects topical relatedness, which
/// SGNS trained on the corpus's own titles provides (see DESIGN.md §2).

#include <string>
#include <unordered_map>
#include <vector>

#include "text/embedding.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/status.h"

namespace iuad::text {

/// Training hyper-parameters. Defaults are scaled for title-length sentences
/// (a few words each) rather than prose.
struct Word2VecConfig {
  int dim = 32;                ///< Embedding dimension.
  int window = 4;              ///< Max context offset (titles are short).
  int negatives = 5;           ///< Negative samples per positive pair.
  int epochs = 3;              ///< Passes over the corpus.
  double learning_rate = 0.025;///< Initial SGD step; decays linearly to 1e-4.
  int min_count = 2;           ///< Words rarer than this are dropped.
  double subsample = 1e-3;     ///< Frequent-word subsampling threshold (0 = off).
  uint64_t seed = 42;          ///< Deterministic init + sampling.
};

/// SGNS trainer and embedding table.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecConfig config = {}) : config_(config) {}

  /// Trains on tokenized sentences (keyword lists). Builds the vocabulary
  /// internally. Returns InvalidArgument for an empty corpus.
  iuad::Status Train(const std::vector<std::vector<std::string>>& sentences);

  /// Returns the vector of `word`, or nullptr if out-of-vocabulary.
  const Vec* VectorOf(const std::string& word) const;

  /// Mean vector of the in-vocabulary subset of `words`; zero vector if none
  /// are known. This is W(v) of Eq. 6.
  Vec MeanOf(const std::vector<std::string>& words) const;

  /// Cosine similarity between two words; 0 when either is OOV.
  double Similarity(const std::string& a, const std::string& b) const;

  /// The `k` nearest in-vocabulary neighbours of `word` by cosine.
  std::vector<std::pair<std::string, double>> MostSimilar(
      const std::string& word, int k) const;

  int dim() const { return config_.dim; }
  const Vocabulary& vocabulary() const { return vocab_; }
  bool trained() const { return trained_; }

 private:
  void BuildNegativeTable();
  int SampleNegative(iuad::Rng* rng) const;

  Word2VecConfig config_;
  Vocabulary vocab_;
  std::vector<Vec> in_vectors_;   // word embeddings (the output of training)
  std::vector<Vec> out_vectors_;  // context-side parameters
  std::vector<int> negative_table_;
  bool trained_ = false;
};

}  // namespace iuad::text

#endif  // IUAD_TEXT_WORD2VEC_H_
