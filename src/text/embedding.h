#ifndef IUAD_TEXT_EMBEDDING_H_
#define IUAD_TEXT_EMBEDDING_H_

/// \file embedding.h
/// Dense float vector helpers shared by word2vec and the paper-embedding
/// baselines (cosine similarity Eq. 6 and mean-of-keyword-vectors W(v)).

#include <cmath>
#include <vector>

namespace iuad::text {

using Vec = std::vector<float>;

/// Dot product; vectors must have equal length.
inline double Dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

/// L2 norm.
inline double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

/// Cosine similarity in [-1, 1]; returns 0 when either vector is zero
/// (an author with no keywords has no interest signal).
inline double Cosine(const Vec& a, const Vec& b) {
  const double na = Norm(a), nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

/// a += b.
inline void AddInPlace(Vec* a, const Vec& b) {
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += b[i];
}

/// a *= s.
inline void ScaleInPlace(Vec* a, float s) {
  for (float& x : *a) x *= s;
}

/// Mean of a set of vectors; `dim` gives the dimension used when the set is
/// empty (an all-zero vector is returned in that case).
inline Vec MeanVector(const std::vector<const Vec*>& vs, size_t dim) {
  Vec m(dim, 0.0f);
  if (vs.empty()) return m;
  for (const Vec* v : vs) AddInPlace(&m, *v);
  ScaleInPlace(&m, 1.0f / static_cast<float>(vs.size()));
  return m;
}

/// Euclidean distance.
inline double L2Distance(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace iuad::text

#endif  // IUAD_TEXT_EMBEDDING_H_
