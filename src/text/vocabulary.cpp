#include "text/vocabulary.h"

namespace iuad::text {

int Vocabulary::Add(const std::string& word) { return AddCount(word, 1); }

int Vocabulary::AddCount(const std::string& word, int64_t n) {
  auto [it, inserted] = index_.try_emplace(word, static_cast<int>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  counts_[static_cast<size_t>(it->second)] += n;
  total_ += n;
  return it->second;
}

int Vocabulary::Lookup(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnknown : it->second;
}

int64_t Vocabulary::CountOf(const std::string& word) const {
  int id = Lookup(word);
  return id == kUnknown ? 0 : CountOf(id);
}

std::vector<int> Vocabulary::IdsWithMinCount(int64_t min_count) const {
  std::vector<int> ids;
  for (int i = 0; i < size(); ++i) {
    if (counts_[static_cast<size_t>(i)] >= min_count) ids.push_back(i);
  }
  return ids;
}

}  // namespace iuad::text
