#include "baselines/paper_embedder.h"

#include <cmath>

#include "util/rng.h"

namespace iuad::baselines {

text::Vec HashVector(const std::string& s, int dim) {
  // FNV-1a over the string seeds a deterministic generator.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  iuad::Rng rng(h);
  text::Vec v(static_cast<size_t>(dim));
  double norm2 = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng.Gaussian());
    norm2 += static_cast<double>(x) * x;
  }
  const float inv = norm2 > 0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
  for (auto& x : v) x *= inv;
  return v;
}

PaperEmbedder::PaperEmbedder(const data::PaperDatabase& db,
                             const text::Word2Vec* word_vecs,
                             EmbedderConfig config)
    : db_(db), word_vecs_(word_vecs), config_(std::move(config)) {
  if (word_vecs_ != nullptr && word_vecs_->trained()) {
    const auto& vocab = word_vecs_->vocabulary();
    text::Vec sum(static_cast<size_t>(word_vecs_->dim()), 0.0f);
    double total = 0.0;
    for (int id = 0; id < vocab.size(); ++id) {
      const text::Vec* v = word_vecs_->VectorOf(vocab.WordOf(id));
      if (v == nullptr) continue;
      const float w = static_cast<float>(vocab.CountOf(id));
      for (size_t i = 0; i < sum.size(); ++i) sum[i] += w * (*v)[i];
      total += w;
    }
    if (total > 0) {
      text::ScaleInPlace(&sum, static_cast<float>(1.0 / total));
      title_center_ = std::move(sum);
    }
  }
}

text::Vec PaperEmbedder::Embed(int paper_id) const {
  const data::Paper& paper = db_.paper(paper_id);
  text::Vec out(static_cast<size_t>(config_.dim), 0.0f);

  if (config_.coauthor_weight > 0.0) {
    text::Vec ch(static_cast<size_t>(config_.dim), 0.0f);
    int n = 0;
    for (const auto& name : paper.author_names) {
      if (name == config_.focal_name) continue;
      text::AddInPlace(&ch, HashVector(name, config_.dim));
      ++n;
    }
    if (n > 0) text::ScaleInPlace(&ch, static_cast<float>(config_.coauthor_weight / n));
    text::AddInPlace(&out, ch);
  }

  if (config_.title_weight > 0.0 && word_vecs_ != nullptr &&
      word_vecs_->trained()) {
    text::Vec ch = word_vecs_->MeanOf(db_.KeywordsOf(paper_id));
    if (!title_center_.empty() && text::Norm(ch) > 0) {
      for (size_t i = 0; i < ch.size(); ++i) ch[i] -= title_center_[i];
    }
    // Word2Vec dimension may differ from the channel dimension; project by
    // truncation / zero-padding (cheap, deterministic).
    ch.resize(static_cast<size_t>(config_.dim), 0.0f);
    const double norm = text::Norm(ch);
    if (norm > 0) {
      text::ScaleInPlace(&ch, static_cast<float>(config_.title_weight / norm));
    }
    text::AddInPlace(&out, ch);
  }

  if (config_.venue_weight > 0.0) {
    text::Vec ch = HashVector("venue::" + paper.venue, config_.dim);
    text::ScaleInPlace(&ch, static_cast<float>(config_.venue_weight));
    text::AddInPlace(&out, ch);
  }
  return out;
}

std::vector<text::Vec> PaperEmbedder::EmbedAll(
    const std::vector<int>& paper_ids) const {
  std::vector<text::Vec> out;
  out.reserve(paper_ids.size());
  for (int pid : paper_ids) out.push_back(Embed(pid));
  return out;
}

std::vector<std::vector<double>> CosineDistanceMatrix(
    const std::vector<text::Vec>& vecs) {
  const size_t n = vecs.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dist = 1.0 - text::Cosine(vecs[i], vecs[j]);
      d[i][j] = d[j][i] = dist;
    }
  }
  return d;
}

}  // namespace iuad::baselines
