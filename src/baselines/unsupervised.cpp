#include "baselines/unsupervised.h"

#include <algorithm>

#include "baselines/paper_embedder.h"
#include "util/logging.h"

namespace iuad::baselines {

namespace {

/// Fallback labels when a clusterer fails (shouldn't happen on square
/// inputs): all singletons.
std::vector<int> Singletons(size_t n) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  return labels;
}

}  // namespace

// --- ANON --------------------------------------------------------------------

AnonBaseline::AnonBaseline(const data::PaperDatabase& db,
                           const text::Word2Vec* word_vecs,
                           double hac_threshold)
    : db_(db), word_vecs_(word_vecs), hac_threshold_(hac_threshold) {}

std::vector<int> AnonBaseline::Disambiguate(const std::string& name) const {
  const auto& papers = db_.PapersWithName(name);
  EmbedderConfig cfg;
  cfg.focal_name = name;
  cfg.coauthor_weight = 1.0;
  cfg.title_weight = 0.25;  // ANON is primarily relational
  PaperEmbedder embedder(db_, word_vecs_, cfg);
  auto dist = CosineDistanceMatrix(embedder.EmbedAll(papers));
  cluster::HacConfig hc;
  hc.linkage = cluster::Linkage::kAverage;
  hc.distance_threshold = hac_threshold_;
  auto labels = cluster::Hac(dist, hc);
  return labels.ok() ? *labels : Singletons(papers.size());
}

// --- NetE --------------------------------------------------------------------

NetEBaseline::NetEBaseline(const data::PaperDatabase& db,
                           const text::Word2Vec* word_vecs,
                           cluster::DbscanConfig dbscan)
    : db_(db), word_vecs_(word_vecs), dbscan_(dbscan) {}

std::vector<int> NetEBaseline::Disambiguate(const std::string& name) const {
  const auto& papers = db_.PapersWithName(name);
  EmbedderConfig cfg;
  cfg.focal_name = name;
  cfg.coauthor_weight = 1.0;
  cfg.title_weight = 0.8;
  cfg.venue_weight = 0.4;
  PaperEmbedder embedder(db_, word_vecs_, cfg);
  auto dist = CosineDistanceMatrix(embedder.EmbedAll(papers));
  auto labels = cluster::Dbscan(dist, dbscan_);
  return labels.ok() ? *labels : Singletons(papers.size());
}

// --- Aminer ------------------------------------------------------------------

AminerBaseline::AminerBaseline(const data::PaperDatabase& db,
                               const text::Word2Vec* word_vecs,
                               double hac_threshold, double local_mix)
    : db_(db),
      word_vecs_(word_vecs),
      hac_threshold_(hac_threshold),
      local_mix_(local_mix) {}

std::vector<int> AminerBaseline::Disambiguate(const std::string& name) const {
  const auto& papers = db_.PapersWithName(name);
  // Global embedding: text + venue (what Aminer learns corpus-wide).
  EmbedderConfig cfg;
  cfg.focal_name = name;
  cfg.coauthor_weight = 0.0;
  cfg.title_weight = 1.0;
  cfg.venue_weight = 0.5;
  PaperEmbedder embedder(db_, word_vecs_, cfg);
  auto vecs = embedder.EmbedAll(papers);

  // Local refinement: average each paper with neighbors that share a
  // co-author (one smoothing round over the local linkage graph).
  std::vector<std::vector<std::string>> coauthors(papers.size());
  for (size_t i = 0; i < papers.size(); ++i) {
    for (const auto& n : db_.paper(papers[i]).author_names) {
      if (n != name) coauthors[i].push_back(n);
    }
    std::sort(coauthors[i].begin(), coauthors[i].end());
  }
  std::vector<text::Vec> refined = vecs;
  for (size_t i = 0; i < papers.size(); ++i) {
    text::Vec nbr_mean(vecs[i].size(), 0.0f);
    int nbrs = 0;
    for (size_t j = 0; j < papers.size(); ++j) {
      if (i == j) continue;
      std::vector<std::string> common;
      std::set_intersection(coauthors[i].begin(), coauthors[i].end(),
                            coauthors[j].begin(), coauthors[j].end(),
                            std::back_inserter(common));
      if (!common.empty()) {
        text::AddInPlace(&nbr_mean, vecs[j]);
        ++nbrs;
      }
    }
    if (nbrs > 0) {
      text::ScaleInPlace(&nbr_mean, static_cast<float>(local_mix_ / nbrs));
      text::ScaleInPlace(&refined[i], static_cast<float>(1.0 - local_mix_));
      text::AddInPlace(&refined[i], nbr_mean);
    }
  }
  auto dist = CosineDistanceMatrix(refined);
  cluster::HacConfig hc;
  hc.linkage = cluster::Linkage::kAverage;
  hc.distance_threshold = hac_threshold_;
  auto labels = cluster::Hac(dist, hc);
  return labels.ok() ? *labels : Singletons(papers.size());
}

// --- GHOST -------------------------------------------------------------------

GhostBaseline::GhostBaseline(const data::PaperDatabase& db,
                             double two_hop_weight)
    : db_(db), two_hop_weight_(two_hop_weight) {
  // Global co-authorship counts for the 2-hop term.
  for (const auto& paper : db.papers()) {
    mining::Transaction t;
    for (const auto& n : paper.author_names) t.push_back(encoder_.Encode(n));
    copub_.AddTransaction(t);
  }
}

std::vector<int> GhostBaseline::Disambiguate(const std::string& name) const {
  const auto& papers = db_.PapersWithName(name);
  const size_t n = papers.size();
  std::vector<std::vector<mining::Item>> coauthors(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& nm : db_.paper(papers[i]).author_names) {
      if (nm == name) continue;
      const mining::Item it = encoder_.Find(nm);
      if (it >= 0) coauthors[i].push_back(it);
    }
    std::sort(coauthors[i].begin(), coauthors[i].end());
    coauthors[i].erase(std::unique(coauthors[i].begin(), coauthors[i].end()),
                       coauthors[i].end());
  }
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // Direct: shared co-author names.
      std::vector<mining::Item> common;
      std::set_intersection(coauthors[i].begin(), coauthors[i].end(),
                            coauthors[j].begin(), coauthors[j].end(),
                            std::back_inserter(common));
      double s = static_cast<double>(common.size());
      // 2-hop: co-author pairs (u, v) that ever co-published (valid paths
      // of length 2 in the collaboration graph).
      int two_hop = 0;
      for (mining::Item u : coauthors[i]) {
        for (mining::Item v : coauthors[j]) {
          if (u != v && copub_.CountOf(u, v) > 0) ++two_hop;
        }
      }
      s += two_hop_weight_ * static_cast<double>(two_hop);
      sim[i][j] = sim[j][i] = s;
    }
  }
  cluster::ApConfig ap;
  auto labels = cluster::AffinityPropagation(sim, ap);
  return labels.ok() ? *labels : Singletons(n);
}

}  // namespace iuad::baselines
