#include "baselines/supervised_pipeline.h"

#include "cluster/hac.h"

namespace iuad::baselines {

const char* SupervisedKindName(SupervisedKind kind) {
  switch (kind) {
    case SupervisedKind::kAdaBoost: return "AdaBoost";
    case SupervisedKind::kGbdt: return "GBDT";
    case SupervisedKind::kRandomForest: return "RF";
    case SupervisedKind::kXgboost: return "XGBoost";
  }
  return "Unknown";
}

SupervisedPipeline::SupervisedPipeline(SupervisedKind kind,
                                       const data::PaperDatabase& db,
                                       const text::Word2Vec* word_vecs)
    : kind_(kind), db_(db), word_vecs_(word_vecs) {}

iuad::Status SupervisedPipeline::Train(
    const std::vector<std::string>& training_names, int max_pairs_per_name,
    uint64_t seed) {
  return TrainOn(db_, training_names, max_pairs_per_name, seed);
}

iuad::Status SupervisedPipeline::TrainOn(
    const data::PaperDatabase& labeled_db,
    const std::vector<std::string>& training_names, int max_pairs_per_name,
    uint64_t seed) {
  iuad::Rng rng(seed);
  ml::PairwiseDataset ds = ml::BuildPairwiseDataset(
      labeled_db, training_names, word_vecs_, max_pairs_per_name, &rng);
  if (ds.x.empty()) {
    return iuad::Status::InvalidArgument(
        "supervised baseline: no labeled pairs from training names");
  }
  switch (kind_) {
    case SupervisedKind::kAdaBoost: {
      adaboost_ = std::make_unique<ml::AdaBoost>();
      IUAD_RETURN_NOT_OK(adaboost_->Fit(ds.x, ds.y));
      break;
    }
    case SupervisedKind::kGbdt: {
      gbdt_ = std::make_unique<ml::Gbdt>();
      IUAD_RETURN_NOT_OK(gbdt_->Fit(ds.x, ds.y));
      break;
    }
    case SupervisedKind::kRandomForest: {
      forest_ = std::make_unique<ml::RandomForest>();
      IUAD_RETURN_NOT_OK(forest_->Fit(ds.x, ds.y));
      break;
    }
    case SupervisedKind::kXgboost: {
      gbdt_ = std::make_unique<ml::Gbdt>(ml::XgboostStyleConfig());
      IUAD_RETURN_NOT_OK(gbdt_->Fit(ds.x, ds.y));
      break;
    }
  }
  trained_ = true;
  return iuad::Status::OK();
}

double SupervisedPipeline::PredictPair(
    const std::vector<float>& features) const {
  switch (kind_) {
    case SupervisedKind::kAdaBoost: return adaboost_->PredictProba(features);
    case SupervisedKind::kGbdt:
    case SupervisedKind::kXgboost: return gbdt_->PredictProba(features);
    case SupervisedKind::kRandomForest: return forest_->PredictProba(features);
  }
  return 0.5;
}

std::vector<int> SupervisedPipeline::Disambiguate(
    const std::string& name) const {
  const auto& papers = db_.PapersWithName(name);
  const size_t n = papers.size();
  if (!trained_ || n == 0) {
    // Untrained: bottom-up default, everything distinct.
    std::vector<int> singletons(n);
    for (size_t i = 0; i < n; ++i) singletons[i] = static_cast<int>(i);
    return singletons;
  }
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto f = ml::ExtractPairFeatures(db_, papers[i], papers[j], name,
                                             word_vecs_);
      const double d = 1.0 - PredictPair(f);
      dist[i][j] = dist[j][i] = d;
    }
  }
  cluster::HacConfig hc;
  hc.linkage = cluster::Linkage::kAverage;
  hc.distance_threshold = 0.5;
  auto labels = cluster::Hac(dist, hc);
  if (labels.ok()) return *labels;
  std::vector<int> singletons(n);
  for (size_t i = 0; i < n; ++i) singletons[i] = static_cast<int>(i);
  return singletons;
}

}  // namespace iuad::baselines
