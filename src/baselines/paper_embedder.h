#ifndef IUAD_BASELINES_PAPER_EMBEDDER_H_
#define IUAD_BASELINES_PAPER_EMBEDDER_H_

/// \file paper_embedder.h
/// Paper-level embedding channels shared by the embedding-based baselines.
/// The published systems learn network embeddings with gradient methods we
/// cannot reproduce byte-for-byte offline; the substitution (DESIGN.md §2)
/// keeps the *information channels* identical — who you wrote with
/// (co-author channel), what you wrote about (title channel trained on the
/// corpus), where you published (venue channel) — so the baselines'
/// qualitative behaviour (top-down ego-network clustering) is preserved.

#include <string>
#include <vector>

#include "data/paper_database.h"
#include "text/embedding.h"
#include "text/word2vec.h"

namespace iuad::baselines {

/// Deterministic pseudo-random unit vector for an arbitrary string (the
/// hashing-trick stand-in for learned node embeddings). Same string, same
/// vector, across runs and platforms.
text::Vec HashVector(const std::string& s, int dim);

/// Channel weights for composing a paper embedding.
struct EmbedderConfig {
  int dim = 32;              ///< Per-channel dimension; channels are summed.
  double coauthor_weight = 1.0;
  double title_weight = 1.0;
  double venue_weight = 0.0;
  /// Name excluded from the co-author channel (the focal, ambiguous name —
  /// every ego-network method anonymizes it).
  std::string focal_name;
};

/// Composes per-paper vectors over the given database.
class PaperEmbedder {
 public:
  PaperEmbedder(const data::PaperDatabase& db, const text::Word2Vec* word_vecs,
                EmbedderConfig config);

  /// Embedding of one paper.
  text::Vec Embed(int paper_id) const;

  /// Embeddings for a list of papers.
  std::vector<text::Vec> EmbedAll(const std::vector<int>& paper_ids) const;

  int dim() const { return config_.dim; }

 private:
  const data::PaperDatabase& db_;
  const text::Word2Vec* word_vecs_;
  EmbedderConfig config_;
  /// Corpus-frequency-weighted mean word vector, removed from the title
  /// channel: averaged word embeddings share a large common component and
  /// their raw cosines saturate near 1 (no discriminative power).
  text::Vec title_center_;
};

/// Cosine-distance matrix (1 - cosine) over a vector set.
std::vector<std::vector<double>> CosineDistanceMatrix(
    const std::vector<text::Vec>& vecs);

}  // namespace iuad::baselines

#endif  // IUAD_BASELINES_PAPER_EMBEDDER_H_
