#ifndef IUAD_BASELINES_UNSUPERVISED_H_
#define IUAD_BASELINES_UNSUPERVISED_H_

/// \file unsupervised.h
/// The four unsupervised competitors of Table III, each a faithful
/// *pipeline-shape* reproduction (see DESIGN.md §2 for the embedding
/// substitutions):
///   ANON   [22] Zhang & Al Hasan: coauthor-relational paper embedding + HAC
///   NetE   [23] Xu et al.: multi-channel embedding + density clustering
///   Aminer [33] Zhang et al.: global text embedding refined by local
///               coauthor structure + HAC
///   GHOST  [27] Fan et al.: structure-only path-based paper similarity + AP
///
/// All are *top-down* methods: they look at one name's ego set of papers at
/// a time — exactly the design IUAD's bottom-up construction criticizes.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/affinity_propagation.h"
#include "cluster/dbscan.h"
#include "cluster/hac.h"
#include "data/paper_database.h"
#include "mining/pair_miner.h"
#include "text/word2vec.h"

namespace iuad::baselines {

/// Common interface: cluster the papers of `name` (labels parallel to
/// db.PapersWithName(name)).
class UnsupervisedBaseline {
 public:
  virtual ~UnsupervisedBaseline() = default;
  virtual std::vector<int> Disambiguate(const std::string& name) const = 0;
  virtual std::string Name() const = 0;
};

/// ANON: coauthor-channel embedding, average-linkage HAC.
class AnonBaseline : public UnsupervisedBaseline {
 public:
  AnonBaseline(const data::PaperDatabase& db, const text::Word2Vec* word_vecs,
               double hac_threshold = 0.7);
  std::vector<int> Disambiguate(const std::string& name) const override;
  std::string Name() const override { return "ANON"; }

 private:
  const data::PaperDatabase& db_;
  const text::Word2Vec* word_vecs_;
  double hac_threshold_;
};

/// NetE: coauthor+title+venue channels, DBSCAN (HDBSCAN stand-in).
class NetEBaseline : public UnsupervisedBaseline {
 public:
  NetEBaseline(const data::PaperDatabase& db, const text::Word2Vec* word_vecs,
               cluster::DbscanConfig dbscan = {/*eps=*/0.25, /*min_points=*/2});
  std::vector<int> Disambiguate(const std::string& name) const override;
  std::string Name() const override { return "NetE"; }

 private:
  const data::PaperDatabase& db_;
  const text::Word2Vec* word_vecs_;
  cluster::DbscanConfig dbscan_;
};

/// Aminer: global text embedding, one round of local smoothing over the
/// shared-coauthor graph, HAC.
class AminerBaseline : public UnsupervisedBaseline {
 public:
  AminerBaseline(const data::PaperDatabase& db, const text::Word2Vec* word_vecs,
                 double hac_threshold = 0.3, double local_mix = 0.5);
  std::vector<int> Disambiguate(const std::string& name) const override;
  std::string Name() const override { return "Aminer"; }

 private:
  const data::PaperDatabase& db_;
  const text::Word2Vec* word_vecs_;
  double hac_threshold_;
  double local_mix_;
};

/// GHOST: structure-only. Paper-pair similarity = direct shared co-authors
/// plus a discounted 2-hop term through the *global* co-authorship relation,
/// clustered with affinity propagation.
class GhostBaseline : public UnsupervisedBaseline {
 public:
  GhostBaseline(const data::PaperDatabase& db, double two_hop_weight = 0.3);
  std::vector<int> Disambiguate(const std::string& name) const override;
  std::string Name() const override { return "GHOST"; }

 private:
  const data::PaperDatabase& db_;
  double two_hop_weight_;
  /// Global name-level co-authorship counts (who ever wrote with whom).
  mining::ItemEncoder encoder_;
  mining::PairCounter copub_;
};

}  // namespace iuad::baselines

#endif  // IUAD_BASELINES_UNSUPERVISED_H_
