#ifndef IUAD_BASELINES_SUPERVISED_PIPELINE_H_
#define IUAD_BASELINES_SUPERVISED_PIPELINE_H_

/// \file supervised_pipeline.h
/// The supervised baselines of Table III: a pairwise same-author classifier
/// (AdaBoost / GBDT / RandomForest / XGBoost-style, features after
/// Treeratpituk & Giles) trained on *labeled* names disjoint from the test
/// names, applied to every paper pair of a test name and closed
/// transitively into clusters.

#include <memory>
#include <string>
#include <vector>

#include "data/paper_database.h"
#include "ml/adaboost.h"
#include "ml/gbdt.h"
#include "ml/pairwise_features.h"
#include "ml/random_forest.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace iuad::baselines {

enum class SupervisedKind { kAdaBoost, kGbdt, kRandomForest, kXgboost };

const char* SupervisedKindName(SupervisedKind kind);

class SupervisedPipeline {
 public:
  SupervisedPipeline(SupervisedKind kind, const data::PaperDatabase& db,
                     const text::Word2Vec* word_vecs);

  /// Trains the pair classifier on the ground-truth labels of
  /// `training_names` (must not overlap the evaluation names).
  iuad::Status Train(const std::vector<std::string>& training_names,
                     int max_pairs_per_name = 2000, uint64_t seed = 99);

  /// Trains on labels from a *different* database (e.g. an external labeled
  /// corpus) — the transfer protocol the published supervised baselines
  /// live under: annotation never comes from the evaluation data.
  iuad::Status TrainOn(const data::PaperDatabase& labeled_db,
                       const std::vector<std::string>& training_names,
                       int max_pairs_per_name = 2000, uint64_t seed = 99);

  /// Clusters the papers of `name` from the pairwise predictions. Naive
  /// transitive closure of p >= 0.5 decisions collapses under a single
  /// false-positive bridge (quadratically many pairs per name), so the
  /// pipeline agglomerates with average linkage over distance 1 - p and
  /// stops at 0.5 — i.e. two clusters merge only while their *average*
  /// predicted same-author probability exceeds one half.
  std::vector<int> Disambiguate(const std::string& name) const;

  std::string Name() const { return SupervisedKindName(kind_); }
  bool trained() const { return trained_; }

 private:
  double PredictPair(const std::vector<float>& features) const;

  SupervisedKind kind_;
  const data::PaperDatabase& db_;
  const text::Word2Vec* word_vecs_;
  // Exactly one of these is fitted, per kind_.
  std::unique_ptr<ml::AdaBoost> adaboost_;
  std::unique_ptr<ml::Gbdt> gbdt_;
  std::unique_ptr<ml::RandomForest> forest_;
  bool trained_ = false;
};

}  // namespace iuad::baselines

#endif  // IUAD_BASELINES_SUPERVISED_PIPELINE_H_
