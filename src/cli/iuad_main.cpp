/// `iuad` — command-line front end for the library.
///
/// Subcommands:
///   iuad generate <out.tsv> [--papers N] [--seed S]
///       Emit a synthetic labeled corpus (the DBLP stand-in) as a paper TSV.
///   iuad run <papers.tsv> [--eta N] [--delta X] [--graph out_graph.tsv]
///            [--clusters out_clusters.tsv] [--save-snapshot out.snap]
///       Reconstruct the collaboration network; optionally persist the
///       network, the per-occurrence author attribution, and/or the full
///       fitted state as a binary snapshot (src/io) for later serving.
///   iuad evaluate <papers.tsv>
///       Run the pipeline and score it against the TSV's ground-truth
///       column (pairwise micro metrics over ambiguous names).
///   iuad serve <papers.tsv> --load-snapshot in.snap [--stream new.tsv]
///              [--shards S] [--producers N] [--queue C] [--window W]
///              [--pipeline-depth D]
///              [--name "A. Name"] [--port P | --stdio] [--workers W]
///              [--max-batch B] [--save-snapshot-on-stop out.snap]
///              [--save-corpus out.tsv]
///              [--metrics-port P] [--stats-interval S]
///              [--slow-commit-ms M] [--no-metrics]
///              [--trace-out out.json] [--no-trace]
///              [--wal-dir DIR] [--wal-fsync-every N] [--wal-fsync-ms M]
///              [--wal-checkpoint-every N]
///       Load a fitted snapshot next to the corpus it was saved against and
///       bring up a serving front end behind the one serve::Frontend
///       interface: the single-applier IngestService (src/serve) by
///       default, or — with --shards S > 1 — the name-block-sharded
///       ShardRouter (src/shard). With --stream, feed every paper of the
///       stream TSV through the service from N concurrent producers
///       (assignments are identical at any N and any S); with --name, look
///       the author up in the post-ingestion read view. --port P exposes
///       the network query/ingest API (src/api): a TCP listener speaking
///       newline-delimited JSON until SIGINT/SIGTERM; --stdio speaks the
///       same protocol over stdin/stdout until EOF (the CI-scriptable
///       transport). --save-snapshot-on-stop persists the post-ingestion
///       state (snapshot format v2) once the service drains — pair it with
///       --save-corpus, which writes the post-ingestion corpus TSV the new
///       snapshot fingerprints against, to make the state reloadable. This
///       is the demo shape of the long-running system: fit once, reload in
///       milliseconds, serve queries and keep ingesting, checkpoint on the
///       way down. Observability (src/obs): --metrics-port P exposes the
///       frontend's metrics registry as Prometheus-style text (0 =
///       ephemeral, port printed); --stats-interval S dumps the service
///       stats to stderr every S seconds; --slow-commit-ms M retains a
///       full span timeline for commits over M ms in the top-K exemplar
///       table (surfaced by GetStats and the stderr dump); --no-metrics
///       turns the timing instrumentation off. The flight recorder
///       (src/obs/trace.h) traces every paper through the pipeline:
///       --trace-out PATH writes the recorder's drain as Chrome
///       trace-event JSON (Perfetto-loadable) on shutdown and arms a
///       SIGSEGV/SIGABRT post-mortem dump to PATH.crash; --no-trace turns
///       recording off. Assignments are byte-identical with metrics and
///       tracing on or off, in any combination (DESIGN.md §7).
///       Durability (src/wal, DESIGN.md §9): --wal-dir DIR write-ahead-logs
///       every commit into DIR and recovers from it at startup — if DIR
///       holds a previous session's checkpoint and log tail, the serve
///       loads the checkpoint instead of the CLI corpus/snapshot pair and
///       replays the tail before accepting traffic, reproducing the
///       pre-crash assignments bit-for-bit. --wal-fsync-every N /
///       --wal-fsync-ms M tune the group-commit fsync cadence (1/0 =
///       strictest); --wal-checkpoint-every N compacts the log with a
///       checkpoint roughly every N commits (0 = only recover, never
///       compact).
///
/// Exit status: 0 on success, 1 on any error (message on stderr).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "eval/evaluator.h"
#include "graph/graph_io.h"
#include "io/snapshot.h"
#include "serve/frontend.h"
#include "serve/ingest_service.h"
#include "shard/shard_router.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/tsv.h"
#include "wal/wal.h"

using namespace iuad;

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "iuad: %s\n", msg.c_str());
  return 1;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  iuad generate <out.tsv> [--papers N] [--seed S]\n"
               "  iuad run <papers.tsv> [--eta N] [--delta X] [--threads T]\n"
               "           [--shards S] [--graph out_graph.tsv]"
               " [--clusters out.tsv]\n"
               "           [--save-snapshot out.snap]\n"
               "  iuad evaluate <papers.tsv> [--eta N] [--delta X]"
               " [--threads T] [--shards S]\n"
               "  iuad serve <papers.tsv> --load-snapshot in.snap"
               " [--stream new.tsv]\n"
               "           [--shards S] [--producers N] [--queue C]"
               " [--window W]\n"
               "           [--pipeline-depth D]"
               " [--name \"A. Name\"] [--port P | --stdio]"
               " [--workers W]\n"
               "           [--max-batch B]"
               " [--save-snapshot-on-stop out.snap]\n"
               "           [--save-corpus out.tsv]"
               " [--metrics-port P] [--stats-interval S]\n"
               "           [--slow-commit-ms M] [--no-metrics]\n"
               "           [--trace-out out.json] [--no-trace]\n"
               "           [--wal-dir DIR] [--wal-fsync-every N]"
               " [--wal-fsync-ms M]\n"
               "           [--wal-checkpoint-every N]\n"
               "(--threads 0 = all hardware threads; output is identical at"
               " any T.\n"
               " --shards on run/evaluate: word2vec training shards, 0 ="
               " auto by corpus\n"
               " size — part of the training schedule, so changing it"
               " changes embeddings;\n"
               " changing --threads never does. --shards on serve:"
               " name-block serving\n"
               " shards — ingestion assignments are identical at any shard"
               " or\n"
               " --producers count.)\n");
}

/// Tiny flag parser after the positional arguments: `--key value` pairs
/// plus valueless switches (`--stdio`) — a `--key` directly followed by
/// another `--flag` (or by nothing) maps to the empty string.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      flags[argv[i] + 2] = "";
    }
  }
  return flags;
}

int CmdGenerate(const std::string& out,
                const std::map<std::string, std::string>& flags) {
  data::CorpusConfig cfg;
  cfg.num_papers = 10000;
  if (auto it = flags.find("papers"); it != flags.end()) {
    cfg.num_papers = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    cfg.seed = static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  // Hold DBLP-like density at any requested scale (cf. bench_common.h).
  const int authors = std::max(400, cfg.num_papers / 5);
  cfg.num_communities = std::max(4, authors / cfg.authors_per_community);
  const double scale = static_cast<double>(authors) / 960.0;
  cfg.given_name_pool = static_cast<int>(180 * scale);
  cfg.surname_pool = static_cast<int>(140 * scale);
  cfg.name_zipf = 0.7;

  auto corpus = data::CorpusGenerator(cfg).Generate();
  iuad::Status st = corpus.db.SaveTsv(out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %d papers (%zu names, %zu ambiguous) to %s\n",
              corpus.db.num_papers(), corpus.db.names().size(),
              corpus.AmbiguousNames(2).size(), out.c_str());
  return 0;
}

core::IuadConfig ConfigFromFlags(
    const std::map<std::string, std::string>& flags) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 24;
  if (auto it = flags.find("eta"); it != flags.end()) {
    cfg.eta = std::atoll(it->second.c_str());
  }
  if (auto it = flags.find("delta"); it != flags.end()) {
    cfg.delta = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("threads"); it != flags.end()) {
    cfg.num_threads = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("shards"); it != flags.end()) {
    cfg.word2vec.num_shards = std::atoi(it->second.c_str());
  }
  return cfg;
}

int CmdRun(const std::string& in,
           const std::map<std::string, std::string>& flags) {
  auto db = data::PaperDatabase::LoadTsv(in);
  if (!db.ok()) return Fail(db.status().ToString());
  core::IuadConfig cfg = ConfigFromFlags(flags);
  if (auto it = flags.find("save-snapshot"); it != flags.end()) {
    // Through the config so Validate() vets it with everything else.
    cfg.persist_snapshot = true;
    cfg.snapshot_path = it->second;
  }
  core::IuadPipeline pipeline(cfg);
  iuad::Stopwatch sw;
  auto result = pipeline.Run(*db);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf(
      "reconstructed %d papers in %.1fs: %d author vertices, %d edges, "
      "%ld stable relations, %ld merges\n",
      db->num_papers(), sw.ElapsedSeconds(), result->graph.num_alive(),
      result->graph.num_edges(),
      static_cast<long>(result->scn_stats.num_scrs),
      static_cast<long>(result->gcn_stats.merges));

  if (cfg.persist_snapshot) {
    iuad::Status st = io::SaveSnapshot(cfg.snapshot_path, *db, *result, cfg);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote snapshot to %s (reload with: iuad serve %s "
                "--load-snapshot %s)\n",
                cfg.snapshot_path.c_str(), in.c_str(),
                cfg.snapshot_path.c_str());
  }
  if (auto it = flags.find("graph"); it != flags.end()) {
    iuad::Status st = graph::SaveGraphTsv(result->graph, it->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote network to %s\n", it->second.c_str());
  }
  if (auto it = flags.find("clusters"); it != flags.end()) {
    // One row per byline occurrence: paper id, name, author-vertex id.
    std::vector<TsvRow> rows;
    for (const auto& p : db->papers()) {
      for (const auto& name : p.author_names) {
        rows.push_back({std::to_string(p.id), name,
                        std::to_string(result->occurrences.Lookup(p.id, name))});
      }
    }
    iuad::Status st = WriteTsvFile(it->second, rows);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %zu occurrence attributions to %s\n", rows.size(),
                it->second.c_str());
  }
  return 0;
}

int CmdEvaluate(const std::string& in,
                const std::map<std::string, std::string>& flags) {
  auto db = data::PaperDatabase::LoadTsv(in);
  if (!db.ok()) return Fail(db.status().ToString());
  // Ambiguous names by ground truth.
  std::map<std::string, std::set<data::AuthorId>> authors_of;
  for (const auto& p : db->papers()) {
    for (size_t i = 0;
         i < p.author_names.size() && i < p.true_author_ids.size(); ++i) {
      if (p.true_author_ids[i] != data::kUnknownAuthor) {
        authors_of[p.author_names[i]].insert(p.true_author_ids[i]);
      }
    }
  }
  std::vector<std::string> names;
  for (const auto& [name, ids] : authors_of) {
    if (ids.size() >= 2 && db->PapersWithName(name).size() <= 120) {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    return Fail("no ambiguous ground-truth names in " + in +
                " (did you generate with labels?)");
  }
  core::IuadPipeline pipeline(ConfigFromFlags(flags));
  auto result = pipeline.Run(*db);
  if (!result.ok()) return Fail(result.status().ToString());
  auto m = eval::EvaluateOccurrences(*db, result->occurrences, names);
  std::printf("%zu test names: %s\n", names.size(),
              eval::FormatMetrics(m).c_str());
  return 0;
}

/// The one stats printer: the unified serve::ServiceStats covers every
/// front end — the per-shard breakdown is simply empty when unsharded.
/// Every key is spelled exactly as in the NDJSON stats payload
/// (api/codec.h), so a grep written against either surface works on both.
void PrintServiceStats(std::FILE* info, const serve::ServiceStats& stats) {
  std::fprintf(
      info,
      "service stats: epoch=%ld papers_applied=%ld assignments=%ld "
      "new_authors=%ld alive_vertices=%d edges=%d queued_now=%d "
      "reorder_held=%d queue_capacity=%d rss_mb=%.1f uptime_seconds=%.0f\n",
      static_cast<long>(stats.epoch), static_cast<long>(stats.papers_applied),
      static_cast<long>(stats.assignments),
      static_cast<long>(stats.new_authors), stats.num_alive_vertices,
      stats.num_edges, stats.queued_now, stats.reorder_held,
      stats.queue_capacity, stats.rss_mb, stats.uptime_seconds);
  if (stats.pipeline_depth > 1) {
    std::fprintf(
        info,
        "  pipeline_depth=%d pipeline_windows=%ld pipeline_occupancy=%.2f "
        "conflict_stalls=%ld speculative_rescores=%ld\n",
        stats.pipeline_depth, static_cast<long>(stats.pipeline_windows),
        stats.pipeline_occupancy, static_cast<long>(stats.conflict_stalls),
        static_cast<long>(stats.speculative_rescores));
  }
  // Durability line, present whenever the WAL has done anything (all zeros
  // and age -1 mean serving without --wal-dir). Keys match the NDJSON
  // stats payload exactly, like everything else here.
  if (stats.wal_appended > 0 || stats.wal_fsyncs > 0 ||
      stats.recovery_replayed > 0 || stats.wal_last_checkpoint_seq > 0 ||
      stats.wal_last_checkpoint_age_s >= 0.0) {
    std::fprintf(
        info,
        "  wal_appended=%ld wal_fsyncs=%ld wal_bytes=%ld "
        "recovery_replayed=%ld wal_last_checkpoint_seq=%ld "
        "wal_last_checkpoint_age_s=%.0f wal_fsync_wait_us_p99=%.0f\n",
        static_cast<long>(stats.wal_appended),
        static_cast<long>(stats.wal_fsyncs),
        static_cast<long>(stats.wal_bytes),
        static_cast<long>(stats.recovery_replayed),
        static_cast<long>(stats.wal_last_checkpoint_seq),
        stats.wal_last_checkpoint_age_s, stats.wal_fsync_wait_us_p99);
  }
  for (const obs::SlowCommitExemplar& e : stats.slow_commits) {
    std::fprintf(info, "  slow_commit seq=%ld total_ns=%ld",
                 static_cast<long>(e.seq), static_cast<long>(e.total_ns));
    for (const auto& stage : e.stages) {
      std::fprintf(info, " %s=%ldns", stage.name.c_str(),
                   static_cast<long>(stage.ns));
    }
    for (const auto& d : e.deferrals) {
      std::fprintf(info, " deferred:%s<-seq=%ld", d.name.c_str(),
                   static_cast<long>(d.blocked_by_seq));
    }
    std::fprintf(info, "\n");
  }
  for (const auto& s : stats.shards) {
    std::fprintf(
        info,
        "  shard=%d owned_blocks=%ld placement_weight=%ld "
        "bylines_scored=%ld assignments=%ld new_authors=%ld\n",
        s.shard, static_cast<long>(s.owned_blocks),
        static_cast<long>(s.placement_weight),
        static_cast<long>(s.bylines_scored), static_cast<long>(s.assignments),
        static_cast<long>(s.new_authors));
  }
}

/// --stats-interval worker: dumps the unified service stats (plus commit
/// latency percentiles once anything committed) to stderr every interval
/// until stopped — liveness for long-running serves with no scraper
/// attached. Reads only published views and the metrics registry, so it
/// never perturbs ingestion.
class StatsDumper {
 public:
  StatsDumper(serve::Frontend* service, double interval_s)
      : service_(service),
        interval_s_(interval_s),
        thread_([this] { Loop(); }) {}

  ~StatsDumper() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                       [&] { return stopping_; })) {
        return;
      }
      lock.unlock();
      Dump();
      lock.lock();
    }
  }

  void Dump() {
    PrintServiceStats(stderr, service_->Stats());
    const obs::RegistrySnapshot snap = service_->Metrics()->Snapshot();
    for (const obs::HistogramSnapshot& h : snap.histograms) {
      if (h.name != "commit_latency_us" || h.count == 0) continue;
      std::fprintf(stderr,
                   "  commit latency: n=%ld p50=%.0fus p90=%.0fus "
                   "p99=%.0fus max=%.0fus\n",
                   static_cast<long>(h.count), h.PercentileUs(50),
                   h.PercentileUs(90), h.PercentileUs(99), h.MaxUs());
    }
    std::fflush(stderr);
  }

  serve::Frontend* service_;
  const double interval_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

std::atomic<bool> g_interrupted{false};

void OnTerminateSignal(int) { g_interrupted = true; }

/// Runs the TCP API server until SIGINT/SIGTERM, then shuts it down
/// gracefully (drain, not drop).
int RunTcpServer(serve::Frontend& service, const core::IuadConfig& cfg) {
  api::ServerOptions options;
  options.port = cfg.api_port;
  options.num_workers = cfg.api_num_workers;
  options.max_batch = cfg.api_max_batch;
  options.metrics_enabled = cfg.metrics_enabled;
  options.trace_enabled = cfg.trace_enabled;
  api::Server server(&service, options);
  if (iuad::Status st = server.Start(); !st.ok()) return Fail(st.ToString());
  std::printf("query API listening on port %d (%d workers) — "
              "newline-delimited JSON; Ctrl-C to drain and stop\n",
              server.port(), util::ResolveNumThreads(cfg.api_num_workers));
  std::fflush(stdout);
  struct sigaction action {};
  action.sa_handler = OnTerminateSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Block the shutdown signals while testing the flag: a signal landing
  // between the check and the wait would otherwise be consumed before
  // sigsuspend starts and the first Ctrl-C would hang until a second one.
  // sigsuspend atomically restores the old mask for the wait itself.
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigprocmask(SIG_BLOCK, &block, &old);
  while (!g_interrupted) sigsuspend(&old);
  sigprocmask(SIG_SETMASK, &old, nullptr);
  std::printf("\ndraining and shutting down the query API\n");
  server.Shutdown();
  return 0;
}

/// The serve loop over any front end through the one serve::Frontend
/// interface: stream ingestion, the networked/stdio query API, stats,
/// lookup, stop, and the optional shutdown checkpoint of the
/// post-ingestion state.
/// `seq_base` is the first free ingestion sequence: 0 on a fresh serve,
/// the replayed-tail length after WAL recovery (replay occupied the
/// sequences below it, and --stream pins papers by sequence).
int DriveService(serve::Frontend& service, data::PaperDatabase* db,
                 core::DisambiguationResult* result,
                 const core::IuadConfig& cfg,
                 const std::map<std::string, std::string>& flags,
                 int producers, uint64_t seq_base) {
  // In stdio mode stdout carries protocol lines only; everything
  // informational goes to stderr so scripted clients see pure NDJSON.
  std::FILE* info = flags.count("stdio") > 0 ? stderr : stdout;

  // Observability side-doors, up before any ingestion so scrapes and dumps
  // cover the whole session. Both read the frontend's registry / published
  // views only — they cannot affect assignments (DESIGN.md §7).
  obs::MetricsServer metrics_server(service.Metrics());
  if (cfg.metrics_port >= 0) {
    if (iuad::Status st = metrics_server.Start(cfg.metrics_port); !st.ok()) {
      return Fail(st.ToString());
    }
    std::fprintf(info, "metrics exposition listening on port %d\n",
                 metrics_server.bound_port());
    std::fflush(info);
  }
  std::unique_ptr<StatsDumper> stats_dumper;
  if (cfg.stats_interval_s > 0.0) {
    stats_dumper = std::make_unique<StatsDumper>(&service,
                                                 cfg.stats_interval_s);
  }

  if (auto it = flags.find("stream"); it != flags.end()) {
    auto stream_db = data::PaperDatabase::LoadTsv(it->second);
    if (!stream_db.ok()) return Fail(stream_db.status().ToString());
    const std::vector<data::Paper> stream = stream_db->papers();
    std::vector<std::future<serve::Frontend::Assignments>> futures(
        stream.size());
    iuad::Stopwatch sw;
    // Producers race over a shared index; SubmitAt pins each paper to its
    // stream position, so the ingestion order (and thus every assignment)
    // is the stream order at any producer count.
    std::atomic<size_t> next{0};
    auto producer = [&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        futures[i] = service.SubmitAt(seq_base + i, stream[i]);
      }
    };
    std::vector<std::thread> threads;
    for (int t = 1; t < producers; ++t) threads.emplace_back(producer);
    producer();
    for (auto& t : threads) t.join();
    service.Drain();
    const double seconds = sw.ElapsedSeconds();
    int64_t occurrences = 0, new_authors = 0, failed = 0;
    for (auto& f : futures) {
      auto r = f.get();
      if (!r.ok()) {
        ++failed;
        continue;
      }
      occurrences += static_cast<int64_t>(r->size());
      for (const auto& a : *r) new_authors += a.created_new ? 1 : 0;
    }
    std::fprintf(
        info,
        "ingested %zu papers (%ld occurrences, %ld new authors, %ld failed) "
        "from %d producers in %.2fs — %.1f papers/s, %.2f ms/paper\n",
        stream.size(), static_cast<long>(occurrences),
        static_cast<long>(new_authors), static_cast<long>(failed), producers,
        seconds, stream.empty() ? 0.0 : stream.size() / seconds,
        stream.empty() ? 0.0 : 1e3 * seconds / stream.size());
  }

  // The query/ingest API, over the same dispatcher for both transports.
  if (flags.count("stdio") > 0) {
    api::Dispatcher dispatcher(
        &service, api::Dispatcher::Options{cfg.api_max_batch, {},
                                           cfg.metrics_enabled,
                                           cfg.trace_enabled});
    dispatcher.ServeStream(std::cin, std::cout);
    service.Drain();  // every paper the session admitted is applied
  } else if (flags.count("port") > 0) {
    if (int rc = RunTcpServer(service, cfg); rc != 0) return rc;
  }

  if (stats_dumper) stats_dumper->Stop();
  metrics_server.Shutdown();

  PrintServiceStats(info, service.Stats());
  if (auto it = flags.find("name"); it != flags.end()) {
    const auto records = service.AuthorsByName(it->second);
    std::fprintf(info, "\"%s\": %zu author candidate(s)\n",
                 it->second.c_str(), records.size());
    for (const auto& rec : records) {
      const auto papers = service.PublicationsOf(rec.vertex);
      std::fprintf(info, "  vertex %d: %d papers (ids", rec.vertex,
                   rec.num_papers);
      for (size_t i = 0; i < papers.size() && i < 8; ++i) {
        std::fprintf(info, " %d", papers[i]);
      }
      std::fprintf(info, papers.size() > 8 ? " ...)\n" : ")\n");
    }
  }
  service.Stop();  // returns db/result ownership to this thread, drained

  if (!cfg.trace_out.empty()) {
    // Drained after Stop(), so the file covers the whole session up to the
    // ring capacity (overwrite-oldest; obs/trace.h).
    const std::vector<obs::TraceEvent> events =
        obs::FlightRecorder::Instance().Drain();
    const std::string json =
        obs::ChromeTraceJson(obs::ChromeTraceEvents(events));
    std::ofstream trace_file(cfg.trace_out,
                             std::ios::binary | std::ios::trunc);
    trace_file << json;
    if (!trace_file) {
      return Fail("failed to write trace to " + cfg.trace_out);
    }
    std::fprintf(info, "wrote trace (%zu events) to %s\n", events.size(),
                 cfg.trace_out.c_str());
  }

  if (auto it = flags.find("save-corpus"); it != flags.end()) {
    iuad::Status st = db->SaveTsv(it->second);
    if (!st.ok()) return Fail(st.ToString());
    std::fprintf(info, "wrote post-ingestion corpus (%d papers) to %s\n",
                 db->num_papers(), it->second.c_str());
  }
  if (auto it = flags.find("save-snapshot-on-stop"); it != flags.end()) {
    iuad::Status st = io::SaveSnapshot(it->second, *db, *result, cfg);
    if (!st.ok()) return Fail(st.ToString());
    std::fprintf(
        info,
        "wrote post-ingestion snapshot to %s (reload next to the "
        "post-ingestion corpus; see --save-corpus)\n",
        it->second.c_str());
  }
  return 0;
}

int CmdServe(const std::string& in,
             const std::map<std::string, std::string>& flags) {
  auto snap_it = flags.find("load-snapshot");
  if (snap_it == flags.end()) {
    return Fail("serve requires --load-snapshot <path>");
  }
  auto db = data::PaperDatabase::LoadTsv(in);
  if (!db.ok()) return Fail(db.status().ToString());

  // Durability: open (or initialize) the WAL directory BEFORE loading the
  // snapshot — a previous session's checkpoint redirects the load, and the
  // manifest's base fingerprint must be checked against the CLI corpus
  // either way (serving a WAL against the wrong corpus is refused, not
  // silently merged).
  std::unique_ptr<wal::Log> wal_log;
  wal::Options wal_opts;
  std::string wal_dir;
  if (auto it = flags.find("wal-dir"); it != flags.end() &&
                                       !it->second.empty()) {
    wal_dir = it->second;
    if (auto f = flags.find("wal-fsync-every"); f != flags.end()) {
      wal_opts.fsync_every_n = std::atoi(f->second.c_str());
    }
    if (auto f = flags.find("wal-fsync-ms"); f != flags.end()) {
      wal_opts.fsync_interval_ms = std::atof(f->second.c_str());
    }
    auto opened = wal::Log::Open(wal_dir, db->Fingerprint(), wal_opts);
    if (!opened.ok()) return Fail(opened.status().ToString());
    wal_log = std::move(*opened);
  }

  iuad::Stopwatch load_sw;
  std::string snap_path = snap_it->second;
  if (wal_log != nullptr && wal_log->has_checkpoint()) {
    // Recovery, step 1: the checkpoint pair supersedes the CLI corpus +
    // snapshot (it IS that state plus every compacted commit).
    auto ckpt_db =
        data::PaperDatabase::LoadTsv(wal_log->checkpoint_corpus_path());
    if (!ckpt_db.ok()) return Fail(ckpt_db.status().ToString());
    db = std::move(ckpt_db);
    snap_path = wal_log->checkpoint_snapshot_path();
  }
  auto snap = io::LoadSnapshot(snap_path, *db);
  if (!snap.ok()) return Fail(snap.status().ToString());
  core::IuadConfig cfg = std::move(snap->config);
  cfg.wal_dir = wal_dir;
  cfg.wal_fsync_every_n = wal_opts.fsync_every_n;
  cfg.wal_fsync_interval_ms = wal_opts.fsync_interval_ms;
  if (auto it = flags.find("wal-checkpoint-every"); it != flags.end()) {
    cfg.wal_checkpoint_every_n = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("queue"); it != flags.end()) {
    cfg.ingest_queue_capacity = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("window"); it != flags.end()) {
    cfg.ingest_refresh_window = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("shards"); it != flags.end()) {
    cfg.num_shards = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("pipeline-depth"); it != flags.end()) {
    cfg.pipeline_depth = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("port"); it != flags.end() && !it->second.empty()) {
    cfg.api_port = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("workers"); it != flags.end()) {
    cfg.api_num_workers = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("max-batch"); it != flags.end()) {
    cfg.api_max_batch = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("metrics-port");
      it != flags.end() && !it->second.empty()) {
    cfg.metrics_port = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("stats-interval"); it != flags.end()) {
    cfg.stats_interval_s = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("slow-commit-ms"); it != flags.end()) {
    cfg.slow_commit_ms = std::atof(it->second.c_str());
  }
  if (flags.count("no-metrics") > 0) cfg.metrics_enabled = false;
  if (auto it = flags.find("trace-out");
      it != flags.end() && !it->second.empty()) {
    cfg.trace_out = it->second;
  }
  if (flags.count("no-trace") > 0) cfg.trace_enabled = false;
  if (iuad::Status st = cfg.Validate(); !st.ok()) return Fail(st.ToString());
  // Ring capacity must be set before anything touches the recorder
  // singleton; the crash handler is armed only when a dump path exists.
  obs::FlightRecorder::SetDefaultRingCapacity(cfg.trace_ring_capacity);
  if (!cfg.trace_out.empty()) {
    obs::InstallCrashHandler(cfg.trace_out + ".crash");
  }
  std::FILE* info = flags.count("stdio") > 0 ? stderr : stdout;
  std::fprintf(
      info,
      "loaded snapshot %s in %.0f ms: %d author vertices, %d edges, model %s\n",
      snap_it->second.c_str(), load_sw.ElapsedSeconds() * 1e3,
      snap->result.graph.num_alive(), snap->result.graph.num_edges(),
      snap->result.model ? "fitted" : "absent (SCN-only)");

  int producers = 1;
  if (auto it = flags.find("producers"); it != flags.end()) {
    producers = util::ResolveNumThreads(std::atoi(it->second.c_str()));
  }

  // One code path over the serving interface: the topology choice is the
  // only branch, and everything downstream sees a serve::Frontend.
  std::unique_ptr<serve::Frontend> service;
  if (cfg.num_shards > 1) {
    std::fprintf(info,
                 "sharded serving: %d name-block shards (%s placement)\n",
                cfg.num_shards,
                cfg.shard_placement == core::ShardPlacement::kHash
                    ? "hash"
                    : "size-aware");
    service = std::make_unique<shard::ShardRouter>(&*db, &snap->result, cfg,
                                                   wal_log.get());
  } else {
    service = std::make_unique<serve::IngestService>(&*db, &snap->result,
                                                     cfg, wal_log.get());
  }

  // Recovery, step 2: replay the durable log tail through the normal
  // submission path before any traffic — the recovered state is then
  // bit-identical to the pre-crash state (DESIGN.md §9).
  uint64_t seq_base = 0;
  if (wal_log != nullptr) {
    iuad::Stopwatch replay_sw;
    auto replayed = wal::ReplayTail(*wal_log, service.get());
    if (!replayed.ok()) return Fail(replayed.status().ToString());
    seq_base = *replayed;
    if (wal_log->has_checkpoint() || *replayed > 0) {
      std::fprintf(info,
                   "WAL recovery: checkpoint seq=%llu + %llu replayed log "
                   "records in %.0f ms (next seq %llu)\n",
                   static_cast<unsigned long long>(wal_log->snapshot_seq()),
                   static_cast<unsigned long long>(*replayed),
                   replay_sw.ElapsedSeconds() * 1e3,
                   static_cast<unsigned long long>(wal_log->durable_next()));
    } else {
      std::fprintf(info, "WAL enabled at %s (fresh log)\n",
                   wal_dir.c_str());
    }
    std::fflush(info);
  }
  return DriveService(*service, &*db, &snap->result, cfg, flags, producers,
                      seq_base);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  auto flags = ParseFlags(argc, argv, 3);
  if (cmd == "generate") return CmdGenerate(path, flags);
  if (cmd == "run") return CmdRun(path, flags);
  if (cmd == "evaluate") return CmdEvaluate(path, flags);
  if (cmd == "serve") return CmdServe(path, flags);
  Usage();
  return 1;
}
