/// `iuad` — command-line front end for the library.
///
/// Subcommands:
///   iuad generate <out.tsv> [--papers N] [--seed S]
///       Emit a synthetic labeled corpus (the DBLP stand-in) as a paper TSV.
///   iuad run <papers.tsv> [--eta N] [--delta X] [--graph out_graph.tsv]
///            [--clusters out_clusters.tsv]
///       Reconstruct the collaboration network; optionally persist the
///       network and the per-occurrence author attribution.
///   iuad evaluate <papers.tsv>
///       Run the pipeline and score it against the TSV's ground-truth
///       column (pairwise micro metrics over ambiguous names).
///
/// Exit status: 0 on success, 1 on any error (message on stderr).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/corpus_generator.h"
#include "eval/evaluator.h"
#include "graph/graph_io.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/tsv.h"

using namespace iuad;

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "iuad: %s\n", msg.c_str());
  return 1;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  iuad generate <out.tsv> [--papers N] [--seed S]\n"
               "  iuad run <papers.tsv> [--eta N] [--delta X] [--threads T]\n"
               "           [--shards S] [--graph out_graph.tsv]"
               " [--clusters out.tsv]\n"
               "  iuad evaluate <papers.tsv> [--eta N] [--delta X]"
               " [--threads T] [--shards S]\n"
               "(--threads 0 = all hardware threads; output is identical at"
               " any T.\n"
               " --shards: word2vec training shards, 0 = auto by corpus"
               " size — part of\n"
               " the training schedule, so changing it changes embeddings;"
               " changing\n"
               " --threads never does)\n");
}

/// Tiny flag parser: --key value pairs after the positional arguments.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

int CmdGenerate(const std::string& out,
                const std::map<std::string, std::string>& flags) {
  data::CorpusConfig cfg;
  cfg.num_papers = 10000;
  if (auto it = flags.find("papers"); it != flags.end()) {
    cfg.num_papers = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    cfg.seed = static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  // Hold DBLP-like density at any requested scale (cf. bench_common.h).
  const int authors = std::max(400, cfg.num_papers / 5);
  cfg.num_communities = std::max(4, authors / cfg.authors_per_community);
  const double scale = static_cast<double>(authors) / 960.0;
  cfg.given_name_pool = static_cast<int>(180 * scale);
  cfg.surname_pool = static_cast<int>(140 * scale);
  cfg.name_zipf = 0.7;

  auto corpus = data::CorpusGenerator(cfg).Generate();
  iuad::Status st = corpus.db.SaveTsv(out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %d papers (%zu names, %zu ambiguous) to %s\n",
              corpus.db.num_papers(), corpus.db.names().size(),
              corpus.AmbiguousNames(2).size(), out.c_str());
  return 0;
}

core::IuadConfig ConfigFromFlags(
    const std::map<std::string, std::string>& flags) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 24;
  if (auto it = flags.find("eta"); it != flags.end()) {
    cfg.eta = std::atoll(it->second.c_str());
  }
  if (auto it = flags.find("delta"); it != flags.end()) {
    cfg.delta = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("threads"); it != flags.end()) {
    cfg.num_threads = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("shards"); it != flags.end()) {
    cfg.word2vec.num_shards = std::atoi(it->second.c_str());
  }
  return cfg;
}

int CmdRun(const std::string& in,
           const std::map<std::string, std::string>& flags) {
  auto db = data::PaperDatabase::LoadTsv(in);
  if (!db.ok()) return Fail(db.status().ToString());
  core::IuadConfig cfg = ConfigFromFlags(flags);
  core::IuadPipeline pipeline(cfg);
  iuad::Stopwatch sw;
  auto result = pipeline.Run(*db);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf(
      "reconstructed %d papers in %.1fs: %d author vertices, %d edges, "
      "%ld stable relations, %ld merges\n",
      db->num_papers(), sw.ElapsedSeconds(), result->graph.num_alive(),
      result->graph.num_edges(),
      static_cast<long>(result->scn_stats.num_scrs),
      static_cast<long>(result->gcn_stats.merges));

  if (auto it = flags.find("graph"); it != flags.end()) {
    iuad::Status st = graph::SaveGraphTsv(result->graph, it->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote network to %s\n", it->second.c_str());
  }
  if (auto it = flags.find("clusters"); it != flags.end()) {
    // One row per byline occurrence: paper id, name, author-vertex id.
    std::vector<TsvRow> rows;
    for (const auto& p : db->papers()) {
      for (const auto& name : p.author_names) {
        rows.push_back({std::to_string(p.id), name,
                        std::to_string(result->occurrences.Lookup(p.id, name))});
      }
    }
    iuad::Status st = WriteTsvFile(it->second, rows);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %zu occurrence attributions to %s\n", rows.size(),
                it->second.c_str());
  }
  return 0;
}

int CmdEvaluate(const std::string& in,
                const std::map<std::string, std::string>& flags) {
  auto db = data::PaperDatabase::LoadTsv(in);
  if (!db.ok()) return Fail(db.status().ToString());
  // Ambiguous names by ground truth.
  std::map<std::string, std::set<data::AuthorId>> authors_of;
  for (const auto& p : db->papers()) {
    for (size_t i = 0;
         i < p.author_names.size() && i < p.true_author_ids.size(); ++i) {
      if (p.true_author_ids[i] != data::kUnknownAuthor) {
        authors_of[p.author_names[i]].insert(p.true_author_ids[i]);
      }
    }
  }
  std::vector<std::string> names;
  for (const auto& [name, ids] : authors_of) {
    if (ids.size() >= 2 && db->PapersWithName(name).size() <= 120) {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    return Fail("no ambiguous ground-truth names in " + in +
                " (did you generate with labels?)");
  }
  core::IuadPipeline pipeline(ConfigFromFlags(flags));
  auto result = pipeline.Run(*db);
  if (!result.ok()) return Fail(result.status().ToString());
  auto m = eval::EvaluateOccurrences(*db, result->occurrences, names);
  std::printf("%zu test names: %s\n", names.size(),
              eval::FormatMetrics(m).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  auto flags = ParseFlags(argc, argv, 3);
  if (cmd == "generate") return CmdGenerate(path, flags);
  if (cmd == "run") return CmdRun(path, flags);
  if (cmd == "evaluate") return CmdEvaluate(path, flags);
  Usage();
  return 1;
}
