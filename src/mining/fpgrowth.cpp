#include "mining/fpgrowth.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <unordered_map>

#include "util/thread_pool.h"

namespace iuad::mining {

void SortItemsets(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

namespace {

/// One FP-tree node. Children are kept in a hash map keyed by item; a
/// node-link chains all nodes carrying the same item for header-table scans.
struct FpNode {
  Item item = -1;
  int64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;  // header-table chain
  std::unordered_map<Item, std::unique_ptr<FpNode>> children;
};

/// FP-tree with its header table. Items in paths are ordered by descending
/// global frequency (ties broken by item id) — the canonical FP-growth
/// ordering that maximizes prefix sharing.
class FpTree {
 public:
  explicit FpTree(std::unordered_map<Item, int64_t> item_counts)
      : item_counts_(std::move(item_counts)) {}

  /// Inserts a transaction (already filtered + sorted in tree order) with
  /// multiplicity `count`.
  void Insert(const std::vector<Item>& path, int64_t count) {
    FpNode* node = &root_;
    for (Item item : path) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        child->next_same_item = header_[item];
        header_[item] = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      node = it->second.get();
    }
  }

  /// Header-table chain for `item` (nullptr if absent).
  FpNode* HeaderOf(Item item) const {
    auto it = header_.find(item);
    return it == header_.end() ? nullptr : it->second;
  }

  /// Items present in the tree, in *ascending* global-frequency order: the
  /// bottom-up mining order of FP-growth.
  std::vector<Item> ItemsBottomUp() const {
    std::vector<Item> items;
    items.reserve(header_.size());
    for (const auto& [item, node] : header_) items.push_back(item);
    std::sort(items.begin(), items.end(), [this](Item a, Item b) {
      const int64_t ca = item_counts_.at(a), cb = item_counts_.at(b);
      if (ca != cb) return ca < cb;
      return a > b;
    });
    return items;
  }

  int64_t CountOf(Item item) const { return item_counts_.at(item); }
  bool empty() const { return header_.empty(); }

 private:
  FpNode root_;
  std::unordered_map<Item, FpNode*> header_;
  std::unordered_map<Item, int64_t> item_counts_;
};

/// Comparator producing the canonical FP path order (descending frequency).
struct TreeOrder {
  const std::unordered_map<Item, int64_t>* counts;
  bool operator()(Item a, Item b) const {
    const int64_t ca = counts->at(a), cb = counts->at(b);
    if (ca != cb) return ca > cb;
    return a < b;
  }
};

void Mine(const FpTree& tree, int64_t min_support, int max_size,
          std::vector<Item>* suffix, std::vector<FrequentItemset>* out);

/// One iteration of the FP-growth loop: emits {suffix ∪ item}, projects
/// item's conditional tree, and recurses into it. Reads `tree` only, so
/// distinct items of one tree may run concurrently (with private suffix
/// and out buffers).
void MineItem(const FpTree& tree, Item item, int64_t min_support, int max_size,
              std::vector<Item>* suffix, std::vector<FrequentItemset>* out) {
  const int64_t support = tree.CountOf(item);
  if (support < min_support) return;

  suffix->push_back(item);
  FrequentItemset fi;
  fi.items = *suffix;
  std::sort(fi.items.begin(), fi.items.end());
  fi.support = support;
  out->push_back(std::move(fi));

  if (max_size == 0 || static_cast<int>(suffix->size()) < max_size) {
    // Build the conditional pattern base of `item`: prefix paths with the
    // multiplicity of the item's node.
    std::unordered_map<Item, int64_t> cond_counts;
    std::vector<std::pair<std::vector<Item>, int64_t>> paths;
    for (const FpNode* node = tree.HeaderOf(item); node;
         node = node->next_same_item) {
      std::vector<Item> path;
      for (const FpNode* p = node->parent; p && p->item != -1; p = p->parent) {
        path.push_back(p->item);
      }
      if (path.empty()) continue;
      for (Item i : path) cond_counts[i] += node->count;
      paths.emplace_back(std::move(path), node->count);
    }
    // Prune conditionally-infrequent items, then build conditional tree.
    for (auto it = cond_counts.begin(); it != cond_counts.end();) {
      if (it->second < min_support) {
        it = cond_counts.erase(it);
      } else {
        ++it;
      }
    }
    if (!cond_counts.empty()) {
      FpTree cond_tree(cond_counts);
      TreeOrder order{&cond_counts};
      for (auto& [path, count] : paths) {
        std::vector<Item> filtered;
        for (Item i : path) {
          if (cond_counts.count(i)) filtered.push_back(i);
        }
        if (filtered.empty()) continue;
        std::sort(filtered.begin(), filtered.end(), order);
        cond_tree.Insert(filtered, count);
      }
      Mine(cond_tree, min_support, max_size, suffix, out);
    }
  }
  suffix->pop_back();
}

void Mine(const FpTree& tree, int64_t min_support, int max_size,
          std::vector<Item>* suffix, std::vector<FrequentItemset>* out) {
  if (max_size > 0 && static_cast<int>(suffix->size()) >= max_size) return;
  for (Item item : tree.ItemsBottomUp()) {
    MineItem(tree, item, min_support, max_size, suffix, out);
  }
}

}  // namespace

iuad::Result<std::vector<FrequentItemset>> FpGrowth(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options) {
  if (options.min_support < 1) {
    return iuad::Status::InvalidArgument("min_support must be >= 1");
  }
  if (options.max_itemset_size < 0) {
    return iuad::Status::InvalidArgument("max_itemset_size must be >= 0");
  }

  // Pass 1: global item counts (duplicates within a transaction collapse).
  std::unordered_map<Item, int64_t> counts;
  std::vector<Transaction> deduped;
  deduped.reserve(transactions.size());
  for (const auto& t : transactions) {
    Transaction u = t;
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    for (Item i : u) ++counts[i];
    deduped.push_back(std::move(u));
  }
  for (auto it = counts.begin(); it != counts.end();) {
    if (it->second < options.min_support) {
      it = counts.erase(it);
    } else {
      ++it;
    }
  }

  std::vector<FrequentItemset> out;
  if (counts.empty()) return out;

  // Pass 2: build the global FP-tree.
  FpTree tree(counts);
  TreeOrder order{&counts};
  for (auto& t : deduped) {
    std::vector<Item> filtered;
    for (Item i : t) {
      if (counts.count(i)) filtered.push_back(i);
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(), order);
    tree.Insert(filtered, 1);
  }

  // Mining phase. Every top-level projection reads the (now-frozen) global
  // tree independently, so they fan out across a pool; per-item buffers are
  // concatenated in bottom-up item order — exactly the sequence the serial
  // loop emits, byte-identical at any thread count.
  const std::vector<Item> items = tree.ItemsBottomUp();
  const int threads = std::min(util::ResolveNumThreads(options.num_threads),
                               static_cast<int>(items.size()));
  if (threads <= 1) {
    std::vector<Item> suffix;
    Mine(tree, options.min_support, options.max_itemset_size, &suffix, &out);
    return out;
  }
  std::vector<std::vector<FrequentItemset>> per_item(items.size());
  util::ThreadPool pool(threads);
  pool.ParallelFor(items.size(), [&](size_t i) {
    std::vector<Item> suffix;
    MineItem(tree, items[i], options.min_support, options.max_itemset_size,
             &suffix, &per_item[i]);
  });
  size_t total = 0;
  for (const auto& part : per_item) total += part.size();
  out.reserve(total);
  for (auto& part : per_item) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace iuad::mining
