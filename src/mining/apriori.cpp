#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace iuad::mining {

namespace {

/// True if `small` (sorted) is a subset of `big` (sorted).
bool IsSubset(const std::vector<Item>& small, const std::vector<Item>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

iuad::Result<std::vector<FrequentItemset>> Apriori(
    const std::vector<Transaction>& transactions, int64_t min_support,
    int max_itemset_size) {
  if (min_support < 1) {
    return iuad::Status::InvalidArgument("min_support must be >= 1");
  }

  std::vector<Transaction> deduped;
  deduped.reserve(transactions.size());
  for (const auto& t : transactions) {
    Transaction u = t;
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    deduped.push_back(std::move(u));
  }

  std::vector<FrequentItemset> out;

  // L1.
  std::unordered_map<Item, int64_t> counts;
  for (const auto& t : deduped) {
    for (Item i : t) ++counts[i];
  }
  std::vector<std::vector<Item>> current;  // frequent k-itemsets, sorted
  for (const auto& [item, c] : counts) {
    if (c >= min_support) {
      out.push_back({{item}, c});
      current.push_back({item});
    }
  }
  std::sort(current.begin(), current.end());

  int k = 1;
  while (!current.empty() &&
         (max_itemset_size == 0 || k < max_itemset_size)) {
    ++k;
    // Candidate generation: join two (k-1)-itemsets sharing a (k-2) prefix.
    std::vector<std::vector<Item>> candidates;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        const auto& a = current[i];
        const auto& b = current[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) break;
        std::vector<Item> cand = a;
        cand.push_back(b.back());
        // Prune: every (k-1)-subset must be frequent.
        bool ok = true;
        for (size_t drop = 0; ok && drop + 2 < cand.size(); ++drop) {
          std::vector<Item> sub;
          for (size_t x = 0; x < cand.size(); ++x) {
            if (x != drop) sub.push_back(cand[x]);
          }
          ok = std::binary_search(current.begin(), current.end(), sub);
        }
        if (ok) candidates.push_back(std::move(cand));
      }
    }
    if (candidates.empty()) break;

    // Support counting.
    std::map<std::vector<Item>, int64_t> cand_counts;
    for (const auto& t : deduped) {
      if (static_cast<int>(t.size()) < k) continue;
      for (const auto& cand : candidates) {
        if (IsSubset(cand, t)) ++cand_counts[cand];
      }
    }
    current.clear();
    for (const auto& [items, c] : cand_counts) {
      if (c >= min_support) {
        out.push_back({items, c});
        current.push_back(items);
      }
    }
    std::sort(current.begin(), current.end());
  }
  return out;
}

}  // namespace iuad::mining
