#include "mining/pair_miner.h"

#include <algorithm>

namespace iuad::mining {

void PairCounter::AddTransaction(const Transaction& t) {
  Transaction u = t;
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  for (size_t i = 0; i < u.size(); ++i) {
    for (size_t j = i + 1; j < u.size(); ++j) {
      ++counts_[PairKey(u[i], u[j])];
    }
  }
}

std::vector<FrequentItemset> PairCounter::FrequentPairs(
    int64_t min_support) const {
  std::vector<FrequentItemset> out;
  for (const auto& [key, count] : counts_) {
    if (count >= min_support) {
      out.push_back({{PairFirst(key), PairSecond(key)}, count});
    }
  }
  return out;
}

int64_t PairCounter::CountOf(Item a, Item b) const {
  if (a == b) return 0;
  if (a > b) std::swap(a, b);
  auto it = counts_.find(PairKey(a, b));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace iuad::mining
