#ifndef IUAD_MINING_FPGROWTH_H_
#define IUAD_MINING_FPGROWTH_H_

/// \file fpgrowth.h
/// FP-growth (Han, Pei & Yin, SIGMOD 2000): frequent-itemset mining without
/// candidate generation, via recursive conditional FP-trees. This is the
/// miner Algorithm 1 uses to find all η-SCRs; it is implemented in full
/// (arbitrary itemset length) even though SCN construction only consumes
/// 2-itemsets, because the stable-triangle inference (Sec. IV-C Step II) is
/// validated against mined 3-itemsets in the tests.

#include <cstdint>
#include <vector>

#include "mining/itemset.h"
#include "util/status.h"

namespace iuad::mining {

/// Options for a mining run.
struct FpGrowthOptions {
  int64_t min_support = 2;  ///< η: minimum co-occurrence count.
  int max_itemset_size = 0; ///< 0 = unbounded; 2 mines only pairs, etc.
  /// Worker threads for the mining phase (same convention as
  /// IuadConfig::num_threads: <= 0 = hardware concurrency, 1 = serial).
  /// The top-level conditional-tree projections — one per frequent item,
  /// independent read-only walks of the global FP-tree — fan out across a
  /// util::ThreadPool; each projection mines its conditional tree into a
  /// private buffer and buffers are concatenated in bottom-up item order,
  /// so the result sequence is byte-identical at any thread count.
  int num_threads = 1;
};

/// Mines all frequent itemsets of `transactions` with the given options.
/// Duplicate items inside one transaction are counted once (a name appears
/// at most once per byline). Returns itemsets with items sorted ascending;
/// result order is deterministic but unspecified (use SortItemsets for
/// canonical order) and does not vary with num_threads.
iuad::Result<std::vector<FrequentItemset>> FpGrowth(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options);

}  // namespace iuad::mining

#endif  // IUAD_MINING_FPGROWTH_H_
