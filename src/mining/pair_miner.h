#ifndef IUAD_MINING_PAIR_MINER_H_
#define IUAD_MINING_PAIR_MINER_H_

/// \file pair_miner.h
/// Specialized frequent-2-itemset counter. SCN construction only consumes
/// pairs (the triangles are *inferred* from pairs, Sec. IV-C), and bylines
/// are short, so direct pair counting is the fast path (Sec. V-F1 argues
/// SCN construction efficiency). Also exposes the raw pair-frequency
/// histogram behind Fig. 3b.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mining/itemset.h"

namespace iuad::mining {

/// Packs an ordered item pair (a < b) into one 64-bit key.
inline uint64_t PairKey(Item a, Item b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
inline Item PairFirst(uint64_t key) { return static_cast<Item>(key >> 32); }
inline Item PairSecond(uint64_t key) {
  return static_cast<Item>(key & 0xffffffffULL);
}

/// Streaming pair counter: feed transactions one at a time (used by the
/// incremental path) or in bulk.
class PairCounter {
 public:
  /// Counts every unordered item pair of `t` once (duplicates collapsed).
  void AddTransaction(const Transaction& t);

  void AddAll(const std::vector<Transaction>& ts) {
    for (const auto& t : ts) AddTransaction(t);
  }

  /// Pairs with count >= min_support, as FrequentItemsets (items sorted).
  std::vector<FrequentItemset> FrequentPairs(int64_t min_support) const;

  /// Raw counts (pair key -> co-occurrence count).
  const std::unordered_map<uint64_t, int64_t>& counts() const {
    return counts_;
  }

  /// Co-occurrence count of {a, b}; 0 if never seen together.
  int64_t CountOf(Item a, Item b) const;

 private:
  std::unordered_map<uint64_t, int64_t> counts_;
};

}  // namespace iuad::mining

#endif  // IUAD_MINING_PAIR_MINER_H_
