#ifndef IUAD_MINING_APRIORI_H_
#define IUAD_MINING_APRIORI_H_

/// \file apriori.h
/// Classic Apriori (Agrawal & Srikant, VLDB 1994) levelwise miner. Kept as a
/// simple, independently-implemented oracle against which FP-growth is
/// property-tested (both must return identical itemset sets on random
/// inputs), and as a readable reference implementation.

#include <vector>

#include "mining/itemset.h"
#include "util/status.h"

namespace iuad::mining {

/// Mines all frequent itemsets with support >= min_support. Exponential in
/// the worst case — intended for tests and small inputs.
iuad::Result<std::vector<FrequentItemset>> Apriori(
    const std::vector<Transaction>& transactions, int64_t min_support,
    int max_itemset_size = 0);

}  // namespace iuad::mining

#endif  // IUAD_MINING_APRIORI_H_
