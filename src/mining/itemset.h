#ifndef IUAD_MINING_ITEMSET_H_
#define IUAD_MINING_ITEMSET_H_

/// \file itemset.h
/// Shared types for frequent-itemset mining over co-author lists (Sec. IV-C
/// Step I mines all η-SCRs as frequent itemsets with support threshold η).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace iuad::mining {

/// Items are dense non-negative integers (encoded names).
using Item = int;
using Transaction = std::vector<Item>;

/// A frequent itemset and its support count.
struct FrequentItemset {
  std::vector<Item> items;  ///< Sorted ascending.
  int64_t support = 0;

  bool operator==(const FrequentItemset& other) const {
    return support == other.support && items == other.items;
  }
};

/// Bidirectional string <-> Item encoding, so miners work on ints while the
/// SCN layer speaks author names.
class ItemEncoder {
 public:
  /// Returns the id of `s`, creating one if unseen.
  Item Encode(const std::string& s) {
    auto [it, inserted] = index_.try_emplace(s, static_cast<Item>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  /// Returns the id of `s` or -1 if unseen (const lookup).
  Item Find(const std::string& s) const {
    auto it = index_.find(s);
    return it == index_.end() ? -1 : it->second;
  }

  const std::string& Decode(Item item) const {
    return strings_[static_cast<size_t>(item)];
  }

  int size() const { return static_cast<int>(strings_.size()); }

 private:
  std::unordered_map<std::string, Item> index_;
  std::vector<std::string> strings_;
};

/// Canonical ordering for result comparison in tests.
void SortItemsets(std::vector<FrequentItemset>* itemsets);

}  // namespace iuad::mining

#endif  // IUAD_MINING_ITEMSET_H_
