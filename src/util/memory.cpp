#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace iuad::util {

double CurrentRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

}  // namespace iuad::util
