#ifndef IUAD_UTIL_JSON_WRITER_H_
#define IUAD_UTIL_JSON_WRITER_H_

/// \file json_writer.h
/// Minimal pretty-printing JSON emitter for the BENCH_*.json convention
/// (see ROADMAP): benchmarks record machine-readable trajectories without
/// hand-rolled fprintf plumbing. Objects only (the convention nests objects
/// keyed by stage/config name); values are strings, integers, fixed-
/// precision doubles, and bools. Output is deterministic: fields appear in
/// call order with two-space indentation and a trailing newline.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace iuad::util {

class JsonWriter {
 public:
  /// Every document is one root object; nested objects open with the
  /// keyed overload.
  JsonWriter() { Open(""); }

  JsonWriter& BeginObject(const std::string& key) {
    Open(key);
    return *this;
  }

  JsonWriter& EndObject() {
    indent_ -= 2;
    out_ += '\n';
    out_.append(static_cast<size_t>(indent_), ' ');
    out_ += '}';
    open_.pop_back();
    return *this;
  }

  JsonWriter& Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ += Quote(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const std::string& key, int64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  JsonWriter& Field(const std::string& key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  /// Fixed-precision double (the BENCH files record seconds/speedups, where
  /// locale-independent fixed notation diffs cleanly between runs).
  JsonWriter& Field(const std::string& key, double value, int precision = 4) {
    Key(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    out_ += buf;
    return *this;
  }

  /// The finished document. Must be called with every nested object closed
  /// (the root is closed here).
  std::string str() const {
    std::string s = out_;
    s += "\n}\n";
    return s;
  }

  /// Writes str() to `path`, overwriting.
  iuad::Status WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return iuad::Status::IoError("cannot open " + path + " for writing");
    }
    const std::string s = str();
    const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
    if (std::fclose(f) != 0 || !ok) {
      return iuad::Status::IoError("short write to " + path);
    }
    return iuad::Status::OK();
  }

 private:
  void Open(const std::string& key) {
    if (!open_.empty()) Key(key);  // root opens bare, nested opens keyed
    out_ += '{';
    indent_ += 2;
    open_.push_back(true);  // next entry in this object is the first
  }

  /// Separator + indentation + quoted key for the next entry of the
  /// innermost open object.
  void Key(const std::string& key) {
    if (!open_.back()) out_ += ',';
    open_.back() = false;
    out_ += '\n';
    out_.append(static_cast<size_t>(indent_), ' ');
    out_ += Quote(key) + ": ";
  }

  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\t': q += "\\t"; break;
        case '\r': q += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            q += buf;
          } else {
            q += c;
          }
      }
    }
    q += '"';
    return q;
  }

  std::string out_;
  int indent_ = 0;
  std::vector<bool> open_;
};

}  // namespace iuad::util

#endif  // IUAD_UTIL_JSON_WRITER_H_
