#ifndef IUAD_UTIL_JSON_WRITER_H_
#define IUAD_UTIL_JSON_WRITER_H_

/// \file json_writer.h
/// Minimal deterministic JSON emitter, used two ways:
///
///  * Pretty style (the default): the BENCH_*.json convention (see ROADMAP)
///    — benchmarks record machine-readable trajectories with two-space
///    indentation, fields in call order, and a trailing newline.
///  * Compact style: the src/api newline-delimited wire protocol — no
///    whitespace at all, so one document is one line and encode→decode→
///    encode round-trips byte-identically (tests/api_test.cpp).
///
/// Every document is one root object. Values are strings, integers,
/// doubles (fixed precision for BENCH files, shortest-exact %.17g for the
/// wire), bools, arrays, and nested objects.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace iuad::util {

class JsonWriter {
 public:
  enum class Style {
    kPretty,   ///< Two-space indent, one field per line (BENCH files).
    kCompact,  ///< No whitespace; one document is one wire line (src/api).
  };

  /// Every document is one root object; nested objects open with the
  /// keyed BeginObject overload.
  explicit JsonWriter(Style style = Style::kPretty) : style_(style) {
    OpenContainer("", /*array=*/false, /*keyed=*/false);
  }

  // ---- Object members ------------------------------------------------------

  JsonWriter& BeginObject(const std::string& key) {
    OpenContainer(key, /*array=*/false, /*keyed=*/true);
    return *this;
  }

  JsonWriter& BeginArray(const std::string& key) {
    OpenContainer(key, /*array=*/true, /*keyed=*/true);
    return *this;
  }

  JsonWriter& Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ += Quote(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const std::string& key, int64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, uint64_t value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  JsonWriter& Field(const std::string& key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  /// Fixed-precision double (the BENCH files record seconds/speedups, where
  /// locale-independent fixed notation diffs cleanly between runs).
  JsonWriter& Field(const std::string& key, double value, int precision = 4) {
    Key(key);
    out_ += FormatFixed(value, precision);
    return *this;
  }
  /// Shortest-exact double: %.17g parses back to the identical bit pattern,
  /// which the wire codec's round-trip guarantee requires.
  JsonWriter& FieldExact(const std::string& key, double value) {
    Key(key);
    out_ += FormatExact(value);
    return *this;
  }

  // ---- Array elements ------------------------------------------------------

  JsonWriter& BeginObjectElement() {
    OpenContainer("", /*array=*/false, /*keyed=*/false);
    return *this;
  }
  JsonWriter& BeginArrayElement() {
    OpenContainer("", /*array=*/true, /*keyed=*/false);
    return *this;
  }
  JsonWriter& Element(const std::string& value) {
    Separate();
    out_ += Quote(value);
    return *this;
  }
  JsonWriter& Element(const char* value) {
    return Element(std::string(value));
  }
  JsonWriter& Element(int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Element(int value) { return Element(static_cast<int64_t>(value)); }
  JsonWriter& ElementExact(double value) {
    Separate();
    out_ += FormatExact(value);
    return *this;
  }

  // ---- Closing -------------------------------------------------------------

  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& EndArray() { return Close(']'); }

  /// The finished document. Must be called with every nested container
  /// closed (the root object is closed here).
  std::string str() const {
    std::string s = out_;
    if (style_ == Style::kPretty) {
      s += "\n}\n";
    } else {
      s += '}';
    }
    return s;
  }

  /// Writes str() to `path`, overwriting.
  iuad::Status WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return iuad::Status::IoError("cannot open " + path + " for writing");
    }
    const std::string s = str();
    const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
    if (std::fclose(f) != 0 || !ok) {
      return iuad::Status::IoError("short write to " + path);
    }
    return iuad::Status::OK();
  }

  /// JSON string quoting/escaping, shared with hand-rolled emitters.
  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\t': q += "\\t"; break;
        case '\r': q += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            q += buf;
          } else {
            q += c;
          }
      }
    }
    q += '"';
    return q;
  }

 private:
  struct Frame {
    bool array = false;
    bool first = true;
  };

  static std::string FormatFixed(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
  }
  static std::string FormatExact(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }

  void OpenContainer(const std::string& key, bool array, bool keyed) {
    if (!frames_.empty()) {
      if (keyed) {
        Key(key);
      } else {
        Separate();
      }
    }
    out_ += array ? '[' : '{';
    indent_ += 2;
    frames_.push_back(Frame{array, true});
  }

  JsonWriter& Close(char bracket) {
    indent_ -= 2;
    if (style_ == Style::kPretty && !frames_.back().first) {
      out_ += '\n';
      out_.append(static_cast<size_t>(indent_), ' ');
    }
    out_ += bracket;
    frames_.pop_back();
    return *this;
  }

  /// Separator + indentation + quoted key for the next entry of the
  /// innermost open object.
  void Key(const std::string& key) {
    Separate();
    out_ += Quote(key);
    out_ += style_ == Style::kPretty ? ": " : ":";
  }

  /// Separator + indentation for the next entry of the innermost open
  /// container (array element or object key).
  void Separate() {
    if (!frames_.back().first) out_ += ',';
    frames_.back().first = false;
    if (style_ == Style::kPretty) {
      out_ += '\n';
      out_.append(static_cast<size_t>(indent_), ' ');
    }
  }

  Style style_;
  std::string out_;
  int indent_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace iuad::util

#endif  // IUAD_UTIL_JSON_WRITER_H_
