#ifndef IUAD_UTIL_LOGGING_H_
#define IUAD_UTIL_LOGGING_H_

/// \file logging.h
/// Minimal leveled logger. Benches and examples use INFO; library internals
/// log at DEBUG and stay silent by default.
///
/// Each line carries `[<level> <monotonic seconds> t<thread> file:line]`
/// and is emitted with one write(2) call, so lines from concurrent
/// threads interleave whole — never sheared mid-text (pinned by
/// tests/util_test.cpp). Thread tags are small integers assigned in
/// first-log order, not pthread handles.

#include <sstream>
#include <string>

namespace iuad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal

#define IUAD_LOG(level)                                                  \
  if (::iuad::LogLevel::level < ::iuad::GetLogLevel()) {                 \
  } else                                                                 \
    ::iuad::internal::LogMessage(::iuad::LogLevel::level, __FILE__,      \
                                 __LINE__)                               \
        .stream()

/// Fatal-on-false invariant check (active in all build types).
#define IUAD_CHECK(cond)                                                  \
  if (cond) {                                                             \
  } else                                                                  \
    ::iuad::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace internal {

/// Prints the failed condition plus any streamed context, then aborts.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace iuad

#endif  // IUAD_UTIL_LOGGING_H_
