#ifndef IUAD_UTIL_TSV_H_
#define IUAD_UTIL_TSV_H_

/// \file tsv.h
/// Line-oriented TSV reading/writing: the on-disk interchange format for
/// paper records ("awkward text/record handling" is rebuilt here rather than
/// pulled from a parsing library). Fields never contain tabs or newlines by
/// construction; writers assert this.

#include <string>
#include <vector>

#include "util/status.h"

namespace iuad {

/// One parsed TSV row.
using TsvRow = std::vector<std::string>;

/// Reads all rows of a TSV file. Empty lines and lines starting with '#'
/// are skipped. Returns IoError if the file cannot be opened.
Result<std::vector<TsvRow>> ReadTsvFile(const std::string& path);

/// Parses TSV content already in memory (same skipping rules).
std::vector<TsvRow> ParseTsv(const std::string& content);

/// Writes rows to `path`. Returns InvalidArgument if any field contains a
/// tab or newline, IoError on filesystem failure.
Status WriteTsvFile(const std::string& path,
                    const std::vector<TsvRow>& rows);

}  // namespace iuad

#endif  // IUAD_UTIL_TSV_H_
