#ifndef IUAD_UTIL_STATUS_H_
#define IUAD_UTIL_STATUS_H_

/// \file status.h
/// Arrow/RocksDB-style error model. Library code never throws across the
/// public API boundary; fallible operations return `Status` or `Result<T>`.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace iuad {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// Inverse of StatusCodeName, for wire protocols that carry codes by name
/// (src/api). Unrecognized names map to kInternal rather than failing: a
/// peer speaking a newer protocol revision still surfaces as an error, just
/// a generic one.
inline StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kIoError, StatusCode::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

/// Success-or-error outcome of an operation. Cheap to copy in the OK case
/// (no allocation); error case carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error. Holds either a `T` or a non-OK `Status`.
///
/// Usage:
/// \code
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. OK statuses are invalid here.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status to the caller.
#define IUAD_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::iuad::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define IUAD_ASSIGN_OR_RETURN(lhs, expr)    \
  auto IUAD_CONCAT_(_res_, __LINE__) = (expr);                  \
  if (!IUAD_CONCAT_(_res_, __LINE__).ok())                      \
    return IUAD_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(IUAD_CONCAT_(_res_, __LINE__)).value()

#define IUAD_CONCAT_INNER_(a, b) a##b
#define IUAD_CONCAT_(a, b) IUAD_CONCAT_INNER_(a, b)

}  // namespace iuad

#endif  // IUAD_UTIL_STATUS_H_
