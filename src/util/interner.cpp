#include "util/interner.h"

#include <cstring>
#include <mutex>

namespace iuad::util {

StringInterner::StringInterner(const StringInterner& other) {
  CopyFrom(other);
}

StringInterner& StringInterner::operator=(const StringInterner& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

StringInterner::StringInterner(StringInterner&& other) noexcept {
  MoveFrom(other);
}

StringInterner& StringInterner::operator=(StringInterner&& other) noexcept {
  if (this != &other) MoveFrom(other);
  return *this;
}

void StringInterner::CopyFrom(const StringInterner& other) {
  std::shared_lock other_lock(other.mu_);
  std::unique_lock self_lock(mu_);
  blocks_.clear();
  block_used_ = 0;
  arena_bytes_ = 0;
  views_.clear();
  ids_.clear();
  views_.reserve(other.views_.size());
  ids_.reserve(other.ids_.size());
  for (std::string_view s : other.views_) {
    const std::string_view copy = ArenaCopy(s);
    ids_.emplace(copy, static_cast<NameId>(views_.size()));
    views_.push_back(copy);
  }
}

void StringInterner::MoveFrom(StringInterner& other) {
  std::unique_lock other_lock(other.mu_);
  std::unique_lock self_lock(mu_);
  blocks_ = std::move(other.blocks_);
  block_used_ = other.block_used_;
  arena_bytes_ = other.arena_bytes_;
  views_ = std::move(other.views_);
  ids_ = std::move(other.ids_);
  other.blocks_.clear();
  other.block_used_ = 0;
  other.arena_bytes_ = 0;
  other.views_.clear();
  other.ids_.clear();
}

std::string_view StringInterner::ArenaCopy(std::string_view s) {
  if (s.size() > kBlockSize) {
    // Oversized strings get a dedicated block, spliced in *before* the
    // current block so its free tail stays usable.
    auto block = std::make_unique<char[]>(s.size());
    std::memcpy(block.get(), s.data(), s.size());
    arena_bytes_ += s.size();
    const std::string_view out(block.get(), s.size());
    const size_t at = blocks_.empty() ? 0 : blocks_.size() - 1;
    blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(at),
                   std::move(block));
    return out;
  }
  if (blocks_.empty() || block_used_ + s.size() > kBlockSize) {
    blocks_.push_back(std::make_unique<char[]>(kBlockSize));
    arena_bytes_ += kBlockSize;
    block_used_ = 0;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, s.data(), s.size());
  block_used_ += s.size();
  return std::string_view(dst, s.size());
}

NameId StringInterner::Intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = ids_.find(s);  // raced insert between the two locks
  if (it != ids_.end()) return it->second;
  const std::string_view copy = ArenaCopy(s);
  const NameId id = static_cast<NameId>(views_.size());
  ids_.emplace(copy, id);
  views_.push_back(copy);
  return id;
}

NameId StringInterner::Lookup(std::string_view s) const {
  std::shared_lock lock(mu_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kInvalidNameId : it->second;
}

std::string_view StringInterner::View(NameId id) const {
  std::shared_lock lock(mu_);
  return views_[static_cast<size_t>(id)];
}

int32_t StringInterner::size() const {
  std::shared_lock lock(mu_);
  return static_cast<int32_t>(views_.size());
}

size_t StringInterner::MemoryBytes() const {
  std::shared_lock lock(mu_);
  // Hash node: next pointer + cached hash + value pair.
  constexpr size_t kNode =
      16 + sizeof(std::pair<const std::string_view, NameId>);
  return arena_bytes_ + blocks_.capacity() * sizeof(blocks_[0]) +
         views_.capacity() * sizeof(std::string_view) +
         ids_.bucket_count() * sizeof(void*) + ids_.size() * kNode;
}

}  // namespace iuad::util
