#ifndef IUAD_UTIL_MEMORY_H_
#define IUAD_UTIL_MEMORY_H_

/// \file memory.h
/// Process-memory introspection for the BENCH_*.json convention: every
/// bench records `rss_mb` (resident set at measurement time) next to its
/// throughput numbers, so the memory trajectory is tracked alongside
/// papers/s across PRs.

namespace iuad::util {

/// Resident set size of the current process in MiB, read from
/// /proc/self/status (VmRSS). Returns 0.0 where procfs is unavailable.
double CurrentRssMb();

}  // namespace iuad::util

#endif  // IUAD_UTIL_MEMORY_H_
