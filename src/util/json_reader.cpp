#include "util/json_reader.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

namespace iuad::util {

namespace {

/// Recursive-descent parser over one in-memory document. Every rejection
/// carries the byte offset so protocol errors are debuggable from the
/// error string alone.
class Parser {
 public:
  Parser(const std::string& text, const JsonReaderOptions& options)
      : text_(text), options_(options) {}

  iuad::Result<JsonValue> Parse() {
    SkipWhitespace();
    IUAD_ASSIGN_OR_RETURN(JsonValue root, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the document");
    }
    return root;
  }

 private:
  iuad::Status Error(const std::string& msg) const {
    return iuad::Status::InvalidArgument(
        "json: " + msg + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  iuad::Result<JsonValue> ParseValue(int depth) {
    if (depth > options_.max_depth) {
      return Error("nesting deeper than " +
                   std::to_string(options_.max_depth));
    }
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        IUAD_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("invalid literal");
      default: return ParseNumber();
    }
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  iuad::Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    // Hash-set duplicate detection: a linear scan over prior members would
    // be quadratic, which a hostile max_bytes-sized document with many
    // common-prefix keys turns into seconds of CPU per request.
    std::unordered_set<std::string> seen;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      IUAD_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!seen.insert(key).second) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      IUAD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  iuad::Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    for (;;) {
      SkipWhitespace();
      IUAD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  iuad::Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) break;
      switch (text_[pos_]) {
        case '"': out += '"'; ++pos_; break;
        case '\\': out += '\\'; ++pos_; break;
        case '/': out += '/'; ++pos_; break;
        case 'b': out += '\b'; ++pos_; break;
        case 'f': out += '\f'; ++pos_; break;
        case 'n': out += '\n'; ++pos_; break;
        case 'r': out += '\r'; ++pos_; break;
        case 't': out += '\t'; ++pos_; break;
        case 'u': {
          ++pos_;
          IUAD_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate in string");
            }
            IUAD_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("unpaired surrogate in string");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate in string");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default: return Error("invalid escape in string");
      }
    }
    return Error("unterminated string");
  }

  iuad::Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  iuad::Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // fallthrough; digits checked below
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    // Grammar per RFC 8259: int [frac] [exp], no leading zeros.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::Int(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to double (still a valid JSON
      // number; the codec's integer fields reject non-kInt anyway).
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || std::isnan(d) || std::isinf(d)) {
      return Error("number out of range");
    }
    return JsonValue::Double(d);
  }

  const std::string& text_;
  const JsonReaderOptions& options_;
  size_t pos_ = 0;
};

}  // namespace

iuad::Result<JsonValue> ParseJson(const std::string& text,
                                  const JsonReaderOptions& options) {
  if (text.size() > options.max_bytes) {
    return iuad::Status::InvalidArgument(
        "json: document of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(options.max_bytes) +
        "-byte limit");
  }
  return Parser(text, options).Parse();
}

}  // namespace iuad::util
