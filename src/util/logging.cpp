#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iuad {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// Monotonic seconds since the first log call — short, sortable stamps
/// instead of wall-clock noise (the process start is what on-call aligns
/// spans and stats dumps against anyway).
double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Compact per-thread id: threads get 1, 2, 3... in first-log order — far
/// more readable in an interleaved stream than pthread handles.
int ThreadTag() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Emits one complete line with a single write(2) so concurrent loggers
/// never shear each other's lines mid-text (POSIX write atomicity covers
/// ordinary pipe/terminal sinks at log-line sizes). fprintf buffers per
/// FILE* and can interleave fragments; this is the fix that keeps the
/// --stats-interval dumps and slow-commit spans readable under load.
void WriteLineToStderr(const std::string& line) {
  std::string out = line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr gone; nothing sensible left to do
    }
    off += static_cast<size_t>(n);
  }
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s %.3f t%d %s:%d] ",
                LevelTag(level), MonotonicSeconds(), ThreadTag(),
                Basename(file), line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) WriteLineToStderr(stream_.str());
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "[CHECK failed " << Basename(file) << ":" << line << "] " << cond
          << " ";
}

CheckFailure::~CheckFailure() {
  WriteLineToStderr(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace iuad
