#ifndef IUAD_UTIL_STOPWATCH_H_
#define IUAD_UTIL_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing for the scalability and incremental experiments
/// (Table V, Table VI report seconds / milliseconds per item).

#include <chrono>

namespace iuad {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iuad

#endif  // IUAD_UTIL_STOPWATCH_H_
