#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace iuad {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double CoOccurrenceTailProbability(double na, double nb, double total_papers,
                                   int x) {
  // Under independence: per-paper co-occurrence probability p = na*nb/N^2,
  // X ~ Binom(N, p), E[X] = N*p, Var[X] = N*p*(1-p). Eq. (1) applies the
  // continuity correction (x - 0.5) before standardizing.
  const double n = total_papers;
  if (n <= 0.0) return 0.0;
  double p = (na / n) * (nb / n);
  p = std::clamp(p, 0.0, 1.0);
  const double mean = n * p;
  const double var = n * p * (1.0 - p);
  if (var <= 0.0) return mean >= x ? 1.0 : 0.0;
  const double z = ((static_cast<double>(x) - 0.5) - mean) / std::sqrt(var);
  const double tail = 1.0 - NormalCdf(z);
  return std::clamp(tail, 0.0, 1.0);
}

PowerLawFit FitPowerLaw(const std::vector<double>& x,
                        const std::vector<double>& y) {
  PowerLawFit fit;
  std::vector<double> lx, ly;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log10(x[i]));
      ly.push_back(std::log10(y[i]));
    }
  }
  fit.used_points = static_cast<int>(lx.size());
  if (lx.size() < 2) return fit;
  const double mx = Mean(lx);
  const double my = Mean(ly);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < lx.size(); ++i) {
    sxy += (lx[i] - mx) * (ly[i] - my);
    sxx += (lx[i] - mx) * (lx[i] - mx);
    syy += (ly[i] - my) * (ly[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

std::map<int64_t, int64_t> FrequencyHistogram(
    const std::vector<int64_t>& counts) {
  std::map<int64_t, int64_t> hist;
  for (int64_t c : counts) ++hist[c];
  return hist;
}

PowerLawFit FitPowerLaw(const std::map<int64_t, int64_t>& histogram) {
  std::vector<double> x, y;
  x.reserve(histogram.size());
  y.reserve(histogram.size());
  for (const auto& [value, freq] : histogram) {
    x.push_back(static_cast<double>(value));
    y.push_back(static_cast<double>(freq));
  }
  return FitPowerLaw(x, y);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace iuad
