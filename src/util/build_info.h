#ifndef IUAD_UTIL_BUILD_INFO_H_
#define IUAD_UTIL_BUILD_INFO_H_

/// \file build_info.h
/// Compile-time build identity for the `iuad_build_info` exposition gauge
/// and the stats surfaces: a version string (overridable with
/// -DIUAD_VERSION=\"...\"), the compiler banner, and which sanitizer the
/// binary was built under. All three are constants baked at compile time —
/// no runtime probing.

namespace iuad::util {

inline const char* BuildVersion() {
#ifdef IUAD_VERSION
  return IUAD_VERSION;
#else
  return "dev";
#endif
}

inline const char* BuildCompiler() {
#ifdef __VERSION__
  return "" __VERSION__;
#else
  return "unknown";
#endif
}

inline const char* BuildSanitizer() {
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#else
  return "none";
#endif
}

}  // namespace iuad::util

#endif  // IUAD_UTIL_BUILD_INFO_H_
