#ifndef IUAD_UTIL_STATS_H_
#define IUAD_UTIL_STATS_H_

/// \file stats.h
/// Statistics helpers backing the paper's descriptive analysis (Fig. 3) and
/// the key observation of Sec. IV-A (binomial tail probability of random
/// name co-occurrence).

#include <cstdint>
#include <map>
#include <vector>

namespace iuad {

/// Sample mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (MLE denominator N, matching the EM updates of
/// Table I); 0 for inputs with fewer than one element.
double Variance(const std::vector<double>& xs);

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Pr(X >= x) for X ~ Binom(N, na*nb/N^2) under the independence assumption
/// of Sec. IV-A, using the paper's continuity-corrected normal approximation
/// (Eq. 1). `na`, `nb` are the paper counts of the two names, `total_papers`
/// is N. Returns a probability clamped to [0, 1].
double CoOccurrenceTailProbability(double na, double nb, double total_papers,
                                   int x);

/// Least-squares slope/intercept of log10(y) against log10(x) over the
/// points with x > 0 and y > 0; used to report the power-law exponents of
/// Fig. 3 ("slope = -1.677" / "slope = -3.172").
struct PowerLawFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  int used_points = 0;
};

PowerLawFit FitPowerLaw(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Builds the frequency-of-frequencies histogram used for Fig. 3: given raw
/// per-item counts (e.g. papers per name), returns {value -> #items with
/// that value}, sorted by value.
std::map<int64_t, int64_t> FrequencyHistogram(const std::vector<int64_t>& counts);

/// Convenience: fits a power law directly to a frequency histogram.
PowerLawFit FitPowerLaw(const std::map<int64_t, int64_t>& histogram);

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace iuad

#endif  // IUAD_UTIL_STATS_H_
