#ifndef IUAD_UTIL_RNG_H_
#define IUAD_UTIL_RNG_H_

/// \file rng.h
/// Deterministic, seedable random number generation. Every randomized
/// component in the library takes an explicit seed so experiments are
/// reproducible run-to-run; std::mt19937 is avoided because its stream is
/// not guaranteed identical across standard library implementations.

#include <cmath>
#include <cstdint>
#include <vector>

namespace iuad {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent seed for stream `stream` of a sharded computation
/// from a master `seed`. Distinct streams get decorrelated generator states
/// (two SplitMix64 scrambles), and the mapping depends only on the pair
/// (seed, stream) — never on thread count or scheduling — so sharded
/// consumers stay deterministic at any parallelism.
inline uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  uint64_t s = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  const uint64_t a = SplitMix64Next(&s);
  return a ^ SplitMix64Next(&s);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
/// Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x6a09e667f3bcc908ULL) { Seed(seed); }

  /// Re-seeds the generator; the full state is derived via SplitMix64.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64Next(&sm);
  }

  /// Next raw 64 bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t NextBounded(uint64_t n) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (polar form avoided for determinism
  /// simplicity; tails are adequate for our simulation use).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    // Draw u in (0,1] to avoid log(0).
    double u = 1.0 - UniformDouble();
    double v = UniformDouble();
    double z = std::sqrt(-2.0 * std::log(u)) * std::cos(6.283185307179586 * v);
    return mean + stddev * z;
  }

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda) {
    double u = 1.0 - UniformDouble();
    return -std::log(u) / lambda;
  }

  /// Poisson via inversion for small means, normal approximation for large.
  int Poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean > 64.0) {
      int k = static_cast<int>(std::lround(Gaussian(mean, std::sqrt(mean))));
      return k < 0 ? 0 : k;
    }
    double l = std::exp(-mean);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > l);
    return k - 1;
  }

  /// Zipf-distributed integer in [1, n] with exponent s (> 0), by inversion
  /// over precomputed cumulative weights is O(n); for repeated sampling use
  /// ZipfSampler below. This method is the simple one-shot fallback.
  int Zipf(int n, double s) {
    double total = 0.0;
    for (int i = 1; i <= n; ++i) total += std::pow(i, -s);
    double u = UniformDouble() * total;
    double acc = 0.0;
    for (int i = 1; i <= n; ++i) {
      acc += std::pow(i, -s);
      if (u <= acc) return i;
    }
    return n;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index proportional to the (nonnegative) weights.
  /// Returns -1 when all weights are zero or the vector is empty.
  int WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return -1;
    double u = UniformDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u <= acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// O(log n)-per-draw Zipf sampler over ranks [0, n) with exponent s, using a
/// precomputed CDF. Intended for the synthetic corpus generator where many
/// draws share one distribution.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cdf_(static_cast<size_t>(n)) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += std::pow(i + 1, -s);
      cdf_[static_cast<size_t>(i)] = acc;
    }
    total_ = acc;
  }

  /// Draws a rank in [0, n); rank 0 is the most probable.
  int Sample(Rng* rng) const {
    double u = rng->UniformDouble() * total_;
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo < cdf_.size() ? lo : cdf_.size() - 1);
  }

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace iuad

#endif  // IUAD_UTIL_RNG_H_
