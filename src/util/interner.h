#ifndef IUAD_UTIL_INTERNER_H_
#define IUAD_UTIL_INTERNER_H_

/// \file interner.h
/// Arena-backed string interning: every distinct string gets one stable
/// dense `NameId` and one arena copy whose `string_view` never moves or
/// dies for the interner's lifetime. The hot structures (graph name index,
/// WL labels, block placement, serve read views) key on the 4-byte id
/// instead of owning string copies; the string itself is materialized only
/// at protocol boundaries.
///
/// Concurrency contract (the serving one): one writer thread may Intern
/// while any number of reader threads Lookup/View/size concurrently — the
/// id space only grows and published ids stay valid forever. Synchronized
/// with a shared_mutex; the uncontended shared lock is a few nanoseconds,
/// far below the hash probe it guards.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iuad::util {

/// Dense id of an interned string. Ids are assigned 0, 1, 2, ... in first-
/// Intern order and are never reused or invalidated.
using NameId = int32_t;

/// Returned by Lookup for strings never interned.
inline constexpr NameId kInvalidNameId = -1;

class StringInterner {
 public:
  StringInterner() = default;

  /// Deep copy: the copy re-interns every string into its own arena, so the
  /// two interners are fully independent (same id assignment, different
  /// storage).
  StringInterner(const StringInterner& other);
  StringInterner& operator=(const StringInterner& other);
  StringInterner(StringInterner&& other) noexcept;
  StringInterner& operator=(StringInterner&& other) noexcept;

  /// Returns the id of `s`, interning it first if new. Writer-side call.
  NameId Intern(std::string_view s);

  /// Id of `s` if already interned, kInvalidNameId otherwise. Reader-safe.
  NameId Lookup(std::string_view s) const;

  /// The arena-backed string of `id`. Valid for the interner's lifetime.
  /// `id` must be a value previously returned by Intern. Reader-safe.
  std::string_view View(NameId id) const;

  /// Number of interned strings (== the id one past the last assigned).
  int32_t size() const;

  /// Heap footprint: arena blocks + id table + hash index.
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kBlockSize = 1 << 16;

  /// Copies `s` into the arena; the result outlives every later Intern.
  std::string_view ArenaCopy(std::string_view s);
  void CopyFrom(const StringInterner& other);  // caller holds no locks
  void MoveFrom(StringInterner& other);        // locks `other`

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;      ///< bytes used in blocks_.back()
  size_t arena_bytes_ = 0;     ///< total bytes allocated across blocks
  std::vector<std::string_view> views_;            ///< id -> string
  std::unordered_map<std::string_view, NameId> ids_;  ///< string -> id
};

}  // namespace iuad::util

#endif  // IUAD_UTIL_INTERNER_H_
