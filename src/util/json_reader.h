#ifndef IUAD_UTIL_JSON_READER_H_
#define IUAD_UTIL_JSON_READER_H_

/// \file json_reader.h
/// Strict JSON parser for the src/api wire protocol. "Strict" is the
/// contract tests/api_test.cpp pins down: one complete document per call,
/// no trailing content, no duplicate object keys, no NaN/Inf, bounded
/// input size and nesting depth (malformed or hostile input must fail with
/// InvalidArgument, never crash or allocate unboundedly).
///
/// Numbers keep the int64/double distinction: a token without '.', 'e' or
/// 'E' that fits int64 parses as kInt, everything else as kDouble — the
/// wire codec needs integer fields (sequence numbers, vertex ids) exact at
/// full 64-bit range, where a double round-trip would silently lose bits.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace iuad::util {

/// One parsed JSON value (an object member, array element, or document
/// root). Object member order is preserved — encode(decode(x)) depends
/// on it.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  /// kInt or kDouble (JSON has one number type; the split is lossless).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  /// Numeric value as double regardless of the int/double split.
  double as_double() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key, or nullptr (also for non-objects).
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  static JsonValue Null() { return JsonValue(Type::kNull); }
  static JsonValue Bool(bool b) {
    JsonValue v(Type::kBool);
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v(Type::kInt);
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v(Type::kDouble);
    v.double_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v(Type::kString);
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array(std::vector<JsonValue> items) {
    JsonValue v(Type::kArray);
    v.items_ = std::move(items);
    return v;
  }
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> ms) {
    JsonValue v(Type::kObject);
    v.members_ = std::move(ms);
    return v;
  }

 private:
  explicit JsonValue(Type type) : type_(type) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonReaderOptions {
  /// Documents longer than this are rejected up front (the api::Server
  /// reads untrusted sockets; a hostile peer must not make it buffer an
  /// unbounded line).
  size_t max_bytes = 1 << 20;
  /// Maximum container nesting (a 10k-deep '[[[[...' must not overflow the
  /// parser's stack).
  int max_depth = 64;
};

/// Parses exactly one JSON document from `text` (leading/trailing ASCII
/// whitespace allowed, nothing else). InvalidArgument on any violation,
/// with a byte offset in the message.
iuad::Result<JsonValue> ParseJson(const std::string& text,
                                  const JsonReaderOptions& options = {});

}  // namespace iuad::util

#endif  // IUAD_UTIL_JSON_READER_H_
