#ifndef IUAD_UTIL_THREAD_POOL_H_
#define IUAD_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// A fixed-size worker pool plus the `ParallelFor` helper the pairwise-
/// similarity hot path runs on. Design constraints, in order:
///
///   1. Determinism. ParallelFor uses *static contiguous chunking* — worker
///      t always receives [t*n/T, (t+1)*n/T) — and callers write results
///      into pre-sized slots indexed by item position, so output is
///      byte-identical at any thread count (including 1).
///   2. Zero overhead in the serial case: a pool of size 1 runs everything
///      inline on the calling thread, no worker is spawned, no locking.
///   3. No exception tunneling: worker tasks must be noexcept in spirit —
///      the IUAD codebase reports errors through Status, not throws.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace iuad::util {

/// Maps a config-level thread count to an actual one: values <= 0 mean
/// "auto" (hardware concurrency, at least 1).
inline int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// The contiguous [begin, end) range of shard `shard` when `n` items are
/// split into `num_shards` near-equal static shards. This is the one shard
/// layout used everywhere determinism matters: it depends only on
/// (n, num_shards), never on thread count or scheduling, so results merged
/// in shard order are byte-identical at any parallelism.
inline std::pair<size_t, size_t> ShardRange(size_t n, size_t shard,
                                            size_t num_shards) {
  return {n * shard / num_shards, n * (shard + 1) / num_shards};
}

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// ParallelFor as worker 0). `num_threads <= 1` spawns nothing.
  explicit ThreadPool(int num_threads)
      : num_threads_(num_threads < 1 ? 1 : num_threads) {
    workers_.reserve(static_cast<size_t>(num_threads_ - 1));
    for (int t = 1; t < num_threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int num_threads() const { return num_threads_; }

  /// Enqueues one task for a worker thread. Fire-and-forget; pair with
  /// ParallelFor (which waits) for structured use.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs fn(i) for every i in [0, n), statically chunked across the pool.
  /// Blocks until every index has been processed. The calling thread works
  /// on chunk 0, so a 1-thread pool degenerates to a plain loop. fn must be
  /// safe to invoke concurrently for distinct i and must not submit more
  /// work to this pool.
  template <typename Fn>
  void ParallelFor(size_t n, const Fn& fn) {
    if (n == 0) return;
    const size_t chunks =
        std::min(static_cast<size_t>(num_threads_), n);
    if (chunks <= 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t done = 0;
    auto run_chunk = [&, n, chunks](size_t t) {
      const auto [begin, end] = ShardRange(n, t, chunks);
      for (size_t i = begin; i < end; ++i) fn(i);
      // Notify under the lock: done_cv lives on the caller's stack, and an
      // unlocked notify could land after the caller has woken (e.g. via a
      // spurious wakeup or another chunk's notify), seen done == chunks,
      // and destroyed the condition variable.
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_one();
    };
    for (size_t t = 1; t < chunks; ++t) {
      Submit([&run_chunk, t] { run_chunk(t); });
    }
    run_chunk(0);
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == chunks; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ with a drained queue
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) on `pool`, or inline when pool is null —
/// the shared dispatch for APIs whose pool parameter is optional.
template <typename Fn>
inline void ForIndices(ThreadPool* pool, size_t n, const Fn& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace iuad::util

#endif  // IUAD_UTIL_THREAD_POOL_H_
