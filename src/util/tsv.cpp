#include "util/tsv.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace iuad {

namespace {

void ParseInto(const std::string& content, std::vector<TsvRow>* rows) {
  size_t start = 0;
  while (start <= content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string_view line(content.data() + start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() != '#') {
      rows->push_back(Split(line, '\t'));
    }
    if (end == content.size()) break;
    start = end + 1;
  }
}

}  // namespace

Result<std::vector<TsvRow>> ReadTsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTsv(buf.str());
}

std::vector<TsvRow> ParseTsv(const std::string& content) {
  std::vector<TsvRow> rows;
  ParseInto(content, &rows);
  return rows;
}

Status WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows) {
  for (const auto& row : rows) {
    for (const auto& field : row) {
      if (field.find('\t') != std::string::npos ||
          field.find('\n') != std::string::npos) {
        return Status::InvalidArgument("TSV field contains tab/newline: " +
                                       field);
      }
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const auto& row : rows) {
    out << Join(row, "\t") << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace iuad
