#ifndef IUAD_UTIL_STRINGS_H_
#define IUAD_UTIL_STRINGS_H_

/// \file strings.h
/// Small string utilities used throughout the library (record parsing,
/// title tokenization support, table formatting).

#include <string>
#include <string_view>
#include <vector>

namespace iuad {

/// Splits `s` on `sep`, keeping empty fields (TSV semantics).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Zero-copy variant of Split: the returned views alias `s`, which must
/// outlive them. Same semantics (empty fields kept). Used on hot parse
/// paths (TSV rows, paper-id lists) to avoid one allocation per field.
std::vector<std::string_view> SplitView(std::string_view s, char sep);

/// Zero-copy variant of SplitWhitespace (empty tokens dropped); the views
/// alias `s`, which must outlive them.
std::vector<std::string_view> SplitWhitespaceView(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (bibliographic names/titles in this library are ASCII
/// by construction; a full Unicode pipeline is out of scope and documented
/// as such in DESIGN.md).
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// Left-pads `s` with spaces to width `w` (no-op if already wider).
std::string PadLeft(std::string_view s, size_t w);

/// Right-pads `s` with spaces to width `w`.
std::string PadRight(std::string_view s, size_t w);

}  // namespace iuad

#endif  // IUAD_UTIL_STRINGS_H_
