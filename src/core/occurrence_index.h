#ifndef IUAD_CORE_OCCURRENCE_INDEX_H_
#define IUAD_CORE_OCCURRENCE_INDEX_H_

/// \file occurrence_index.h
/// Tracks which graph vertex each (paper, name) byline occurrence is
/// attributed to. This is the disambiguation *answer*: papers of name `a`
/// grouped by their occurrence vertex form the predicted author clusters.
/// Vertex merges are recorded as aliases so lookups always resolve to the
/// surviving vertex.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/collab_graph.h"

namespace iuad::core {

/// (paper, name) -> vertex map with merge-aliasing.
class OccurrenceIndex {
 public:
  /// Assigns occurrence (paper, name) to `v` if unassigned. Returns the
  /// vertex that owns the occurrence after the call (the pre-existing owner
  /// when already assigned — callers decide whether that constitutes a
  /// conflict to merge).
  graph::VertexId AssignIfAbsent(int paper_id, const std::string& name,
                                 graph::VertexId v);

  /// Current owner of (paper, name), alias-resolved; -1 if unassigned.
  graph::VertexId Lookup(int paper_id, const std::string& name) const;

  /// Records that `absorbed` was merged into `kept`; future lookups of
  /// occurrences owned by `absorbed` return `kept`.
  void RecordMerge(graph::VertexId kept, graph::VertexId absorbed);

  /// Resolves a vertex id through the recorded merge aliases.
  graph::VertexId Resolve(graph::VertexId v) const;

  /// Number of assigned occurrences.
  int64_t size() const { return static_cast<int64_t>(occurrences_.size()); }

  /// Papers of `name` grouped by owning vertex: the predicted clustering of
  /// that name, restricted to the given papers.
  std::unordered_map<graph::VertexId, std::vector<int>> ClustersOfName(
      const std::string& name, const std::vector<int>& paper_ids) const;

  /// One serialized occurrence assignment (snapshot save, src/io).
  struct Entry {
    int paper_id = -1;
    std::string name;
    graph::VertexId vertex = -1;  ///< Alias-resolved owner.
  };

  /// Every assignment, alias-resolved, sorted by (paper_id, name): the
  /// canonical serialization order. Replaying these through AssignIfAbsent
  /// on an empty index reproduces every Lookup result exactly (the internal
  /// name interning is rebuilt on the fly; alias chains are already
  /// flattened into the exported vertices, so no merge records are needed).
  std::vector<Entry> Entries() const;

 private:
  uint64_t KeyOf(int paper_id, const std::string& name) const;

  // Name interning (local, independent of any miner's encoder).
  mutable std::unordered_map<std::string, int> name_ids_;
  std::unordered_map<uint64_t, graph::VertexId> occurrences_;
  // Alias forest with path compression on read (mutable).
  mutable std::unordered_map<graph::VertexId, graph::VertexId> alias_;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_OCCURRENCE_INDEX_H_
