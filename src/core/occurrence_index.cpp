#include "core/occurrence_index.h"

#include <algorithm>

namespace iuad::core {

uint64_t OccurrenceIndex::KeyOf(int paper_id, const std::string& name) const {
  auto [it, inserted] =
      name_ids_.try_emplace(name, static_cast<int>(name_ids_.size()));
  return (static_cast<uint64_t>(static_cast<uint32_t>(paper_id)) << 32) |
         static_cast<uint32_t>(it->second);
}

graph::VertexId OccurrenceIndex::AssignIfAbsent(int paper_id,
                                                const std::string& name,
                                                graph::VertexId v) {
  auto [it, inserted] = occurrences_.try_emplace(KeyOf(paper_id, name), v);
  return Resolve(it->second);
}

graph::VertexId OccurrenceIndex::Lookup(int paper_id,
                                        const std::string& name) const {
  auto name_it = name_ids_.find(name);
  if (name_it == name_ids_.end()) return -1;
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(paper_id)) << 32) |
      static_cast<uint32_t>(name_it->second);
  auto it = occurrences_.find(key);
  return it == occurrences_.end() ? -1 : Resolve(it->second);
}

void OccurrenceIndex::RecordMerge(graph::VertexId kept,
                                  graph::VertexId absorbed) {
  kept = Resolve(kept);
  absorbed = Resolve(absorbed);
  if (kept != absorbed) alias_[absorbed] = kept;
}

graph::VertexId OccurrenceIndex::Resolve(graph::VertexId v) const {
  graph::VertexId root = v;
  while (true) {
    auto it = alias_.find(root);
    if (it == alias_.end()) break;
    root = it->second;
  }
  // Path compression.
  while (v != root) {
    auto it = alias_.find(v);
    graph::VertexId next = it->second;
    it->second = root;
    v = next;
  }
  return root;
}

std::vector<OccurrenceIndex::Entry> OccurrenceIndex::Entries() const {
  // Invert the name interning once (id -> string).
  std::vector<const std::string*> names(name_ids_.size(), nullptr);
  for (const auto& [name, id] : name_ids_) {
    names[static_cast<size_t>(id)] = &name;
  }
  std::vector<Entry> out;
  out.reserve(occurrences_.size());
  for (const auto& [key, vertex] : occurrences_) {
    Entry e;
    e.paper_id = static_cast<int>(key >> 32);
    e.name = *names[static_cast<size_t>(key & 0xffffffffULL)];
    e.vertex = Resolve(vertex);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.paper_id != b.paper_id ? a.paper_id < b.paper_id : a.name < b.name;
  });
  return out;
}

std::unordered_map<graph::VertexId, std::vector<int>>
OccurrenceIndex::ClustersOfName(const std::string& name,
                                const std::vector<int>& paper_ids) const {
  std::unordered_map<graph::VertexId, std::vector<int>> clusters;
  for (int pid : paper_ids) {
    graph::VertexId v = Lookup(pid, name);
    if (v >= 0) clusters[v].push_back(pid);
  }
  return clusters;
}

}  // namespace iuad::core
