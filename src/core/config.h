#ifndef IUAD_CORE_CONFIG_H_
#define IUAD_CORE_CONFIG_H_

/// \file config.h
/// All knobs of the IUAD pipeline in one place. Defaults follow the paper's
/// experimental settings where stated (η-SCRs with η = 2 as in the running
/// example, 10% candidate-pair sampling, α = 0.62 time decay) and DESIGN.md
/// documents every choice the paper leaves open.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "em/mixture_model.h"
#include "graph/collab_graph.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace iuad::core {

/// Number of similarity functions γ1..γ6 (Sec. V-B).
constexpr int kNumSimilarities = 6;

/// How name blocks are mapped onto serving shards (src/shard). Placement
/// never changes assignments — scoring is deterministic wherever it runs —
/// only load balance.
enum class ShardPlacement {
  /// FNV hash of the block name modulo the shard count. Stateless, so any
  /// process that knows the shard count can route; skewed under the
  /// scale-free block-size distributions real corpora exhibit.
  kHash = 0,
  /// Greedy longest-processing-time packing of the fitted result's blocks
  /// by scoring weight (candidate vertices + attributed papers), heaviest
  /// block first onto the lightest shard. Blocks born after the fit (names
  /// first seen during ingestion) fall back to the hash rule.
  kSizeAware = 1,
};

struct IuadConfig {
  // --- Stage 1: SCN construction (Sec. IV) -----------------------------
  /// η: minimum co-occurrence count of a stable collaborative relation.
  int64_t eta = 2;
  /// The Fig. 4 insertion rule: a new SCR endpoint reuses an existing
  /// vertex only when an incident triangle of SCRs supports it. Disabling
  /// (ablation) merges same-name endpoints unconditionally — precision
  /// collapses, which is the point of the bottom-up design.
  bool triangle_gated_insertion = true;

  // --- Similarities (Sec. V-B) ------------------------------------------
  /// h: Weisfeiler-Lehman refinement depth for γ1.
  int wl_iterations = 2;
  /// α: time-decay factor of γ4 (the paper cites FutureRank's 0.62).
  double time_decay_alpha = 0.62;
  /// Embedding trainer for γ3 (replaces the paper's pretrained vectors).
  text::Word2VecConfig word2vec;

  // --- Stage 2: GCN construction (Sec. V) --------------------------------
  /// δ: decision threshold on the posterior log-odds score (Eq. 11).
  double delta = 0.0;
  /// Fraction of candidate pairs used to train the generative model
  /// (Sec. VI-A3 samples 10%).
  double sample_rate = 0.10;
  /// Vertex-splitting augmentation against class imbalance (Sec. V-F2).
  /// Small vertices are split too (min 2 papers): the planted matched pairs
  /// must cover the *small-profile* similarity scale as well, or the EM
  /// matched component learns only the prolific-author regime and
  /// mis-scores single-paper evidence (the incremental case).
  bool vertex_splitting = true;
  int split_min_papers = 2;    ///< Vertices with >= this many papers split.
  int max_split_vertices = 300;
  /// Safety cap: names sharing more vertices than this have their candidate
  /// pairs deterministically subsampled (the paper's DBLP run needs none).
  int max_pairs_per_name = 20000;
  /// Per-feature exponential-family choice (order γ1..γ6). γ1 (normalized
  /// WL) is semi-discrete — exactly 0 for the many pairs with no shared
  /// ball labels — so it gets the binned Multinomial, which absorbs point
  /// masses gracefully; γ3 (cosine) is bounded and bell-ish => Gaussian;
  /// the overlap-style similarities are nonnegative and heavy-tailed =>
  /// Exponential. See DESIGN.md §5; ablated in bench/ablation_design_choices.
  std::vector<em::FamilyType> families = {
      em::FamilyType::kMultinomial, em::FamilyType::kExponential,
      em::FamilyType::kGaussian,    em::FamilyType::kExponential,
      em::FamilyType::kExponential, em::FamilyType::kExponential,
  };
  /// EM settings (init quantile, tolerance, ...).
  em::MixtureConfig em;

  // --- Semi-supervision (the paper's stated future work, Sec. VII) -------
  /// Optional label oracle over candidate vertex pairs. Return 1 for a
  /// known match, 0 for a known non-match, -1 for unknown. Known labels
  /// pin the EM initial responsibilities (0.99 / 0.01) for those training
  /// pairs; everything else stays unsupervised. Typical source: a few
  /// manually-curated author profiles.
  std::function<int(const graph::CollabGraph&, graph::VertexId,
                    graph::VertexId)>
      pair_label_oracle;

  // --- Execution ---------------------------------------------------------
  /// Worker threads for the pairwise-similarity hot path (the γ1..γ6
  /// batches of GCN construction, Sec. V-B). 0 = auto (hardware
  /// concurrency). Output is identical at every setting: per-vertex
  /// profiles and WL features are prewarmed before the parallel region and
  /// scores are applied in fixed candidate-pair order regardless of
  /// completion order. CLI flag: --threads.
  int num_threads = 0;

  // --- Incremental mode (Sec. V-E) ---------------------------------------
  /// Rebuild the WL kernel / similarity caches after this many ingested
  /// papers (stale structure in between is tolerated by design — the paper
  /// never retrains on new papers).
  int incremental_refresh_interval = 64;

  // --- Serving & persistence (src/serve, src/io) -------------------------
  /// Bound of the serve::IngestService admission window: at most this many
  /// submitted papers may be queued (or held for sequence reordering) ahead
  /// of the applier; further Submit calls block. Must be >= 1 — the paper
  /// whose sequence number is next to apply is always admissible, which is
  /// what makes the bound deadlock-free.
  int ingest_queue_capacity = 256;
  /// The service republishes its read-only query view (author lookups,
  /// publication lists, stats) every this-many applied papers. Purely a
  /// freshness/throughput trade-off for concurrent readers: ingestion
  /// results never depend on it (similarity-cache refresh batching is
  /// incremental_refresh_interval, as in the raw incremental path).
  int ingest_refresh_window = 64;
  /// Where --save-snapshot / --load-snapshot persistence lives. Only
  /// consulted when persist_snapshot is set; must then be non-empty.
  std::string snapshot_path;
  /// Set by callers requesting snapshot persistence (the CLI flags); makes
  /// an empty snapshot_path a configuration error instead of a late IoError.
  bool persist_snapshot = false;

  // --- Sharded serving (src/shard) ---------------------------------------
  /// Shard count of the shard::ShardRouter serving front end; 1 keeps the
  /// single-applier serve::IngestService shape. Also the shard-section
  /// count of snapshot format v2 payloads (src/io), so a snapshot saved by
  /// an N-shard service loads its sections in parallel. Assignments are
  /// byte-identical at every value. CLI flag: --shards on `serve`.
  int num_shards = 1;
  /// Block→shard placement policy (see ShardPlacement).
  ShardPlacement shard_placement = ShardPlacement::kSizeAware;
  /// Bound on the ShardRouter's ingestion pipeline: up to this many
  /// consecutive-sequence papers may be in flight at once, with phase-1
  /// scoring overlapped across them and commits strictly in sequence order.
  /// Papers whose name blocks collide with an uncommitted predecessor have
  /// exactly the conflicted bylines rescored after that predecessor commits,
  /// so assignments are byte-identical to sequential AddPaper at every
  /// depth; 1 degenerates to the pre-pipeline one-paper-at-a-time router.
  /// The effective window is additionally capped by the refresh cadence
  /// (a similarity-cache refresh is a full pipeline barrier) and by what is
  /// actually queued. CLI flag: --pipeline-depth on `serve`.
  int pipeline_depth = 4;

  // --- Query/ingest API (src/api) ----------------------------------------
  /// TCP port of api::Server (`iuad serve --port P`). 0 binds an ephemeral
  /// port (the server reports the one it got); the stdio transport ignores
  /// it. Must fit a uint16.
  int api_port = 0;
  /// Connection worker threads of api::Server: at most this many client
  /// connections are served concurrently; further accepted connections are
  /// turned away with a protocol-level ResourceExhausted response. 0 =
  /// auto (hardware concurrency). CLI flag: --workers.
  int api_num_workers = 0;
  /// Largest paper batch one IngestPaper request may carry; bigger batches
  /// are rejected with ResourceExhausted before touching the ingest queue.
  /// CLI flag: --max-batch.
  int api_max_batch = 64;

  // --- Observability (src/obs) -------------------------------------------
  /// Gates latency recording (the clock reads and histogram updates) on the
  /// serving hot paths. Counters and the stats/metrics surfaces stay live
  /// either way — disabling only stops timing. Assignments are
  /// byte-identical at either setting (DESIGN.md §7); the flag exists to
  /// prove it and to shave the last clock reads off benchmark runs.
  /// CLI flag: --no-metrics on `serve`.
  bool metrics_enabled = true;
  /// Port of the Prometheus-style text exposition endpoint (`serve
  /// --metrics-port`). -1 disables the endpoint (default); 0 binds an
  /// ephemeral port (reported at startup); otherwise must fit a uint16.
  int metrics_port = -1;
  /// Period in seconds of the live stats dump to stderr while serving
  /// (`serve --stats-interval`). 0 disables it.
  double stats_interval_s = 0.0;
  /// Commits slower than this many milliseconds (submit-to-applied) retain
  /// their per-stage span breakdown in the slow-commit exemplar table
  /// (surfaced through GetStats and the stderr stats dump). 0 disables
  /// slow-commit retention. Only consulted when stage stamps exist, i.e.
  /// metrics or tracing is enabled. CLI flag: --slow-commit-ms.
  double slow_commit_ms = 0.0;
  /// Gates the flight recorder (per-paper trace events on the serving hot
  /// paths). Like metrics_enabled, the flag gates clock reads and ring
  /// stores only — assignments are byte-identical at either setting
  /// (DESIGN.md §8). CLI flag: --no-trace on `serve`.
  bool trace_enabled = true;
  /// Path the serve CLI writes the Chrome trace-event JSON to on shutdown;
  /// also the stem of the crash dump (`<trace_out>.crash`). Empty disables
  /// the file (the `trace` op and /trace endpoint still work). CLI flag:
  /// --trace-out.
  std::string trace_out;
  /// Flight-recorder ring capacity, events per recording thread.
  int trace_ring_capacity = 4096;
  /// Capacity K of the slow-commit exemplar table (top-K by latency).
  int trace_exemplars = 8;

  // --- Durability (src/wal) ----------------------------------------------
  /// Directory of the write-ahead log (`serve --wal-dir`). Empty disables
  /// durability: a crash loses everything since the last explicit
  /// checkpoint. Non-empty makes every commit attempt a logged record and
  /// recovery automatic on the next serve against the same directory.
  std::string wal_dir;
  /// Group-commit width: the WAL fsyncs after this many buffered records.
  /// 1 = fsync every record (strict durability, slowest). CLI flag:
  /// --wal-fsync-every.
  int wal_fsync_every_n = 64;
  /// Time trigger of the group commit: flush+fsync on append once this
  /// many milliseconds have passed since the last sync, even when fewer
  /// than wal_fsync_every_n records are buffered. Bounds durability lag
  /// under sustained slow load; keep it well above the fsync cost itself
  /// or batches degenerate to a couple of records (BENCH_wal.json). 0
  /// disables the time trigger (the idle-transition flush still runs).
  /// CLI flag: --wal-fsync-ms.
  double wal_fsync_interval_ms = 50.0;
  /// Checkpoint cadence: once at least this many papers have been applied
  /// since the last checkpoint, the commit thread writes one at the next
  /// similarity-cache refresh boundary (the only point where recovery can
  /// reconstruct cache state exactly — DESIGN.md §9). 0 disables automatic
  /// checkpoints (the log grows until a manual one). CLI flag:
  /// --wal-checkpoint-every.
  int wal_checkpoint_every_n = 0;

  /// Seed for every randomized component (sampling, splitting, embeddings).
  uint64_t seed = 1234;

  /// Rejects misconfigurations before any work happens, so the pipeline
  /// returns InvalidArgument instead of hitting UB deep inside training
  /// (e.g. a zero-dimension embedding table or a division by sample_rate).
  /// Negative num_threads is NOT an error: ResolveNumThreads maps <= 0 to
  /// hardware concurrency. Called at the top of IuadPipeline::Run /
  /// RunScnOnly; standalone users of the builders may call it themselves.
  iuad::Status Validate() const {
    auto bad = [](const std::string& msg) {
      return iuad::Status::InvalidArgument("config: " + msg);
    };
    if (eta < 1) return bad("eta must be >= 1");
    if (wl_iterations < 0) return bad("wl_iterations must be >= 0");
    if (time_decay_alpha < 0.0) return bad("time_decay_alpha must be >= 0");
    if (word2vec.dim <= 0) return bad("word2vec.dim must be positive");
    if (word2vec.window <= 0) return bad("word2vec.window must be positive");
    if (word2vec.epochs <= 0) return bad("word2vec.epochs must be positive");
    if (word2vec.negatives < 0) return bad("word2vec.negatives must be >= 0");
    if (word2vec.learning_rate <= 0.0) {
      return bad("word2vec.learning_rate must be positive");
    }
    if (word2vec.min_count < 1) return bad("word2vec.min_count must be >= 1");
    if (word2vec.subsample < 0.0) return bad("word2vec.subsample must be >= 0");
    if (word2vec.num_shards < 0) return bad("word2vec.num_shards must be >= 0");
    if (!(sample_rate > 0.0 && sample_rate <= 1.0)) {
      return bad("sample_rate must be in (0, 1]");
    }
    if (split_min_papers < 2) return bad("split_min_papers must be >= 2");
    if (max_split_vertices < 0) return bad("max_split_vertices must be >= 0");
    if (max_pairs_per_name < 1) return bad("max_pairs_per_name must be >= 1");
    if (static_cast<int>(families.size()) != kNumSimilarities) {
      return bad("families must list exactly one family per similarity");
    }
    if (incremental_refresh_interval < 1) {
      return bad("incremental_refresh_interval must be >= 1");
    }
    if (ingest_queue_capacity < 1) {
      return bad("ingest_queue_capacity must be >= 1");
    }
    if (ingest_refresh_window < 1) {
      return bad("ingest_refresh_window must be >= 1");
    }
    if (num_shards < 1) return bad("num_shards must be >= 1");
    if (shard_placement != ShardPlacement::kHash &&
        shard_placement != ShardPlacement::kSizeAware) {
      return bad("shard_placement must be a known policy");
    }
    if (pipeline_depth < 1 || pipeline_depth > 1024) {
      return bad("pipeline_depth must be in [1, 1024]");
    }
    if (api_port < 0 || api_port > 65535) {
      return bad("api_port must be in [0, 65535]");
    }
    if (api_num_workers < 0) return bad("api_num_workers must be >= 0");
    if (api_max_batch < 1) return bad("api_max_batch must be >= 1");
    if (metrics_port < -1 || metrics_port > 65535) {
      return bad("metrics_port must be -1 (disabled) or in [0, 65535]");
    }
    if (stats_interval_s < 0.0) return bad("stats_interval_s must be >= 0");
    if (slow_commit_ms < 0.0) return bad("slow_commit_ms must be >= 0");
    if (trace_ring_capacity < 64 || trace_ring_capacity > (1 << 20)) {
      return bad("trace_ring_capacity must be in [64, 1048576]");
    }
    if (trace_exemplars < 1 || trace_exemplars > 1024) {
      return bad("trace_exemplars must be in [1, 1024]");
    }
    if (wal_fsync_every_n < 1) return bad("wal_fsync_every_n must be >= 1");
    if (wal_fsync_interval_ms < 0.0) {
      return bad("wal_fsync_interval_ms must be >= 0");
    }
    if (wal_checkpoint_every_n < 0) {
      return bad("wal_checkpoint_every_n must be >= 0");
    }
    if (persist_snapshot && snapshot_path.empty()) {
      return bad("snapshot_path must be non-empty when persistence is "
                 "requested");
    }
    return iuad::Status::OK();
  }
};

}  // namespace iuad::core

#endif  // IUAD_CORE_CONFIG_H_
