#include "core/scn_builder.h"

#include <algorithm>
#include <unordered_set>

#include "mining/pair_miner.h"

namespace iuad::core {

namespace {

using graph::VertexId;
using mining::Item;

/// Sorted intersection of two paper-id lists.
std::vector<int> IntersectSorted(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

iuad::Result<ScnStats> ScnBuilder::Build(const data::PaperDatabase& db,
                                         graph::CollabGraph* graph,
                                         OccurrenceIndex* occurrences) const {
  if (graph->num_vertices() != 0) {
    return iuad::Status::InvalidArgument("SCN builder requires empty graph");
  }
  ScnStats stats;

  // ---- Step I: mine all η-SCRs from the co-author lists. -----------------
  mining::ItemEncoder encoder;
  mining::PairCounter counter;
  for (const auto& paper : db.papers()) {
    mining::Transaction t;
    t.reserve(paper.author_names.size());
    for (const auto& name : paper.author_names) {
      t.push_back(encoder.Encode(name));
    }
    counter.AddTransaction(t);
  }
  auto scrs = counter.FrequentPairs(config_.eta);
  stats.num_scrs = static_cast<int64_t>(scrs.size());

  // Fast SCR membership test, used by the triangle gate.
  std::unordered_set<uint64_t> scr_set;
  scr_set.reserve(scrs.size() * 2);
  for (const auto& fi : scrs) {
    scr_set.insert(mining::PairKey(fi.items[0], fi.items[1]));
  }
  auto is_scr = [&scr_set](Item a, Item b) {
    if (a == b) return false;
    if (a > b) std::swap(a, b);
    return scr_set.count(mining::PairKey(a, b)) > 0;
  };

  // Deterministic insertion order: strongest relations first (they lay the
  // skeleton the triangle gate tests against), ties lexicographic.
  std::sort(scrs.begin(), scrs.end(),
            [](const mining::FrequentItemset& x,
               const mining::FrequentItemset& y) {
              if (x.support != y.support) return x.support > y.support;
              return x.items < y.items;
            });

  // ---- Step II: insert 2-SCRs with triangle-gated endpoint resolution. ---
  // Resolves which existing same-name vertex (if any) an SCR endpoint
  // refers to: reuse vertex `v` of name `self` iff some neighbor u of v
  // forms an η-SCR with the *other* endpoint's name (Fig. 4 (ii)); with the
  // gate disabled (ablation), any same-name vertex is reused.
  // Interned-name-id -> Item memo: the encoder is string-keyed, so resolve
  // each distinct vertex name at most once instead of per neighbor visit.
  std::unordered_map<util::NameId, Item> item_of_name_id;
  auto item_of = [&](VertexId v) -> Item {
    const util::NameId id = graph->vertex(v).name_id;
    auto [it, inserted] = item_of_name_id.try_emplace(id, -1);
    if (inserted) it->second = encoder.Find(std::string(graph->NameOf(v)));
    return it->second;
  };
  auto resolve_endpoint = [&](const std::string& self_name,
                              Item other_item) -> VertexId {
    const auto& candidates = graph->VerticesWithName(self_name);
    if (candidates.empty()) return -1;
    if (!config_.triangle_gated_insertion) return candidates.front();
    for (VertexId v : candidates) {
      for (const auto& [nbr, papers] : graph->NeighborsOf(v)) {
        const Item nbr_item = item_of(nbr);
        if (nbr_item >= 0 && is_scr(nbr_item, other_item)) return v;
      }
    }
    return -1;
  };

  for (const auto& scr : scrs) {
    const Item ia = scr.items[0];
    const Item ib = scr.items[1];
    const std::string& name_a = encoder.Decode(ia);
    const std::string& name_b = encoder.Decode(ib);
    // P_ab: all papers whose byline contains both names — under the stable-
    // relation assumption they are all by the same author pair (Sec. IV-B).
    const std::vector<int> shared =
        IntersectSorted(db.PapersWithName(name_a), db.PapersWithName(name_b));

    VertexId va = resolve_endpoint(name_a, ib);
    VertexId vb = resolve_endpoint(name_b, ia);
    if (va < 0) va = graph->AddVertex(name_a, {});
    if (vb < 0) vb = graph->AddVertex(name_b, {});

    // Attribute each shared occurrence; an occurrence already owned by a
    // *different* same-name vertex proves the two vertices identical.
    for (int pid : shared) {
      VertexId owner_a = occurrences->AssignIfAbsent(pid, name_a, va);
      if (owner_a != va && graph->alive(owner_a) && graph->alive(va)) {
        IUAD_RETURN_NOT_OK(graph->MergeVertices(owner_a, va));
        occurrences->RecordMerge(owner_a, va);
        ++stats.conflict_merges;
        va = owner_a;
        if (vb == va) {
          // Degenerate: conflict merge fused the two endpoints (possible
          // only through pathological same-name chains); skip the edge.
          break;
        }
      }
      VertexId owner_b = occurrences->AssignIfAbsent(pid, name_b, vb);
      if (owner_b != vb && graph->alive(owner_b) && graph->alive(vb)) {
        IUAD_RETURN_NOT_OK(graph->MergeVertices(owner_b, vb));
        occurrences->RecordMerge(owner_b, vb);
        ++stats.conflict_merges;
        vb = owner_b;
      }
      if (va == vb) break;
    }
    if (va == vb || !graph->alive(va) || !graph->alive(vb)) continue;

    graph->AddVertexPapers(va, shared);
    graph->AddVertexPapers(vb, shared);
    IUAD_RETURN_NOT_OK(graph->AddEdgePapers(va, vb, shared));
    stats.covered_occurrences += 2 * static_cast<int64_t>(shared.size());
  }

  // ---- Remaining occurrences become per-paper singleton vertices. --------
  for (const auto& paper : db.papers()) {
    for (const auto& name : paper.author_names) {
      if (occurrences->Lookup(paper.id, name) >= 0) continue;
      VertexId v = graph->AddVertex(name, {paper.id});
      occurrences->AssignIfAbsent(paper.id, name, v);
      ++stats.singleton_occurrences;
    }
  }

  stats.num_vertices = graph->num_alive();
  stats.num_edges = graph->num_edges();
  return stats;
}

}  // namespace iuad::core
