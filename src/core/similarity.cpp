#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/triangles.h"
#include "text/tokenizer.h"

namespace iuad::core {

namespace {

/// Minimum |a_i - b_j| over two sorted year lists (the min(b) of Eq. 7).
int MinYearDiff(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  int best = std::numeric_limits<int>::max();
  while (i < a.size() && j < b.size()) {
    best = std::min(best, std::abs(a[i] - b[j]));
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

/// Finite Adamic/Adar weight: 1 / log(1 + freq). freq >= 1 always.
double AdamicAdar(int64_t freq) {
  return 1.0 / std::log(1.0 + static_cast<double>(std::max<int64_t>(freq, 1)));
}

}  // namespace

SimilarityComputer::SimilarityComputer(const data::PaperDatabase& db,
                                       const graph::CollabGraph& graph,
                                       const text::Word2Vec& embeddings,
                                       const IuadConfig& config,
                                       util::ThreadPool* pool)
    : db_(db),
      graph_(graph),
      embeddings_(embeddings),
      config_(config),
      wl_(graph, config.wl_iterations, pool),
      freqs_(std::make_shared<FrequencySnapshot>(FrequencySnapshot{
          db.venue_frequencies(), db.keyword_frequencies()})) {
  ComputeEmbeddingCenter();
}

void SimilarityComputer::PrewarmStructure(
    const std::vector<graph::VertexId>& vs, util::ThreadPool* pool) const {
  wl_.PrewarmFeatures(vs, pool);
}

void SimilarityComputer::ComputeEmbeddingCenter() {
  embedding_center_.assign(static_cast<size_t>(embeddings_.dim()), 0.0f);
  if (!embeddings_.trained()) return;
  const auto& vocab = embeddings_.vocabulary();
  double total = 0.0;
  text::Vec sum(static_cast<size_t>(embeddings_.dim()), 0.0f);
  for (int id = 0; id < vocab.size(); ++id) {
    const text::Vec* v = embeddings_.VectorOf(vocab.WordOf(id));
    if (v == nullptr) continue;
    const float w = static_cast<float>(vocab.CountOf(id));
    for (size_t i = 0; i < sum.size(); ++i) sum[i] += w * (*v)[i];
    total += w;
  }
  if (total > 0) {
    text::ScaleInPlace(&sum, static_cast<float>(1.0 / total));
    embedding_center_ = std::move(sum);
  }
}

void SimilarityComputer::InvalidateProfile(graph::VertexId v) {
  profiles_.erase(v);
}

SimilarityComputer::Profile SimilarityComputer::BuildProfileFromPapers(
    const std::vector<int>& paper_ids) const {
  Profile p;
  p.num_papers = static_cast<int>(paper_ids.size());
  text::Vec sum(static_cast<size_t>(embeddings_.dim()), 0.0f);
  int embedded_words = 0;
  for (int pid : paper_ids) {
    const data::Paper& paper = db_.paper(pid);
    ++p.venue_counts[paper.venue];
    for (const auto& kw : db_.KeywordsOf(pid)) {
      ++p.keyword_counts[kw];
      p.keyword_years[kw].push_back(paper.year);
      if (const text::Vec* v = embeddings_.VectorOf(kw)) {
        text::AddInPlace(&sum, *v);
        ++embedded_words;
      }
    }
  }
  for (auto& [kw, years] : p.keyword_years) {
    std::sort(years.begin(), years.end());
  }
  if (embedded_words > 0) {
    text::ScaleInPlace(&sum, 1.0f / static_cast<float>(embedded_words));
    // Remove the corpus-wide common component (see ComputeEmbeddingCenter).
    for (size_t i = 0; i < sum.size(); ++i) sum[i] -= embedding_center_[i];
  }
  p.mean_embedding = std::move(sum);
  // Representative venue: most frequent, ties to the lexicographically
  // smallest for determinism.
  int best = -1;
  for (const auto& [venue, cnt] : p.venue_counts) {
    if (cnt > best || (cnt == best && venue < p.representative_venue)) {
      best = cnt;
      p.representative_venue = venue;
    }
  }
  return p;
}

SimilarityComputer::Profile SimilarityComputer::BuildProfileFromSinglePaper(
    const data::Paper& paper) const {
  Profile p;
  p.num_papers = 1;
  ++p.venue_counts[paper.venue];
  p.representative_venue = paper.venue;
  text::Vec sum(static_cast<size_t>(embeddings_.dim()), 0.0f);
  int embedded_words = 0;
  for (const auto& kw : text::ExtractKeywords(paper.title)) {
    ++p.keyword_counts[kw];
    p.keyword_years[kw].push_back(paper.year);
    if (const text::Vec* v = embeddings_.VectorOf(kw)) {
      text::AddInPlace(&sum, *v);
      ++embedded_words;
    }
  }
  if (embedded_words > 0) {
    text::ScaleInPlace(&sum, 1.0f / static_cast<float>(embedded_words));
    for (size_t i = 0; i < sum.size(); ++i) sum[i] -= embedding_center_[i];
  }
  p.mean_embedding = std::move(sum);
  return p;
}

const SimilarityComputer::Profile& SimilarityComputer::ProfileOf(
    graph::VertexId v) const {
  auto it = profiles_.find(v);
  if (it != profiles_.end()) return it->second;
  return profiles_.emplace(v, BuildFullProfile(v)).first->second;
}

SimilarityComputer::Profile SimilarityComputer::BuildFullProfile(
    graph::VertexId v) const {
  Profile p = BuildProfileFromPapers(graph_.vertex(v).papers);
  // Incident triangles by co-author names (L(v) of Eq. 5), as id pairs.
  for (const auto& [a, b] : graph::TrianglesOf(graph_, v)) {
    util::NameId na = graph_.vertex(a).name_id;
    util::NameId nb = graph_.vertex(b).name_id;
    if (nb < na) std::swap(na, nb);
    p.triangle_names.emplace_back(na, nb);
  }
  std::sort(p.triangle_names.begin(), p.triangle_names.end());
  p.triangle_names.erase(
      std::unique(p.triangle_names.begin(), p.triangle_names.end()),
      p.triangle_names.end());
  return p;
}

void SimilarityComputer::PrewarmProfiles(
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
    util::ThreadPool* pool) const {
  std::vector<graph::VertexId> vertices;
  vertices.reserve(pairs.size() * 2);
  for (const auto& [u, v] : pairs) {
    vertices.push_back(u);
    vertices.push_back(v);
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  wl_.PrewarmFeatures(vertices, pool);

  std::vector<graph::VertexId> missing;
  for (graph::VertexId v : vertices) {
    if (profiles_.find(v) == profiles_.end()) missing.push_back(v);
  }
  if (missing.empty()) return;
  std::vector<Profile> built(missing.size());
  util::ForIndices(pool, missing.size(),
                   [&](size_t i) { built[i] = BuildFullProfile(missing[i]); });
  for (size_t i = 0; i < missing.size(); ++i) {
    profiles_.emplace(missing[i], std::move(built[i]));
  }
}

std::vector<SimilarityVector> SimilarityComputer::ComputeBatch(
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
    int num_threads) const {
  if (num_threads <= 0) num_threads = config_.num_threads;
  util::ThreadPool pool(util::ResolveNumThreads(num_threads));
  return ComputeBatch(pairs, &pool);
}

std::vector<SimilarityVector> SimilarityComputer::ComputeBatch(
    const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
    util::ThreadPool* pool) const {
  std::vector<SimilarityVector> gammas(pairs.size());
  if (pairs.empty()) return gammas;
  PrewarmProfiles(pairs, pool);
  // Read-only from here: every profile and WL feature map is cached, so
  // concurrent Compute calls never touch the mutable caches.
  util::ForIndices(pool, pairs.size(), [&](size_t i) {
    gammas[i] = Compute(pairs[i].first, pairs[i].second);
  });
  return gammas;
}

void SimilarityComputer::FillTextAndVenueFeatures(
    const Profile& a, const Profile& b, SimilarityVector* gamma) const {
  const double tau =
      static_cast<double>(std::max(1, std::min(a.num_papers, b.num_papers)));
  // Scale compression for the unbounded overlap features (see header).
  auto squash = [](double x) { return std::log1p(x); };

  // γ3 (Eq. 6): cosine of mean keyword embeddings.
  (*gamma)[2] = text::Cosine(a.mean_embedding, b.mean_embedding);

  // γ4 (Eq. 7): decay-weighted rare-keyword overlap. Iterate the smaller map.
  const Profile& small = a.keyword_years.size() <= b.keyword_years.size() ? a : b;
  const Profile& large = a.keyword_years.size() <= b.keyword_years.size() ? b : a;
  double g4 = 0.0;
  for (const auto& [word, years_s] : small.keyword_years) {
    auto it = large.keyword_years.find(word);
    if (it == large.keyword_years.end()) continue;
    const int diff = MinYearDiff(years_s, it->second);
    g4 += std::exp(-config_.time_decay_alpha * diff) *
          AdamicAdar(freqs_->KeywordFrequency(word));
  }
  (*gamma)[3] = squash(g4 / tau);

  // γ5 (Eq. 8): cross counts of the representative venues.
  auto count_in = [](const Profile& p, const std::string& venue) {
    auto it = p.venue_counts.find(venue);
    return it == p.venue_counts.end() ? 0 : it->second;
  };
  (*gamma)[4] = squash((count_in(b, a.representative_venue) +
                        count_in(a, b.representative_venue)) /
                       tau);

  // γ6 (Eq. 9): Adamic/Adar venue-multiset overlap (multiplicity = min).
  const Profile& vs = a.venue_counts.size() <= b.venue_counts.size() ? a : b;
  const Profile& vl = a.venue_counts.size() <= b.venue_counts.size() ? b : a;
  double g6 = 0.0;
  for (const auto& [venue, cnt_s] : vs.venue_counts) {
    auto it = vl.venue_counts.find(venue);
    if (it == vl.venue_counts.end()) continue;
    g6 += std::min(cnt_s, it->second) * AdamicAdar(freqs_->VenueFrequency(venue));
  }
  (*gamma)[5] = squash(g6 / tau);
}

SimilarityVector SimilarityComputer::Compute(graph::VertexId u,
                                             graph::VertexId v) const {
  SimilarityVector gamma(kNumSimilarities, 0.0);
  const Profile& pu = ProfileOf(u);
  const Profile& pv = ProfileOf(v);
  const double tau =
      static_cast<double>(std::max(1, std::min(pu.num_papers, pv.num_papers)));

  // γ1 (Eq. 3-4): normalized WL subtree kernel.
  gamma[0] = wl_.NormalizedKernel(u, v);

  // γ2 (Eq. 5): common co-author cliques (triangles, by name) over τ.
  std::vector<std::pair<util::NameId, util::NameId>> common;
  std::set_intersection(pu.triangle_names.begin(), pu.triangle_names.end(),
                        pv.triangle_names.begin(), pv.triangle_names.end(),
                        std::back_inserter(common));
  gamma[1] = std::log1p(static_cast<double>(common.size()) / tau);

  FillTextAndVenueFeatures(pu, pv, &gamma);
  return gamma;
}

SimilarityVector SimilarityComputer::ComputeVsNewPaper(
    graph::VertexId v, const data::Paper& paper,
    const std::string& name) const {
  SimilarityVector gamma(kNumSimilarities, 0.0);
  const Profile& pv = ProfileOf(v);
  const Profile pn = BuildProfileFromSinglePaper(paper);

  // γ1: the new occurrence is a star whose neighbors are its byline
  // co-authors; compare those names against v's WL ball.
  std::vector<std::string> coauthors;
  for (const auto& other : paper.author_names) {
    if (other != name) coauthors.push_back(other);
  }
  gamma[0] = wl_.NormalizedKernelVsNameSet(v, coauthors);
  // γ2: an unattached occurrence participates in no cliques yet.
  gamma[1] = 0.0;
  FillTextAndVenueFeatures(pv, pn, &gamma);
  return gamma;
}

}  // namespace iuad::core
