#ifndef IUAD_CORE_SIMILARITY_H_
#define IUAD_CORE_SIMILARITY_H_

/// \file similarity.h
/// The six similarity functions of Sec. V-B, computed between two same-name
/// vertices of the collaboration graph:
///   γ1  normalized Weisfeiler-Lehman subtree kernel          (Eq. 3-4)
///   γ2  co-author clique (triangle) coincidence ratio        (Eq. 5)
///   γ3  cosine of mean title-keyword embeddings              (Eq. 6)
///   γ4  time consistency of research interests               (Eq. 7)
///   γ5  representative-community (top venue) similarity      (Eq. 8)
///   γ6  Adamic/Adar research-community similarity            (Eq. 9)
///
/// Per-vertex profiles (keyword/venue multisets, keyword year lists, mean
/// embedding, incident triangles) are cached lazily; InvalidateProfile lets
/// the incremental path refresh vertices it touches.
///
/// Three deliberate deviations from the paper's formulas, all documented in
/// DESIGN.md: the γ4 exponent is e^(−α·min(b)) — the cited FutureRank decay;
/// the PDF's e^(α·min(b)) grows with the year gap, contradicting the prose —
/// the Adamic/Adar denominators use log(1 + F) to stay finite at F = 1, and
/// the unbounded overlap features γ2/γ4/γ5/γ6 are log1p-compressed so one
/// exponential marginal covers both prolific-vertex pairs (raw overlaps in
/// the tens) and single-paper pairs (raw overlaps of 0-2); without the
/// compression the EM matched component latches onto the large-profile
/// scale and single-paper evidence is mis-scored.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.h"
#include "data/paper_database.h"
#include "graph/collab_graph.h"
#include "graph/wl_kernel.h"
#include "text/word2vec.h"
#include "util/thread_pool.h"

namespace iuad::core {

/// One γ vector.
using SimilarityVector = std::vector<double>;

/// Computes γ vectors against one graph snapshot. The referenced database,
/// graph, and embeddings must outlive this object. Rebuild after bulk graph
/// mutation (merges / splits) — the WL kernel is snapshot-bound.
class SimilarityComputer {
 public:
  /// When `pool` is given, the snapshot-bound WL refinement runs across its
  /// workers (labels identical to a serial build); the pool is only used
  /// during construction and need not outlive this object.
  SimilarityComputer(const data::PaperDatabase& db,
                     const graph::CollabGraph& graph,
                     const text::Word2Vec& embeddings,
                     const IuadConfig& config,
                     util::ThreadPool* pool = nullptr);

  /// γ1..γ6 between two alive vertices (callers pair same-name vertices;
  /// the math does not require it).
  SimilarityVector Compute(graph::VertexId u, graph::VertexId v) const;

  /// γ vectors for every pair, in input order, computed across
  /// `num_threads` workers (<= 0: config.num_threads, itself 0 = hardware
  /// concurrency). Equivalent to calling Compute per pair: the lazily-built
  /// per-vertex profiles and WL features are populated in a prepass
  /// (PrewarmProfiles), after which the parallel region is read-only, and
  /// results land in slots indexed by pair position — identical output at
  /// any thread count.
  std::vector<SimilarityVector> ComputeBatch(
      const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
      int num_threads = -1) const;

  /// Same, on a caller-owned pool (lets callers score in bounded-memory
  /// chunks without respawning workers per chunk).
  std::vector<SimilarityVector> ComputeBatch(
      const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
      util::ThreadPool* pool) const;

  /// Builds (and caches) profiles + WL features of every vertex appearing
  /// in `pairs`, concurrently on `pool` when given. Subsequent Compute
  /// calls touching only these vertices are const in the deep sense and
  /// thread-safe.
  void PrewarmProfiles(
      const std::vector<std::pair<graph::VertexId, graph::VertexId>>& pairs,
      util::ThreadPool* pool = nullptr) const;

  /// γ1..γ6 between vertex `v` and the *new occurrence* of `name` in
  /// `paper` — the isolated-vertex comparison of the incremental path
  /// (Sec. V-E). The paper need not be in the database yet.
  SimilarityVector ComputeVsNewPaper(graph::VertexId v,
                                     const data::Paper& paper,
                                     const std::string& name) const;

  /// Eagerly computes (and caches) the WL ball features of every vertex in
  /// `vs`, fanned out over `pool` when given. The incremental serving paths
  /// call this at every cache refresh for the vertices they may score, so
  /// γ1 between refreshes is a pure function of the refresh-time snapshot —
  /// not of when a lazily-filled ball first happened to be enumerated
  /// against the live adjacency. That timing-independence is what lets the
  /// pipelined shard router score a paper before its sequence predecessors
  /// commit (shard_router.h) while staying byte-identical to sequential
  /// ingestion. Unknown / post-refresh vertex ids are ignored (they have no
  /// refinement labels and deterministically score γ1 = 0).
  void PrewarmStructure(const std::vector<graph::VertexId>& vs,
                        util::ThreadPool* pool = nullptr) const;

  /// Drops the cached profile of `v` (call after v gains papers/edges).
  void InvalidateProfile(graph::VertexId v);

  const graph::WlVertexKernel& wl_kernel() const { return wl_; }

 private:
  /// Cached derived view of one vertex.
  struct Profile {
    int num_papers = 0;
    std::unordered_map<std::string, int> keyword_counts;
    std::unordered_map<std::string, std::vector<int>> keyword_years;  // sorted
    std::unordered_map<std::string, int> venue_counts;
    std::string representative_venue;
    text::Vec mean_embedding;
    /// Incident triangles as sorted interned-name-id pairs (identity by
    /// *name*: two same-name vertices never share neighbor vertices in an
    /// SCN, so the clique comparison of Eq. 5 is necessarily nominal —
    /// and name equality is exactly NameId equality).
    std::vector<std::pair<util::NameId, util::NameId>> triangle_names;
  };

  const Profile& ProfileOf(graph::VertexId v) const;
  /// The cache-free computation behind ProfileOf (papers + triangles);
  /// safe to run concurrently for distinct vertices.
  Profile BuildFullProfile(graph::VertexId v) const;
  Profile BuildProfileFromPapers(const std::vector<int>& paper_ids) const;
  Profile BuildProfileFromSinglePaper(const data::Paper& paper) const;
  void FillTextAndVenueFeatures(const Profile& a, const Profile& b,
                                SimilarityVector* gamma) const;
  /// Frequency-weighted mean of all word vectors. Mean keyword embeddings
  /// are strongly anisotropic (every profile's mean points roughly the same
  /// way, saturating the cosine near 1); subtracting this common component
  /// restores discriminative power for γ3.
  void ComputeEmbeddingCenter();

  /// Corpus statistics frozen at construction. γ4/γ6 weight keyword and
  /// venue overlaps by inverse corpus frequency (Eq. 7 / Eq. 9); between
  /// incremental refreshes those frequencies drift as papers commit, so a
  /// score would otherwise depend on exactly how many papers committed
  /// before it was computed. Snapshotting at refresh makes every score a
  /// pure function of (refresh snapshot, candidate papers) — the same
  /// staleness contract the WL features already have — and is what keeps
  /// pipelined scoring byte-identical to sequential. Shared (not copied) by
  /// the per-shard SimilarityComputer copies. For the batch fit the corpus
  /// is static during scoring, so frozen == live there.
  struct FrequencySnapshot {
    std::unordered_map<std::string, int64_t> venue;
    std::unordered_map<std::string, int64_t> keyword;
    int64_t VenueFrequency(const std::string& v) const {
      auto it = venue.find(v);
      return it == venue.end() ? 0 : it->second;
    }
    int64_t KeywordFrequency(const std::string& w) const {
      auto it = keyword.find(w);
      return it == keyword.end() ? 0 : it->second;
    }
  };

  const data::PaperDatabase& db_;
  const graph::CollabGraph& graph_;
  const text::Word2Vec& embeddings_;
  IuadConfig config_;
  graph::WlVertexKernel wl_;
  text::Vec embedding_center_;
  std::shared_ptr<const FrequencySnapshot> freqs_;
  mutable std::unordered_map<graph::VertexId, Profile> profiles_;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_SIMILARITY_H_
