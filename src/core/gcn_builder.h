#ifndef IUAD_CORE_GCN_BUILDER_H_
#define IUAD_CORE_GCN_BUILDER_H_

/// \file gcn_builder.h
/// Stage 2 of Algorithm 1: Global Collaboration Network construction
/// (Sec. V). For every pair of same-name SCN vertices a similarity vector γ
/// is computed (Sec. V-B); a two-component exponential-family mixture is
/// fitted by EM on a sampled subset (10% by default, Sec. VI-A3) augmented
/// with planted matched pairs from random vertex splitting (Sec. V-F2);
/// pairs scoring log-odds ≥ δ (Eq. 11) are merged; finally the collaborative
/// relations present in the co-author lists are recovered as edges
/// (Algorithm 1, Line 16), completing the global collaboration network.

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/occurrence_index.h"
#include "data/paper_database.h"
#include "em/mixture_model.h"
#include "graph/collab_graph.h"
#include "text/word2vec.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace iuad::core {

/// Stage-2 statistics.
struct GcnStats {
  int64_t names_with_candidates = 0;
  int64_t candidate_pairs = 0;
  int64_t training_pairs = 0;   ///< Sampled (includes augmented).
  int64_t augmented_pairs = 0;  ///< Planted matches from vertex splitting.
  int64_t merges = 0;           ///< Vertices absorbed by decisions.
  int64_t recovered_edges = 0;  ///< Non-stable relations restored (Line 16).
  double em_log_likelihood = 0.0;
  int em_iterations = 0;
};

/// Splits vertex `v` into two by random paper bisection, rewiring incident
/// edges by paper membership. Returns the new vertex (same name). Exposed
/// for tests; `v` must hold at least 2 papers.
iuad::Result<graph::VertexId> SplitVertexForAugmentation(
    graph::CollabGraph* graph, graph::VertexId v, iuad::Rng* rng);

/// Builds the GCN in place.
class GcnBuilder {
 public:
  explicit GcnBuilder(const IuadConfig& config) : config_(config) {}

  /// Mutates `graph` (merges + recovered edges) and `occurrences` (merge
  /// aliases). On success `*model_out` holds the fitted generative model
  /// (null when the corpus has no same-name vertex pairs at all).
  iuad::Result<GcnStats> Build(
      const data::PaperDatabase& db, graph::CollabGraph* graph,
      OccurrenceIndex* occurrences, const text::Word2Vec& embeddings,
      std::unique_ptr<em::MixtureModel>* model_out) const;

  /// All same-name alive vertex pairs, capped per name (deterministic
  /// subsample beyond config_.max_pairs_per_name). Generation is sharded
  /// per name block: each block draws from an RNG derived from
  /// (config.seed, block index) and blocks run independently across `pool`
  /// (null = inline); results are concatenated in block order (names
  /// sorted), so the pair list is byte-identical at any thread count.
  /// Public as the determinism-test surface for the sharded generation.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> CandidatePairs(
      const graph::CollabGraph& graph, util::ThreadPool* pool,
      int64_t* names_with_candidates) const;

 private:
  IuadConfig config_;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_GCN_BUILDER_H_
