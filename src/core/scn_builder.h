#ifndef IUAD_CORE_SCN_BUILDER_H_
#define IUAD_CORE_SCN_BUILDER_H_

/// \file scn_builder.h
/// Stage 1 of Algorithm 1: Stable Collaboration Network construction
/// (Sec. IV). η-SCRs are mined from the co-author lists; 2-SCRs are inserted
/// into the graph with the triangle-gated endpoint resolution of Fig. 4
/// (an existing same-name vertex is reused only when one of its neighbors
/// forms an η-SCR with the other endpoint, i.e. a stable triangle closes);
/// every byline occurrence not covered by any SCR becomes a per-paper
/// singleton vertex (bottom-up: presumed distinct until proven otherwise).

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/occurrence_index.h"
#include "data/paper_database.h"
#include "graph/collab_graph.h"
#include "util/status.h"

namespace iuad::core {

/// Construction statistics (reported by benches and asserted in tests).
struct ScnStats {
  int64_t num_scrs = 0;              ///< Mined η-stable relations.
  int num_vertices = 0;              ///< Alive vertices after stage 1.
  int num_edges = 0;
  int64_t covered_occurrences = 0;   ///< Byline occurrences on SCR edges.
  int64_t singleton_occurrences = 0; ///< Occurrences made singleton vertices.
  /// Same-occurrence conflicts resolved by merging (two SCRs attributing
  /// one byline occurrence to two vertices prove those vertices identical —
  /// an engineering completion of the paper's procedure; DESIGN.md §5).
  int conflict_merges = 0;
};

/// Builds the SCN. Stateless apart from configuration.
class ScnBuilder {
 public:
  explicit ScnBuilder(const IuadConfig& config) : config_(config) {}

  /// Populates `graph` (must be empty) and `occurrences` from `db`.
  iuad::Result<ScnStats> Build(const data::PaperDatabase& db,
                               graph::CollabGraph* graph,
                               OccurrenceIndex* occurrences) const;

 private:
  IuadConfig config_;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_SCN_BUILDER_H_
