#include "core/incremental.h"

#include <limits>

namespace iuad::core {

OccurrenceDecision ScoreOccurrence(const SimilarityComputer& sim,
                                   const em::MixtureModel& model,
                                   const graph::CollabGraph& graph,
                                   const data::Paper& paper,
                                   const std::string& name, double delta,
                                   uint64_t snapshot_version) {
  OccurrenceDecision d;
  d.snapshot_version = snapshot_version;
  // Two calibration differences vs the batch score (both documented in
  // DESIGN.md §5): γ2 is structurally 0 for a not-yet-inserted occurrence
  // and is marginalized out, and the candidate-pair class prior does not
  // describe the new-paper base rate, so the pure likelihood ratio is used.
  const std::vector<bool> mask{true, false, true, true, true, true};
  for (graph::VertexId v : graph.VerticesWithName(name)) {
    ++d.num_candidates;
    const double score = model.LikelihoodRatioMasked(
        sim.ComputeVsNewPaper(v, paper, name), mask);
    if (score > d.best_score) {
      d.best_score = score;
      d.target = v;
    }
  }
  if (d.best_score < delta) d.target = -1;
  return d;
}

iuad::Result<std::vector<IncrementalAssignment>> ApplyDecisions(
    const data::Paper& paper, const std::vector<OccurrenceDecision>& decisions,
    data::PaperDatabase* db, DisambiguationResult* result,
    std::vector<graph::VertexId>* touched) {
  graph::CollabGraph& graph = result->graph;
  const int pid = db->AddPaper(paper);
  std::vector<IncrementalAssignment> out(paper.author_names.size());
  std::vector<graph::VertexId> byline_vertices(paper.author_names.size());
  for (size_t i = 0; i < paper.author_names.size(); ++i) {
    const std::string& name = paper.author_names[i];
    IncrementalAssignment& a = out[i];
    a.name = name;
    a.best_score = decisions[i].best_score;
    a.num_candidates = decisions[i].num_candidates;
    if (decisions[i].target >= 0) {
      a.vertex = decisions[i].target;
      graph.AddVertexPapers(a.vertex, {pid});
      touched->push_back(a.vertex);
    } else {
      a.vertex = graph.AddVertex(name, {pid});
      a.created_new = true;
    }
    result->occurrences.AssignIfAbsent(pid, name, a.vertex);
    byline_vertices[i] = a.vertex;
  }
  // Recover this paper's collaborative relations immediately.
  for (size_t i = 0; i < byline_vertices.size(); ++i) {
    for (size_t j = i + 1; j < byline_vertices.size(); ++j) {
      if (byline_vertices[i] == byline_vertices[j]) continue;
      IUAD_RETURN_NOT_OK(
          graph.AddEdgePapers(byline_vertices[i], byline_vertices[j], {pid}));
      touched->push_back(byline_vertices[i]);
      touched->push_back(byline_vertices[j]);
    }
  }
  return out;
}

IncrementalDisambiguator::IncrementalDisambiguator(
    data::PaperDatabase* db, DisambiguationResult* result, IuadConfig config)
    : db_(db), result_(result), config_(std::move(config)) {
  Refresh();
}

void IncrementalDisambiguator::Refresh() {
  // Fold the adjacency overflow log into the packed base arrays while the
  // caches are being rebuilt anyway. Purely a storage change: neighbor
  // iteration order and content are identical before and after.
  result_->graph.Compact();
  sim_ = std::make_unique<SimilarityComputer>(*db_, result_->graph,
                                              result_->embeddings, config_);
  // Freeze γ1 at the refresh snapshot: compute every alive vertex's WL ball
  // now instead of on first score, so a score between refreshes does not
  // depend on how many papers committed before the ball was first
  // enumerated. Same values as the sharded/pipelined serving paths, which
  // prewarm the identical snapshot partitioned by shard ownership.
  std::vector<graph::VertexId> alive;
  alive.reserve(static_cast<size_t>(result_->graph.num_alive()));
  for (graph::VertexId v = 0; v < result_->graph.num_vertices(); ++v) {
    if (result_->graph.alive(v)) alive.push_back(v);
  }
  sim_->PrewarmStructure(alive);
  since_refresh_ = 0;
}

iuad::Result<std::vector<IncrementalAssignment>>
IncrementalDisambiguator::AddPaper(const data::Paper& paper) {
  if (result_->model == nullptr) {
    return iuad::Status::FailedPrecondition(
        "incremental disambiguation requires a fitted model (run the full "
        "pipeline, not SCN-only)");
  }
  if (paper.author_names.empty()) {
    return iuad::Status::InvalidArgument("paper with empty byline");
  }

  // Phase 1: score every occurrence against the existing same-name vertices
  // (decisions are taken on the pre-ingestion snapshot; Sec. V-E conditions
  // (1) arg-max and (2) threshold δ).
  std::vector<OccurrenceDecision> decisions(paper.author_names.size());
  for (size_t i = 0; i < paper.author_names.size(); ++i) {
    decisions[i] = ScoreOccurrence(*sim_, *result_->model, result_->graph,
                                   paper, paper.author_names[i], config_.delta,
                                   static_cast<uint64_t>(papers_ingested_));
  }

  // Phase 2: mutate database and graph; drop stale profiles either way.
  std::vector<graph::VertexId> touched;
  auto out = ApplyDecisions(paper, decisions, db_, result_, &touched);
  for (graph::VertexId v : touched) sim_->InvalidateProfile(v);
  IUAD_RETURN_NOT_OK(out.status());

  ++papers_ingested_;
  if (++since_refresh_ >= config_.incremental_refresh_interval) Refresh();
  return out;
}

}  // namespace iuad::core
