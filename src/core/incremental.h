#ifndef IUAD_CORE_INCREMENTAL_H_
#define IUAD_CORE_INCREMENTAL_H_

/// \file incremental.h
/// The single-paper disambiguation problem (Sec. V-E). A newly published
/// paper's author occurrence is an isolated vertex in the GCN; IUAD scores
/// it against every same-name vertex with the already-fitted model and
/// assigns it to the arg-max vertex when that score clears δ, otherwise a
/// new author is born. No retraining happens — this is the paper's headline
/// efficiency claim (< 50 ms/paper in Table VI).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "data/paper_database.h"
#include "util/status.h"

namespace iuad::core {

/// Outcome of one byline occurrence of a newly ingested paper.
struct IncrementalAssignment {
  std::string name;
  graph::VertexId vertex = -1;  ///< Owner after ingestion.
  bool created_new = false;     ///< True when a new author vertex was born.
  double best_score = 0.0;      ///< Max log-odds among candidates (Eq. 11).
  int num_candidates = 0;
};

/// Phase-1 verdict for one byline occurrence: the arg-max candidate after
/// the δ threshold (Sec. V-E conditions (1) and (2)), taken on the
/// pre-ingestion snapshot.
struct OccurrenceDecision {
  graph::VertexId target = -1;  ///< -1: found no vertex clearing δ.
  double best_score = -std::numeric_limits<double>::infinity();
  int num_candidates = 0;
  /// Commit version of the graph snapshot the score was taken on (the
  /// number of ApplyDecisions calls that had mutated the graph when
  /// ScoreOccurrence ran). A decision is valid for committing at version V
  /// iff no commit in (snapshot_version, V] wrote the byline's name block —
  /// which makes staleness *detectable* instead of assumed, and is what the
  /// pipelined shard router's block-level conflict tracking checks before
  /// deciding to rescore (shard_router.h). The sequential path stamps and
  /// commits at the same version, trivially valid.
  uint64_t snapshot_version = 0;
};

/// Scores the occurrence of `name` in the not-yet-ingested `paper` against
/// every live same-name vertex. Pure read of graph/model/db (cache fills in
/// `sim` aside), so decisions for distinct bylines may be computed
/// concurrently on distinct SimilarityComputers — the fan-out the shard
/// router (src/shard) exploits. γ2 is masked out and the class prior
/// dropped exactly as documented in DESIGN.md §5. `snapshot_version` is
/// recorded verbatim in the decision (see OccurrenceDecision).
OccurrenceDecision ScoreOccurrence(const SimilarityComputer& sim,
                                   const em::MixtureModel& model,
                                   const graph::CollabGraph& graph,
                                   const data::Paper& paper,
                                   const std::string& name, double delta,
                                   uint64_t snapshot_version = 0);

/// Phase 2: commits one paper's decided bylines — appends the paper to the
/// database, assigns/creates vertices, records occurrences, and recovers
/// the paper's collaborative relations — in exactly the order the
/// sequential AddPaper performs them. Every vertex whose profile went stale
/// (gained papers or edges) is appended to `touched`, including the ones
/// mutated before a mid-commit error; the caller owns invalidating its
/// SimilarityComputer(s) for them.
iuad::Result<std::vector<IncrementalAssignment>> ApplyDecisions(
    const data::Paper& paper, const std::vector<OccurrenceDecision>& decisions,
    data::PaperDatabase* db, DisambiguationResult* result,
    std::vector<graph::VertexId>* touched);

/// Streams new papers into an existing disambiguation result.
///
/// `db` must be the same database the result was built from (ids must
/// agree); both are mutated by AddPaper. Structure caches (WL kernel,
/// profiles) are refreshed every config.incremental_refresh_interval papers;
/// between refreshes new edges are visible to the text/venue features
/// immediately and to the structural features after the next refresh.
class IncrementalDisambiguator {
 public:
  IncrementalDisambiguator(data::PaperDatabase* db,
                           DisambiguationResult* result, IuadConfig config);

  /// Ingests one paper: decides each byline occurrence, updates the
  /// database, graph and occurrence index, and recovers the paper's
  /// collaborative relations. Fails with FailedPrecondition when the result
  /// holds no fitted model (SCN-only runs cannot go incremental).
  iuad::Result<std::vector<IncrementalAssignment>> AddPaper(
      const data::Paper& paper);

  int papers_ingested() const { return papers_ingested_; }

 private:
  void Refresh();

  data::PaperDatabase* db_;
  DisambiguationResult* result_;
  IuadConfig config_;
  std::unique_ptr<SimilarityComputer> sim_;
  int papers_ingested_ = 0;
  int since_refresh_ = 0;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_INCREMENTAL_H_
