#ifndef IUAD_CORE_INCREMENTAL_H_
#define IUAD_CORE_INCREMENTAL_H_

/// \file incremental.h
/// The single-paper disambiguation problem (Sec. V-E). A newly published
/// paper's author occurrence is an isolated vertex in the GCN; IUAD scores
/// it against every same-name vertex with the already-fitted model and
/// assigns it to the arg-max vertex when that score clears δ, otherwise a
/// new author is born. No retraining happens — this is the paper's headline
/// efficiency claim (< 50 ms/paper in Table VI).

#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "data/paper_database.h"
#include "util/status.h"

namespace iuad::core {

/// Outcome of one byline occurrence of a newly ingested paper.
struct IncrementalAssignment {
  std::string name;
  graph::VertexId vertex = -1;  ///< Owner after ingestion.
  bool created_new = false;     ///< True when a new author vertex was born.
  double best_score = 0.0;      ///< Max log-odds among candidates (Eq. 11).
  int num_candidates = 0;
};

/// Streams new papers into an existing disambiguation result.
///
/// `db` must be the same database the result was built from (ids must
/// agree); both are mutated by AddPaper. Structure caches (WL kernel,
/// profiles) are refreshed every config.incremental_refresh_interval papers;
/// between refreshes new edges are visible to the text/venue features
/// immediately and to the structural features after the next refresh.
class IncrementalDisambiguator {
 public:
  IncrementalDisambiguator(data::PaperDatabase* db,
                           DisambiguationResult* result, IuadConfig config);

  /// Ingests one paper: decides each byline occurrence, updates the
  /// database, graph and occurrence index, and recovers the paper's
  /// collaborative relations. Fails with FailedPrecondition when the result
  /// holds no fitted model (SCN-only runs cannot go incremental).
  iuad::Result<std::vector<IncrementalAssignment>> AddPaper(
      const data::Paper& paper);

  int papers_ingested() const { return papers_ingested_; }

 private:
  void Refresh();

  data::PaperDatabase* db_;
  DisambiguationResult* result_;
  IuadConfig config_;
  std::unique_ptr<SimilarityComputer> sim_;
  int papers_ingested_ = 0;
  int since_refresh_ = 0;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_INCREMENTAL_H_
