#include "core/gcn_builder.h"

#include <algorithm>

#include "core/similarity.h"
#include "graph/union_find.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace iuad::core {

using graph::VertexId;

iuad::Result<VertexId> SplitVertexForAugmentation(graph::CollabGraph* graph,
                                                  VertexId v,
                                                  iuad::Rng* rng) {
  if (!graph->alive(v)) {
    return iuad::Status::FailedPrecondition("cannot split dead vertex");
  }
  std::vector<int> papers = graph->vertex(v).papers;
  if (papers.size() < 2) {
    return iuad::Status::InvalidArgument("vertex has < 2 papers to split");
  }
  rng->Shuffle(&papers);
  const size_t half = papers.size() / 2;
  std::vector<int> moved(papers.begin(), papers.begin() + static_cast<long>(half));
  std::vector<int> kept(papers.begin() + static_cast<long>(half), papers.end());
  std::sort(moved.begin(), moved.end());
  std::sort(kept.begin(), kept.end());

  const VertexId v2 = graph->AddVertexWithId(graph->vertex(v).name_id, moved);
  graph->SetVertexPapers(v, kept);

  // Edge surgery: an incident edge's papers follow the half they belong to.
  // Materialize first: NeighborsOf is a view into rows we mutate below.
  std::vector<std::pair<VertexId, std::vector<int>>> neighbors;
  for (const auto& [nbr, eps] : graph->NeighborsOf(v)) {
    neighbors.emplace_back(nbr, eps);
  }
  for (const auto& [nbr, edge_papers] : neighbors) {
    std::vector<int> stay, go;
    for (int pid : edge_papers) {
      if (std::binary_search(moved.begin(), moved.end(), pid)) {
        go.push_back(pid);
      } else {
        stay.push_back(pid);
      }
    }
    if (go.empty()) continue;
    IUAD_RETURN_NOT_OK(graph->SetEdgePapers(v, nbr, std::move(stay)));
    IUAD_RETURN_NOT_OK(graph->AddEdgePapers(v2, nbr, go));
  }
  return v2;
}

std::vector<std::pair<VertexId, VertexId>> GcnBuilder::CandidatePairs(
    const graph::CollabGraph& graph, util::ThreadPool* pool,
    int64_t* names_with_candidates) const {
  // Name blocks in sorted-name order (NameIdsSorted is sorted by the name
  // string); only names shared by >= 2 alive vertices produce pairs.
  std::vector<const std::vector<VertexId>*> blocks;
  for (util::NameId id : graph.NameIdsSorted()) {
    const auto& verts = graph.VerticesWithId(id);
    if (verts.size() >= 2) blocks.push_back(&verts);
  }
  // Each block is generated independently with an RNG derived from
  // (seed, block index), then blocks are concatenated in block order —
  // output is a pure function of (graph, config), not of thread count.
  std::vector<std::vector<std::pair<VertexId, VertexId>>> block_pairs(
      blocks.size());
  util::ForIndices(pool, blocks.size(), [&](size_t b) {
    const auto& verts = *blocks[b];
    auto& out = block_pairs[b];
    const int64_t all = static_cast<int64_t>(verts.size()) *
                        (static_cast<int64_t>(verts.size()) - 1) / 2;
    if (all <= config_.max_pairs_per_name) {
      out.reserve(static_cast<size_t>(all));
      for (size_t i = 0; i < verts.size(); ++i) {
        for (size_t j = i + 1; j < verts.size(); ++j) {
          out.emplace_back(verts[i], verts[j]);
        }
      }
    } else {
      // Deterministic subsample: random index pairs without enumeration.
      iuad::Rng rng(iuad::DeriveStreamSeed(config_.seed ^ 0xb10cf00dULL, b));
      out.reserve(static_cast<size_t>(config_.max_pairs_per_name));
      for (int64_t k = 0; k < config_.max_pairs_per_name; ++k) {
        const size_t i = rng.NextBounded(verts.size());
        size_t j = rng.NextBounded(verts.size() - 1);
        if (j >= i) ++j;
        out.emplace_back(std::min(verts[i], verts[j]),
                         std::max(verts[i], verts[j]));
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
  });
  std::vector<std::pair<VertexId, VertexId>> pairs;
  size_t total = 0;
  for (const auto& bp : block_pairs) total += bp.size();
  pairs.reserve(total);
  for (auto& bp : block_pairs) {
    pairs.insert(pairs.end(), bp.begin(), bp.end());
  }
  if (names_with_candidates) {
    *names_with_candidates = static_cast<int64_t>(blocks.size());
  }
  return pairs;
}

iuad::Result<GcnStats> GcnBuilder::Build(
    const data::PaperDatabase& db, graph::CollabGraph* graph,
    OccurrenceIndex* occurrences, const text::Word2Vec& embeddings,
    std::unique_ptr<em::MixtureModel>* model_out) const {
  GcnStats stats;
  model_out->reset();
  iuad::Rng rng(config_.seed ^ 0x9cda1f);
  util::ThreadPool pool(util::ResolveNumThreads(config_.num_threads));

  // ---- Vertex-splitting augmentation (Sec. V-F2). ------------------------
  std::vector<std::pair<VertexId, VertexId>> augmented;
  if (config_.vertex_splitting) {
    std::vector<VertexId> eligible;
    for (VertexId v : graph->AliveVertices()) {
      if (static_cast<int>(graph->vertex(v).papers.size()) >=
          config_.split_min_papers) {
        eligible.push_back(v);
      }
    }
    rng.Shuffle(&eligible);
    if (static_cast<int>(eligible.size()) > config_.max_split_vertices) {
      eligible.resize(static_cast<size_t>(config_.max_split_vertices));
    }
    for (VertexId v : eligible) {
      auto v2 = SplitVertexForAugmentation(graph, v, &rng);
      if (!v2.ok()) return v2.status();
      augmented.emplace_back(v, *v2);
    }
    stats.augmented_pairs = static_cast<int64_t>(augmented.size());
  }

  // ---- Training data on the augmented graph. -----------------------------
  std::vector<std::vector<double>> train_gammas;
  int64_t n_aug_in_train = 0;
  {
    SimilarityComputer sim(db, *graph, embeddings, config_, &pool);
    int64_t names = 0;
    auto pairs = CandidatePairs(*graph, &pool, &names);
    // Sample config_.sample_rate of the candidate pairs...
    std::vector<std::pair<VertexId, VertexId>> sampled;
    for (const auto& pr : pairs) {
      if (rng.Bernoulli(config_.sample_rate)) sampled.push_back(pr);
    }
    // ...but never train on an empty/near-empty set if candidates exist.
    if (sampled.size() < 8 && !pairs.empty()) {
      sampled.assign(pairs.begin(),
                     pairs.begin() + std::min<size_t>(pairs.size(), 64));
    }
    // The planted split pairs are part of the candidate set by construction
    // (same name); make sure each is present exactly once.
    std::sort(sampled.begin(), sampled.end());
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    for (auto [v, v2] : augmented) {
      auto pr = std::make_pair(std::min(v, v2), std::max(v, v2));
      if (!std::binary_search(sampled.begin(), sampled.end(), pr)) {
        sampled.push_back(pr);
      }
    }
    // Similarity vectors (computed across the thread pool, returned in
    // sampled-pair order) + which rows are planted matches.
    std::vector<bool> is_planted(sampled.size(), false);
    std::sort(augmented.begin(), augmented.end());
    for (size_t k = 0; k < sampled.size(); ++k) {
      auto pr = std::make_pair(std::min(sampled[k].first, sampled[k].second),
                               std::max(sampled[k].first, sampled[k].second));
      is_planted[k] = std::binary_search(augmented.begin(), augmented.end(), pr);
      if (is_planted[k]) ++n_aug_in_train;
    }
    train_gammas = sim.ComputeBatch(sampled, &pool);
    stats.training_pairs = static_cast<int64_t>(train_gammas.size());

    if (!train_gammas.empty()) {
      auto model = std::make_unique<em::MixtureModel>([&] {
        em::MixtureConfig mc = config_.em;
        mc.families = config_.families;
        return mc;
      }());
      std::vector<double> init = model->InitialResponsibilities(train_gammas);
      for (size_t k = 0; k < init.size(); ++k) {
        if (is_planted[k]) init[k] = 1.0 - 1e-3;
      }
      // Semi-supervision (Sec. VII future work): known pair labels pin
      // their initial responsibilities.
      if (config_.pair_label_oracle) {
        for (size_t k = 0; k < sampled.size(); ++k) {
          const int label = config_.pair_label_oracle(*graph, sampled[k].first,
                                                      sampled[k].second);
          if (label == 1) init[k] = 1.0 - 1e-3;
          if (label == 0) init[k] = 1e-3;
        }
      }
      IUAD_RETURN_NOT_OK(model->Fit(train_gammas, init));
      stats.em_log_likelihood = model->final_log_likelihood();
      stats.em_iterations = model->iterations_run();
      *model_out = std::move(model);
    }
  }

  // ---- Undo the augmentation splits. --------------------------------------
  for (auto [v, v2] : augmented) {
    IUAD_RETURN_NOT_OK(graph->MergeVertices(v, v2));
  }

  if (*model_out == nullptr) {
    // No same-name pairs anywhere: the SCN is already the GCN; still recover
    // the co-author-list relations below.
    IUAD_LOG(kInfo) << "GCN: no candidate pairs; skipping EM/merge phase";
  } else {
    // ---- Decision phase on the clean graph (Lines 11-15). ----------------
    SimilarityComputer sim(db, *graph, embeddings, config_, &pool);
    auto pairs = CandidatePairs(*graph, &pool, &stats.names_with_candidates);
    stats.candidate_pairs = static_cast<int64_t>(pairs.size());
    graph::UnionFind uf(graph->num_vertices());
    const em::MixtureModel& model = **model_out;
    // γ vectors across the thread pool, in bounded-memory chunks (a full
    // materialization would hold one heap-allocated vector per candidate
    // pair — GBs at DBLP scale). Merge decisions are applied in
    // candidate-pair order within and across chunks, so the union-find
    // (and thus which vertex survives each merge set) is independent of
    // thread scheduling.
    constexpr size_t kScoreChunk = 1 << 16;
    std::vector<std::pair<VertexId, VertexId>> chunk;
    for (size_t base = 0; base < pairs.size(); base += kScoreChunk) {
      const size_t n = std::min(kScoreChunk, pairs.size() - base);
      chunk.assign(pairs.begin() + static_cast<long>(base),
                   pairs.begin() + static_cast<long>(base + n));
      const std::vector<SimilarityVector> gammas =
          sim.ComputeBatch(chunk, &pool);
      for (size_t k = 0; k < n; ++k) {
        const double score = model.MatchScore(gammas[k]);
        if (score >= config_.delta) uf.Union(chunk[k].first, chunk[k].second);
      }
    }
    // Apply merges: within each set, absorb everything into the lowest id.
    std::unordered_map<int, VertexId> keeper;
    for (VertexId v : graph->AliveVertices()) {
      const int root = uf.Find(v);
      auto [it, inserted] = keeper.try_emplace(root, v);
      if (inserted) continue;
      IUAD_RETURN_NOT_OK(graph->MergeVertices(it->second, v));
      occurrences->RecordMerge(it->second, v);
      ++stats.merges;
    }
  }

  // ---- Recover collaborative relations from co-author lists (Line 16). ---
  for (const auto& paper : db.papers()) {
    const size_t n = paper.author_names.size();
    for (size_t i = 0; i < n; ++i) {
      const VertexId vi = occurrences->Lookup(paper.id, paper.author_names[i]);
      if (vi < 0) continue;
      for (size_t j = i + 1; j < n; ++j) {
        const VertexId vj =
            occurrences->Lookup(paper.id, paper.author_names[j]);
        if (vj < 0 || vj == vi) continue;
        const bool existed = graph->NeighborsOf(vi).count(vj) > 0;
        IUAD_RETURN_NOT_OK(graph->AddEdgePapers(vi, vj, {paper.id}));
        if (!existed) ++stats.recovered_edges;
      }
    }
  }
  return stats;
}

}  // namespace iuad::core
