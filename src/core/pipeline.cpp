#include "core/pipeline.h"

#include "util/logging.h"
#include "util/stopwatch.h"

namespace iuad::core {

iuad::Result<DisambiguationResult> IuadPipeline::Run(
    const data::PaperDatabase& db) const {
  IUAD_RETURN_NOT_OK(config_.Validate());
  DisambiguationResult result;

  // Title-keyword embeddings for γ3 (corpus-trained; DESIGN.md §2).
  {
    iuad::Stopwatch sw;
    text::Word2VecConfig wc = config_.word2vec;
    wc.seed = config_.seed ^ 0x5eedbeef;
    // Shard training across the pipeline's worker budget. The shard layout
    // is data-dependent only (Word2VecConfig::num_shards), so embeddings
    // stay byte-identical at any --threads setting.
    wc.num_threads = config_.num_threads;
    result.embeddings = text::Word2Vec(wc);
    std::vector<std::vector<std::string>> sentences;
    sentences.reserve(static_cast<size_t>(db.num_papers()));
    for (const auto& paper : db.papers()) {
      sentences.push_back(db.KeywordsOf(paper.id));
    }
    iuad::Status st = result.embeddings.Train(sentences);
    if (!st.ok()) {
      // A corpus too small/odd for embeddings is not fatal: γ3 degrades to 0.
      IUAD_LOG(kWarning) << "word2vec training skipped: " << st.ToString();
    }
    result.embed_seconds = sw.ElapsedSeconds();
  }

  {
    iuad::Stopwatch sw;
    ScnBuilder scn(config_);
    auto stats = scn.Build(db, &result.graph, &result.occurrences);
    if (!stats.ok()) return stats.status();
    result.scn_stats = *stats;
    result.scn_seconds = sw.ElapsedSeconds();
  }

  {
    iuad::Stopwatch sw;
    GcnBuilder gcn(config_);
    auto stats = gcn.Build(db, &result.graph, &result.occurrences,
                           result.embeddings, &result.model);
    if (!stats.ok()) return stats.status();
    result.gcn_stats = *stats;
    result.gcn_seconds = sw.ElapsedSeconds();
  }
  return result;
}

iuad::Result<DisambiguationResult> IuadPipeline::RunScnOnly(
    const data::PaperDatabase& db) const {
  IUAD_RETURN_NOT_OK(config_.Validate());
  DisambiguationResult result;
  iuad::Stopwatch sw;
  ScnBuilder scn(config_);
  auto stats = scn.Build(db, &result.graph, &result.occurrences);
  if (!stats.ok()) return stats.status();
  result.scn_stats = *stats;
  IUAD_RETURN_NOT_OK(RecoverRelations(db, &result));
  result.scn_seconds = sw.ElapsedSeconds();
  return result;
}

iuad::Status IuadPipeline::RecoverRelations(const data::PaperDatabase& db,
                                            DisambiguationResult* result) const {
  for (const auto& paper : db.papers()) {
    const size_t n = paper.author_names.size();
    for (size_t i = 0; i < n; ++i) {
      const graph::VertexId vi =
          result->occurrences.Lookup(paper.id, paper.author_names[i]);
      if (vi < 0) continue;
      for (size_t j = i + 1; j < n; ++j) {
        const graph::VertexId vj =
            result->occurrences.Lookup(paper.id, paper.author_names[j]);
        if (vj < 0 || vj == vi) continue;
        IUAD_RETURN_NOT_OK(result->graph.AddEdgePapers(vi, vj, {paper.id}));
      }
    }
  }
  return iuad::Status::OK();
}

}  // namespace iuad::core
