#ifndef IUAD_CORE_PIPELINE_H_
#define IUAD_CORE_PIPELINE_H_

/// \file pipeline.h
/// The public entry point: runs Algorithm 1 end-to-end over a paper
/// database and returns the reconstructed global collaboration network plus
/// everything the incremental path needs (fitted model, embeddings,
/// occurrence attribution).

#include <memory>

#include "core/config.h"
#include "core/gcn_builder.h"
#include "core/occurrence_index.h"
#include "core/scn_builder.h"
#include "data/paper_database.h"
#include "em/mixture_model.h"
#include "graph/collab_graph.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace iuad::core {

/// Everything IUAD produces. Move-only (owns the fitted model).
struct DisambiguationResult {
  graph::CollabGraph graph;        ///< The reconstructed network.
  OccurrenceIndex occurrences;     ///< (paper, name) -> vertex attribution.
  std::unique_ptr<em::MixtureModel> model;  ///< Fitted Θ̂ (null in SCN-only runs).
  text::Word2Vec embeddings;       ///< Title-keyword vectors (γ3).
  ScnStats scn_stats;
  GcnStats gcn_stats;
  double embed_seconds = 0.0;
  double scn_seconds = 0.0;
  double gcn_seconds = 0.0;
};

/// Facade over ScnBuilder + GcnBuilder.
class IuadPipeline {
 public:
  explicit IuadPipeline(IuadConfig config = {}) : config_(std::move(config)) {}

  /// Full two-stage run (Algorithm 1).
  iuad::Result<DisambiguationResult> Run(const data::PaperDatabase& db) const;

  /// Stage-1-only run: the "SCN" arm of Table IV. No embeddings are trained
  /// and no model is fitted; collaborative-relation recovery (Line 16) is
  /// still applied so the output is a complete network.
  iuad::Result<DisambiguationResult> RunScnOnly(
      const data::PaperDatabase& db) const;

  const IuadConfig& config() const { return config_; }

 private:
  iuad::Status RecoverRelations(const data::PaperDatabase& db,
                                DisambiguationResult* result) const;

  IuadConfig config_;
};

}  // namespace iuad::core

#endif  // IUAD_CORE_PIPELINE_H_
