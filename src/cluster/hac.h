#ifndef IUAD_CLUSTER_HAC_H_
#define IUAD_CLUSTER_HAC_H_

/// \file hac.h
/// Hierarchical agglomerative clustering with selectable linkage over a
/// precomputed distance matrix. This is the clusterer of the ANON [22] and
/// Aminer [33] baselines (papers in one cluster = one author).

#include <vector>

#include "util/status.h"

namespace iuad::cluster {

enum class Linkage { kSingle, kComplete, kAverage };

struct HacConfig {
  Linkage linkage = Linkage::kAverage;
  /// Merging stops when the closest pair of clusters is farther than this.
  double distance_threshold = 0.5;
};

/// Clusters n items given an n x n symmetric distance matrix. Returns dense
/// cluster labels in [0, k). O(n^2) memory, O(n^2 log n)-ish time via
/// nearest-neighbor caching — adequate for per-name paper sets.
iuad::Result<std::vector<int>> Hac(
    const std::vector<std::vector<double>>& distances, const HacConfig& config);

}  // namespace iuad::cluster

#endif  // IUAD_CLUSTER_HAC_H_
