#ifndef IUAD_CLUSTER_AFFINITY_PROPAGATION_H_
#define IUAD_CLUSTER_AFFINITY_PROPAGATION_H_

/// \file affinity_propagation.h
/// Affinity Propagation (Frey & Dueck, Science 2007): exemplar-based
/// clustering by responsibility/availability message passing over a
/// similarity matrix. Used by the GHOST [27] and NetE [23] baselines.

#include <limits>
#include <vector>

#include "util/status.h"

namespace iuad::cluster {

struct ApConfig {
  /// Message damping in [0.5, 1).
  double damping = 0.7;
  int max_iterations = 200;
  /// Stop after this many iterations without exemplar changes.
  int convergence_iterations = 15;
  /// Self-similarity (preference). NaN = use the median of the input
  /// similarities (the standard default; fewer clusters <- lower values).
  double preference = std::numeric_limits<double>::quiet_NaN();
};

/// Clusters n items from an n x n similarity matrix (higher = more alike).
/// Returns dense labels; every item is assigned to its exemplar's cluster.
iuad::Result<std::vector<int>> AffinityPropagation(
    const std::vector<std::vector<double>>& similarities,
    const ApConfig& config);

}  // namespace iuad::cluster

#endif  // IUAD_CLUSTER_AFFINITY_PROPAGATION_H_
