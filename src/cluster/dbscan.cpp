#include "cluster/dbscan.h"

#include <queue>

namespace iuad::cluster {

iuad::Result<std::vector<int>> Dbscan(
    const std::vector<std::vector<double>>& distances,
    const DbscanConfig& config) {
  const size_t n = distances.size();
  for (const auto& row : distances) {
    if (row.size() != n) {
      return iuad::Status::InvalidArgument("distance matrix must be square");
    }
  }
  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);

  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> nbrs;
    for (size_t j = 0; j < n; ++j) {
      if (distances[i][j] <= config.eps) nbrs.push_back(j);  // includes self
    }
    return nbrs;
  };

  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    auto nbrs = neighbors_of(i);
    if (static_cast<int>(nbrs.size()) < config.min_points) {
      labels[i] = -1;  // provisional noise; may be claimed as border later
      continue;
    }
    const int cid = next_cluster++;
    labels[i] = cid;
    std::queue<size_t> frontier;
    for (size_t j : nbrs) {
      if (j != i) frontier.push(j);
    }
    while (!frontier.empty()) {
      const size_t j = frontier.front();
      frontier.pop();
      if (labels[j] == -1) labels[j] = cid;  // border point
      if (labels[j] != kUnvisited) continue;
      labels[j] = cid;
      auto jn = neighbors_of(j);
      if (static_cast<int>(jn.size()) >= config.min_points) {
        for (size_t k : jn) {
          if (labels[k] == kUnvisited || labels[k] == -1) frontier.push(k);
        }
      }
    }
  }
  // Noise -> singletons.
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] < 0) labels[i] = next_cluster++;
  }
  return labels;
}

}  // namespace iuad::cluster
