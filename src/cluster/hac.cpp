#include "cluster/hac.h"

#include <algorithm>
#include <limits>

namespace iuad::cluster {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

iuad::Result<std::vector<int>> Hac(
    const std::vector<std::vector<double>>& distances,
    const HacConfig& config) {
  const size_t n = distances.size();
  for (const auto& row : distances) {
    if (row.size() != n) {
      return iuad::Status::InvalidArgument("distance matrix must be square");
    }
  }
  std::vector<int> labels(n);
  if (n == 0) return labels;

  // Working copy with Lance-Williams updates; `size[i]` tracks cluster
  // cardinality for average linkage, `active[i]` marks live clusters.
  std::vector<std::vector<double>> d = distances;
  std::vector<int> size(n, 1);
  std::vector<bool> active(n, true);
  std::vector<int> member(n);  // item -> current cluster id
  for (size_t i = 0; i < n; ++i) member[i] = static_cast<int>(i);

  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = kInf;
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    if (best > config.distance_threshold) break;

    // Merge bj into bi.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double nd;
      switch (config.linkage) {
        case Linkage::kSingle:
          nd = std::min(d[bi][k], d[bj][k]);
          break;
        case Linkage::kComplete:
          nd = std::max(d[bi][k], d[bj][k]);
          break;
        case Linkage::kAverage:
        default:
          nd = (d[bi][k] * size[bi] + d[bj][k] * size[bj]) /
               static_cast<double>(size[bi] + size[bj]);
          break;
      }
      d[bi][k] = d[k][bi] = nd;
    }
    size[bi] += size[bj];
    active[bj] = false;
    for (size_t item = 0; item < n; ++item) {
      if (member[item] == static_cast<int>(bj)) {
        member[item] = static_cast<int>(bi);
      }
    }
  }

  // Densify labels.
  std::vector<int> remap(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    int& r = remap[static_cast<size_t>(member[i])];
    if (r == -1) r = next++;
    labels[i] = r;
  }
  return labels;
}

}  // namespace iuad::cluster
