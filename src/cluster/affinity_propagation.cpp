#include "cluster/affinity_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace iuad::cluster {

iuad::Result<std::vector<int>> AffinityPropagation(
    const std::vector<std::vector<double>>& similarities,
    const ApConfig& config) {
  const size_t n = similarities.size();
  for (const auto& row : similarities) {
    if (row.size() != n) {
      return iuad::Status::InvalidArgument("similarity matrix must be square");
    }
  }
  std::vector<int> labels(n, 0);
  if (n <= 1) return labels;

  // Preference: median of off-diagonal similarities unless overridden.
  double pref = config.preference;
  if (std::isnan(pref)) {
    std::vector<double> vals;
    vals.reserve(n * (n - 1));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i != j) vals.push_back(similarities[i][j]);
      }
    }
    std::nth_element(vals.begin(), vals.begin() + static_cast<long>(vals.size() / 2),
                     vals.end());
    pref = vals[vals.size() / 2];
  }

  std::vector<std::vector<double>> s = similarities;
  for (size_t i = 0; i < n; ++i) s[i][i] = pref;

  std::vector<std::vector<double>> r(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<int> exemplar(n, -1);
  int stable_iters = 0;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Responsibilities: r(i,k) <- s(i,k) - max_{k' != k} [a(i,k') + s(i,k')].
    for (size_t i = 0; i < n; ++i) {
      double max1 = -std::numeric_limits<double>::infinity();
      double max2 = max1;
      size_t arg1 = 0;
      for (size_t k = 0; k < n; ++k) {
        const double v = a[i][k] + s[i][k];
        if (v > max1) {
          max2 = max1;
          max1 = v;
          arg1 = k;
        } else if (v > max2) {
          max2 = v;
        }
      }
      for (size_t k = 0; k < n; ++k) {
        const double sub = (k == arg1) ? max2 : max1;
        r[i][k] = config.damping * r[i][k] +
                  (1.0 - config.damping) * (s[i][k] - sub);
      }
    }
    // Availabilities: a(i,k) <- min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k)));
    // a(k,k) <- sum_{i' != k} max(0, r(i',k)).
    for (size_t k = 0; k < n; ++k) {
      double pos_sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (i != k) pos_sum += std::max(0.0, r[i][k]);
      }
      for (size_t i = 0; i < n; ++i) {
        double v;
        if (i == k) {
          v = pos_sum;
        } else {
          v = std::min(0.0, r[k][k] + pos_sum - std::max(0.0, r[i][k]));
        }
        a[i][k] = config.damping * a[i][k] + (1.0 - config.damping) * v;
      }
    }
    // Exemplar check.
    std::vector<int> new_exemplar(n);
    for (size_t i = 0; i < n; ++i) {
      double best = -std::numeric_limits<double>::infinity();
      size_t arg = i;
      for (size_t k = 0; k < n; ++k) {
        const double v = a[i][k] + r[i][k];
        if (v > best) {
          best = v;
          arg = k;
        }
      }
      new_exemplar[i] = static_cast<int>(arg);
    }
    if (new_exemplar == exemplar) {
      if (++stable_iters >= config.convergence_iterations) break;
    } else {
      stable_iters = 0;
      exemplar = std::move(new_exemplar);
    }
  }

  // Items whose exemplar is itself are cluster centers; everyone else joins
  // their exemplar's center (one hop is enough after convergence; fall back
  // to self otherwise).
  std::vector<int> center(n);
  for (size_t i = 0; i < n; ++i) {
    const int e = exemplar[static_cast<size_t>(i)];
    center[i] = (exemplar[static_cast<size_t>(e)] == e) ? e : static_cast<int>(i);
  }
  std::vector<int> remap(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    int& m = remap[static_cast<size_t>(center[i])];
    if (m == -1) m = next++;
    labels[i] = m;
  }
  return labels;
}

}  // namespace iuad::cluster
