#ifndef IUAD_CLUSTER_DBSCAN_H_
#define IUAD_CLUSTER_DBSCAN_H_

/// \file dbscan.h
/// DBSCAN density clustering over a precomputed distance matrix. Stands in
/// for the HDBSCAN clusterer of the NetE [23] baseline (same density-based
/// family; DESIGN.md §2). Noise points become singleton clusters — in
/// author disambiguation an unclustered paper is simply its own author.

#include <vector>

#include "util/status.h"

namespace iuad::cluster {

struct DbscanConfig {
  double eps = 0.3;   ///< Neighborhood radius.
  int min_points = 2; ///< Core-point density threshold (incl. self).
};

/// Clusters n items given an n x n distance matrix; returns dense labels
/// with noise points as singletons.
iuad::Result<std::vector<int>> Dbscan(
    const std::vector<std::vector<double>>& distances,
    const DbscanConfig& config);

}  // namespace iuad::cluster

#endif  // IUAD_CLUSTER_DBSCAN_H_
