#include "io/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/occurrence_index.h"
#include "em/distributions.h"
#include "em/mixture_model.h"
#include "graph/collab_graph.h"
#include "io/byte_codec.h"
#include "io/fsync_util.h"
#include "shard/placement.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"
#include "util/thread_pool.h"

namespace iuad::io {

namespace {

constexpr char kMagic[8] = {'I', 'U', 'A', 'D', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderSize = 40;  // magic + version + fp + size + 2 checksums

/// v2 section kinds (the table's `kind` field).
constexpr uint32_t kSectionCommon = 0;
constexpr uint32_t kSectionShard = 1;
/// One v2 section-table entry: kind u32 + size u64 + checksum u64.
constexpr size_t kSectionEntrySize = 20;

// ---- Section: config ------------------------------------------------------

void WriteConfig(const core::IuadConfig& c, uint32_t version, Writer* w) {
  w->I64(c.eta);
  w->Bool(c.triangle_gated_insertion);
  w->I32(c.wl_iterations);
  w->F64(c.time_decay_alpha);
  w->I32(c.word2vec.dim);
  w->I32(c.word2vec.window);
  w->I32(c.word2vec.negatives);
  w->I32(c.word2vec.epochs);
  w->F64(c.word2vec.learning_rate);
  w->I32(c.word2vec.min_count);
  w->F64(c.word2vec.subsample);
  w->U64(c.word2vec.seed);
  w->I32(c.word2vec.num_threads);
  w->I32(c.word2vec.num_shards);
  w->F64(c.delta);
  w->F64(c.sample_rate);
  w->Bool(c.vertex_splitting);
  w->I32(c.split_min_papers);
  w->I32(c.max_split_vertices);
  w->I32(c.max_pairs_per_name);
  w->U64(c.families.size());
  for (em::FamilyType f : c.families) w->U8(static_cast<uint8_t>(f));
  w->I32(c.em.max_iterations);
  w->F64(c.em.tolerance);
  w->F64(c.em.init_quantile);
  w->F64(c.em.init_high);
  w->F64(c.em.init_low);
  w->F64(c.em.min_prior);
  w->I32(c.num_threads);
  w->I32(c.incremental_refresh_interval);
  w->U64(c.seed);
  w->I32(c.ingest_queue_capacity);
  w->I32(c.ingest_refresh_window);
  if (version >= 2) {
    w->I32(c.num_shards);
    w->U8(static_cast<uint8_t>(c.shard_placement));
    w->I32(c.em.num_threads);
  }
  // snapshot_path / persist_snapshot are runtime knobs of the *saving*
  // process, not properties of the fitted state; pair_label_oracle is a
  // std::function and cannot round-trip. None are serialized.
}

core::IuadConfig ReadConfig(uint32_t version, Reader* r) {
  core::IuadConfig c;
  c.eta = r->I64();
  c.triangle_gated_insertion = r->Bool();
  c.wl_iterations = r->I32();
  c.time_decay_alpha = r->F64();
  c.word2vec.dim = r->I32();
  c.word2vec.window = r->I32();
  c.word2vec.negatives = r->I32();
  c.word2vec.epochs = r->I32();
  c.word2vec.learning_rate = r->F64();
  c.word2vec.min_count = r->I32();
  c.word2vec.subsample = r->F64();
  c.word2vec.seed = r->U64();
  c.word2vec.num_threads = r->I32();
  c.word2vec.num_shards = r->I32();
  c.delta = r->F64();
  c.sample_rate = r->F64();
  c.vertex_splitting = r->Bool();
  c.split_min_papers = r->I32();
  c.max_split_vertices = r->I32();
  c.max_pairs_per_name = r->I32();
  const uint64_t nf = r->U64();
  c.families.clear();
  for (uint64_t i = 0; i < nf && r->ok(); ++i) {
    c.families.push_back(static_cast<em::FamilyType>(r->U8()));
  }
  c.em.max_iterations = r->I32();
  c.em.tolerance = r->F64();
  c.em.init_quantile = r->F64();
  c.em.init_high = r->F64();
  c.em.init_low = r->F64();
  c.em.min_prior = r->F64();
  c.num_threads = r->I32();
  c.incremental_refresh_interval = r->I32();
  c.seed = r->U64();
  c.ingest_queue_capacity = r->I32();
  c.ingest_refresh_window = r->I32();
  if (version >= 2) {
    c.num_shards = r->I32();
    c.shard_placement = static_cast<core::ShardPlacement>(r->U8());
    c.em.num_threads = r->I32();
  }
  // Fields unknown to version (v1 files): IuadConfig defaults stand.
  return c;
}

// ---- Section: embeddings --------------------------------------------------

void WriteEmbeddings(const text::Word2Vec& w2v, Writer* w) {
  w->Bool(w2v.trained());
  if (!w2v.trained()) return;
  const text::Vocabulary& vocab = w2v.vocabulary();
  w->I32(w2v.dim());
  w->U64(static_cast<uint64_t>(vocab.size()));
  for (int id = 0; id < vocab.size(); ++id) {
    w->Str(vocab.WordOf(id));
    w->I64(vocab.CountOf(id));
    const text::Vec* v = w2v.VectorOf(vocab.WordOf(id));
    w->FloatVec(*v);
  }
  w->F64(w2v.final_learning_rate());
  w->I64(w2v.trained_tokens());
}

iuad::Result<text::Word2Vec> ReadEmbeddings(const text::Word2VecConfig& cfg,
                                            Reader* r) {
  if (!r->Bool()) return text::Word2Vec(cfg);  // untrained (SCN-only save)
  const int dim = r->I32();
  if (dim != cfg.dim) {
    return iuad::Status::IoError(
        "snapshot: embedding dimension disagrees with stored config");
  }
  const uint64_t n = r->U64();
  text::Vocabulary vocab;
  std::vector<text::Vec> vectors;
  // `n` is as hostile as any other payload count (checksums are over public
  // data): never let it drive a giant reserve. Growth past the bound is
  // organic push_back, and a lying count fails the r->ok() loop guard on
  // the first short read.
  vectors.reserve(static_cast<size_t>(std::min<uint64_t>(n, 1u << 16)));
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const std::string word = r->Str();
    const int64_t count = r->I64();
    vocab.AddCount(word, count);
    vectors.push_back(r->FloatVec());
  }
  const double final_lr = r->F64();
  const int64_t trained_tokens = r->I64();
  IUAD_RETURN_NOT_OK(r->status());
  return text::Word2Vec::Restore(cfg, std::move(vocab), std::move(vectors),
                                 final_lr, trained_tokens);
}

// ---- Section: graph (v1 monolithic form) ----------------------------------

void WriteGraph(const graph::CollabGraph& g, Writer* w) {
  w->U64(static_cast<uint64_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    w->Str(g.NameOf(v));
    w->Bool(vx.alive);
    w->IntVec(vx.papers);
  }
  const std::vector<graph::EdgeRecord> edges = g.Edges();
  w->U64(edges.size());
  for (const auto& e : edges) {
    w->I32(e.u);
    w->I32(e.v);
    w->IntVec(e.papers);
  }
}

iuad::Result<graph::CollabGraph> ReadGraph(Reader* r) {
  const uint64_t n = r->U64();
  std::vector<graph::VertexRecord> vertices;
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    graph::VertexRecord vx;
    vx.name = r->Str();
    vx.alive = r->Bool();
    vx.papers = r->IntVec();
    vertices.push_back(std::move(vx));
  }
  const uint64_t m = r->U64();
  std::vector<graph::EdgeRecord> edges;
  for (uint64_t i = 0; i < m && r->ok(); ++i) {
    graph::EdgeRecord e;
    e.u = r->I32();
    e.v = r->I32();
    e.papers = r->IntVec();
    edges.push_back(std::move(e));
  }
  IUAD_RETURN_NOT_OK(r->status());
  return graph::CollabGraph::Restore(std::move(vertices), edges);
}

// ---- Section: occurrences (v1 monolithic form) ----------------------------

void WriteOccurrences(const core::OccurrenceIndex& idx, Writer* w) {
  const auto entries = idx.Entries();
  w->U64(entries.size());
  for (const auto& e : entries) {
    w->I32(e.paper_id);
    w->Str(e.name);
    w->I32(e.vertex);
  }
}

iuad::Result<core::OccurrenceIndex> ReadOccurrences(Reader* r) {
  core::OccurrenceIndex idx;
  const uint64_t n = r->U64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const int paper_id = r->I32();
    const std::string name = r->Str();
    const graph::VertexId vertex = r->I32();
    idx.AssignIfAbsent(paper_id, name, vertex);
  }
  IUAD_RETURN_NOT_OK(r->status());
  return idx;
}

// ---- Section: model -------------------------------------------------------

void WriteDistribution(const em::Distribution& d, Writer* w) {
  w->U8(static_cast<uint8_t>(d.family()));
  switch (d.family()) {
    case em::FamilyType::kGaussian: {
      const auto& g = static_cast<const em::GaussianDist&>(d);
      w->F64(g.mean());
      w->F64(g.variance());
      break;
    }
    case em::FamilyType::kExponential: {
      const auto& e = static_cast<const em::ExponentialDist&>(d);
      w->F64(e.lambda());
      break;
    }
    case em::FamilyType::kMultinomial: {
      const auto& m = static_cast<const em::MultinomialDist&>(d);
      w->U32(static_cast<uint32_t>(m.num_bins()));
      w->F64(m.lo());
      w->F64(m.hi());
      w->F64Vec(m.probabilities());
      break;
    }
  }
}

iuad::Result<std::unique_ptr<em::Distribution>> ReadDistribution(Reader* r) {
  const auto family = static_cast<em::FamilyType>(r->U8());
  switch (family) {
    case em::FamilyType::kGaussian: {
      const double mean = r->F64();
      const double variance = r->F64();
      IUAD_RETURN_NOT_OK(r->status());
      return {std::make_unique<em::GaussianDist>(mean, variance)};
    }
    case em::FamilyType::kExponential: {
      const double lambda = r->F64();
      IUAD_RETURN_NOT_OK(r->status());
      return {std::make_unique<em::ExponentialDist>(lambda)};
    }
    case em::FamilyType::kMultinomial: {
      const auto num_bins = static_cast<int>(r->U32());
      const double lo = r->F64();
      const double hi = r->F64();
      std::vector<double> probs = r->F64Vec();
      IUAD_RETURN_NOT_OK(r->status());
      auto m = std::make_unique<em::MultinomialDist>(num_bins, lo, hi);
      IUAD_RETURN_NOT_OK(m->SetProbabilities(std::move(probs)));
      return {std::move(m)};
    }
  }
  return iuad::Status::IoError("snapshot: unknown distribution family");
}

void WriteModel(const em::MixtureModel* model, Writer* w) {
  w->Bool(model != nullptr);
  if (model == nullptr) return;
  w->U32(static_cast<uint32_t>(model->dimension()));
  w->F64(model->prior_matched());
  w->F64(model->final_log_likelihood());
  w->I32(model->iterations_run());
  for (int f = 0; f < model->dimension(); ++f) {
    WriteDistribution(model->matched(f), w);
    WriteDistribution(model->unmatched(f), w);
  }
}

iuad::Result<std::unique_ptr<em::MixtureModel>> ReadModel(
    const core::IuadConfig& config, Reader* r) {
  if (!r->Bool()) return {std::unique_ptr<em::MixtureModel>()};  // SCN-only
  const auto m = static_cast<int>(r->U32());
  const double prior = r->F64();
  const double final_ll = r->F64();
  const int iterations = r->I32();
  std::vector<std::unique_ptr<em::Distribution>> matched, unmatched;
  for (int f = 0; f < m && r->ok(); ++f) {
    IUAD_ASSIGN_OR_RETURN(auto dm, ReadDistribution(r));
    IUAD_ASSIGN_OR_RETURN(auto du, ReadDistribution(r));
    matched.push_back(std::move(dm));
    unmatched.push_back(std::move(du));
  }
  IUAD_RETURN_NOT_OK(r->status());
  em::MixtureConfig mc = config.em;
  mc.families = config.families;  // as GcnBuilder assembles it before Fit
  IUAD_ASSIGN_OR_RETURN(
      auto model,
      em::MixtureModel::Restore(std::move(mc), std::move(matched),
                                std::move(unmatched), prior, final_ll,
                                iterations));
  return {std::make_unique<em::MixtureModel>(std::move(model))};
}

// ---- Section: stats -------------------------------------------------------

void WriteStats(const core::DisambiguationResult& res, Writer* w) {
  w->I64(res.scn_stats.num_scrs);
  w->I32(res.scn_stats.num_vertices);
  w->I32(res.scn_stats.num_edges);
  w->I64(res.scn_stats.covered_occurrences);
  w->I64(res.scn_stats.singleton_occurrences);
  w->I32(res.scn_stats.conflict_merges);
  w->I64(res.gcn_stats.names_with_candidates);
  w->I64(res.gcn_stats.candidate_pairs);
  w->I64(res.gcn_stats.training_pairs);
  w->I64(res.gcn_stats.augmented_pairs);
  w->I64(res.gcn_stats.merges);
  w->I64(res.gcn_stats.recovered_edges);
  w->F64(res.gcn_stats.em_log_likelihood);
  w->I32(res.gcn_stats.em_iterations);
  w->F64(res.embed_seconds);
  w->F64(res.scn_seconds);
  w->F64(res.gcn_seconds);
}

void ReadStats(Reader* r, core::DisambiguationResult* res) {
  res->scn_stats.num_scrs = r->I64();
  res->scn_stats.num_vertices = r->I32();
  res->scn_stats.num_edges = r->I32();
  res->scn_stats.covered_occurrences = r->I64();
  res->scn_stats.singleton_occurrences = r->I64();
  res->scn_stats.conflict_merges = r->I32();
  res->gcn_stats.names_with_candidates = r->I64();
  res->gcn_stats.candidate_pairs = r->I64();
  res->gcn_stats.training_pairs = r->I64();
  res->gcn_stats.augmented_pairs = r->I64();
  res->gcn_stats.merges = r->I64();
  res->gcn_stats.recovered_edges = r->I64();
  res->gcn_stats.em_log_likelihood = r->F64();
  res->gcn_stats.em_iterations = r->I32();
  res->embed_seconds = r->F64();
  res->scn_seconds = r->F64();
  res->gcn_seconds = r->F64();
}

// ---- v2/v3 section assembly -----------------------------------------------

/// Common section: everything global — config, the total vertex count the
/// shard-slice merge pre-sizes with, (v3) the interned author-name table,
/// embeddings, fitted model, and stats.
std::string BuildCommonSection(const core::DisambiguationResult& result,
                               const core::IuadConfig& config,
                               uint32_t version) {
  Writer w;
  WriteConfig(config, version, &w);
  w.U64(static_cast<uint64_t>(result.graph.num_vertices()));
  if (version >= 3) {
    const util::StringInterner& names = result.graph.interner();
    w.U64(static_cast<uint64_t>(names.size()));
    for (util::NameId id = 0; id < names.size(); ++id) w.Str(names.View(id));
  }
  WriteEmbeddings(result.embeddings, &w);
  WriteModel(result.model.get(), &w);
  WriteStats(result, &w);
  return w.buffer();
}

/// One shard's slice of the serialized state, bucketed in a single pass
/// over vertices/edges/occurrences (placement lookups are paid once per
/// element, not once per element per shard).
struct ShardBucket {
  std::vector<graph::VertexId> vertices;  ///< Explicit ids; dead included.
  std::vector<const graph::EdgeRecord*> edges;  ///< Owned by u's block.
  std::vector<const core::OccurrenceIndex::Entry*> occurrences;
};

std::vector<ShardBucket> BucketByShard(
    const core::DisambiguationResult& result,
    const shard::BlockPlacement& placement,
    const std::vector<graph::EdgeRecord>& edges,
    const std::vector<core::OccurrenceIndex::Entry>& occurrences) {
  const graph::CollabGraph& g = result.graph;
  std::vector<ShardBucket> buckets(
      static_cast<size_t>(placement.num_shards()));
  // Vertex owners double as the edge-owner lookup (owner of u), saving the
  // per-edge name hash.
  std::vector<int> owner(static_cast<size_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    owner[static_cast<size_t>(v)] =
        placement.ShardOf(g.vertex(v).name_id, g.NameOf(v));
    buckets[static_cast<size_t>(owner[static_cast<size_t>(v)])]
        .vertices.push_back(v);
  }
  for (const auto& e : edges) {
    buckets[static_cast<size_t>(owner[static_cast<size_t>(e.u)])]
        .edges.push_back(&e);
  }
  for (const auto& e : occurrences) {
    buckets[static_cast<size_t>(placement.ShardOf(e.name))]
        .occurrences.push_back(&e);
  }
  return buckets;
}

std::string BuildShardSection(const core::DisambiguationResult& result,
                              int s, const ShardBucket& bucket,
                              uint32_t version) {
  const graph::CollabGraph& g = result.graph;
  Writer w;
  w.U32(static_cast<uint32_t>(s));
  w.U64(bucket.vertices.size());
  for (graph::VertexId v : bucket.vertices) {
    const graph::Vertex& vx = g.vertex(v);
    w.U32(static_cast<uint32_t>(v));
    if (version >= 3) {
      w.I32(vx.name_id);
    } else {
      w.Str(g.NameOf(v));
    }
    w.Bool(vx.alive);
    w.IntVec(vx.papers);
  }
  w.U64(bucket.edges.size());
  for (const graph::EdgeRecord* e : bucket.edges) {
    w.I32(e->u);
    w.I32(e->v);
    w.IntVec(e->papers);
  }
  w.U64(bucket.occurrences.size());
  for (const core::OccurrenceIndex::Entry* e : bucket.occurrences) {
    w.I32(e->paper_id);
    if (version >= 3) {
      // Occurrence names are vertex names in every normal run; the id=-1
      // escape keeps the format total if one ever isn't interned.
      const util::NameId id = g.interner().Lookup(e->name);
      w.I32(id);
      if (id == util::kInvalidNameId) w.Str(e->name);
    } else {
      w.Str(e->name);
    }
    w.I32(e->vertex);
  }
  return w.buffer();
}

/// Parsed-but-unmerged content of one shard section. v2 fills `name`
/// (string per vertex); v3 fills `name_id` (table reference).
struct SliceVertex {
  uint32_t id = 0;
  util::NameId name_id = util::kInvalidNameId;
  std::string name;
  bool alive = true;
  std::vector<int> papers;
};

struct ShardSlice {
  std::vector<SliceVertex> vertices;
  std::vector<graph::EdgeRecord> edges;
  std::vector<core::OccurrenceIndex::Entry> occurrences;
};

iuad::Result<ShardSlice> ParseShardSection(
    const char* data, size_t size, uint32_t version,
    const std::vector<std::string>& name_table) {
  Reader r(data, size);
  ShardSlice slice;
  (void)r.U32();  // shard index: self-description only; order is the table's
  const uint64_t nv = r.U64();
  for (uint64_t i = 0; i < nv && r.ok(); ++i) {
    SliceVertex vx;
    vx.id = r.U32();
    if (version >= 3) {
      vx.name_id = r.I32();
    } else {
      vx.name = r.Str();
    }
    vx.alive = r.Bool();
    vx.papers = r.IntVec();
    slice.vertices.push_back(std::move(vx));
  }
  const uint64_t ne = r.U64();
  for (uint64_t i = 0; i < ne && r.ok(); ++i) {
    graph::EdgeRecord e;
    e.u = r.I32();
    e.v = r.I32();
    e.papers = r.IntVec();
    slice.edges.push_back(std::move(e));
  }
  const uint64_t no = r.U64();
  for (uint64_t i = 0; i < no && r.ok(); ++i) {
    core::OccurrenceIndex::Entry e;
    e.paper_id = r.I32();
    if (version >= 3) {
      const util::NameId id = r.I32();
      if (id == util::kInvalidNameId) {
        e.name = r.Str();
      } else if (static_cast<size_t>(id) < name_table.size()) {
        e.name = name_table[static_cast<size_t>(id)];
      } else {
        return iuad::Status::IoError(
            "occurrence name id outside the snapshot name table");
      }
    } else {
      e.name = r.Str();
    }
    e.vertex = r.I32();
    slice.occurrences.push_back(std::move(e));
  }
  IUAD_RETURN_NOT_OK(r.status());
  if (!r.exhausted()) {
    return iuad::Status::IoError("trailing bytes in shard section");
  }
  return slice;
}

std::string BuildHeader(uint32_t version, uint64_t fingerprint,
                        const std::string& payload, uint64_t check_field) {
  Writer header;
  header.Bytes(kMagic, sizeof(kMagic));
  header.U32(version);
  header.U64(fingerprint);
  header.U64(payload.size());
  header.U64(check_field);
  header.U32(static_cast<uint32_t>(
      Fnv1a(header.buffer().data(), header.buffer().size())));
  return header.buffer();
}

// ---- v2/v3 load -----------------------------------------------------------

iuad::Result<Snapshot> LoadSectioned(const std::string& path,
                                     uint32_t version, const char* payload,
                                     size_t payload_size,
                                     uint64_t table_checksum) {
  // Section table.
  if (payload_size < sizeof(uint32_t)) {
    return iuad::Status::IoError(path + ": snapshot payload truncated");
  }
  uint32_t num_sections = 0;
  std::memcpy(&num_sections, payload, sizeof(num_sections));
  const uint64_t table_size =
      sizeof(uint32_t) +
      static_cast<uint64_t>(num_sections) * kSectionEntrySize;
  if (table_size > payload_size) {
    return iuad::Status::IoError(path + ": snapshot section table truncated");
  }
  if (Fnv1a(payload, table_size) != table_checksum) {
    return iuad::Status::IoError(path +
                                 ": snapshot section table checksum mismatch");
  }
  struct Section {
    uint32_t kind = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;
    const char* data = nullptr;
  };
  std::vector<Section> sections(num_sections);
  {
    Reader table(payload + sizeof(uint32_t), table_size - sizeof(uint32_t));
    for (auto& s : sections) {
      s.kind = table.U32();
      s.size = table.U64();
      s.checksum = table.U64();
    }
  }
  uint64_t at = table_size;
  for (auto& s : sections) {
    if (s.size > payload_size - at) {
      return iuad::Status::IoError(path + ": snapshot sections truncated");
    }
    s.data = payload + at;
    at += s.size;
  }
  if (at != payload_size) {
    return iuad::Status::IoError(path + ": trailing bytes after snapshot");
  }
  if (sections.empty() || sections[0].kind != kSectionCommon) {
    return iuad::Status::IoError(path +
                                 ": snapshot missing its common section");
  }
  for (size_t i = 1; i < sections.size(); ++i) {
    if (sections[i].kind != kSectionShard) {
      return iuad::Status::IoError(path + ": snapshot section " +
                                   std::to_string(i) + " has unknown kind");
    }
  }

  // Verify every section independently, in parallel: a bad shard section is
  // pinpointed by index and never taints the verdict on its neighbors.
  const int threads = std::min<int>(static_cast<int>(sections.size()),
                                    util::ResolveNumThreads(0));
  util::ThreadPool pool(threads);
  std::vector<uint8_t> section_ok(sections.size(), 0);
  pool.ParallelFor(sections.size(), [&](size_t i) {
    section_ok[i] =
        Fnv1a(sections[i].data, sections[i].size) == sections[i].checksum;
  });
  for (size_t i = 0; i < sections.size(); ++i) {
    if (!section_ok[i]) {
      return iuad::Status::IoError(
          path + ": snapshot section " + std::to_string(i) +
          " checksum mismatch (" +
          (sections[i].kind == kSectionCommon ? "common" : "shard slice") +
          "); remaining sections verified clean");
    }
  }

  // Common section first: the shard slices need nothing from it to parse,
  // but the result shell (config, embeddings, model, stats) lives here.
  Snapshot snap;
  uint64_t num_vertices = 0;
  std::vector<std::string> name_table;
  {
    Reader r(sections[0].data, sections[0].size);
    snap.config = ReadConfig(version, &r);
    IUAD_RETURN_NOT_OK(r.status());
    num_vertices = r.U64();
    if (version >= 3) {
      const uint64_t num_names = r.U64();
      name_table.reserve(
          static_cast<size_t>(std::min<uint64_t>(num_names, 1u << 16)));
      for (uint64_t i = 0; i < num_names && r.ok(); ++i) {
        name_table.push_back(r.Str());
      }
    }
    IUAD_ASSIGN_OR_RETURN(snap.result.embeddings,
                          ReadEmbeddings(snap.config.word2vec, &r));
    IUAD_ASSIGN_OR_RETURN(snap.result.model, ReadModel(snap.config, &r));
    ReadStats(&r, &snap.result);
    IUAD_RETURN_NOT_OK(r.status());
    if (!r.exhausted()) {
      return iuad::Status::IoError(path + ": trailing bytes in common section");
    }
  }

  // Shard slices in parallel; each parses into its own slot.
  const size_t num_slices = sections.size() - 1;
  std::vector<iuad::Result<ShardSlice>> slices;
  slices.reserve(num_slices);
  for (size_t i = 0; i < num_slices; ++i) {
    slices.push_back(iuad::Status::IoError("shard section not parsed"));
  }
  pool.ParallelFor(num_slices, [&](size_t i) {
    slices[i] = ParseShardSection(sections[i + 1].data, sections[i + 1].size,
                                  version, name_table);
  });
  for (size_t i = 0; i < num_slices; ++i) {
    if (!slices[i].ok()) {
      return iuad::Status::IoError(path + ": snapshot section " +
                                   std::to_string(i + 1) + ": " +
                                   slices[i].status().message());
    }
  }

  // Deterministic merge: vertices land by explicit id, edges and
  // occurrences re-sort into the canonical v1 orders.
  if (num_vertices > (1u << 30)) {
    return iuad::Status::IoError(path + ": implausible snapshot vertex count");
  }
  std::vector<graph::VertexRecord> v2_vertices;
  std::vector<graph::Vertex> v3_vertices;
  if (version >= 3) {
    v3_vertices.resize(num_vertices);
  } else {
    v2_vertices.resize(num_vertices);
  }
  std::vector<uint8_t> seen(num_vertices, 0);
  std::vector<graph::EdgeRecord> edges;
  std::vector<core::OccurrenceIndex::Entry> occurrences;
  for (auto& slice : slices) {
    for (SliceVertex& vx : slice->vertices) {
      if (vx.id >= num_vertices || seen[vx.id]) {
        return iuad::Status::IoError(
            path + ": snapshot shard sections disagree on vertex ids");
      }
      seen[vx.id] = 1;
      if (version >= 3) {
        if (vx.name_id < 0 ||
            static_cast<size_t>(vx.name_id) >= name_table.size()) {
          return iuad::Status::IoError(
              path + ": vertex name id outside the snapshot name table");
        }
        v3_vertices[vx.id] =
            graph::Vertex{vx.name_id, std::move(vx.papers), vx.alive};
      } else {
        v2_vertices[vx.id] = graph::VertexRecord{std::move(vx.name),
                                                 std::move(vx.papers),
                                                 vx.alive};
      }
    }
    std::move(slice->edges.begin(), slice->edges.end(),
              std::back_inserter(edges));
    std::move(slice->occurrences.begin(), slice->occurrences.end(),
              std::back_inserter(occurrences));
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (!seen[v]) {
      return iuad::Status::IoError(path + ": snapshot is missing vertex " +
                                   std::to_string(v));
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const graph::EdgeRecord& a, const graph::EdgeRecord& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  if (version >= 3) {
    IUAD_ASSIGN_OR_RETURN(
        snap.result.graph,
        graph::CollabGraph::Restore(name_table, std::move(v3_vertices),
                                    edges));
  } else {
    IUAD_ASSIGN_OR_RETURN(snap.result.graph,
                          graph::CollabGraph::Restore(std::move(v2_vertices),
                                                      edges));
  }
  std::sort(occurrences.begin(), occurrences.end(),
            [](const core::OccurrenceIndex::Entry& a,
               const core::OccurrenceIndex::Entry& b) {
              return a.paper_id != b.paper_id ? a.paper_id < b.paper_id
                                              : a.name < b.name;
            });
  for (const auto& e : occurrences) {
    snap.result.occurrences.AssignIfAbsent(e.paper_id, e.name, e.vertex);
  }
  return snap;
}

// ---- v1 load (legacy monolithic payload) ----------------------------------

iuad::Result<Snapshot> LoadV1(const std::string& path, const char* payload,
                              size_t payload_size) {
  Reader r(payload, payload_size);
  Snapshot snap;
  snap.config = ReadConfig(kSnapshotFormatV1, &r);
  IUAD_RETURN_NOT_OK(r.status());
  IUAD_ASSIGN_OR_RETURN(snap.result.embeddings,
                        ReadEmbeddings(snap.config.word2vec, &r));
  IUAD_ASSIGN_OR_RETURN(snap.result.graph, ReadGraph(&r));
  IUAD_ASSIGN_OR_RETURN(snap.result.occurrences, ReadOccurrences(&r));
  IUAD_ASSIGN_OR_RETURN(snap.result.model, ReadModel(snap.config, &r));
  ReadStats(&r, &snap.result);
  IUAD_RETURN_NOT_OK(r.status());
  if (!r.exhausted()) {
    return iuad::Status::IoError(path + ": trailing bytes after snapshot");
  }
  return snap;
}

}  // namespace

iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config) {
  return SaveSnapshot(path, db, result, config, SnapshotWriteOptions{});
}

iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config,
                          const SnapshotWriteOptions& options) {
  if (options.format_version == kSnapshotFormatV1) {
    Writer payload;
    WriteConfig(config, kSnapshotFormatV1, &payload);
    WriteEmbeddings(result.embeddings, &payload);
    WriteGraph(result.graph, &payload);
    WriteOccurrences(result.occurrences, &payload);
    WriteModel(result.model.get(), &payload);
    WriteStats(result, &payload);
    const std::string& body = payload.buffer();
    return WriteFileDurably(
        path,
        BuildHeader(kSnapshotFormatV1, db.Fingerprint(), body,
                    Fnv1a(body.data(), body.size())),
        body);
  }
  if (options.format_version != kSnapshotFormatVersion &&
      options.format_version != kSnapshotFormatV2) {
    return iuad::Status::InvalidArgument(
        "snapshot: unsupported write version " +
        std::to_string(options.format_version));
  }
  const uint32_t version = options.format_version;

  // v2/v3: common section + one slice per shard, sectioned with the same
  // placement the serving router uses so a shard's state is one contiguous
  // checksummed span.
  int num_shards = options.num_shard_sections > 0 ? options.num_shard_sections
                                                  : config.num_shards;
  if (num_shards < 1) num_shards = 1;
  const shard::BlockPlacement placement = shard::BlockPlacement::Build(
      result.graph, num_shards, config.shard_placement);
  const std::vector<graph::EdgeRecord> edges = result.graph.Edges();
  const auto occurrences = result.occurrences.Entries();
  const std::vector<ShardBucket> buckets =
      BucketByShard(result, placement, edges, occurrences);

  std::vector<std::string> blobs;
  blobs.push_back(BuildCommonSection(result, config, version));
  for (int s = 0; s < num_shards; ++s) {
    blobs.push_back(BuildShardSection(result, s,
                                      buckets[static_cast<size_t>(s)],
                                      version));
  }

  Writer table;
  table.U32(static_cast<uint32_t>(blobs.size()));
  for (size_t i = 0; i < blobs.size(); ++i) {
    table.U32(i == 0 ? kSectionCommon : kSectionShard);
    table.U64(blobs[i].size());
    table.U64(Fnv1a(blobs[i].data(), blobs[i].size()));
  }
  std::string body = table.buffer();
  for (const std::string& blob : blobs) body += blob;

  return WriteFileDurably(
      path,
      BuildHeader(version, db.Fingerprint(), body,
                  Fnv1a(table.buffer().data(), table.buffer().size())),
      body);
}

iuad::Result<Snapshot> LoadSnapshot(const std::string& path,
                                    const data::PaperDatabase& db) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return iuad::Status::IoError("cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return iuad::Status::IoError("read error on " + path);

  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return iuad::Status::InvalidArgument(path + " is not an IUAD snapshot");
  }
  Reader header(bytes.data() + sizeof(kMagic), kHeaderSize - sizeof(kMagic));
  const uint32_t version = header.U32();
  const uint64_t fingerprint = header.U64();
  const uint64_t payload_size = header.U64();
  const uint64_t check_field = header.U64();
  const uint32_t header_checksum = header.U32();
  if (static_cast<uint32_t>(Fnv1a(bytes.data(), kHeaderSize - sizeof(uint32_t))) !=
      header_checksum) {
    return iuad::Status::IoError(path + ": snapshot header checksum mismatch");
  }
  if (version != kSnapshotFormatVersion && version != kSnapshotFormatV2 &&
      version != kSnapshotFormatV1) {
    return iuad::Status::InvalidArgument(
        path + ": unsupported snapshot format version " +
        std::to_string(version) + " (this build reads versions " +
        std::to_string(kSnapshotFormatV1) + " through " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return iuad::Status::IoError(path + ": snapshot payload truncated");
  }
  if (fingerprint != db.Fingerprint()) {
    return iuad::Status::FailedPrecondition(
        path + ": snapshot was saved against a different corpus "
               "(fingerprint mismatch); load it next to the database it was "
               "fitted on");
  }

  if (version == kSnapshotFormatV1) {
    if (Fnv1a(bytes.data() + kHeaderSize, payload_size) != check_field) {
      return iuad::Status::IoError(path +
                                   ": snapshot payload checksum mismatch");
    }
    return LoadV1(path, bytes.data() + kHeaderSize, payload_size);
  }
  return LoadSectioned(path, version, bytes.data() + kHeaderSize,
                       payload_size, check_field);
}

}  // namespace iuad::io
