#include "io/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "em/distributions.h"
#include "em/mixture_model.h"
#include "graph/collab_graph.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"

namespace iuad::io {

namespace {

constexpr char kMagic[8] = {'I', 'U', 'A', 'D', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderSize = 40;  // magic + version + fp + size + 2 checksums

uint64_t Fnv1a(const void* data, size_t n, uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Appends fixed-width scalars / length-prefixed containers to a buffer.
class Writer {
 public:
  template <typename T>
  void Raw(T x) {
    static_assert(std::is_trivially_copyable<T>::value, "raw scalar only");
    const size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(&buf_[at], &x, sizeof(T));
  }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  void U8(uint8_t x) { Raw(x); }
  void U32(uint32_t x) { Raw(x); }
  void U64(uint64_t x) { Raw(x); }
  void I32(int32_t x) { Raw(x); }
  void I64(int64_t x) { Raw(x); }
  void F64(double x) { Raw(x); }
  void Bool(bool x) { U8(x ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  void IntVec(const std::vector<int>& xs) {
    U64(xs.size());
    for (int x : xs) I32(x);
  }
  void F64Vec(const std::vector<double>& xs) {
    U64(xs.size());
    for (double x : xs) F64(x);
  }
  void FloatVec(const std::vector<float>& xs) {
    U64(xs.size());
    const size_t at = buf_.size();
    buf_.resize(at + xs.size() * sizeof(float));
    if (!xs.empty()) std::memcpy(&buf_[at], xs.data(), xs.size() * sizeof(float));
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked mirror of Writer. Every read reports corruption (a
/// truncated or bit-flipped payload that nevertheless passed the checksum
/// is astronomically unlikely, but the reader still never walks off the
/// buffer) through ok()/status().
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Raw() {
    static_assert(std::is_trivially_copyable<T>::value, "raw scalar only");
    T x{};
    if (!Take(sizeof(T))) return x;
    std::memcpy(&x, data_ + pos_ - sizeof(T), sizeof(T));
    return x;
  }
  uint8_t U8() { return Raw<uint8_t>(); }
  uint32_t U32() { return Raw<uint32_t>(); }
  uint64_t U64() { return Raw<uint64_t>(); }
  int32_t I32() { return Raw<int32_t>(); }
  int64_t I64() { return Raw<int64_t>(); }
  double F64() { return Raw<double>(); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint64_t n = U64();
    if (!Take(n)) return {};
    return std::string(data_ + pos_ - n, n);
  }
  std::vector<int> IntVec() {
    const uint64_t n = U64();
    std::vector<int> xs;
    if (!CheckCount(n, sizeof(int32_t))) return xs;
    xs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) xs.push_back(I32());
    return xs;
  }
  std::vector<double> F64Vec() {
    const uint64_t n = U64();
    std::vector<double> xs;
    if (!CheckCount(n, sizeof(double))) return xs;
    xs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) xs.push_back(F64());
    return xs;
  }
  std::vector<float> FloatVec() {
    const uint64_t n = U64();
    std::vector<float> xs;
    if (!CheckCount(n, sizeof(float)) || !Take(n * sizeof(float))) return xs;
    xs.resize(n);
    if (n > 0) std::memcpy(xs.data(), data_ + pos_ - n * sizeof(float),
                           n * sizeof(float));
    return xs;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }
  iuad::Status status() const {
    if (ok_) return iuad::Status::OK();
    return iuad::Status::IoError("snapshot payload truncated or corrupt");
  }

 private:
  bool Take(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  bool CheckCount(uint64_t n, size_t elem_size) {
    // A hostile/corrupt count must not drive a giant reserve.
    if (!ok_ || n > (size_ - pos_) / elem_size) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Section: config ------------------------------------------------------

void WriteConfig(const core::IuadConfig& c, Writer* w) {
  w->I64(c.eta);
  w->Bool(c.triangle_gated_insertion);
  w->I32(c.wl_iterations);
  w->F64(c.time_decay_alpha);
  w->I32(c.word2vec.dim);
  w->I32(c.word2vec.window);
  w->I32(c.word2vec.negatives);
  w->I32(c.word2vec.epochs);
  w->F64(c.word2vec.learning_rate);
  w->I32(c.word2vec.min_count);
  w->F64(c.word2vec.subsample);
  w->U64(c.word2vec.seed);
  w->I32(c.word2vec.num_threads);
  w->I32(c.word2vec.num_shards);
  w->F64(c.delta);
  w->F64(c.sample_rate);
  w->Bool(c.vertex_splitting);
  w->I32(c.split_min_papers);
  w->I32(c.max_split_vertices);
  w->I32(c.max_pairs_per_name);
  w->U64(c.families.size());
  for (em::FamilyType f : c.families) w->U8(static_cast<uint8_t>(f));
  w->I32(c.em.max_iterations);
  w->F64(c.em.tolerance);
  w->F64(c.em.init_quantile);
  w->F64(c.em.init_high);
  w->F64(c.em.init_low);
  w->F64(c.em.min_prior);
  w->I32(c.num_threads);
  w->I32(c.incremental_refresh_interval);
  w->U64(c.seed);
  w->I32(c.ingest_queue_capacity);
  w->I32(c.ingest_refresh_window);
  // snapshot_path / persist_snapshot are runtime knobs of the *saving*
  // process, not properties of the fitted state; pair_label_oracle is a
  // std::function and cannot round-trip. None are serialized.
}

core::IuadConfig ReadConfig(Reader* r) {
  core::IuadConfig c;
  c.eta = r->I64();
  c.triangle_gated_insertion = r->Bool();
  c.wl_iterations = r->I32();
  c.time_decay_alpha = r->F64();
  c.word2vec.dim = r->I32();
  c.word2vec.window = r->I32();
  c.word2vec.negatives = r->I32();
  c.word2vec.epochs = r->I32();
  c.word2vec.learning_rate = r->F64();
  c.word2vec.min_count = r->I32();
  c.word2vec.subsample = r->F64();
  c.word2vec.seed = r->U64();
  c.word2vec.num_threads = r->I32();
  c.word2vec.num_shards = r->I32();
  c.delta = r->F64();
  c.sample_rate = r->F64();
  c.vertex_splitting = r->Bool();
  c.split_min_papers = r->I32();
  c.max_split_vertices = r->I32();
  c.max_pairs_per_name = r->I32();
  const uint64_t nf = r->U64();
  c.families.clear();
  for (uint64_t i = 0; i < nf && r->ok(); ++i) {
    c.families.push_back(static_cast<em::FamilyType>(r->U8()));
  }
  c.em.max_iterations = r->I32();
  c.em.tolerance = r->F64();
  c.em.init_quantile = r->F64();
  c.em.init_high = r->F64();
  c.em.init_low = r->F64();
  c.em.min_prior = r->F64();
  c.num_threads = r->I32();
  c.incremental_refresh_interval = r->I32();
  c.seed = r->U64();
  c.ingest_queue_capacity = r->I32();
  c.ingest_refresh_window = r->I32();
  return c;
}

// ---- Section: embeddings --------------------------------------------------

void WriteEmbeddings(const text::Word2Vec& w2v, Writer* w) {
  w->Bool(w2v.trained());
  if (!w2v.trained()) return;
  const text::Vocabulary& vocab = w2v.vocabulary();
  w->I32(w2v.dim());
  w->U64(static_cast<uint64_t>(vocab.size()));
  for (int id = 0; id < vocab.size(); ++id) {
    w->Str(vocab.WordOf(id));
    w->I64(vocab.CountOf(id));
    const text::Vec* v = w2v.VectorOf(vocab.WordOf(id));
    w->FloatVec(*v);
  }
  w->F64(w2v.final_learning_rate());
  w->I64(w2v.trained_tokens());
}

iuad::Result<text::Word2Vec> ReadEmbeddings(const text::Word2VecConfig& cfg,
                                            Reader* r) {
  if (!r->Bool()) return text::Word2Vec(cfg);  // untrained (SCN-only save)
  const int dim = r->I32();
  if (dim != cfg.dim) {
    return iuad::Status::IoError(
        "snapshot: embedding dimension disagrees with stored config");
  }
  const uint64_t n = r->U64();
  text::Vocabulary vocab;
  std::vector<text::Vec> vectors;
  // `n` is as hostile as any other payload count (checksums are over public
  // data): never let it drive a giant reserve. Growth past the bound is
  // organic push_back, and a lying count fails the r->ok() loop guard on
  // the first short read.
  vectors.reserve(static_cast<size_t>(std::min<uint64_t>(n, 1u << 16)));
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const std::string word = r->Str();
    const int64_t count = r->I64();
    vocab.AddCount(word, count);
    vectors.push_back(r->FloatVec());
  }
  const double final_lr = r->F64();
  const int64_t trained_tokens = r->I64();
  IUAD_RETURN_NOT_OK(r->status());
  return text::Word2Vec::Restore(cfg, std::move(vocab), std::move(vectors),
                                 final_lr, trained_tokens);
}

// ---- Section: graph -------------------------------------------------------

void WriteGraph(const graph::CollabGraph& g, Writer* w) {
  w->U64(static_cast<uint64_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    w->Str(vx.name);
    w->Bool(vx.alive);
    w->IntVec(vx.papers);
  }
  const std::vector<graph::EdgeRecord> edges = g.Edges();
  w->U64(edges.size());
  for (const auto& e : edges) {
    w->I32(e.u);
    w->I32(e.v);
    w->IntVec(e.papers);
  }
}

iuad::Result<graph::CollabGraph> ReadGraph(Reader* r) {
  const uint64_t n = r->U64();
  std::vector<graph::Vertex> vertices;
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    graph::Vertex vx;
    vx.name = r->Str();
    vx.alive = r->Bool();
    vx.papers = r->IntVec();
    vertices.push_back(std::move(vx));
  }
  const uint64_t m = r->U64();
  std::vector<graph::EdgeRecord> edges;
  for (uint64_t i = 0; i < m && r->ok(); ++i) {
    graph::EdgeRecord e;
    e.u = r->I32();
    e.v = r->I32();
    e.papers = r->IntVec();
    edges.push_back(std::move(e));
  }
  IUAD_RETURN_NOT_OK(r->status());
  return graph::CollabGraph::Restore(std::move(vertices), edges);
}

// ---- Section: occurrences -------------------------------------------------

void WriteOccurrences(const core::OccurrenceIndex& idx, Writer* w) {
  const auto entries = idx.Entries();
  w->U64(entries.size());
  for (const auto& e : entries) {
    w->I32(e.paper_id);
    w->Str(e.name);
    w->I32(e.vertex);
  }
}

iuad::Result<core::OccurrenceIndex> ReadOccurrences(Reader* r) {
  core::OccurrenceIndex idx;
  const uint64_t n = r->U64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const int paper_id = r->I32();
    const std::string name = r->Str();
    const graph::VertexId vertex = r->I32();
    idx.AssignIfAbsent(paper_id, name, vertex);
  }
  IUAD_RETURN_NOT_OK(r->status());
  return idx;
}

// ---- Section: model -------------------------------------------------------

void WriteDistribution(const em::Distribution& d, Writer* w) {
  w->U8(static_cast<uint8_t>(d.family()));
  switch (d.family()) {
    case em::FamilyType::kGaussian: {
      const auto& g = static_cast<const em::GaussianDist&>(d);
      w->F64(g.mean());
      w->F64(g.variance());
      break;
    }
    case em::FamilyType::kExponential: {
      const auto& e = static_cast<const em::ExponentialDist&>(d);
      w->F64(e.lambda());
      break;
    }
    case em::FamilyType::kMultinomial: {
      const auto& m = static_cast<const em::MultinomialDist&>(d);
      w->U32(static_cast<uint32_t>(m.num_bins()));
      w->F64(m.lo());
      w->F64(m.hi());
      w->F64Vec(m.probabilities());
      break;
    }
  }
}

iuad::Result<std::unique_ptr<em::Distribution>> ReadDistribution(Reader* r) {
  const auto family = static_cast<em::FamilyType>(r->U8());
  switch (family) {
    case em::FamilyType::kGaussian: {
      const double mean = r->F64();
      const double variance = r->F64();
      IUAD_RETURN_NOT_OK(r->status());
      return {std::make_unique<em::GaussianDist>(mean, variance)};
    }
    case em::FamilyType::kExponential: {
      const double lambda = r->F64();
      IUAD_RETURN_NOT_OK(r->status());
      return {std::make_unique<em::ExponentialDist>(lambda)};
    }
    case em::FamilyType::kMultinomial: {
      const auto num_bins = static_cast<int>(r->U32());
      const double lo = r->F64();
      const double hi = r->F64();
      std::vector<double> probs = r->F64Vec();
      IUAD_RETURN_NOT_OK(r->status());
      auto m = std::make_unique<em::MultinomialDist>(num_bins, lo, hi);
      IUAD_RETURN_NOT_OK(m->SetProbabilities(std::move(probs)));
      return {std::move(m)};
    }
  }
  return iuad::Status::IoError("snapshot: unknown distribution family");
}

void WriteModel(const em::MixtureModel* model, Writer* w) {
  w->Bool(model != nullptr);
  if (model == nullptr) return;
  w->U32(static_cast<uint32_t>(model->dimension()));
  w->F64(model->prior_matched());
  w->F64(model->final_log_likelihood());
  w->I32(model->iterations_run());
  for (int f = 0; f < model->dimension(); ++f) {
    WriteDistribution(model->matched(f), w);
    WriteDistribution(model->unmatched(f), w);
  }
}

iuad::Result<std::unique_ptr<em::MixtureModel>> ReadModel(
    const core::IuadConfig& config, Reader* r) {
  if (!r->Bool()) return {std::unique_ptr<em::MixtureModel>()};  // SCN-only
  const auto m = static_cast<int>(r->U32());
  const double prior = r->F64();
  const double final_ll = r->F64();
  const int iterations = r->I32();
  std::vector<std::unique_ptr<em::Distribution>> matched, unmatched;
  for (int f = 0; f < m && r->ok(); ++f) {
    IUAD_ASSIGN_OR_RETURN(auto dm, ReadDistribution(r));
    IUAD_ASSIGN_OR_RETURN(auto du, ReadDistribution(r));
    matched.push_back(std::move(dm));
    unmatched.push_back(std::move(du));
  }
  IUAD_RETURN_NOT_OK(r->status());
  em::MixtureConfig mc = config.em;
  mc.families = config.families;  // as GcnBuilder assembles it before Fit
  IUAD_ASSIGN_OR_RETURN(
      auto model,
      em::MixtureModel::Restore(std::move(mc), std::move(matched),
                                std::move(unmatched), prior, final_ll,
                                iterations));
  return {std::make_unique<em::MixtureModel>(std::move(model))};
}

// ---- Section: stats -------------------------------------------------------

void WriteStats(const core::DisambiguationResult& res, Writer* w) {
  w->I64(res.scn_stats.num_scrs);
  w->I32(res.scn_stats.num_vertices);
  w->I32(res.scn_stats.num_edges);
  w->I64(res.scn_stats.covered_occurrences);
  w->I64(res.scn_stats.singleton_occurrences);
  w->I32(res.scn_stats.conflict_merges);
  w->I64(res.gcn_stats.names_with_candidates);
  w->I64(res.gcn_stats.candidate_pairs);
  w->I64(res.gcn_stats.training_pairs);
  w->I64(res.gcn_stats.augmented_pairs);
  w->I64(res.gcn_stats.merges);
  w->I64(res.gcn_stats.recovered_edges);
  w->F64(res.gcn_stats.em_log_likelihood);
  w->I32(res.gcn_stats.em_iterations);
  w->F64(res.embed_seconds);
  w->F64(res.scn_seconds);
  w->F64(res.gcn_seconds);
}

void ReadStats(Reader* r, core::DisambiguationResult* res) {
  res->scn_stats.num_scrs = r->I64();
  res->scn_stats.num_vertices = r->I32();
  res->scn_stats.num_edges = r->I32();
  res->scn_stats.covered_occurrences = r->I64();
  res->scn_stats.singleton_occurrences = r->I64();
  res->scn_stats.conflict_merges = r->I32();
  res->gcn_stats.names_with_candidates = r->I64();
  res->gcn_stats.candidate_pairs = r->I64();
  res->gcn_stats.training_pairs = r->I64();
  res->gcn_stats.augmented_pairs = r->I64();
  res->gcn_stats.merges = r->I64();
  res->gcn_stats.recovered_edges = r->I64();
  res->gcn_stats.em_log_likelihood = r->F64();
  res->gcn_stats.em_iterations = r->I32();
  res->embed_seconds = r->F64();
  res->scn_seconds = r->F64();
  res->gcn_seconds = r->F64();
}

}  // namespace

iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config) {
  Writer payload;
  WriteConfig(config, &payload);
  WriteEmbeddings(result.embeddings, &payload);
  WriteGraph(result.graph, &payload);
  WriteOccurrences(result.occurrences, &payload);
  WriteModel(result.model.get(), &payload);
  WriteStats(result, &payload);
  const std::string& body = payload.buffer();

  Writer header;
  header.Bytes(kMagic, sizeof(kMagic));
  header.U32(kSnapshotFormatVersion);
  header.U64(db.Fingerprint());
  header.U64(body.size());
  header.U64(Fnv1a(body.data(), body.size()));
  header.U32(static_cast<uint32_t>(
      Fnv1a(header.buffer().data(), header.buffer().size())));

  // Write-then-rename so a crash or full disk mid-save can never destroy an
  // existing good snapshot at `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return iuad::Status::IoError("cannot open " + tmp + " for writing");
  }
  const std::string& head = header.buffer();
  const bool written =
      std::fwrite(head.data(), 1, head.size(), f) == head.size() &&
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    return iuad::Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return iuad::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return iuad::Status::OK();
}

iuad::Result<Snapshot> LoadSnapshot(const std::string& path,
                                    const data::PaperDatabase& db) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return iuad::Status::IoError("cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return iuad::Status::IoError("read error on " + path);

  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return iuad::Status::InvalidArgument(path + " is not an IUAD snapshot");
  }
  Reader header(bytes.data() + sizeof(kMagic), kHeaderSize - sizeof(kMagic));
  const uint32_t version = header.U32();
  const uint64_t fingerprint = header.U64();
  const uint64_t payload_size = header.U64();
  const uint64_t payload_checksum = header.U64();
  const uint32_t header_checksum = header.U32();
  if (static_cast<uint32_t>(Fnv1a(bytes.data(), kHeaderSize - sizeof(uint32_t))) !=
      header_checksum) {
    return iuad::Status::IoError(path + ": snapshot header checksum mismatch");
  }
  if (version != kSnapshotFormatVersion) {
    return iuad::Status::InvalidArgument(
        path + ": unsupported snapshot format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return iuad::Status::IoError(path + ": snapshot payload truncated");
  }
  if (Fnv1a(bytes.data() + kHeaderSize, payload_size) != payload_checksum) {
    return iuad::Status::IoError(path + ": snapshot payload checksum mismatch");
  }
  if (fingerprint != db.Fingerprint()) {
    return iuad::Status::FailedPrecondition(
        path + ": snapshot was saved against a different corpus "
               "(fingerprint mismatch); load it next to the database it was "
               "fitted on");
  }

  Reader r(bytes.data() + kHeaderSize, payload_size);
  Snapshot snap;
  snap.config = ReadConfig(&r);
  IUAD_RETURN_NOT_OK(r.status());
  IUAD_ASSIGN_OR_RETURN(snap.result.embeddings,
                        ReadEmbeddings(snap.config.word2vec, &r));
  IUAD_ASSIGN_OR_RETURN(snap.result.graph, ReadGraph(&r));
  IUAD_ASSIGN_OR_RETURN(snap.result.occurrences, ReadOccurrences(&r));
  IUAD_ASSIGN_OR_RETURN(snap.result.model, ReadModel(snap.config, &r));
  ReadStats(&r, &snap.result);
  IUAD_RETURN_NOT_OK(r.status());
  if (!r.exhausted()) {
    return iuad::Status::IoError(path + ": trailing bytes after snapshot");
  }
  return snap;
}

}  // namespace iuad::io
