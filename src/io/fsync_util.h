// Crash-durable file primitives shared by snapshots and the WAL.
//
// Plain write-then-rename survives a crash of *this* process but not a power
// loss: the rename can hit the journal before the data blocks do, leaving a
// zero-length or half-written file under the final name. The atomic-replace
// protocol here is the full sequence — write temp, fsync temp, rename,
// fsync parent directory — so the replacement is durable once
// WriteFileDurably returns.

#ifndef IUAD_IO_FSYNC_UTIL_H_
#define IUAD_IO_FSYNC_UTIL_H_

#include <string>

#include "util/status.h"

namespace iuad::io {

/// fsync(2) an open descriptor; EINVAL/ENOTSUP (e.g. pipes in tests) is
/// treated as success so the helpers stay usable on exotic filesystems.
iuad::Status FsyncFd(int fd, const std::string& what);

/// fdatasync(2) an open descriptor, same error tolerance as FsyncFd.
/// Flushes the data blocks and any metadata needed to retrieve them (file
/// size after an append) but not timestamps — measurably cheaper than
/// fsync on the WAL group-commit path, where it runs on the commit thread.
iuad::Status FdatasyncFd(int fd, const std::string& what);

/// Opens `dir` read-only and fsyncs it so a just-created/renamed/unlinked
/// directory entry is durable.
iuad::Status FsyncDir(const std::string& dir);

/// Parent directory of `path` ("." when path has no separator).
std::string ParentDir(const std::string& path);

/// Atomically replaces `path` with head+body: write `path`.tmp, fsync it,
/// rename over `path`, fsync the parent directory. A crash at any point
/// leaves either the old file or the new one, never a torn mix.
iuad::Status WriteFileDurably(const std::string& path, const std::string& head,
                              const std::string& body);

/// fsyncs an already-written file by path (open read-only + fsync).
iuad::Status FsyncPath(const std::string& path);

/// Durable half of atomic replacement for files written by someone else
/// (e.g. PaperDatabase::SaveTsv): fsync `tmp`, rename it over `path`,
/// fsync the parent directory.
iuad::Status PromoteTempFile(const std::string& tmp, const std::string& path);

}  // namespace iuad::io

#endif  // IUAD_IO_FSYNC_UTIL_H_
