#ifndef IUAD_IO_SNAPSHOT_H_
#define IUAD_IO_SNAPSHOT_H_

/// \file snapshot.h
/// Versioned binary persistence for a fitted DisambiguationResult — the
/// bridge between the batch pipeline and the long-running incremental path
/// (Sec. V-E): fit once, save, and any later process reloads the model in
/// milliseconds instead of re-running the two-stage pipeline.
///
/// Format v3 (written by default) adds an interned author-name table to
/// the common section: every distinct name is stored exactly once and
/// vertex records reference it by dense i32 id, matching the in-memory
/// util::StringInterner representation of graph::CollabGraph.
///
/// Format v2 shards the payload by name block so a
/// large corpus never needs one contiguous checksummed payload: the graph
/// slice, occurrence slice, and read-side state of each serving shard
/// (shard/placement.h decides ownership, so sections mirror the
/// shard::ShardRouter partition) live in their own independently
/// checksummed section, and sections are verified and parsed in parallel
/// at load. Layout (all integers host-endian, doubles/floats raw
/// IEEE-754):
///
///   offset  field
///   ------  ---------------------------------------------------------
///   0       magic "IUADSNAP" (8 bytes)
///   8       format version (u32)
///   12      corpus fingerprint (u64, PaperDatabase::Fingerprint)
///   20      payload size in bytes (u64, everything after the header)
///   28      v2: section-table checksum / v1: payload checksum (u64, FNV-1a)
///   36      header checksum (u32, FNV-1a over bytes [0, 36))
///   40      v2: section table — num_sections (u32), then per section
///           {kind u32, size u64, checksum u64} — followed by the section
///           payloads back-to-back in table order.
///           v1: one contiguous payload (config | embeddings | graph |
///           occurrences | model | stats).
///
/// v2 sections: kind 0 = common (config, embeddings, fitted model, stats,
/// global vertex count), kind 1 = shard slice (owned vertices with explicit
/// ids, owned edges, owned occurrence assignments). Corruption of one
/// section is detected by that section's checksum and reported by section
/// index without poisoning the others (pinned in tests/snapshot_test.cpp).
///
/// LoadSnapshot reads all three versions: v1 files load through the legacy
/// monolithic parser and v2 files through the sectioned parser (names are
/// interned on read), so snapshots written before the name-table format
/// keep working. Verification order: magic, header checksum, format version,
/// payload size, then the corpus fingerprint against the caller's
/// PaperDatabase (the O(1) pairing check — a snapshot is only meaningful
/// next to the exact corpus it was fitted on — comes before any payload
/// pass), then the table/section (v2) or payload (v1) checksums.
/// Corruption surfaces as IoError, foreign files and unknown versions as
/// InvalidArgument, and a wrong corpus as FailedPrecondition.
///
/// Round-trip contract (pinned by tests/snapshot_test.cpp): feeding the
/// same paper stream through IncrementalDisambiguator::AddPaper on a
/// reloaded snapshot produces byte-identical assignments to the
/// never-serialized in-memory result — at either format version. Two
/// deliberate omissions: IuadConfig::pair_label_oracle (a std::function)
/// does not survive and is null after load, and the word2vec training-side
/// state (context vectors, negative table) is dropped — the embeddings
/// serve lookups only.

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/pipeline.h"
#include "data/paper_database.h"
#include "util/status.h"

namespace iuad::io {

/// Format version written by default. v3 keeps the v2 sectioned container
/// but stores author names once, in an interned name table in the common
/// section; shard-slice vertex records (and occurrence entries whose name
/// is in the table) reference names by dense i32 id instead of repeating
/// the string, mirroring the in-memory util::StringInterner layout.
constexpr uint32_t kSnapshotFormatVersion = 3;
/// The sectioned format with per-vertex name strings; still readable and
/// writable on request (SnapshotWriteOptions) for compatibility tooling
/// and tests.
constexpr uint32_t kSnapshotFormatV2 = 2;
/// The legacy monolithic-payload format; still readable, writable on
/// request (SnapshotWriteOptions) for compatibility tooling and tests.
constexpr uint32_t kSnapshotFormatV1 = 1;

/// A reloaded snapshot: the fitted state plus the configuration it was
/// built with.
struct Snapshot {
  core::DisambiguationResult result;
  core::IuadConfig config;
};

/// Writer knobs for SaveSnapshot.
struct SnapshotWriteOptions {
  /// kSnapshotFormatVersion, kSnapshotFormatV2, or kSnapshotFormatV1;
  /// anything else is InvalidArgument.
  uint32_t format_version = kSnapshotFormatVersion;
  /// v2/v3 shard-section count; 0 means config.num_shards. Ignored for v1.
  int num_shard_sections = 0;
};

/// Writes `result` (+ the config that produced it) to `path`, stamped with
/// `db`'s fingerprint. Overwrites an existing file.
iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config);
iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config,
                          const SnapshotWriteOptions& options);

/// Reads a snapshot written by SaveSnapshot (either format version) and
/// rebuilds the full DisambiguationResult against `db` (which must
/// fingerprint-match the database the snapshot was saved with).
iuad::Result<Snapshot> LoadSnapshot(const std::string& path,
                                    const data::PaperDatabase& db);

}  // namespace iuad::io

#endif  // IUAD_IO_SNAPSHOT_H_
