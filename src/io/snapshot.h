#ifndef IUAD_IO_SNAPSHOT_H_
#define IUAD_IO_SNAPSHOT_H_

/// \file snapshot.h
/// Versioned binary persistence for a fitted DisambiguationResult — the
/// bridge between the batch pipeline and the long-running incremental path
/// (Sec. V-E): fit once, save, and any later process reloads the model in
/// milliseconds instead of re-running the two-stage pipeline.
///
/// File layout (all integers host-endian, doubles/floats raw IEEE-754):
///
///   offset  field
///   ------  ---------------------------------------------------------
///   0       magic "IUADSNAP" (8 bytes)
///   8       format version (u32, kSnapshotFormatVersion)
///   12      corpus fingerprint (u64, PaperDatabase::Fingerprint)
///   20      payload size in bytes (u64)
///   28      payload checksum (u64, FNV-1a over the payload bytes)
///   36      header checksum (u32, FNV-1a over bytes [0, 36))
///   40      payload: config | embeddings | graph | occurrences |
///           model | stats sections, in that order
///
/// LoadSnapshot verifies, in order: magic, format version, header checksum,
/// payload size + checksum, and the corpus fingerprint against the caller's
/// PaperDatabase — a snapshot is only meaningful next to the exact corpus
/// it was fitted on (vertex paper ids index into it). Corruption surfaces
/// as IoError, foreign files and unknown versions as InvalidArgument, and
/// a wrong corpus as FailedPrecondition.
///
/// Round-trip contract (pinned by tests/snapshot_test.cpp): feeding the
/// same paper stream through IncrementalDisambiguator::AddPaper on a
/// reloaded snapshot produces byte-identical assignments to the
/// never-serialized in-memory result. Two deliberate omissions:
/// IuadConfig::pair_label_oracle (a std::function) does not survive and is
/// null after load, and the word2vec training-side state (context vectors,
/// negative table) is dropped — the embeddings serve lookups only.

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/pipeline.h"
#include "data/paper_database.h"
#include "util/status.h"

namespace iuad::io {

/// Format version written by SaveSnapshot; every other version is refused.
constexpr uint32_t kSnapshotFormatVersion = 1;

/// A reloaded snapshot: the fitted state plus the configuration it was
/// built with.
struct Snapshot {
  core::DisambiguationResult result;
  core::IuadConfig config;
};

/// Writes `result` (+ the config that produced it) to `path`, stamped with
/// `db`'s fingerprint. Overwrites an existing file.
iuad::Status SaveSnapshot(const std::string& path,
                          const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config);

/// Reads a snapshot written by SaveSnapshot and rebuilds the full
/// DisambiguationResult against `db` (which must fingerprint-match the
/// database the snapshot was saved with).
iuad::Result<Snapshot> LoadSnapshot(const std::string& path,
                                    const data::PaperDatabase& db);

}  // namespace iuad::io

#endif  // IUAD_IO_SNAPSHOT_H_
