// Shared little-endian byte codec for on-disk formats (snapshots, WAL).
//
// Writer appends fixed-width scalars / length-prefixed containers to a
// buffer; Reader is its bounds-checked mirror. Both were factored out of
// snapshot.cpp so the WAL record format shares one codec (and one checksum)
// with the snapshot format instead of growing a second dialect.

#ifndef IUAD_IO_BYTE_CODEC_H_
#define IUAD_IO_BYTE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace iuad::io {

/// FNV-1a over `n` bytes. Chainable: pass a previous digest as `h` to extend.
inline uint64_t Fnv1a(const void* data, size_t n,
                      uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Appends fixed-width scalars / length-prefixed containers to a buffer.
class Writer {
 public:
  template <typename T>
  void Raw(T x) {
    static_assert(std::is_trivially_copyable<T>::value, "raw scalar only");
    const size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(&buf_[at], &x, sizeof(T));
  }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  void U8(uint8_t x) { Raw(x); }
  void U32(uint32_t x) { Raw(x); }
  void U64(uint64_t x) { Raw(x); }
  void I32(int32_t x) { Raw(x); }
  void I64(int64_t x) { Raw(x); }
  void F64(double x) { Raw(x); }
  void Bool(bool x) { U8(x ? 1 : 0); }
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s);
  }
  void IntVec(const std::vector<int>& xs) {
    U64(xs.size());
    for (int x : xs) I32(x);
  }
  void F64Vec(const std::vector<double>& xs) {
    U64(xs.size());
    for (double x : xs) F64(x);
  }
  void FloatVec(const std::vector<float>& xs) {
    U64(xs.size());
    const size_t at = buf_.size();
    buf_.resize(at + xs.size() * sizeof(float));
    if (!xs.empty()) std::memcpy(&buf_[at], xs.data(), xs.size() * sizeof(float));
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked mirror of Writer. Every read reports corruption (a
/// truncated or bit-flipped payload that nevertheless passed the checksum
/// is astronomically unlikely, but the reader still never walks off the
/// buffer) through ok()/status().
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Raw() {
    static_assert(std::is_trivially_copyable<T>::value, "raw scalar only");
    T x{};
    if (!Take(sizeof(T))) return x;
    std::memcpy(&x, data_ + pos_ - sizeof(T), sizeof(T));
    return x;
  }
  uint8_t U8() { return Raw<uint8_t>(); }
  uint32_t U32() { return Raw<uint32_t>(); }
  uint64_t U64() { return Raw<uint64_t>(); }
  int32_t I32() { return Raw<int32_t>(); }
  int64_t I64() { return Raw<int64_t>(); }
  double F64() { return Raw<double>(); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint64_t n = U64();
    if (!Take(n)) return {};
    return std::string(data_ + pos_ - n, n);
  }
  std::vector<int> IntVec() {
    const uint64_t n = U64();
    std::vector<int> xs;
    if (!CheckCount(n, sizeof(int32_t))) return xs;
    xs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) xs.push_back(I32());
    return xs;
  }
  std::vector<double> F64Vec() {
    const uint64_t n = U64();
    std::vector<double> xs;
    if (!CheckCount(n, sizeof(double))) return xs;
    xs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) xs.push_back(F64());
    return xs;
  }
  std::vector<float> FloatVec() {
    const uint64_t n = U64();
    std::vector<float> xs;
    if (!CheckCount(n, sizeof(float)) || !Take(n * sizeof(float))) return xs;
    xs.resize(n);
    if (n > 0) std::memcpy(xs.data(), data_ + pos_ - n * sizeof(float),
                           n * sizeof(float));
    return xs;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }
  iuad::Status status() const {
    if (ok_) return iuad::Status::OK();
    return iuad::Status::IoError("payload truncated or corrupt");
  }

 private:
  bool Take(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  bool CheckCount(uint64_t n, size_t elem_size) {
    // A hostile/corrupt count must not drive a giant reserve.
    if (!ok_ || n > (size_ - pos_) / elem_size) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace iuad::io

#endif  // IUAD_IO_BYTE_CODEC_H_
