#include "io/fsync_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace iuad::io {

iuad::Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    return iuad::Status::IoError("fsync failed for " + what + ": " +
                                 std::strerror(errno));
  }
  return iuad::Status::OK();
}

iuad::Status FdatasyncFd(int fd, const std::string& what) {
  if (::fdatasync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    return iuad::Status::IoError("fdatasync failed for " + what + ": " +
                                 std::strerror(errno));
  }
  return iuad::Status::OK();
}

iuad::Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return iuad::Status::IoError("cannot open directory " + dir +
                                 " for fsync: " + std::strerror(errno));
  }
  iuad::Status s = FsyncFd(fd, "directory " + dir);
  ::close(fd);
  return s;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

iuad::Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return iuad::Status::IoError("cannot open " + path +
                                 " for fsync: " + std::strerror(errno));
  }
  iuad::Status s = FsyncFd(fd, path);
  ::close(fd);
  return s;
}

iuad::Status PromoteTempFile(const std::string& tmp, const std::string& path) {
  IUAD_RETURN_NOT_OK(FsyncPath(tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return iuad::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return FsyncDir(ParentDir(path));
}

iuad::Status WriteFileDurably(const std::string& path, const std::string& head,
                              const std::string& body) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return iuad::Status::IoError("cannot open " + tmp +
                                 " for writing: " + std::strerror(errno));
  }
  auto write_all = [fd](const std::string& buf) {
    size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  };
  if (!write_all(head) || !write_all(body)) {
    ::close(fd);
    std::remove(tmp.c_str());
    return iuad::Status::IoError("short write to " + tmp);
  }
  if (iuad::Status s = FsyncFd(fd, tmp); !s.ok()) {
    ::close(fd);
    std::remove(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return iuad::Status::IoError("close failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return iuad::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return FsyncDir(ParentDir(path));
}

}  // namespace iuad::io
