#include "em/mixture_model.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace iuad::em {

MixtureModel::MixtureModel(MixtureConfig config) : config_(std::move(config)) {
  for (FamilyType f : config_.families) {
    matched_.push_back(MakeDistribution(f));
    unmatched_.push_back(MakeDistribution(f));
  }
}

iuad::Result<MixtureModel> MixtureModel::Restore(
    MixtureConfig config, std::vector<std::unique_ptr<Distribution>> matched,
    std::vector<std::unique_ptr<Distribution>> unmatched, double prior_matched,
    double final_log_likelihood, int iterations_run) {
  const size_t m = config.families.size();
  if (matched.size() != m || unmatched.size() != m) {
    return iuad::Status::InvalidArgument(
        "model restore: marginal count disagrees with families");
  }
  for (size_t f = 0; f < m; ++f) {
    if (matched[f] == nullptr || unmatched[f] == nullptr ||
        matched[f]->family() != config.families[f] ||
        unmatched[f]->family() != config.families[f]) {
      return iuad::Status::InvalidArgument(
          "model restore: marginal family mismatch at feature " +
          std::to_string(f));
    }
  }
  if (!(prior_matched > 0.0 && prior_matched < 1.0)) {
    return iuad::Status::InvalidArgument(
        "model restore: class prior outside (0, 1)");
  }
  MixtureModel model(std::move(config));
  model.matched_ = std::move(matched);
  model.unmatched_ = std::move(unmatched);
  model.prior_matched_ = prior_matched;
  model.final_log_likelihood_ = final_log_likelihood;
  model.iterations_run_ = iterations_run;
  model.fitted_ = true;
  return model;
}

std::vector<double> MixtureModel::InitialResponsibilities(
    const std::vector<std::vector<double>>& gammas) const {
  const size_t n = gammas.size();
  const size_t m = config_.families.size();
  // Standardize each feature, sum -> composite evidence score.
  std::vector<double> score(n, 0.0);
  for (size_t f = 0; f < m; ++f) {
    std::vector<double> col(n);
    for (size_t j = 0; j < n; ++j) col[j] = gammas[j][f];
    const double mu = Mean(col);
    const double sd = std::sqrt(std::max(1e-12, Variance(col)));
    for (size_t j = 0; j < n; ++j) score[j] += (col[j] - mu) / sd;
  }
  std::vector<double> sorted = score;
  std::sort(sorted.begin(), sorted.end());
  const size_t q_idx = std::min(
      n - 1, static_cast<size_t>(config_.init_quantile * static_cast<double>(n)));
  const double cut = sorted[q_idx];
  std::vector<double> resp(n);
  for (size_t j = 0; j < n; ++j) {
    resp[j] = score[j] >= cut ? config_.init_high : config_.init_low;
  }
  return resp;
}

iuad::Status MixtureModel::Fit(const std::vector<std::vector<double>>& gammas) {
  if (gammas.empty()) {
    return iuad::Status::InvalidArgument("EM: no training vectors");
  }
  return Fit(gammas, InitialResponsibilities(gammas));
}

iuad::Status MixtureModel::Fit(const std::vector<std::vector<double>>& gammas,
                               const std::vector<double>& init_resp) {
  const size_t n = gammas.size();
  const size_t m = config_.families.size();
  if (n == 0) return iuad::Status::InvalidArgument("EM: no training vectors");
  if (init_resp.size() != n) {
    return iuad::Status::InvalidArgument("EM: init responsibilities size");
  }
  for (const auto& g : gammas) {
    if (g.size() != m) {
      return iuad::Status::InvalidArgument(
          "EM: similarity vector dimension mismatch");
    }
  }

  std::vector<double> resp = init_resp;  // l_j = P(r_j in M | ...)
  std::vector<double> col(n), w_matched(n), w_unmatched(n);

  // E-step fan-out. The pool outlives the iteration loop so workers spawn
  // once per Fit, not once per iteration; tiny inputs stay serial — the
  // dispatch overhead would dwarf the LogPdf work.
  const int threads = util::ResolveNumThreads(config_.num_threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1 && n >= 256) {
    pool = std::make_unique<util::ThreadPool>(threads);
  }
  std::vector<double> ll_term(n);

  double prev_ll = -1e300;
  iterations_run_ = 0;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    ++iterations_run_;
    // ---- M-step: weighted MLEs of Table I, plus the class prior. --------
    double resp_sum = 0.0;
    for (size_t j = 0; j < n; ++j) resp_sum += resp[j];
    prior_matched_ =
        std::clamp(resp_sum / static_cast<double>(n), config_.min_prior,
                   1.0 - config_.min_prior);
    for (size_t f = 0; f < m; ++f) {
      for (size_t j = 0; j < n; ++j) {
        col[j] = gammas[j][f];
        w_matched[j] = resp[j];
        w_unmatched[j] = 1.0 - resp[j];
      }
      IUAD_RETURN_NOT_OK(matched_[f]->FitWeighted(col, w_matched));
      IUAD_RETURN_NOT_OK(unmatched_[f]->FitWeighted(col, w_unmatched));
    }

    // ---- E-step: responsibilities + observed-data log-likelihood. -------
    // Parallel over samples; each j writes only its own slots, and the
    // log-likelihood is reduced serially in sample order below, so the
    // result is byte-identical at any thread count (pinned in em_test).
    util::ForIndices(pool.get(), n, [&](size_t j) {
      const double log_m = LogJoint(gammas[j], true);
      const double log_u = LogJoint(gammas[j], false);
      const double mx = std::max(log_m, log_u);
      const double pm = std::exp(log_m - mx);
      const double pu = std::exp(log_u - mx);
      resp[j] = pm / (pm + pu);
      ll_term[j] = mx + std::log(pm + pu);
    });
    double ll = 0.0;
    for (size_t j = 0; j < n; ++j) ll += ll_term[j];
    final_log_likelihood_ = ll;
    if (std::abs(ll - prev_ll) <
        config_.tolerance * static_cast<double>(n)) {
      break;
    }
    prev_ll = ll;
  }
  fitted_ = true;
  return iuad::Status::OK();
}

double MixtureModel::LogJoint(const std::vector<double>& gamma,
                              bool is_matched,
                              const std::vector<bool>* mask) const {
  double lp = std::log(is_matched ? prior_matched_ : 1.0 - prior_matched_);
  const auto& dists = is_matched ? matched_ : unmatched_;
  for (size_t f = 0; f < dists.size(); ++f) {
    if (mask != nullptr && f < mask->size() && !(*mask)[f]) continue;
    lp += dists[f]->LogPdf(gamma[f]);
  }
  return lp;
}

double MixtureModel::MatchScore(const std::vector<double>& gamma) const {
  return LogJoint(gamma, true) - LogJoint(gamma, false);
}

double MixtureModel::MatchScoreMasked(const std::vector<double>& gamma,
                                      const std::vector<bool>& mask) const {
  return LogJoint(gamma, true, &mask) - LogJoint(gamma, false, &mask);
}

double MixtureModel::LikelihoodRatioMasked(const std::vector<double>& gamma,
                                           const std::vector<bool>& mask) const {
  const double prior_term =
      std::log(prior_matched_) - std::log(1.0 - prior_matched_);
  return MatchScoreMasked(gamma, mask) - prior_term;
}

double MixtureModel::PosteriorMatched(const std::vector<double>& gamma) const {
  const double s = MatchScore(gamma);
  // posterior = sigmoid(score); stable at both tails.
  if (s > 0) {
    return 1.0 / (1.0 + std::exp(-s));
  }
  const double e = std::exp(s);
  return e / (1.0 + e);
}

std::string MixtureModel::ToString() const {
  std::string s = "MixtureModel(p_match=" + FormatDouble(prior_matched_, 4) +
                  ", ll=" + FormatDouble(final_log_likelihood_, 2) +
                  ", iters=" + std::to_string(iterations_run_) + ")\n";
  for (size_t f = 0; f < matched_.size(); ++f) {
    s += "  f" + std::to_string(f) + " M: " + matched_[f]->ToString() +
         "  U: " + unmatched_[f]->ToString() + "\n";
  }
  return s;
}

}  // namespace iuad::em
