#ifndef IUAD_EM_DISTRIBUTIONS_H_
#define IUAD_EM_DISTRIBUTIONS_H_

/// \file distributions.h
/// Univariate exponential-family marginals used by the generative model of
/// Sec. V-C. The paper models each similarity γ^(i) with a member of the
/// exponential family whose weighted MLEs are closed-form (Table I):
/// Gaussian, Exponential, and Multinomial. Each distribution supports
/// weighted fitting (the E-step responsibilities are the weights) and
/// log-density evaluation.

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace iuad::em {

enum class FamilyType { kGaussian, kExponential, kMultinomial };

const char* FamilyName(FamilyType type);

/// Interface of a fittable univariate marginal.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Weighted maximum-likelihood fit: weights are E-step responsibilities in
  /// [0, 1]; `xs` and `weights` are parallel. Implementations must be robust
  /// to (near-)zero total weight and to degenerate samples.
  virtual iuad::Status FitWeighted(const std::vector<double>& xs,
                                   const std::vector<double>& weights) = 0;

  /// log p(x) under the current parameters. Never returns NaN; out-of-
  /// support points get a large negative value instead of -inf so EM stays
  /// numerically stable.
  virtual double LogPdf(double x) const = 0;

  /// Human-readable parameter dump for logging/EXPERIMENTS.md.
  virtual std::string ToString() const = 0;

  virtual FamilyType family() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> Clone() const = 0;
};

/// N(mu, sigma^2) with a variance floor for degenerate clusters.
class GaussianDist : public Distribution {
 public:
  GaussianDist(double mean = 0.0, double variance = 1.0)
      : mean_(mean), variance_(variance) {}

  iuad::Status FitWeighted(const std::vector<double>& xs,
                           const std::vector<double>& weights) override;
  double LogPdf(double x) const override;
  std::string ToString() const override;
  FamilyType family() const override { return FamilyType::kGaussian; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<GaussianDist>(*this);
  }

  double mean() const { return mean_; }
  double variance() const { return variance_; }

  /// Floor large enough that a point-mass component cannot dominate the
  /// posterior log-odds (a spike at γ = 0 with var -> 0 produces unbounded
  /// densities and makes the δ threshold inoperative).
  static constexpr double kVarianceFloor = 1e-4;

 private:
  double mean_;
  double variance_;
};

/// Exp(lambda) on [0, inf); negative observations are clamped to 0 when
/// fitting (similarities are nonnegative by construction, but floating-point
/// noise may dip below).
class ExponentialDist : public Distribution {
 public:
  explicit ExponentialDist(double lambda = 1.0) : lambda_(lambda) {}

  iuad::Status FitWeighted(const std::vector<double>& xs,
                           const std::vector<double>& weights) override;
  double LogPdf(double x) const override;
  std::string ToString() const override;
  FamilyType family() const override { return FamilyType::kExponential; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<ExponentialDist>(*this);
  }

  double lambda() const { return lambda_; }

  /// Rate cap bounding the density at 0 (log λ <= ~9.2), for the same
  /// log-odds-boundedness reason as GaussianDist::kVarianceFloor.
  static constexpr double kMaxLambda = 1e4;

 private:
  double lambda_;
};

/// Multinomial over `num_bins` equal-width bins spanning [lo, hi], with
/// Laplace smoothing. Out-of-range observations clamp to the boundary bins.
class MultinomialDist : public Distribution {
 public:
  MultinomialDist(int num_bins, double lo, double hi);

  iuad::Status FitWeighted(const std::vector<double>& xs,
                           const std::vector<double>& weights) override;
  double LogPdf(double x) const override;
  std::string ToString() const override;
  FamilyType family() const override { return FamilyType::kMultinomial; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<MultinomialDist>(*this);
  }

  int BinOf(double x) const;
  const std::vector<double>& probabilities() const { return probs_; }
  int num_bins() const { return num_bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Reinstates fitted bin probabilities (snapshot load, src/io). Rejects a
  /// vector whose size disagrees with num_bins or with nonpositive entries
  /// (fitting always Laplace-smooths, so every stored bin is > 0).
  iuad::Status SetProbabilities(std::vector<double> probs);

 private:
  int num_bins_;
  double lo_, hi_;
  std::vector<double> probs_;
};

/// Factory with per-family default parameters. Multinomial defaults to 16
/// bins on [0, 1].
std::unique_ptr<Distribution> MakeDistribution(FamilyType type);

}  // namespace iuad::em

#endif  // IUAD_EM_DISTRIBUTIONS_H_
