#include "em/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace iuad::em {

namespace {
/// Large negative stand-in for log 0, keeping EM arithmetic NaN-free.
constexpr double kLogZero = -1e9;
constexpr double kMinTotalWeight = 1e-12;
}  // namespace

const char* FamilyName(FamilyType type) {
  switch (type) {
    case FamilyType::kGaussian: return "Gaussian";
    case FamilyType::kExponential: return "Exponential";
    case FamilyType::kMultinomial: return "Multinomial";
  }
  return "Unknown";
}

// --- Gaussian --------------------------------------------------------------

iuad::Status GaussianDist::FitWeighted(const std::vector<double>& xs,
                                       const std::vector<double>& weights) {
  if (xs.size() != weights.size()) {
    return iuad::Status::InvalidArgument("xs/weights size mismatch");
  }
  double wsum = 0.0, wx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    wsum += weights[i];
    wx += weights[i] * xs[i];
  }
  if (wsum < kMinTotalWeight) {
    // No effective mass assigned to this component: keep previous params.
    return iuad::Status::OK();
  }
  // Table I: mu = sum(l_j * x_j) / sum(l_j); sigma^2 uses the same weights.
  mean_ = wx / wsum;
  double wvar = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - mean_;
    wvar += weights[i] * d * d;
  }
  variance_ = std::max(kVarianceFloor, wvar / wsum);
  return iuad::Status::OK();
}

double GaussianDist::LogPdf(double x) const {
  const double d = x - mean_;
  return -0.5 * std::log(2.0 * M_PI * variance_) - d * d / (2.0 * variance_);
}

std::string GaussianDist::ToString() const {
  return "Gaussian(mu=" + FormatDouble(mean_, 4) +
         ", var=" + FormatDouble(variance_, 6) + ")";
}

// --- Exponential -------------------------------------------------------------

iuad::Status ExponentialDist::FitWeighted(const std::vector<double>& xs,
                                          const std::vector<double>& weights) {
  if (xs.size() != weights.size()) {
    return iuad::Status::InvalidArgument("xs/weights size mismatch");
  }
  double wsum = 0.0, wx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    wsum += weights[i];
    wx += weights[i] * std::max(0.0, xs[i]);
  }
  if (wsum < kMinTotalWeight) return iuad::Status::OK();
  // Table I: lambda = sum(l_j) / sum(l_j * x_j).
  lambda_ = (wx < kMinTotalWeight) ? kMaxLambda : std::min(kMaxLambda, wsum / wx);
  return iuad::Status::OK();
}

double ExponentialDist::LogPdf(double x) const {
  if (x < 0.0) return kLogZero;
  return std::log(lambda_) - lambda_ * x;
}

std::string ExponentialDist::ToString() const {
  return "Exponential(lambda=" + FormatDouble(lambda_, 4) + ")";
}

// --- Multinomial -------------------------------------------------------------

MultinomialDist::MultinomialDist(int num_bins, double lo, double hi)
    : num_bins_(std::max(1, num_bins)),
      lo_(lo),
      hi_(hi > lo ? hi : lo + 1.0),
      probs_(static_cast<size_t>(num_bins_),
             1.0 / static_cast<double>(num_bins_)) {}

iuad::Status MultinomialDist::SetProbabilities(std::vector<double> probs) {
  if (static_cast<int>(probs.size()) != num_bins_) {
    return iuad::Status::InvalidArgument(
        "multinomial restore: expected " + std::to_string(num_bins_) +
        " bin probabilities, got " + std::to_string(probs.size()));
  }
  for (double p : probs) {
    if (!(p > 0.0)) {
      return iuad::Status::InvalidArgument(
          "multinomial restore: nonpositive bin probability");
    }
  }
  probs_ = std::move(probs);
  return iuad::Status::OK();
}

int MultinomialDist::BinOf(double x) const {
  const double t = (x - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(t * num_bins_);
  return std::clamp(bin, 0, num_bins_ - 1);
}

iuad::Status MultinomialDist::FitWeighted(const std::vector<double>& xs,
                                          const std::vector<double>& weights) {
  if (xs.size() != weights.size()) {
    return iuad::Status::InvalidArgument("xs/weights size mismatch");
  }
  std::vector<double> mass(static_cast<size_t>(num_bins_), 0.0);
  double wsum = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    mass[static_cast<size_t>(BinOf(xs[i]))] += weights[i];
    wsum += weights[i];
  }
  if (wsum < kMinTotalWeight) return iuad::Status::OK();
  // Table I multinomial row with Laplace smoothing heavy enough that a
  // nearly-empty bin cannot produce extreme log-odds (the same
  // boundedness rationale as the Gaussian variance floor).
  const double alpha = 0.5;
  const double denom = wsum + alpha * num_bins_;
  for (int b = 0; b < num_bins_; ++b) {
    probs_[static_cast<size_t>(b)] = (mass[static_cast<size_t>(b)] + alpha) / denom;
  }
  return iuad::Status::OK();
}

double MultinomialDist::LogPdf(double x) const {
  const double p = probs_[static_cast<size_t>(BinOf(x))];
  return p > 0.0 ? std::log(p) : kLogZero;
}

std::string MultinomialDist::ToString() const {
  std::string s = "Multinomial(";
  for (int b = 0; b < num_bins_ && b < 8; ++b) {
    if (b) s += ",";
    s += FormatDouble(probs_[static_cast<size_t>(b)], 3);
  }
  if (num_bins_ > 8) s += ",...";
  return s + ")";
}

std::unique_ptr<Distribution> MakeDistribution(FamilyType type) {
  switch (type) {
    case FamilyType::kGaussian: return std::make_unique<GaussianDist>();
    case FamilyType::kExponential: return std::make_unique<ExponentialDist>();
    case FamilyType::kMultinomial:
      return std::make_unique<MultinomialDist>(8, 0.0, 1.0);
  }
  return nullptr;
}

}  // namespace iuad::em
