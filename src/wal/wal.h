#ifndef IUAD_WAL_WAL_H_
#define IUAD_WAL_WAL_H_

/// \file wal.h
/// Durability for the incremental serving path (DESIGN.md §9): an
/// append-only write-ahead log of every commit *attempt*, segment files
/// named by the sequence range they cover, a manifest pairing the latest
/// checkpoint (snapshot-v3 + corpus TSV) with the segments it retires, and
/// recovery = load checkpoint + replay the tail through the normal
/// Submit/AddPaper path.
///
/// The determinism contract (DESIGN.md §6) is the recovery oracle: because
/// every Frontend's ingestion outcome is byte-identical to sequential
/// AddPaper in sequence order, replaying the logged attempt sequence from a
/// checkpoint taken at a refresh boundary reproduces the pre-crash state
/// exactly — score bits included. Checkpoints are only ever taken when
/// `since_refresh == 0` (similarity caches freshly rebuilt), which is the
/// one point where a newly constructed frontend's cache state matches the
/// uninterrupted run's.
///
/// Record format (io::Writer codec, host-endian like snapshots):
///
///   u32 payload_len | u64 payload_crc (FNV-1a) | payload
///   payload = u64 global_seq | i32 paper_id | str title | str venue |
///             i32 year | u64 n_names | str... | u64 n_truth | i32...
///
/// Segment files: the active segment is `wal-<start>.log` (start = first
/// sequence it holds, zero-padded); sealing renames it to
/// `wal-<start>-<end>.log` (end exclusive). Every segment begins with a
/// 24-byte header: magic "IUADWAL1", u64 base fingerprint, u64 start seq.
///
/// Torn-write rule: an *incomplete* record at the tail of the final
/// segment is the expected crash artifact and is silently truncated away
/// at Open; a complete record whose CRC fails, a sequence discontinuity,
/// or any damage in a sealed (non-final) segment is real corruption and is
/// rejected loudly as IoError, pinpointed by sequence number. A directory
/// whose manifest fingerprint disagrees with the serving corpus is
/// rejected as FailedPrecondition.
///
/// Threading: Append/MaybeFlush/Flush/MaybeCheckpoint are called only from
/// the frontend's single commit thread (applier / router). Open and the
/// tail() accessors are pre-serving. Metrics are relaxed atomics, readable
/// from any thread.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "data/paper.h"
#include "data/paper_database.h"
#include "util/status.h"

namespace iuad::obs {
class Registry;
class Counter;
class Gauge;
class Histogram;
}  // namespace iuad::obs

namespace iuad::wal {

/// Writer knobs (CLI: --wal-fsync-every / --wal-fsync-ms).
struct Options {
  /// Group-commit width: fsync after this many buffered records. 1 =
  /// fsync every record (strict durability, slowest).
  int fsync_every_n = 64;
  /// Time trigger: flush+fsync on append when this much time has passed
  /// since the last sync, even if fewer than fsync_every_n records are
  /// buffered. Bounds durability lag under sustained slow load (the
  /// idle-flush covers bursty load); keep it well above the fsync cost
  /// itself or the "group" degenerates to a couple of records. 0 disables
  /// the time trigger (the idle-flush still runs).
  double fsync_interval_ms = 50.0;
  /// Rotate the active segment after this many records. Checkpoints retire
  /// only fully-covered segments, so smaller segments reclaim disk sooner.
  int segment_records = 4096;
};

/// One logged commit attempt, as read back at Open.
struct TailRecord {
  uint64_t seq = 0;  ///< Global sequence (monotone across restarts).
  data::Paper paper;
};

/// An open WAL directory: recovery state (manifest + validated tail) and
/// the append handle for the active segment.
class Log {
 public:
  /// Opens (or initializes) the WAL directory `dir`.
  ///
  /// `base_fingerprint` is the fingerprint of the fitted corpus the caller
  /// serves from when no checkpoint exists. A fresh directory is stamped
  /// with it; an existing directory whose manifest disagrees fails with
  /// FailedPrecondition ("WAL from a different corpus"). Validates every
  /// surviving segment, truncates a torn final record, and loads the replay
  /// tail (records with seq >= snapshot_seq).
  static iuad::Result<std::unique_ptr<Log>> Open(const std::string& dir,
                                                 uint64_t base_fingerprint,
                                                 const Options& options);

  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  // ---- Recovery surface (read after Open, before serving) -----------------

  /// True when the manifest references a checkpoint (snapshot + corpus).
  bool has_checkpoint() const { return !snapshot_file_.empty(); }
  /// First sequence NOT covered by the checkpoint (0 when none): replay
  /// starts here, and a frontend constructed from the checkpoint maps its
  /// session sequence 0 to this global sequence.
  uint64_t snapshot_seq() const { return snapshot_seq_; }
  /// Absolute paths of the checkpoint pair ("" when none).
  std::string checkpoint_snapshot_path() const;
  std::string checkpoint_corpus_path() const;
  /// First sequence not yet durable on disk (next append's sequence).
  uint64_t durable_next() const { return durable_next_; }
  /// Validated replay tail: all durable records in [snapshot_seq,
  /// durable_next), in sequence order.
  const std::vector<TailRecord>& tail() const { return tail_; }

  // ---- Commit-thread API ---------------------------------------------------

  /// Registers the wal_* instruments in `registry` (frontends call this at
  /// construction so WAL metrics land in the frontend-owned registry).
  void BindMetrics(obs::Registry* registry);

  /// Logs the commit attempt at session sequence `session_seq` (global =
  /// snapshot_seq() + session_seq). A no-op for sequences already durable —
  /// which is exactly what makes replay-through-the-normal-path safe: the
  /// replayed prefix re-executes without re-appending. Buffers user-space;
  /// durability happens at the next flush.
  void Append(uint64_t session_seq, const data::Paper& paper);

  /// Flush+fsync if the group-commit cadence (fsync_every_n records or
  /// fsync_interval_ms elapsed) says so. Call once per commit (applier) or
  /// once per window (router).
  void MaybeFlush();

  /// Unconditional flush+fsync of everything appended so far. Called on
  /// idle transitions, Drain, and Stop.
  iuad::Status Flush();

  /// Writes a checkpoint covering every sequence < snapshot_seq() +
  /// `session_applied`: durable corpus TSV + snapshot-v3 pair, seals and
  /// rotates the active segment, commits the new manifest, then unlinks
  /// fully-covered segments and the previous checkpoint pair. Must be
  /// called at a refresh boundary (see file comment). A crash at any point
  /// leaves either the old checkpoint or the new one intact.
  iuad::Status Checkpoint(const data::PaperDatabase& db,
                          const core::DisambiguationResult& result,
                          const core::IuadConfig& config,
                          uint64_t session_applied);

  /// Sticky first append/flush error (durability lost; serving continues).
  iuad::Status status() const { return io_status_; }

  /// Last checkpoint's covered-sequence count and unix time (0/-1 when
  /// none this process knows of) — also exported as the
  /// wal_last_checkpoint_seq / wal_last_checkpoint_timestamp gauges.
  uint64_t last_checkpoint_seq() const { return snapshot_seq_; }

  const std::string& dir() const { return dir_; }

 private:
  Log(std::string dir, Options options);

  iuad::Status OpenImpl(uint64_t base_fingerprint);
  iuad::Status LoadManifest(bool* found);
  iuad::Status CommitManifest();
  iuad::Status ScanSegments();
  iuad::Status RecoverSegments();
  iuad::Status FinishRecovery(uint64_t next_seq, bool reopen_active);
  iuad::Status OpenActiveSegment(uint64_t start_seq);
  iuad::Status SealActiveSegment();
  iuad::Status RotateSegment();
  void RemoveCoveredFiles(const std::string& old_snapshot,
                          const std::string& old_corpus);

  std::string dir_;
  Options options_;

  // Manifest state.
  uint64_t base_fingerprint_ = 0;
  uint64_t snapshot_seq_ = 0;
  uint64_t checkpoint_fingerprint_ = 0;
  uint64_t checkpoint_unix_s_ = 0;  ///< Unix seconds of the last checkpoint.
  std::string snapshot_file_;  ///< File name within dir_; "" = none.
  std::string corpus_file_;
  /// snapshot_seq at Open time: the frontend constructed from that state
  /// maps session sequence s to global sequence session_base_ + s. Fixed
  /// for the life of the handle (checkpoints move snapshot_seq_, never
  /// this).
  uint64_t session_base_ = 0;

  // Segment state.
  struct SegmentInfo {
    std::string name;
    uint64_t start = 0;
    uint64_t end = 0;  ///< Exclusive; == start for an empty active segment.
    bool sealed = false;
  };
  std::vector<SegmentInfo> segments_;  ///< Surviving, in sequence order.
  int active_fd_ = -1;
  uint64_t active_start_ = 0;    ///< First seq of the active segment.
  uint64_t durable_next_ = 0;    ///< Next seq to hit the disk.
  uint64_t buffered_next_ = 0;   ///< Next seq to enter the buffer.
  std::string buffer_;           ///< User-space pending records.
  int buffered_records_ = 0;
  int64_t last_sync_ns_ = 0;

  std::vector<TailRecord> tail_;
  iuad::Status io_status_ = iuad::Status::OK();

  // Metrics (null until BindMetrics; all optional).
  obs::Counter* appended_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* append_errors_ = nullptr;
  obs::Histogram* fsync_wait_us_ = nullptr;
  obs::Gauge* last_checkpoint_seq_gauge_ = nullptr;
  obs::Gauge* last_checkpoint_ts_gauge_ = nullptr;
};

}  // namespace iuad::wal

namespace iuad::serve {
class Frontend;
}  // namespace iuad::serve

namespace iuad::wal {
/// Replays `log`'s tail through `frontend` (SubmitAt at session sequences
/// 0..tail-1, then Drain), restoring the pre-crash state by the
/// determinism contract. Individual papers may fail exactly as they
/// originally did — attempt semantics — so per-paper statuses are not
/// errors. Adds the replay count to the frontend's `recovery_replayed`
/// counter. Returns the number of records replayed.
iuad::Result<uint64_t> ReplayTail(const Log& log, serve::Frontend* frontend);
}  // namespace iuad::wal

#endif  // IUAD_WAL_WAL_H_
