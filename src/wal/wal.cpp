#include "wal/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <future>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "io/byte_codec.h"
#include "io/fsync_util.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "util/logging.h"

namespace iuad::wal {

namespace {

constexpr char kSegmentMagic[8] = {'I', 'U', 'A', 'D', 'W', 'A', 'L', '1'};
constexpr size_t kSegmentHeaderSize = 24;  // magic + base fp u64 + start u64
constexpr size_t kRecordHeaderSize = 12;   // payload len u32 + crc u64
constexpr char kManifestMagic[8] = {'I', 'U', 'A', 'D', 'M', 'A', 'N', '1'};
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

std::string SeqString(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string ActiveSegmentName(uint64_t start) {
  return "wal-" + SeqString(start) + ".log";
}
std::string SealedSegmentName(uint64_t start, uint64_t end) {
  return "wal-" + SeqString(start) + "-" + SeqString(end) + ".log";
}
std::string CheckpointSnapshotName(uint64_t seq) {
  return "ckpt-" + SeqString(seq) + ".snap";
}
std::string CheckpointCorpusName(uint64_t seq) {
  return "ckpt-" + SeqString(seq) + ".tsv";
}

/// Parses "wal-<start>.log" / "wal-<start>-<end>.log". Returns false for
/// anything else (foreign files in the directory are left alone).
bool ParseSegmentName(const std::string& name, uint64_t* start, uint64_t* end,
                      bool* sealed) {
  if (name.rfind("wal-", 0) != 0 || name.size() < 9 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  const std::string middle = name.substr(4, name.size() - 8);
  const size_t dash = middle.find('-');
  auto parse_u64 = [](const std::string& s, uint64_t* out) {
    if (s.empty()) return false;
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
  };
  if (dash == std::string::npos) {
    *sealed = false;
    *end = 0;
    return parse_u64(middle, start);
  }
  *sealed = true;
  return parse_u64(middle.substr(0, dash), start) &&
         parse_u64(middle.substr(dash + 1), end);
}

std::string EncodeRecord(uint64_t seq, const data::Paper& p) {
  io::Writer payload;
  payload.U64(seq);
  payload.I32(p.id);
  payload.Str(p.title);
  payload.Str(p.venue);
  payload.I32(p.year);
  payload.U64(p.author_names.size());
  for (const auto& n : p.author_names) payload.Str(n);
  payload.U64(p.true_author_ids.size());
  for (int t : p.true_author_ids) payload.I32(t);
  io::Writer rec;
  rec.U32(static_cast<uint32_t>(payload.buffer().size()));
  rec.U64(io::Fnv1a(payload.buffer().data(), payload.buffer().size()));
  rec.Bytes(payload.buffer().data(), payload.buffer().size());
  return rec.buffer();
}

iuad::Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return iuad::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return iuad::Status::IoError("read error on " + path);
  return out;
}

int64_t SteadyNowNs() { return obs::NowNs(); }

}  // namespace

Log::Log(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

Log::~Log() {
  if (active_fd_ >= 0) {
    Flush();
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

iuad::Result<std::unique_ptr<Log>> Log::Open(const std::string& dir,
                                             uint64_t base_fingerprint,
                                             const Options& options) {
  if (options.fsync_every_n < 1) {
    return iuad::Status::InvalidArgument("wal fsync_every_n must be >= 1");
  }
  if (options.segment_records < 1) {
    return iuad::Status::InvalidArgument("wal segment_records must be >= 1");
  }
  std::unique_ptr<Log> log(new Log(dir, options));
  IUAD_RETURN_NOT_OK(log->OpenImpl(base_fingerprint));
  return log;
}

std::string Log::checkpoint_snapshot_path() const {
  return snapshot_file_.empty() ? std::string() : dir_ + "/" + snapshot_file_;
}

std::string Log::checkpoint_corpus_path() const {
  return corpus_file_.empty() ? std::string() : dir_ + "/" + corpus_file_;
}

iuad::Status Log::OpenImpl(uint64_t base_fingerprint) {
  if (::mkdir(dir_.c_str(), 0755) == 0) {
    // A brand-new directory entry must survive power loss too.
    IUAD_RETURN_NOT_OK(io::FsyncDir(io::ParentDir(dir_)));
  } else if (errno != EEXIST) {
    return iuad::Status::IoError("cannot create wal directory " + dir_ + ": " +
                                 std::strerror(errno));
  }
  bool have_manifest = false;
  IUAD_RETURN_NOT_OK(LoadManifest(&have_manifest));
  if (!have_manifest) {
    base_fingerprint_ = base_fingerprint;
    snapshot_seq_ = 0;
    session_base_ = 0;
    // Refuse to invent a manifest over pre-existing segments: that would
    // silently orphan someone's log.
    IUAD_RETURN_NOT_OK(ScanSegments());
    if (!segments_.empty()) {
      return iuad::Status::IoError("wal directory " + dir_ +
                                   " has segments but no manifest");
    }
    IUAD_RETURN_NOT_OK(CommitManifest());
    IUAD_RETURN_NOT_OK(OpenActiveSegment(0));
    durable_next_ = 0;
    buffered_next_ = 0;
    last_sync_ns_ = SteadyNowNs();
    return iuad::Status::OK();
  }
  if (base_fingerprint_ != base_fingerprint) {
    return iuad::Status::FailedPrecondition(
        "wal directory " + dir_ +
        " was created against a different corpus (fingerprint mismatch)");
  }
  session_base_ = snapshot_seq_;
  IUAD_RETURN_NOT_OK(ScanSegments());
  IUAD_RETURN_NOT_OK(RecoverSegments());
  last_sync_ns_ = SteadyNowNs();
  return iuad::Status::OK();
}

iuad::Status Log::LoadManifest(bool* found) {
  const std::string path = dir_ + "/" + kManifestName;
  if (::access(path.c_str(), F_OK) != 0) {
    *found = false;
    return iuad::Status::OK();
  }
  *found = true;
  IUAD_ASSIGN_OR_RETURN(const std::string raw, ReadWholeFile(path));
  if (raw.size() < sizeof(kManifestMagic) + sizeof(uint64_t) ||
      std::memcmp(raw.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return iuad::Status::IoError(path + ": not a wal manifest");
  }
  const char* payload = raw.data() + sizeof(kManifestMagic);
  const size_t payload_size =
      raw.size() - sizeof(kManifestMagic) - sizeof(uint64_t);
  uint64_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + raw.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (io::Fnv1a(payload, payload_size) != stored_crc) {
    return iuad::Status::IoError(path + ": manifest checksum mismatch");
  }
  io::Reader r(payload, payload_size);
  const uint32_t version = r.U32();
  if (version != kManifestVersion) {
    return iuad::Status::InvalidArgument(
        path + ": unsupported manifest version " + std::to_string(version));
  }
  base_fingerprint_ = r.U64();
  snapshot_seq_ = r.U64();
  checkpoint_fingerprint_ = r.U64();
  checkpoint_unix_s_ = r.U64();
  snapshot_file_ = r.Str();
  corpus_file_ = r.Str();
  if (!r.ok() || !r.exhausted()) {
    return iuad::Status::IoError(path + ": manifest truncated or corrupt");
  }
  return iuad::Status::OK();
}

iuad::Status Log::CommitManifest() {
  io::Writer w;
  w.U32(kManifestVersion);
  w.U64(base_fingerprint_);
  w.U64(snapshot_seq_);
  w.U64(checkpoint_fingerprint_);
  w.U64(checkpoint_unix_s_);
  w.Str(snapshot_file_);
  w.Str(corpus_file_);
  std::string body = w.buffer();
  const uint64_t crc = io::Fnv1a(body.data(), body.size());
  body.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return io::WriteFileDurably(
      dir_ + "/" + kManifestName,
      std::string(kManifestMagic, sizeof(kManifestMagic)), body);
}

iuad::Status Log::ScanSegments() {
  segments_.clear();
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return iuad::Status::IoError("cannot list wal directory " + dir_);
  }
  std::vector<std::string> stale;
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string name = e->d_name;
    SegmentInfo info;
    info.name = name;
    if (ParseSegmentName(name, &info.start, &info.end, &info.sealed)) {
      if (info.sealed && info.end <= snapshot_seq_) {
        // Fully covered by the checkpoint but not yet unlinked: the crash
        // window between manifest commit and retirement. Finish the job.
        stale.push_back(name);
      } else {
        segments_.push_back(std::move(info));
      }
      continue;
    }
    // Stray temp files from an interrupted checkpoint, and checkpoint
    // pairs no longer referenced by the manifest.
    const bool is_tmp = name.size() > 4 &&
                        name.compare(name.size() - 4, 4, ".tmp") == 0;
    const bool is_ckpt = name.rfind("ckpt-", 0) == 0 &&
                         name != snapshot_file_ && name != corpus_file_;
    if (is_tmp || (is_ckpt && !is_tmp)) stale.push_back(name);
  }
  ::closedir(d);
  if (!stale.empty()) {
    for (const auto& name : stale) {
      ::unlink((dir_ + "/" + name).c_str());
      IUAD_LOG(kDebug) << "wal: removed stale file " << name;
    }
    IUAD_RETURN_NOT_OK(io::FsyncDir(dir_));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.start < b.start;
            });
  return iuad::Status::OK();
}

iuad::Status Log::RecoverSegments() {
  tail_.clear();
  // Structural validation: at most one unsealed (active) segment, it must
  // be last, and sequence ranges must chain contiguously.
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (!segments_[i].sealed && i + 1 != segments_.size()) {
      return iuad::Status::IoError("wal directory " + dir_ +
                                   ": active segment " + segments_[i].name +
                                   " is not the last segment");
    }
    if (i > 0) {
      const uint64_t prev_end = segments_[i - 1].end;
      if (segments_[i].start != prev_end) {
        return iuad::Status::IoError(
            "wal directory " + dir_ + ": gap between segments at seq " +
            std::to_string(prev_end));
      }
    }
  }
  if (!segments_.empty() && segments_.front().start > snapshot_seq_) {
    return iuad::Status::IoError(
        "wal directory " + dir_ + ": first segment starts at seq " +
        std::to_string(segments_.front().start) +
        " but the checkpoint covers only " + std::to_string(snapshot_seq_));
  }

  uint64_t next_seq = segments_.empty() ? snapshot_seq_ : 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    SegmentInfo& seg = segments_[i];
    const bool final_segment = (i + 1 == segments_.size());
    const std::string path = dir_ + "/" + seg.name;
    IUAD_ASSIGN_OR_RETURN(const std::string raw, ReadWholeFile(path));

    if (raw.size() < kSegmentHeaderSize) {
      if (!final_segment || seg.sealed) {
        return iuad::Status::IoError(path + ": sealed segment truncated");
      }
      // The active segment was cut inside its own header (extreme torn
      // write). Nothing in it is recoverable; rebuild it empty at its
      // declared start.
      IUAD_LOG(kWarning) << "wal: active segment " << seg.name
                         << " torn inside its header; rebuilding empty";
      ::unlink(path.c_str());
      IUAD_RETURN_NOT_OK(io::FsyncDir(dir_));
      segments_.pop_back();
      next_seq = seg.start;
      IUAD_RETURN_NOT_OK(FinishRecovery(next_seq, /*reopen_active=*/true));
      return iuad::Status::OK();
    }
    if (std::memcmp(raw.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      return iuad::Status::IoError(path + ": not a wal segment");
    }
    uint64_t header_fp = 0, header_start = 0;
    std::memcpy(&header_fp, raw.data() + 8, sizeof(header_fp));
    std::memcpy(&header_start, raw.data() + 16, sizeof(header_start));
    if (header_fp != base_fingerprint_) {
      return iuad::Status::FailedPrecondition(
          path + ": segment belongs to a different corpus");
    }
    if (header_start != seg.start) {
      return iuad::Status::IoError(path +
                                   ": segment header disagrees with its name");
    }

    uint64_t expected = seg.start;
    size_t pos = kSegmentHeaderSize;
    size_t good_offset = pos;
    bool torn = false;
    while (pos < raw.size()) {
      if (raw.size() - pos < kRecordHeaderSize) {
        torn = true;
        break;
      }
      uint32_t len = 0;
      uint64_t crc = 0;
      std::memcpy(&len, raw.data() + pos, sizeof(len));
      std::memcpy(&crc, raw.data() + pos + 4, sizeof(crc));
      if (raw.size() - pos - kRecordHeaderSize < len) {
        torn = true;
        break;
      }
      const char* payload = raw.data() + pos + kRecordHeaderSize;
      if (io::Fnv1a(payload, len) != crc) {
        return iuad::Status::IoError(
            path + ": wal record at seq " + std::to_string(expected) +
            " failed its checksum (corrupt mid-log record)");
      }
      io::Reader r(payload, len);
      TailRecord rec;
      rec.seq = r.U64();
      rec.paper.id = r.I32();
      rec.paper.title = r.Str();
      rec.paper.venue = r.Str();
      rec.paper.year = r.I32();
      const uint64_t n_names = r.U64();
      for (uint64_t k = 0; k < n_names && r.ok(); ++k) {
        rec.paper.author_names.push_back(r.Str());
      }
      const uint64_t n_truth = r.U64();
      for (uint64_t k = 0; k < n_truth && r.ok(); ++k) {
        rec.paper.true_author_ids.push_back(r.I32());
      }
      if (!r.ok() || !r.exhausted()) {
        return iuad::Status::IoError(path + ": wal record at seq " +
                                     std::to_string(expected) + " malformed");
      }
      if (rec.seq != expected) {
        return iuad::Status::IoError(
            path + ": sequence discontinuity (expected " +
            std::to_string(expected) + ", found " + std::to_string(rec.seq) +
            ")");
      }
      if (rec.seq >= snapshot_seq_) tail_.push_back(std::move(rec));
      ++expected;
      pos += kRecordHeaderSize + len;
      good_offset = pos;
    }
    if (torn) {
      if (!final_segment || seg.sealed) {
        return iuad::Status::IoError(path +
                                     ": sealed segment truncated at seq " +
                                     std::to_string(expected));
      }
      IUAD_LOG(kWarning) << "wal: truncating torn record at seq " << expected
                         << " in " << seg.name;
      const int fd = ::open(path.c_str(), O_RDWR);
      if (fd < 0 || ::ftruncate(fd, static_cast<off_t>(good_offset)) != 0) {
        if (fd >= 0) ::close(fd);
        return iuad::Status::IoError(path + ": cannot truncate torn tail");
      }
      IUAD_RETURN_NOT_OK(io::FsyncFd(fd, path));
      ::close(fd);
    }
    if (seg.sealed && expected != seg.end) {
      return iuad::Status::IoError(
          path + ": sealed segment ends at seq " + std::to_string(expected) +
          " but its name covers through " + std::to_string(seg.end));
    }
    seg.end = expected;
    next_seq = expected;
  }
  const bool reopen_active =
      segments_.empty() || segments_.back().sealed;
  IUAD_RETURN_NOT_OK(FinishRecovery(next_seq, reopen_active));
  return iuad::Status::OK();
}

iuad::Status Log::FinishRecovery(uint64_t next_seq, bool reopen_active) {
  durable_next_ = next_seq;
  buffered_next_ = next_seq;
  if (reopen_active) {
    // Either a fresh-after-checkpoint state (crash between seal and the new
    // active's creation) or an empty directory tail: start a new active
    // segment at the recovery point.
    IUAD_RETURN_NOT_OK(OpenActiveSegment(next_seq));
    return iuad::Status::OK();
  }
  SegmentInfo& active = segments_.back();
  const std::string path = dir_ + "/" + active.name;
  active_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (active_fd_ < 0) {
    return iuad::Status::IoError("cannot reopen active wal segment " + path);
  }
  active_start_ = active.start;
  return iuad::Status::OK();
}

iuad::Status Log::OpenActiveSegment(uint64_t start_seq) {
  const std::string name = ActiveSegmentName(start_seq);
  const std::string path = dir_ + "/" + name;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return iuad::Status::IoError("cannot create wal segment " + path + ": " +
                                 std::strerror(errno));
  }
  io::Writer header;
  header.Bytes(kSegmentMagic, sizeof(kSegmentMagic));
  header.U64(base_fingerprint_);
  header.U64(start_seq);
  const std::string& buf = header.buffer();
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return iuad::Status::IoError("cannot write wal segment header to " +
                                   path);
    }
    off += static_cast<size_t>(n);
  }
  if (iuad::Status s = io::FsyncFd(fd, path); !s.ok()) {
    ::close(fd);
    return s;
  }
  IUAD_RETURN_NOT_OK(io::FsyncDir(dir_));
  active_fd_ = fd;
  active_start_ = start_seq;
  SegmentInfo info;
  info.name = name;
  info.start = start_seq;
  info.end = start_seq;
  info.sealed = false;
  segments_.push_back(std::move(info));
  return iuad::Status::OK();
}

iuad::Status Log::SealActiveSegment() {
  // Caller guarantees the buffer is flushed and the fd synced.
  const std::string old_path = dir_ + "/" + ActiveSegmentName(active_start_);
  const std::string new_name = SealedSegmentName(active_start_, durable_next_);
  ::close(active_fd_);
  active_fd_ = -1;
  if (std::rename(old_path.c_str(), (dir_ + "/" + new_name).c_str()) != 0) {
    return iuad::Status::IoError("cannot seal wal segment " + old_path);
  }
  IUAD_RETURN_NOT_OK(io::FsyncDir(dir_));
  SegmentInfo& info = segments_.back();
  info.name = new_name;
  info.end = durable_next_;
  info.sealed = true;
  return iuad::Status::OK();
}

void Log::BindMetrics(obs::Registry* registry) {
  if (registry == nullptr) return;
  appended_ = registry->GetCounter("wal_appended");
  fsyncs_ = registry->GetCounter("wal_fsyncs");
  bytes_ = registry->GetCounter("wal_bytes");
  append_errors_ = registry->GetCounter("wal_append_errors");
  // Registered here (not incremented by the Log itself) so the instrument
  // exists — and exports as 0 — even when recovery replayed nothing.
  registry->GetCounter("recovery_replayed");
  fsync_wait_us_ = registry->GetHistogram("wal_fsync_wait_us");
  last_checkpoint_seq_gauge_ = registry->GetGauge("wal_last_checkpoint_seq");
  last_checkpoint_ts_gauge_ =
      registry->GetGauge("wal_last_checkpoint_timestamp");
  last_checkpoint_seq_gauge_->Set(static_cast<int64_t>(snapshot_seq_));
  last_checkpoint_ts_gauge_->Set(static_cast<int64_t>(checkpoint_unix_s_));
}

void Log::Append(uint64_t session_seq, const data::Paper& paper) {
  if (!io_status_.ok()) return;
  const uint64_t global = session_base_ + session_seq;
  if (global < buffered_next_) return;  // replayed prefix: already logged
  if (global != buffered_next_) {
    io_status_ = iuad::Status::Internal(
        "wal append out of order: expected seq " +
        std::to_string(buffered_next_) + ", got " + std::to_string(global));
    if (append_errors_ != nullptr) append_errors_->Increment();
    IUAD_LOG(kError) << io_status_.ToString();
    return;
  }
  if (buffered_next_ - active_start_ >=
      static_cast<uint64_t>(options_.segment_records)) {
    if (iuad::Status s = RotateSegment(); !s.ok()) {
      io_status_ = s;
      if (append_errors_ != nullptr) append_errors_->Increment();
      IUAD_LOG(kError) << "wal: segment rotation failed: " << s.ToString();
      return;
    }
  }
  buffer_ += EncodeRecord(global, paper);
  ++buffered_records_;
  ++buffered_next_;
  if (appended_ != nullptr) appended_->Increment();
}

iuad::Status Log::RotateSegment() {
  IUAD_RETURN_NOT_OK(Flush());
  IUAD_RETURN_NOT_OK(SealActiveSegment());
  return OpenActiveSegment(buffered_next_);
}

void Log::MaybeFlush() {
  if (buffered_records_ == 0 || !io_status_.ok()) return;
  bool due = buffered_records_ >= options_.fsync_every_n;
  if (!due && options_.fsync_interval_ms > 0) {
    due = static_cast<double>(SteadyNowNs() - last_sync_ns_) >=
          options_.fsync_interval_ms * 1e6;
  }
  if (due) {
    if (iuad::Status s = Flush(); !s.ok()) {
      IUAD_LOG(kError) << "wal: flush failed, durability lost: "
                       << s.ToString();
    }
  }
}

iuad::Status Log::Flush() {
  if (!io_status_.ok()) return io_status_;
  if (buffered_records_ == 0) return iuad::Status::OK();
  size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n =
        ::write(active_fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_status_ = iuad::Status::IoError(
          "wal write failed: " + std::string(std::strerror(errno)));
      if (append_errors_ != nullptr) append_errors_->Increment();
      return io_status_;
    }
    off += static_cast<size_t>(n);
  }
  const int64_t t0 = SteadyNowNs();
  // fdatasync, not fsync: the group commit needs the data blocks and the
  // post-append file size durable, not the timestamps — and this wait is
  // paid inline by the commit thread.
  if (iuad::Status s = io::FdatasyncFd(active_fd_, "wal segment"); !s.ok()) {
    io_status_ = s;
    if (append_errors_ != nullptr) append_errors_->Increment();
    return io_status_;
  }
  const int64_t t1 = SteadyNowNs();
  if (fsync_wait_us_ != nullptr) fsync_wait_us_->RecordNs(t1 - t0);
  if (fsyncs_ != nullptr) fsyncs_->Increment();
  if (bytes_ != nullptr) bytes_->Add(static_cast<int64_t>(buffer_.size()));
  durable_next_ = buffered_next_;
  segments_.back().end = durable_next_;
  buffer_.clear();
  buffered_records_ = 0;
  last_sync_ns_ = t1;
  return iuad::Status::OK();
}

iuad::Status Log::Checkpoint(const data::PaperDatabase& db,
                             const core::DisambiguationResult& result,
                             const core::IuadConfig& config,
                             uint64_t session_applied) {
  IUAD_RETURN_NOT_OK(Flush());
  const uint64_t seq = session_base_ + session_applied;
  if (seq < durable_next_) {
    // Recovery replay is still inside the already-durable range: the log
    // holds records this checkpoint would not cover, and sealing/rotating
    // here would split the active segment mid-range. Skip quietly —
    // compaction resumes on the first cadence boundary after replay
    // catches up with the durable frontier.
    return iuad::Status::OK();
  }
  if (seq != durable_next_) {
    return iuad::Status::Internal(
        "wal checkpoint at seq " + std::to_string(seq) +
        " but the log is durable through " + std::to_string(durable_next_));
  }
  if (seq == snapshot_seq_) return iuad::Status::OK();  // nothing new

  // 1. Durable checkpoint pair. Corpus first: the snapshot references it by
  // fingerprint, so an orphaned corpus file is harmless while an orphaned
  // snapshot would be.
  const std::string corpus_name = CheckpointCorpusName(seq);
  const std::string snap_name = CheckpointSnapshotName(seq);
  const std::string corpus_tmp = dir_ + "/" + corpus_name + ".tmp";
  IUAD_RETURN_NOT_OK(db.SaveTsv(corpus_tmp));
  IUAD_RETURN_NOT_OK(io::PromoteTempFile(corpus_tmp, dir_ + "/" + corpus_name));
  IUAD_RETURN_NOT_OK(
      io::SaveSnapshot(dir_ + "/" + snap_name, db, result, config));

  // 2. Rotate so every segment the checkpoint covers is sealed.
  if (durable_next_ > active_start_) {
    IUAD_RETURN_NOT_OK(SealActiveSegment());
    IUAD_RETURN_NOT_OK(OpenActiveSegment(seq));
  }

  // 3. Commit: the manifest rename is the atomic switch between the old
  // checkpoint and the new one.
  const std::string old_snapshot = snapshot_file_;
  const std::string old_corpus = corpus_file_;
  snapshot_seq_ = seq;
  checkpoint_fingerprint_ = db.Fingerprint();
  checkpoint_unix_s_ = static_cast<uint64_t>(::time(nullptr));
  snapshot_file_ = snap_name;
  corpus_file_ = corpus_name;
  IUAD_RETURN_NOT_OK(CommitManifest());

  // 4. Retire fully-covered segments and the superseded checkpoint pair.
  RemoveCoveredFiles(old_snapshot, old_corpus);

  if (last_checkpoint_seq_gauge_ != nullptr) {
    last_checkpoint_seq_gauge_->Set(static_cast<int64_t>(snapshot_seq_));
  }
  if (last_checkpoint_ts_gauge_ != nullptr) {
    last_checkpoint_ts_gauge_->Set(static_cast<int64_t>(checkpoint_unix_s_));
  }
  IUAD_LOG(kDebug) << "wal: checkpoint committed at seq " << seq;
  return iuad::Status::OK();
}

void Log::RemoveCoveredFiles(const std::string& old_snapshot,
                             const std::string& old_corpus) {
  bool removed = false;
  auto it = segments_.begin();
  while (it != segments_.end()) {
    if (it->sealed && it->end <= snapshot_seq_) {
      ::unlink((dir_ + "/" + it->name).c_str());
      it = segments_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (!old_snapshot.empty() && old_snapshot != snapshot_file_) {
    ::unlink((dir_ + "/" + old_snapshot).c_str());
    removed = true;
  }
  if (!old_corpus.empty() && old_corpus != corpus_file_) {
    ::unlink((dir_ + "/" + old_corpus).c_str());
    removed = true;
  }
  if (removed) {
    if (iuad::Status s = io::FsyncDir(dir_); !s.ok()) {
      IUAD_LOG(kWarning) << "wal: " << s.ToString();
    }
  }
}

iuad::Result<uint64_t> ReplayTail(const Log& log, serve::Frontend* frontend) {
  if (frontend == nullptr) {
    return iuad::Status::InvalidArgument("ReplayTail: null frontend");
  }
  const std::vector<TailRecord>& tail = log.tail();
  std::vector<std::future<serve::Frontend::Assignments>> futures;
  futures.reserve(tail.size());
  for (size_t i = 0; i < tail.size(); ++i) {
    futures.push_back(
        frontend->SubmitAt(static_cast<uint64_t>(i), tail[i].paper));
  }
  // Attempt semantics: a paper that failed before the crash fails again
  // here, and that is the correct replay of history.
  for (auto& f : futures) f.get();
  frontend->Drain();
  frontend->Metrics()
      ->GetCounter("recovery_replayed")
      ->Add(static_cast<int64_t>(tail.size()));
  return static_cast<uint64_t>(tail.size());
}

}  // namespace iuad::wal
