#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/paper_embedder.h"
#include "baselines/supervised_pipeline.h"
#include "baselines/unsupervised.h"
#include "eval/evaluator.h"
#include "testing_utils.h"

namespace iuad::baselines {
namespace {

/// A name with two clearly separated authors: distinct co-authors, venues,
/// topics, eras.
data::PaperDatabase TwoAuthorDatabase() {
  data::PaperDatabase db;
  for (int i = 0; i < 6; ++i) {
    db.AddPaper(iuad::testing::MakePaper(
        {"X", "Alice", "Bob"}, "graph kernels structure mining", "ICDE",
        2010 + i, {1, 10, 11}));
  }
  for (int i = 0; i < 6; ++i) {
    db.AddPaper(iuad::testing::MakePaper(
        {"X", "Carol", "Dan"}, "enzyme pathways protein folding", "BioConf",
        1995 + i, {2, 20, 21}));
  }
  return db;
}

int NumClusters(const std::vector<int>& labels) {
  return static_cast<int>(std::set<int>(labels.begin(), labels.end()).size());
}

// --------------------------- HashVector / PaperEmbedder ---------------------

TEST(HashVectorTest, DeterministicUnitNorm) {
  auto a = HashVector("Wei Wang", 32);
  auto b = HashVector("Wei Wang", 32);
  auto c = HashVector("Wei Wang ", 32);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NEAR(text::Norm(a), 1.0, 1e-5);
}

TEST(HashVectorTest, DifferentStringsNearOrthogonal) {
  auto a = HashVector("Alice", 64);
  auto b = HashVector("Bob", 64);
  EXPECT_LT(std::abs(text::Cosine(a, b)), 0.5);
}

TEST(PaperEmbedderTest, SharedCoauthorsGiveCloserEmbeddings) {
  auto db = TwoAuthorDatabase();
  EmbedderConfig cfg;
  cfg.focal_name = "X";
  PaperEmbedder embedder(db, nullptr, cfg);
  const auto v0 = embedder.Embed(0);   // Alice+Bob paper
  const auto v1 = embedder.Embed(1);   // Alice+Bob paper
  const auto v6 = embedder.Embed(6);   // Carol+Dan paper
  EXPECT_GT(text::Cosine(v0, v1), text::Cosine(v0, v6));
}

TEST(PaperEmbedderTest, FocalNameExcluded) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"X"}, "t"));
  EmbedderConfig cfg;
  cfg.focal_name = "X";
  cfg.title_weight = 0.0;
  PaperEmbedder embedder(db, nullptr, cfg);
  // Only the focal name on the byline: co-author channel contributes 0.
  EXPECT_NEAR(text::Norm(embedder.Embed(0)), 0.0, 1e-9);
}

TEST(PaperEmbedderTest, VenueChannelSeparatesVenues) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"A"}, "t", "V1"));
  db.AddPaper(iuad::testing::MakePaper({"B"}, "t", "V1"));
  db.AddPaper(iuad::testing::MakePaper({"C"}, "t", "V2"));
  EmbedderConfig cfg;
  cfg.coauthor_weight = 0.0;
  cfg.title_weight = 0.0;
  cfg.venue_weight = 1.0;
  PaperEmbedder embedder(db, nullptr, cfg);
  EXPECT_NEAR(text::Cosine(embedder.Embed(0), embedder.Embed(1)), 1.0, 1e-6);
  EXPECT_LT(text::Cosine(embedder.Embed(0), embedder.Embed(2)), 0.5);
}

TEST(CosineDistanceMatrixTest, SymmetricZeroDiagonal) {
  std::vector<text::Vec> vs{{1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 1.0f}};
  auto d = CosineDistanceMatrix(vs);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(d[i][i], 0.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d[i][j], d[j][i]);
  }
  EXPECT_NEAR(d[0][1], 1.0, 1e-9);
}

// --------------------------- Unsupervised baselines -------------------------

class UnsupervisedBaselineTest
    : public ::testing::TestWithParam<const char*> {};

std::unique_ptr<UnsupervisedBaseline> MakeBaseline(
    const std::string& which, const data::PaperDatabase& db) {
  if (which == "ANON") return std::make_unique<AnonBaseline>(db, nullptr);
  if (which == "NetE") return std::make_unique<NetEBaseline>(db, nullptr);
  if (which == "Aminer") return std::make_unique<AminerBaseline>(db, nullptr);
  return std::make_unique<GhostBaseline>(db);
}

TEST_P(UnsupervisedBaselineTest, ReturnsValidDenseLabels) {
  auto db = TwoAuthorDatabase();
  auto baseline = MakeBaseline(GetParam(), db);
  auto labels = baseline->Disambiguate("X");
  ASSERT_EQ(labels.size(), db.PapersWithName("X").size());
  const int k = NumClusters(labels);
  for (int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, k);
  }
  EXPECT_EQ(baseline->Name(), GetParam());
}

TEST_P(UnsupervisedBaselineTest, SeparatesTheTwoObviousAuthors) {
  auto db = TwoAuthorDatabase();
  auto baseline = MakeBaseline(GetParam(), db);
  auto labels = baseline->Disambiguate("X");
  ASSERT_EQ(labels.size(), 12u);
  // Papers 0-5 belong to author 1, 6-11 to author 2: no cross-group pair may
  // share a cluster with *all* of the other group (soft check: the dominant
  // label of each group must differ).
  std::map<int, int> g1, g2;
  for (int i = 0; i < 6; ++i) ++g1[labels[static_cast<size_t>(i)]];
  for (int i = 6; i < 12; ++i) ++g2[labels[static_cast<size_t>(i)]];
  auto dominant = [](const std::map<int, int>& m) {
    int best = -1, arg = -1;
    for (auto [l, c] : m) {
      if (c > best) {
        best = c;
        arg = l;
      }
    }
    return arg;
  };
  EXPECT_NE(dominant(g1), dominant(g2)) << GetParam();
}

TEST_P(UnsupervisedBaselineTest, HandlesSingletonAndEmptyNames) {
  auto db = TwoAuthorDatabase();
  db.AddPaper(iuad::testing::MakePaper({"Lonely"}, "one off", "V", 2000));
  auto baseline = MakeBaseline(GetParam(), db);
  auto one = baseline->Disambiguate("Lonely");
  EXPECT_EQ(one.size(), 1u);
  auto none = baseline->Disambiguate("NoSuchName");
  EXPECT_TRUE(none.empty());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, UnsupervisedBaselineTest,
                         ::testing::Values("ANON", "NetE", "Aminer", "GHOST"));

// --------------------------- Supervised pipeline ----------------------------

class SupervisedPipelineTest
    : public ::testing::TestWithParam<SupervisedKind> {};

TEST_P(SupervisedPipelineTest, LearnsOnSyntheticAndClusters) {
  auto corpus = iuad::testing::SmallCorpus(41);
  auto names = corpus.TestNames(2);
  ASSERT_GT(names.size(), 6u);
  // Split names: even -> train, odd -> test (disjoint).
  std::vector<std::string> train, test;
  for (size_t i = 0; i < names.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(names[i]);
  }
  SupervisedPipeline pipeline(GetParam(), corpus.db, nullptr);
  ASSERT_TRUE(pipeline.Train(train, /*max_pairs_per_name=*/300).ok());
  EXPECT_TRUE(pipeline.trained());

  eval::PairCounts total;
  auto metrics = eval::EvaluateClusterer(
      corpus.db,
      [&](const std::string& n) { return pipeline.Disambiguate(n); }, test,
      &total);
  EXPECT_GT(total.total(), 0);
  // Separable synthetic data: any competent classifier beats coin flips.
  EXPECT_GT(metrics.accuracy, 0.6) << pipeline.Name();
}

TEST_P(SupervisedPipelineTest, UntrainedReturnsSingletons) {
  auto db = TwoAuthorDatabase();
  SupervisedPipeline pipeline(GetParam(), db, nullptr);
  auto labels = pipeline.Disambiguate("X");
  EXPECT_EQ(NumClusters(labels), 12);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SupervisedPipelineTest,
                         ::testing::Values(SupervisedKind::kAdaBoost,
                                           SupervisedKind::kGbdt,
                                           SupervisedKind::kRandomForest,
                                           SupervisedKind::kXgboost));

TEST(SupervisedPipelineTest2, TrainRejectsUnlabeledNames) {
  data::PaperDatabase db;
  db.AddPaper(iuad::testing::MakePaper({"x"}, "a b"));
  db.AddPaper(iuad::testing::MakePaper({"x"}, "c d"));
  SupervisedPipeline pipeline(SupervisedKind::kGbdt, db, nullptr);
  EXPECT_FALSE(pipeline.Train({"x"}).ok());
}

TEST(SupervisedKindNameTest, AllNamed) {
  EXPECT_STREQ(SupervisedKindName(SupervisedKind::kAdaBoost), "AdaBoost");
  EXPECT_STREQ(SupervisedKindName(SupervisedKind::kGbdt), "GBDT");
  EXPECT_STREQ(SupervisedKindName(SupervisedKind::kRandomForest), "RF");
  EXPECT_STREQ(SupervisedKindName(SupervisedKind::kXgboost), "XGBoost");
}

}  // namespace
}  // namespace iuad::baselines
