#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "em/distributions.h"
#include "em/mixture_model.h"
#include "util/rng.h"

namespace iuad::em {
namespace {

// --------------------------- Distributions ----------------------------------

TEST(GaussianDistTest, WeightedMleMatchesTableI) {
  GaussianDist g;
  // All weight on {1, 3}: mu = 2, population var = 1.
  ASSERT_TRUE(g.FitWeighted({1.0, 3.0, 100.0}, {1.0, 1.0, 0.0}).ok());
  EXPECT_NEAR(g.mean(), 2.0, 1e-12);
  EXPECT_NEAR(g.variance(), 1.0, 1e-12);
}

TEST(GaussianDistTest, FractionalWeights) {
  GaussianDist g;
  // Weighted mean: (0.25*0 + 0.75*4) / 1.0 = 3.
  ASSERT_TRUE(g.FitWeighted({0.0, 4.0}, {0.25, 0.75}).ok());
  EXPECT_NEAR(g.mean(), 3.0, 1e-12);
}

TEST(GaussianDistTest, VarianceFloorPreventsDegeneracy) {
  GaussianDist g;
  ASSERT_TRUE(g.FitWeighted({5.0, 5.0, 5.0}, {1.0, 1.0, 1.0}).ok());
  EXPECT_GE(g.variance(), GaussianDist::kVarianceFloor);
  EXPECT_TRUE(std::isfinite(g.LogPdf(5.0)));
}

TEST(GaussianDistTest, ZeroTotalWeightKeepsParams) {
  GaussianDist g(7.0, 2.0);
  ASSERT_TRUE(g.FitWeighted({1.0, 2.0}, {0.0, 0.0}).ok());
  EXPECT_DOUBLE_EQ(g.mean(), 7.0);
  EXPECT_DOUBLE_EQ(g.variance(), 2.0);
}

TEST(GaussianDistTest, LogPdfPeaksAtMean) {
  GaussianDist g(1.0, 0.5);
  EXPECT_GT(g.LogPdf(1.0), g.LogPdf(0.0));
  EXPECT_GT(g.LogPdf(1.0), g.LogPdf(2.0));
  EXPECT_NEAR(g.LogPdf(1.0), -0.5 * std::log(2.0 * M_PI * 0.5), 1e-12);
}

TEST(GaussianDistTest, SizeMismatchRejected) {
  GaussianDist g;
  EXPECT_FALSE(g.FitWeighted({1.0}, {1.0, 2.0}).ok());
}

TEST(ExponentialDistTest, MleIsInverseWeightedMean) {
  ExponentialDist e;
  // Table I: lambda = sum(w) / sum(w * x) = 2 / (0.5 + 1.5) = 1.
  ASSERT_TRUE(e.FitWeighted({0.5, 1.5}, {1.0, 1.0}).ok());
  EXPECT_NEAR(e.lambda(), 1.0, 1e-12);
}

TEST(ExponentialDistTest, NegativesClampToZeroInFit) {
  ExponentialDist e;
  ASSERT_TRUE(e.FitWeighted({-1.0, 2.0}, {1.0, 1.0}).ok());
  EXPECT_NEAR(e.lambda(), 1.0, 1e-12);  // 2 / (0 + 2)
}

TEST(ExponentialDistTest, AllZeroDataCapsLambda) {
  ExponentialDist e;
  ASSERT_TRUE(e.FitWeighted({0.0, 0.0}, {1.0, 1.0}).ok());
  EXPECT_DOUBLE_EQ(e.lambda(), ExponentialDist::kMaxLambda);
  EXPECT_TRUE(std::isfinite(e.LogPdf(0.0)));
}

TEST(ExponentialDistTest, LogPdfOutOfSupportIsVeryNegative) {
  ExponentialDist e(2.0);
  EXPECT_LT(e.LogPdf(-0.1), -1e8);
  EXPECT_NEAR(e.LogPdf(0.0), std::log(2.0), 1e-12);
}

TEST(MultinomialDistTest, BinningClampsToRange) {
  MultinomialDist m(4, 0.0, 1.0);
  EXPECT_EQ(m.BinOf(-5.0), 0);
  EXPECT_EQ(m.BinOf(0.1), 0);
  EXPECT_EQ(m.BinOf(0.3), 1);
  EXPECT_EQ(m.BinOf(0.99), 3);
  EXPECT_EQ(m.BinOf(7.0), 3);
}

TEST(MultinomialDistTest, FitConcentratesMass) {
  MultinomialDist m(4, 0.0, 1.0);
  ASSERT_TRUE(
      m.FitWeighted({0.1, 0.15, 0.12, 0.9}, {1.0, 1.0, 1.0, 1.0}).ok());
  // Laplace alpha = 0.5 over 4 bins: (3 + 0.5) / (4 + 2) = 0.583.
  EXPECT_GT(m.probabilities()[0], 0.55);
  EXPECT_GT(m.LogPdf(0.1), m.LogPdf(0.6));
  // Laplace smoothing keeps unseen bins finite.
  EXPECT_TRUE(std::isfinite(m.LogPdf(0.6)));
  double sum = 0.0;
  for (double p : m.probabilities()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DistributionFactoryTest, CreatesAllFamilies) {
  for (FamilyType f : {FamilyType::kGaussian, FamilyType::kExponential,
                       FamilyType::kMultinomial}) {
    auto d = MakeDistribution(f);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->family(), f);
    auto c = d->Clone();
    EXPECT_EQ(c->family(), f);
    EXPECT_FALSE(d->ToString().empty());
  }
  EXPECT_STREQ(FamilyName(FamilyType::kGaussian), "Gaussian");
}

// --------------------------- MixtureModel -----------------------------------

/// Two planted components over 3 features; matched pairs score higher on
/// all of them. Returns {gammas, truth}.
struct PlantedData {
  std::vector<std::vector<double>> gammas;
  std::vector<bool> matched;
};

PlantedData MakePlanted(int n, double match_frac, uint64_t seed) {
  iuad::Rng rng(seed);
  PlantedData d;
  for (int i = 0; i < n; ++i) {
    const bool m = rng.UniformDouble() < match_frac;
    std::vector<double> g(3);
    if (m) {
      g[0] = std::clamp(rng.Gaussian(0.75, 0.1), 0.0, 1.0);  // Gaussian-ish
      g[1] = rng.Exponential(0.8);                           // heavy overlap
      g[2] = std::clamp(rng.Gaussian(0.6, 0.15), -1.0, 1.0);
    } else {
      g[0] = std::clamp(rng.Gaussian(0.15, 0.1), 0.0, 1.0);
      g[1] = rng.Exponential(8.0);
      g[2] = std::clamp(rng.Gaussian(0.05, 0.15), -1.0, 1.0);
    }
    d.gammas.push_back(std::move(g));
    d.matched.push_back(m);
  }
  return d;
}

MixtureConfig ThreeFeatureConfig() {
  MixtureConfig cfg;
  cfg.families = {FamilyType::kGaussian, FamilyType::kExponential,
                  FamilyType::kGaussian};
  return cfg;
}

TEST(MixtureModelTest, RejectsEmptyAndMismatchedInput) {
  MixtureModel m(ThreeFeatureConfig());
  EXPECT_FALSE(m.Fit({}).ok());
  EXPECT_FALSE(m.Fit({{1.0, 2.0}}).ok());            // wrong dimension
  EXPECT_FALSE(m.Fit({{1.0, 2.0, 3.0}}, {0.5, 0.5}).ok());  // init size
}

TEST(MixtureModelTest, RecoversPlantedComponents) {
  auto data = MakePlanted(2000, 0.25, 31);
  MixtureModel m(ThreeFeatureConfig());
  ASSERT_TRUE(m.Fit(data.gammas).ok());
  EXPECT_TRUE(m.fitted());
  // Prior should be near the planted 25% (EM may land on either labeling of
  // the two components; the separation check below disambiguates).
  int correct = 0;
  for (size_t i = 0; i < data.gammas.size(); ++i) {
    const bool pred = m.MatchScore(data.gammas[i]) >= 0.0;
    if (pred == data.matched[i]) ++correct;
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(data.gammas.size());
  // Components are well separated; EM should nail almost everything (or be
  // fully label-swapped, which the quantile init prevents).
  EXPECT_GT(acc, 0.95);
  EXPECT_NEAR(m.prior_matched(), 0.25, 0.05);
}

TEST(MixtureModelTest, PosteriorMatchesScoreSigmoid) {
  auto data = MakePlanted(500, 0.3, 32);
  MixtureModel m(ThreeFeatureConfig());
  ASSERT_TRUE(m.Fit(data.gammas).ok());
  for (int i = 0; i < 20; ++i) {
    const double s = m.MatchScore(data.gammas[static_cast<size_t>(i)]);
    const double p = m.PosteriorMatched(data.gammas[static_cast<size_t>(i)]);
    EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-s)), 1e-9);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MixtureModelTest, SupervisedInitRespected) {
  auto data = MakePlanted(800, 0.3, 33);
  MixtureModel m(ThreeFeatureConfig());
  std::vector<double> init(data.gammas.size());
  for (size_t i = 0; i < init.size(); ++i) {
    init[i] = data.matched[i] ? 0.99 : 0.01;  // oracle init
  }
  ASSERT_TRUE(m.Fit(data.gammas, init).ok());
  int correct = 0;
  for (size_t i = 0; i < data.gammas.size(); ++i) {
    if ((m.MatchScore(data.gammas[i]) >= 0.0) == data.matched[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.gammas.size(), 0.97);
}

TEST(MixtureModelTest, LogLikelihoodImprovesOverInit) {
  auto data = MakePlanted(600, 0.4, 34);
  MixtureConfig cfg = ThreeFeatureConfig();
  cfg.max_iterations = 1;
  MixtureModel one_step(cfg);
  ASSERT_TRUE(one_step.Fit(data.gammas).ok());
  cfg.max_iterations = 100;
  MixtureModel converged(cfg);
  ASSERT_TRUE(converged.Fit(data.gammas).ok());
  EXPECT_GE(converged.final_log_likelihood(),
            one_step.final_log_likelihood() - 1e-6);
  EXPECT_GT(converged.iterations_run(), 0);
}

TEST(MixtureModelTest, EStepOutputInvariantToThreadCount) {
  // The parallel E-step must be a pure speedup: per-sample slots + a
  // fixed-order log-likelihood sum make the fit byte-identical at any
  // thread count (including the serial path the small-n cutoff takes).
  auto data = MakePlanted(1500, 0.3, 37);
  MixtureConfig serial = ThreeFeatureConfig();
  serial.num_threads = 1;
  MixtureModel a(serial);
  ASSERT_TRUE(a.Fit(data.gammas).ok());
  for (int threads : {2, 4, 7}) {
    MixtureConfig cfg = ThreeFeatureConfig();
    cfg.num_threads = threads;
    MixtureModel b(cfg);
    ASSERT_TRUE(b.Fit(data.gammas).ok());
    EXPECT_DOUBLE_EQ(a.final_log_likelihood(), b.final_log_likelihood())
        << threads << " threads";
    EXPECT_DOUBLE_EQ(a.prior_matched(), b.prior_matched());
    EXPECT_EQ(a.iterations_run(), b.iterations_run());
    EXPECT_EQ(a.ToString(), b.ToString());  // every marginal parameter
    for (size_t j = 0; j < data.gammas.size(); j += 97) {
      EXPECT_DOUBLE_EQ(a.MatchScore(data.gammas[j]),
                       b.MatchScore(data.gammas[j]));
    }
  }
}

TEST(MixtureModelTest, DeterministicAcrossRuns) {
  auto data = MakePlanted(400, 0.3, 35);
  MixtureModel a(ThreeFeatureConfig()), b(ThreeFeatureConfig());
  ASSERT_TRUE(a.Fit(data.gammas).ok());
  ASSERT_TRUE(b.Fit(data.gammas).ok());
  EXPECT_DOUBLE_EQ(a.final_log_likelihood(), b.final_log_likelihood());
  EXPECT_DOUBLE_EQ(a.MatchScore(data.gammas[0]), b.MatchScore(data.gammas[0]));
}

TEST(MixtureModelTest, PriorClampKeepsBothComponentsAlive) {
  // All samples identical: EM must not collapse a prior to exactly 0/1.
  std::vector<std::vector<double>> gammas(50, {0.5, 0.5, 0.5});
  MixtureModel m(ThreeFeatureConfig());
  ASSERT_TRUE(m.Fit(gammas).ok());
  EXPECT_GT(m.prior_matched(), 0.0);
  EXPECT_LT(m.prior_matched(), 1.0);
  EXPECT_TRUE(std::isfinite(m.MatchScore({0.5, 0.5, 0.5})));
}

TEST(MixtureModelTest, ToStringListsAllFeatures) {
  auto data = MakePlanted(200, 0.3, 36);
  MixtureModel m(ThreeFeatureConfig());
  ASSERT_TRUE(m.Fit(data.gammas).ok());
  const std::string s = m.ToString();
  EXPECT_NE(s.find("f0"), std::string::npos);
  EXPECT_NE(s.find("f2"), std::string::npos);
  EXPECT_NE(s.find("Exponential"), std::string::npos);
}

// Property sweep: EM separates planted data across family assignments and
// match fractions.
class MixtureFamilyTest
    : public ::testing::TestWithParam<std::tuple<FamilyType, double>> {};

TEST_P(MixtureFamilyTest, SeparatesPlantedDataWithAnyFamilyOnFeature0) {
  const auto [family, match_frac] = GetParam();
  auto data = MakePlanted(1200, match_frac, 40);
  MixtureConfig cfg;
  cfg.families = {family, FamilyType::kExponential, FamilyType::kGaussian};
  MixtureModel m(cfg);
  ASSERT_TRUE(m.Fit(data.gammas).ok());
  int correct = 0;
  for (size_t i = 0; i < data.gammas.size(); ++i) {
    if ((m.MatchScore(data.gammas[i]) >= 0.0) == data.matched[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.gammas.size(), 0.9)
      << FamilyName(family) << " frac=" << match_frac;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndFractions, MixtureFamilyTest,
    ::testing::Combine(::testing::Values(FamilyType::kGaussian,
                                         FamilyType::kExponential,
                                         FamilyType::kMultinomial),
                       ::testing::Values(0.1, 0.3, 0.5)));

}  // namespace
}  // namespace iuad::em
