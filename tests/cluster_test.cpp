#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/affinity_propagation.h"
#include "cluster/dbscan.h"
#include "cluster/hac.h"
#include "util/rng.h"

namespace iuad::cluster {
namespace {

/// Distance matrix for 1-D points.
std::vector<std::vector<double>> DistanceMatrix1D(
    const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i][j] = std::abs(xs[i] - xs[j]);
  }
  return d;
}

/// Similarity = negative distance (AP convention).
std::vector<std::vector<double>> SimilarityMatrix1D(
    const std::vector<double>& xs) {
  auto d = DistanceMatrix1D(xs);
  for (auto& row : d) {
    for (auto& v : row) v = -v;
  }
  return d;
}

int NumClusters(const std::vector<int>& labels) {
  return static_cast<int>(std::set<int>(labels.begin(), labels.end()).size());
}

bool SameCluster(const std::vector<int>& labels, size_t i, size_t j) {
  return labels[i] == labels[j];
}

// Two well-separated 1-D blobs plus the empty / degenerate cases.
const std::vector<double> kTwoBlobs{0.0, 0.1, 0.2, 10.0, 10.1, 10.2};

// --------------------------- HAC ---------------------------------------------

TEST(HacTest, RejectsNonSquare) {
  EXPECT_FALSE(Hac({{0.0, 1.0}}, HacConfig{}).ok());
}

TEST(HacTest, EmptyInput) {
  auto r = Hac({}, HacConfig{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(HacTest, SingleItem) {
  auto r = Hac({{0.0}}, HacConfig{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int>{0}));
}

TEST(HacTest, SeparatesTwoBlobs) {
  HacConfig cfg;
  cfg.distance_threshold = 1.0;
  auto r = Hac(DistanceMatrix1D(kTwoBlobs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 2);
  EXPECT_TRUE(SameCluster(*r, 0, 2));
  EXPECT_TRUE(SameCluster(*r, 3, 5));
  EXPECT_FALSE(SameCluster(*r, 0, 3));
}

TEST(HacTest, ThresholdZeroKeepsSingletons) {
  HacConfig cfg;
  cfg.distance_threshold = -1.0;  // nothing merges
  auto r = Hac(DistanceMatrix1D(kTwoBlobs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 6);
}

TEST(HacTest, HugeThresholdMergesAll) {
  HacConfig cfg;
  cfg.distance_threshold = 100.0;
  auto r = Hac(DistanceMatrix1D(kTwoBlobs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 1);
}

class HacLinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(HacLinkageTest, AllLinkagesSeparateCleanBlobs) {
  HacConfig cfg;
  cfg.linkage = GetParam();
  cfg.distance_threshold = 1.0;
  auto r = Hac(DistanceMatrix1D(kTwoBlobs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 2);
}

INSTANTIATE_TEST_SUITE_P(Linkages, HacLinkageTest,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage));

TEST(HacTest, SingleLinkageChains) {
  // Chain 0-1-2-...-5 with unit gaps: single linkage merges the whole chain
  // at threshold 1.5, complete linkage does not.
  std::vector<double> chain{0, 1, 2, 3, 4, 5};
  HacConfig single;
  single.linkage = Linkage::kSingle;
  single.distance_threshold = 1.5;
  auto rs = Hac(DistanceMatrix1D(chain), single);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(NumClusters(*rs), 1);

  HacConfig complete;
  complete.linkage = Linkage::kComplete;
  complete.distance_threshold = 1.5;
  auto rc = Hac(DistanceMatrix1D(chain), complete);
  ASSERT_TRUE(rc.ok());
  EXPECT_GT(NumClusters(*rc), 1);
}

// --------------------------- Affinity Propagation ---------------------------

TEST(ApTest, RejectsNonSquare) {
  EXPECT_FALSE(AffinityPropagation({{0.0, 1.0}}, ApConfig{}).ok());
}

TEST(ApTest, TrivialInputs) {
  auto r0 = AffinityPropagation({}, ApConfig{});
  ASSERT_TRUE(r0.ok());
  EXPECT_TRUE(r0->empty());
  auto r1 = AffinityPropagation({{0.0}}, ApConfig{});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, (std::vector<int>{0}));
}

TEST(ApTest, SeparatesTwoBlobs) {
  auto r = AffinityPropagation(SimilarityMatrix1D(kTwoBlobs), ApConfig{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SameCluster(*r, 0, 1));
  EXPECT_TRUE(SameCluster(*r, 0, 2));
  EXPECT_TRUE(SameCluster(*r, 3, 4));
  EXPECT_FALSE(SameCluster(*r, 0, 3));
}

TEST(ApTest, LowPreferenceYieldsFewerClusters) {
  auto sims = SimilarityMatrix1D(kTwoBlobs);
  ApConfig few;
  few.preference = -200.0;
  auto r_few = AffinityPropagation(sims, few);
  ApConfig many;
  many.preference = 0.0;
  auto r_many = AffinityPropagation(sims, many);
  ASSERT_TRUE(r_few.ok());
  ASSERT_TRUE(r_many.ok());
  EXPECT_LE(NumClusters(*r_few), NumClusters(*r_many));
}

TEST(ApTest, LabelsAreDense) {
  auto r = AffinityPropagation(SimilarityMatrix1D(kTwoBlobs), ApConfig{});
  ASSERT_TRUE(r.ok());
  const int k = NumClusters(*r);
  for (int label : *r) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, k);
  }
}

// --------------------------- DBSCAN -----------------------------------------

TEST(DbscanTest, RejectsNonSquare) {
  EXPECT_FALSE(Dbscan({{0.0, 1.0}}, DbscanConfig{}).ok());
}

TEST(DbscanTest, SeparatesTwoBlobsWithNoise) {
  std::vector<double> xs = kTwoBlobs;
  xs.push_back(5.0);  // lone noise point between the blobs
  DbscanConfig cfg;
  cfg.eps = 0.5;
  cfg.min_points = 2;
  auto r = Dbscan(DistanceMatrix1D(xs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SameCluster(*r, 0, 2));
  EXPECT_TRUE(SameCluster(*r, 3, 5));
  EXPECT_FALSE(SameCluster(*r, 0, 3));
  // Noise became its own singleton cluster.
  EXPECT_FALSE(SameCluster(*r, 6, 0));
  EXPECT_FALSE(SameCluster(*r, 6, 3));
}

TEST(DbscanTest, ChainsThroughDensity) {
  // Points 0..9 with gap 0.4 < eps: one chained cluster.
  std::vector<double> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(0.4 * i);
  DbscanConfig cfg;
  cfg.eps = 0.5;
  cfg.min_points = 2;
  auto r = Dbscan(DistanceMatrix1D(xs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 1);
}

TEST(DbscanTest, HighMinPointsMakesEverythingNoise) {
  DbscanConfig cfg;
  cfg.eps = 0.5;
  cfg.min_points = 10;
  auto r = Dbscan(DistanceMatrix1D(kTwoBlobs), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(NumClusters(*r), 6);  // all noise -> all singletons
}

TEST(DbscanTest, EmptyInput) {
  auto r = Dbscan({}, DbscanConfig{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace iuad::cluster
