/// IuadConfig::Validate: misconfiguration must surface as InvalidArgument
/// at the top of a pipeline run, not as UB deep inside training.

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/pipeline.h"
#include "tests/testing_utils.h"

namespace iuad {
namespace {

TEST(ConfigValidateTest, DefaultsAreValid) {
  core::IuadConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadWord2VecDimensions) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.word2vec.dim = -8;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.window = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.epochs = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.learning_rate = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.min_count = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.subsample = -1e-3;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.word2vec.num_shards = -2;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsOutOfRangeThresholds) {
  core::IuadConfig cfg;
  cfg.sample_rate = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.sample_rate = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.eta = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.wl_iterations = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.time_decay_alpha = -0.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.max_pairs_per_name = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.split_min_papers = 1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.incremental_refresh_interval = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.families.pop_back();
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadServeOptions) {
  core::IuadConfig cfg;
  cfg.ingest_queue_capacity = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.ingest_queue_capacity = -3;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.ingest_refresh_window = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.ingest_queue_capacity = 1;  // the smallest legal window is fine
  cfg.ingest_refresh_window = 1;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg = {};
  cfg.pipeline_depth = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.pipeline_depth = 1025;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.pipeline_depth = 1;  // depth 1 = the sequential degenerate case
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.pipeline_depth = 1024;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadShardingOptions) {
  core::IuadConfig cfg;
  cfg.num_shards = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.num_shards = -4;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.shard_placement = static_cast<core::ShardPlacement>(99);
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.num_shards = 8;  // any positive shard count is legal
  cfg.shard_placement = core::ShardPlacement::kHash;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadApiOptions) {
  core::IuadConfig cfg;
  cfg.api_port = -1;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.api_port = 65536;  // must fit a uint16
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.api_num_workers = -2;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.api_max_batch = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.api_port = 65535;   // boundary values are legal
  cfg.api_num_workers = 0;  // 0 = auto
  cfg.api_max_batch = 1;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadObservabilityOptions) {
  core::IuadConfig cfg;
  cfg.metrics_port = -2;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.metrics_port = 65536;  // must fit a uint16
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.stats_interval_s = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.slow_commit_ms = -0.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.metrics_port = 0;      // 0 = ephemeral port
  cfg.stats_interval_s = 0.0;  // 0 = disabled
  cfg.slow_commit_ms = 0.0;    // 0 = disabled
  cfg.metrics_enabled = false;  // off is always legal
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.metrics_port = 65535;  // boundary value is legal
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadTracingOptions) {
  core::IuadConfig cfg;
  cfg.trace_ring_capacity = 63;  // below the recorder's floor
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.trace_ring_capacity = (1 << 20) + 1;  // above the ceiling
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.trace_exemplars = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.trace_exemplars = 1025;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.trace_ring_capacity = 64;  // boundary values are legal
  cfg.trace_exemplars = 1;
  cfg.trace_enabled = false;  // off is always legal
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.trace_ring_capacity = 1 << 20;
  cfg.trace_exemplars = 1024;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, SnapshotPersistenceRequiresAPath) {
  core::IuadConfig cfg;
  cfg.persist_snapshot = true;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg.snapshot_path = "model.snap";
  EXPECT_TRUE(cfg.Validate().ok());
  // A path without the request flag is inert, not an error.
  cfg = {};
  cfg.snapshot_path = "model.snap";
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, NegativeThreadCountIsAuto) {
  // <= 0 means "hardware concurrency" via ResolveNumThreads, never an error.
  core::IuadConfig cfg;
  cfg.num_threads = -4;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.num_threads = 0;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, PipelineRejectsMisconfigurationUpFront) {
  const data::PaperDatabase db = testing::Fig2Database();
  core::IuadConfig cfg;
  cfg.word2vec.dim = -1;
  {
    auto result = core::IuadPipeline(cfg).Run(db);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto result = core::IuadPipeline(cfg).RunScnOnly(db);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace iuad
