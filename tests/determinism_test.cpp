/// Determinism regression tests for the parallel pairwise-similarity path:
/// the full pipeline must produce byte-identical occurrence attributions
/// run-to-run on the same seed, and at 1 vs. N worker threads (results are
/// applied in fixed candidate-pair order regardless of completion order).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/similarity.h"
#include "tests/testing_utils.h"
#include "util/thread_pool.h"

namespace iuad {
namespace {

core::IuadConfig TestConfig(int num_threads) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.num_threads = num_threads;
  return cfg;
}

/// Flattened (paper, name) -> vertex attribution in a canonical scan order.
std::vector<std::pair<std::string, graph::VertexId>> Attributions(
    const data::PaperDatabase& db, const core::DisambiguationResult& result) {
  std::vector<std::pair<std::string, graph::VertexId>> out;
  for (const auto& p : db.papers()) {
    for (const auto& name : p.author_names) {
      out.emplace_back(std::to_string(p.id) + "/" + name,
                       result.occurrences.Lookup(p.id, name));
    }
  }
  return out;
}

TEST(DeterminismTest, SameSeedSamePipelineResultTwice) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/23);
  core::IuadPipeline pipeline(TestConfig(/*num_threads=*/2));

  auto r1 = pipeline.Run(corpus.db);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = pipeline.Run(corpus.db);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_EQ(r1->gcn_stats.candidate_pairs, r2->gcn_stats.candidate_pairs);
  EXPECT_EQ(r1->gcn_stats.merges, r2->gcn_stats.merges);
  EXPECT_EQ(r1->graph.num_alive(), r2->graph.num_alive());
  EXPECT_EQ(Attributions(corpus.db, *r1), Attributions(corpus.db, *r2));
}

TEST(DeterminismTest, OneVsFourThreadsIdenticalAttributions) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/23);

  auto serial = core::IuadPipeline(TestConfig(1)).Run(corpus.db);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = core::IuadPipeline(TestConfig(4)).Run(corpus.db);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->gcn_stats.candidate_pairs,
            parallel->gcn_stats.candidate_pairs);
  EXPECT_EQ(serial->gcn_stats.merges, parallel->gcn_stats.merges);
  EXPECT_EQ(serial->gcn_stats.em_iterations, parallel->gcn_stats.em_iterations);
  EXPECT_DOUBLE_EQ(serial->gcn_stats.em_log_likelihood,
                   parallel->gcn_stats.em_log_likelihood);
  EXPECT_EQ(serial->graph.num_alive(), parallel->graph.num_alive());
  EXPECT_EQ(serial->graph.num_edges(), parallel->graph.num_edges());
  EXPECT_EQ(Attributions(corpus.db, *serial),
            Attributions(corpus.db, *parallel));
}

TEST(DeterminismTest, ComputeBatchMatchesSerialCompute) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/29);
  core::IuadConfig cfg = TestConfig(/*num_threads=*/4);
  core::IuadPipeline pipeline(cfg);
  auto result = pipeline.Run(corpus.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Candidate-style pairs: same-name alive vertices of the final graph.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
  for (const auto& name : result->graph.Names()) {
    const auto& verts = result->graph.VerticesWithName(name);
    for (size_t i = 0; i < verts.size(); ++i) {
      for (size_t j = i + 1; j < verts.size(); ++j) {
        pairs.emplace_back(verts[i], verts[j]);
      }
    }
  }
  ASSERT_GT(pairs.size(), 0u);

  core::SimilarityComputer sim(corpus.db, result->graph, result->embeddings,
                               cfg);
  const auto batched = sim.ComputeBatch(pairs, /*num_threads=*/4);
  ASSERT_EQ(batched.size(), pairs.size());
  core::SimilarityComputer fresh(corpus.db, result->graph, result->embeddings,
                                 cfg);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const auto serial = fresh.Compute(pairs[k].first, pairs[k].second);
    ASSERT_EQ(batched[k].size(), serial.size());
    for (size_t f = 0; f < serial.size(); ++f) {
      EXPECT_DOUBLE_EQ(batched[k][f], serial[f])
          << "pair " << k << " gamma" << (f + 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kN = 10007;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_EQ(util::ResolveNumThreads(3), 3);
  EXPECT_GE(util::ResolveNumThreads(0), 1);
  EXPECT_GE(util::ResolveNumThreads(-2), 1);
}

}  // namespace
}  // namespace iuad
