/// Determinism regression tests for the parallel Stage-2 front end: the
/// full pipeline must produce byte-identical occurrence attributions
/// run-to-run on the same seed and at 1 vs. N worker threads, and each
/// newly parallel stage — word2vec shard training, WL label refinement,
/// candidate-block generation, pairwise γ scoring — must be individually
/// invariant to thread count (work is sharded deterministically and merged
/// in fixed shard/vertex/block order regardless of completion order).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/gcn_builder.h"
#include "core/pipeline.h"
#include "core/similarity.h"
#include "graph/wl_kernel.h"
#include "tests/testing_utils.h"
#include "text/word2vec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace iuad {
namespace {

core::IuadConfig TestConfig(int num_threads) {
  core::IuadConfig cfg;
  cfg.word2vec.dim = 16;
  cfg.num_threads = num_threads;
  return cfg;
}

/// Flattened (paper, name) -> vertex attribution in a canonical scan order.
std::vector<std::pair<std::string, graph::VertexId>> Attributions(
    const data::PaperDatabase& db, const core::DisambiguationResult& result) {
  std::vector<std::pair<std::string, graph::VertexId>> out;
  for (const auto& p : db.papers()) {
    for (const auto& name : p.author_names) {
      out.emplace_back(std::to_string(p.id) + "/" + name,
                       result.occurrences.Lookup(p.id, name));
    }
  }
  return out;
}

TEST(DeterminismTest, SameSeedSamePipelineResultTwice) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/23);
  core::IuadPipeline pipeline(TestConfig(/*num_threads=*/2));

  auto r1 = pipeline.Run(corpus.db);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = pipeline.Run(corpus.db);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_EQ(r1->gcn_stats.candidate_pairs, r2->gcn_stats.candidate_pairs);
  EXPECT_EQ(r1->gcn_stats.merges, r2->gcn_stats.merges);
  EXPECT_EQ(r1->graph.num_alive(), r2->graph.num_alive());
  EXPECT_EQ(Attributions(corpus.db, *r1), Attributions(corpus.db, *r2));
}

TEST(DeterminismTest, OneVsFourThreadsIdenticalAttributions) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/23);

  auto serial = core::IuadPipeline(TestConfig(1)).Run(corpus.db);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = core::IuadPipeline(TestConfig(4)).Run(corpus.db);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->gcn_stats.candidate_pairs,
            parallel->gcn_stats.candidate_pairs);
  EXPECT_EQ(serial->gcn_stats.merges, parallel->gcn_stats.merges);
  EXPECT_EQ(serial->gcn_stats.em_iterations, parallel->gcn_stats.em_iterations);
  EXPECT_DOUBLE_EQ(serial->gcn_stats.em_log_likelihood,
                   parallel->gcn_stats.em_log_likelihood);
  EXPECT_EQ(serial->graph.num_alive(), parallel->graph.num_alive());
  EXPECT_EQ(serial->graph.num_edges(), parallel->graph.num_edges());
  EXPECT_EQ(Attributions(corpus.db, *serial),
            Attributions(corpus.db, *parallel));

  // The corpus-trained embeddings feeding γ3 must also be byte-identical.
  const auto& vocab = serial->embeddings.vocabulary();
  ASSERT_GT(vocab.size(), 0);
  EXPECT_EQ(vocab.size(), parallel->embeddings.vocabulary().size());
  for (int id = 0; id < vocab.size(); ++id) {
    const text::Vec* vs = serial->embeddings.VectorOf(vocab.WordOf(id));
    const text::Vec* vp = parallel->embeddings.VectorOf(vocab.WordOf(id));
    ASSERT_NE(vs, nullptr);
    ASSERT_NE(vp, nullptr);
    ASSERT_EQ(*vs, *vp) << "embedding of '" << vocab.WordOf(id) << "'";
  }
}

/// A corpus big enough for several word2vec shards, with no dependence on
/// testing_utils (sentence content only matters for vocabulary size).
std::vector<std::vector<std::string>> ShardedCorpus(int sentences) {
  iuad::Rng rng(7);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(static_cast<size_t>(sentences));
  for (int i = 0; i < sentences; ++i) {
    std::vector<std::string> sent;
    const int len = 3 + static_cast<int>(rng.NextBounded(4));
    for (int w = 0; w < len; ++w) {
      sent.push_back("word" + std::to_string(rng.NextBounded(120)));
    }
    corpus.push_back(std::move(sent));
  }
  return corpus;
}

TEST(DeterminismTest, Word2VecShardedTrainingIsThreadCountInvariant) {
  const auto corpus = ShardedCorpus(600);
  text::Word2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  cfg.num_shards = 4;  // force the sharded schedule on a small corpus

  cfg.num_threads = 1;
  text::Word2Vec serial(cfg);
  ASSERT_TRUE(serial.Train(corpus).ok());
  cfg.num_threads = 4;
  text::Word2Vec parallel(cfg);
  ASSERT_TRUE(parallel.Train(corpus).ok());
  cfg.num_threads = 4;
  text::Word2Vec rerun(cfg);
  ASSERT_TRUE(rerun.Train(corpus).ok());

  const auto& vocab = serial.vocabulary();
  ASSERT_GT(vocab.size(), 0);
  for (int id = 0; id < vocab.size(); ++id) {
    const text::Vec* a = serial.VectorOf(vocab.WordOf(id));
    const text::Vec* b = parallel.VectorOf(vocab.WordOf(id));
    const text::Vec* c = rerun.VectorOf(vocab.WordOf(id));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(*a, *b) << "1 vs 4 threads differ at '" << vocab.WordOf(id) << "'";
    ASSERT_EQ(*b, *c) << "rerun differs at '" << vocab.WordOf(id) << "'";
  }
  EXPECT_DOUBLE_EQ(serial.final_learning_rate(),
                   parallel.final_learning_rate());
}

TEST(DeterminismTest, WlLabelsAreThreadCountInvariant) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/31);
  auto scn = core::IuadPipeline(TestConfig(1)).RunScnOnly(corpus.db);
  ASSERT_TRUE(scn.ok()) << scn.status().ToString();
  const graph::CollabGraph& g = scn->graph;

  constexpr int kDepth = 2;
  util::ThreadPool pool1(1), pool4(4);
  const graph::WlVertexKernel serial(g, kDepth, &pool1);
  const graph::WlVertexKernel parallel(g, kDepth, &pool4);
  const graph::WlVertexKernel unpooled(g, kDepth);  // legacy inline build
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int iter = 0; iter <= kDepth; ++iter) {
      ASSERT_EQ(serial.LabelAt(v, iter), parallel.LabelAt(v, iter))
          << "vertex " << v << " iter " << iter;
      ASSERT_EQ(serial.LabelAt(v, iter), unpooled.LabelAt(v, iter))
          << "vertex " << v << " iter " << iter;
    }
  }
}

TEST(DeterminismTest, CandidateBlocksAreThreadCountInvariant) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/31);
  auto scn = core::IuadPipeline(TestConfig(1)).RunScnOnly(corpus.db);
  ASSERT_TRUE(scn.ok()) << scn.status().ToString();

  core::GcnBuilder builder(TestConfig(1));
  util::ThreadPool pool1(1), pool4(4);
  int64_t names1 = 0, names4 = 0;
  const auto pairs1 = builder.CandidatePairs(scn->graph, &pool1, &names1);
  const auto pairs4 = builder.CandidatePairs(scn->graph, &pool4, &names4);
  ASSERT_GT(pairs1.size(), 0u);
  EXPECT_EQ(names1, names4);
  EXPECT_EQ(pairs1, pairs4);
  // Block order is name order: a rerun must reproduce the exact sequence.
  const auto rerun = builder.CandidatePairs(scn->graph, &pool4, nullptr);
  EXPECT_EQ(pairs1, rerun);
}

TEST(DeterminismTest, ComputeBatchMatchesSerialCompute) {
  const data::Corpus corpus = testing::SmallCorpus(/*seed=*/29);
  core::IuadConfig cfg = TestConfig(/*num_threads=*/4);
  core::IuadPipeline pipeline(cfg);
  auto result = pipeline.Run(corpus.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Candidate-style pairs: same-name alive vertices of the final graph.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> pairs;
  for (const auto& name : result->graph.Names()) {
    const auto& verts = result->graph.VerticesWithName(name);
    for (size_t i = 0; i < verts.size(); ++i) {
      for (size_t j = i + 1; j < verts.size(); ++j) {
        pairs.emplace_back(verts[i], verts[j]);
      }
    }
  }
  ASSERT_GT(pairs.size(), 0u);

  core::SimilarityComputer sim(corpus.db, result->graph, result->embeddings,
                               cfg);
  const auto batched = sim.ComputeBatch(pairs, /*num_threads=*/4);
  ASSERT_EQ(batched.size(), pairs.size());
  core::SimilarityComputer fresh(corpus.db, result->graph, result->embeddings,
                                 cfg);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const auto serial = fresh.Compute(pairs[k].first, pairs[k].second);
    ASSERT_EQ(batched[k].size(), serial.size());
    for (size_t f = 0; f < serial.size(); ++f) {
      EXPECT_DOUBLE_EQ(batched[k][f], serial[f])
          << "pair " << k << " gamma" << (f + 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kN = 10007;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_EQ(util::ResolveNumThreads(3), 3);
  EXPECT_GE(util::ResolveNumThreads(0), 1);
  EXPECT_GE(util::ResolveNumThreads(-2), 1);
}

}  // namespace
}  // namespace iuad
