/// Cross-module property suites: invariants that must hold for *every* seed,
/// swept with TEST_P. These complement the example-based unit tests — each
/// case here asserts a structural law of the system rather than a specific
/// value.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "cluster/hac.h"
#include "core/pipeline.h"
#include "core/scn_builder.h"
#include "data/corpus_generator.h"
#include "eval/metrics.h"
#include "graph/graph_io.h"
#include "graph/wl_kernel.h"
#include "testing_utils.h"
#include "util/rng.h"
#include "util/tsv.h"

namespace iuad {
namespace {

// ---------------------------------------------------------------------------
// SCN invariants over random corpora.
// ---------------------------------------------------------------------------

class ScnInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(ScnInvariantTest, CoverageNameConsistencyAndEtaMonotonicity) {
  data::CorpusConfig cc;
  cc.num_communities = 6;
  cc.authors_per_community = 30;
  cc.num_papers = 900;
  cc.seed = static_cast<uint64_t>(GetParam());
  auto corpus = data::CorpusGenerator(cc).Generate();

  core::IuadConfig cfg;
  int64_t prev_scrs = -1;
  for (int64_t eta : {2, 3, 5}) {
    cfg.eta = eta;
    graph::CollabGraph g;
    core::OccurrenceIndex occ;
    auto stats = core::ScnBuilder(cfg).Build(corpus.db, &g, &occ);
    ASSERT_TRUE(stats.ok());
    // 1. Every byline occurrence is attributed to an alive vertex of the
    //    right name, and that vertex's paper set contains the paper.
    for (const auto& p : corpus.db.papers()) {
      for (const auto& name : p.author_names) {
        const graph::VertexId v = occ.Lookup(p.id, name);
        ASSERT_GE(v, 0);
        ASSERT_TRUE(g.alive(v));
        ASSERT_EQ(g.NameOf(v), name);
        const auto& papers = g.vertex(v).papers;
        ASSERT_TRUE(std::binary_search(papers.begin(), papers.end(), p.id));
      }
    }
    // 2. Edge paper sets are subsets of both endpoints' paper sets.
    for (graph::VertexId v : g.AliveVertices()) {
      const auto& vp = g.vertex(v).papers;
      for (const auto& [nbr, eps] : g.NeighborsOf(v)) {
        for (int pid : eps) {
          ASSERT_TRUE(std::binary_search(vp.begin(), vp.end(), pid));
        }
      }
    }
    // 3. Raising η can only shrink the SCR set.
    if (prev_scrs >= 0) EXPECT_LE(stats->num_scrs, prev_scrs);
    prev_scrs = stats->num_scrs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScnInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// WL kernel laws over random graphs.
// ---------------------------------------------------------------------------

class WlPropertyTest : public ::testing::TestWithParam<int> {};

graph::CollabGraph RandomGraph(uint64_t seed, int n, double p) {
  iuad::Rng rng(seed);
  graph::CollabGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex("n" + std::to_string(static_cast<int>(rng.NextBounded(8))),
                {i});
  }
  int paper = 1000;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) {
        EXPECT_TRUE(g.AddEdgePapers(i, j, {paper++}).ok());
      }
    }
  }
  return g;
}

TEST_P(WlPropertyTest, KernelIsSymmetricBoundedAndSelfMaximal) {
  auto g = RandomGraph(static_cast<uint64_t>(GetParam()), 24, 0.15);
  graph::WlVertexKernel wl(g, 2);
  for (graph::VertexId u = 0; u < g.num_vertices(); u += 3) {
    for (graph::VertexId v = 0; v < g.num_vertices(); v += 3) {
      const double kuv = wl.NormalizedKernel(u, v);
      EXPECT_NEAR(kuv, wl.NormalizedKernel(v, u), 1e-12);
      EXPECT_GE(kuv, 0.0);
      EXPECT_LE(kuv, 1.0 + 1e-9);
    }
    if (g.DegreeOf(u) > 0) {
      EXPECT_NEAR(wl.NormalizedKernel(u, u), 1.0, 1e-12);
    }
  }
}

TEST_P(WlPropertyTest, DisjointIsomorphicCopyScoresOne) {
  // Append an exact disjoint copy (same names, same shape) of the graph and
  // check each vertex scores 1.0 against its twin.
  auto g = RandomGraph(static_cast<uint64_t>(GetParam()) + 100, 14, 0.2);
  const int n = g.num_vertices();
  for (int i = 0; i < n; ++i) {
    g.AddVertex(g.NameOf(i), {5000 + i});
  }
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, eps] : g.NeighborsOf(i)) {
      if (j > i || j >= n) continue;
      EXPECT_TRUE(g.AddEdgePapers(i + n, j + n, {9000 + i * n + j}).ok());
    }
  }
  graph::WlVertexKernel wl(g, 2);
  for (int i = 0; i < n; ++i) {
    if (g.DegreeOf(i) == 0) continue;
    EXPECT_NEAR(wl.NormalizedKernel(i, i + n), 1.0, 1e-9) << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlPropertyTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// HAC threshold monotonicity over random data.
// ---------------------------------------------------------------------------

class HacPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HacPropertyTest, ClusterCountIsMonotoneInThreshold) {
  iuad::Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 40;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.UniformDouble(0, 10);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i][j] = std::abs(xs[i] - xs[j]);
  }
  int prev = static_cast<int>(n) + 1;
  for (double threshold : {0.05, 0.2, 0.5, 1.0, 3.0, 20.0}) {
    cluster::HacConfig cfg;
    cfg.distance_threshold = threshold;
    auto labels = cluster::Hac(d, cfg);
    ASSERT_TRUE(labels.ok());
    const int k = static_cast<int>(
        std::set<int>(labels->begin(), labels->end()).size());
    EXPECT_LE(k, prev) << "threshold " << threshold;
    prev = k;
  }
  EXPECT_EQ(prev, 1);  // everything merges at a huge threshold
}

INSTANTIATE_TEST_SUITE_P(Seeds, HacPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Metrics identities vs a brute-force oracle.
// ---------------------------------------------------------------------------

class MetricsOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricsOracleTest, MatchesBruteForce) {
  iuad::Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.NextBounded(25));
  std::vector<int> pred(static_cast<size_t>(n)), truth(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pred[static_cast<size_t>(i)] = static_cast<int>(rng.NextBounded(5));
    truth[static_cast<size_t>(i)] =
        rng.Bernoulli(0.1) ? -1 : static_cast<int>(rng.NextBounded(5));
  }
  eval::PairCounts oracle;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (truth[static_cast<size_t>(i)] < 0 ||
          truth[static_cast<size_t>(j)] < 0) {
        continue;
      }
      const bool sp = pred[static_cast<size_t>(i)] == pred[static_cast<size_t>(j)];
      const bool st =
          truth[static_cast<size_t>(i)] == truth[static_cast<size_t>(j)];
      if (sp && st) ++oracle.tp;
      if (sp && !st) ++oracle.fp;
      if (!sp && st) ++oracle.fn;
      if (!sp && !st) ++oracle.tn;
    }
  }
  const eval::PairCounts fast = eval::PairwiseCounts(pred, truth);
  EXPECT_EQ(fast.tp, oracle.tp);
  EXPECT_EQ(fast.fp, oracle.fp);
  EXPECT_EQ(fast.fn, oracle.fn);
  EXPECT_EQ(fast.tn, oracle.tn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsOracleTest,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Graph serialization round trips.
// ---------------------------------------------------------------------------

class GraphIoTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphIoTest, SaveLoadRoundTripsAliveSubgraph) {
  auto g = RandomGraph(static_cast<uint64_t>(GetParam()) + 50, 20, 0.2);
  // Kill a couple of vertices via merges so the dense re-numbering path is
  // exercised.
  ASSERT_TRUE(g.MergeVertices(0, 1).ok());
  ASSERT_TRUE(g.MergeVertices(2, 3).ok());

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("iuad_graph_io_" + std::to_string(GetParam()) + ".tsv"))
          .string();
  ASSERT_TRUE(graph::SaveGraphTsv(g, path).ok());
  auto loaded = graph::LoadGraphTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded->num_alive(), g.num_alive());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  // Same multiset of (name, papers) vertex signatures.
  auto signature = [](const graph::CollabGraph& gr) {
    std::multiset<std::pair<std::string, std::vector<int>>> sig;
    for (graph::VertexId v : gr.AliveVertices()) {
      sig.emplace(std::string(gr.NameOf(v)), gr.vertex(v).papers);
    }
    return sig;
  };
  EXPECT_EQ(signature(g), signature(*loaded));
  // Same total edge-paper mass.
  auto edge_mass = [](const graph::CollabGraph& gr) {
    size_t total = 0;
    for (graph::VertexId v : gr.AliveVertices()) {
      for (const auto& [nbr, eps] : gr.NeighborsOf(v)) total += eps.size();
    }
    return total;
  };
  EXPECT_EQ(edge_mass(g), edge_mass(*loaded));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoTest, ::testing::Values(1, 2, 3));

TEST(GraphIoTest2, LoadRejectsMalformedInput) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string bad = (dir / "iuad_bad_graph.tsv").string();
  ASSERT_TRUE(WriteTsvFile(bad, {{"V", "0", "x", "1|2"},
                                 {"E", "0", "7", "1"}})
                  .ok());  // edge to unknown vertex
  EXPECT_FALSE(graph::LoadGraphTsv(bad).ok());
  ASSERT_TRUE(WriteTsvFile(bad, {{"Q", "0", "x", "1"}}).ok());
  EXPECT_FALSE(graph::LoadGraphTsv(bad).ok());
  ASSERT_TRUE(WriteTsvFile(bad, {{"V", "5", "x", "1"}}).ok());  // non-dense id
  EXPECT_FALSE(graph::LoadGraphTsv(bad).ok());
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end pipeline invariants over seeds (beyond the fixed-seed tests).
// ---------------------------------------------------------------------------

class PipelinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePropertyTest, OccurrencePartitionSurvivesBothStages) {
  data::CorpusConfig cc;
  cc.num_communities = 5;
  cc.authors_per_community = 30;
  cc.num_papers = 800;
  cc.seed = static_cast<uint64_t>(GetParam()) * 101;
  auto corpus = data::CorpusGenerator(cc).Generate();
  core::IuadConfig cfg;
  cfg.word2vec.dim = 8;
  cfg.word2vec.epochs = 1;
  auto result = core::IuadPipeline(cfg).Run(corpus.db);
  ASSERT_TRUE(result.ok());
  // Every occurrence attributed; each name's papers form a partition (each
  // paper in exactly one cluster of that name).
  for (const auto& name : corpus.db.names()) {
    const auto& papers = corpus.db.PapersWithName(name);
    auto clusters = result->occurrences.ClustersOfName(name, papers);
    size_t total = 0;
    std::set<int> seen;
    for (const auto& [v, ps] : clusters) {
      ASSERT_TRUE(result->graph.alive(v));
      for (int pid : ps) {
        EXPECT_TRUE(seen.insert(pid).second) << "paper in two clusters";
      }
      total += ps.size();
    }
    EXPECT_EQ(total, papers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// CollabGraph CSR adjacency vs. a trivially-correct reference model.
// ---------------------------------------------------------------------------

/// The simplest possible implementation of the CollabGraph contract: plain
/// maps and sets. Random op sequences must leave the CSR graph (base rows +
/// overflow log + tombstones + amortized and explicit compaction) observably
/// identical to this model at every step.
struct ReferenceGraph {
  struct V {
    std::string name;
    std::set<int> papers;
    bool alive = true;
  };
  std::vector<V> verts;
  std::map<std::pair<int, int>, std::set<int>> edges;  // key u < v
  std::map<std::string, std::vector<int>> by_name;     // alive, insert order

  static std::pair<int, int> Key(int u, int v) {
    return {std::min(u, v), std::max(u, v)};
  }
  int AddVertex(const std::string& name, const std::vector<int>& papers) {
    verts.push_back({name, {papers.begin(), papers.end()}, true});
    by_name[name].push_back(static_cast<int>(verts.size()) - 1);
    return static_cast<int>(verts.size()) - 1;
  }
  void AddEdgePapers(int u, int v, const std::vector<int>& papers) {
    edges[Key(u, v)].insert(papers.begin(), papers.end());
  }
  void SetEdgePapers(int u, int v, const std::vector<int>& papers) {
    if (papers.empty()) {
      edges.erase(Key(u, v));
    } else {
      edges[Key(u, v)] = {papers.begin(), papers.end()};
    }
  }
  void Merge(int kept, int absorbed) {
    verts[static_cast<size_t>(kept)].papers.insert(
        verts[static_cast<size_t>(absorbed)].papers.begin(),
        verts[static_cast<size_t>(absorbed)].papers.end());
    verts[static_cast<size_t>(absorbed)].papers.clear();
    verts[static_cast<size_t>(absorbed)].alive = false;
    std::vector<std::pair<int, std::set<int>>> rewire;
    for (auto it = edges.begin(); it != edges.end();) {
      if (it->first.first == absorbed || it->first.second == absorbed) {
        const int other =
            it->first.first == absorbed ? it->first.second : it->first.first;
        if (other != kept) rewire.emplace_back(other, it->second);
        it = edges.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [other, papers] : rewire) {
      edges[Key(kept, other)].insert(papers.begin(), papers.end());
    }
    auto& ids = by_name[verts[static_cast<size_t>(absorbed)].name];
    ids.erase(std::remove(ids.begin(), ids.end(), absorbed), ids.end());
  }
  int NumAlive() const {
    int n = 0;
    for (const auto& v : verts) n += v.alive ? 1 : 0;
    return n;
  }
};

void ExpectGraphMatchesModel(const graph::CollabGraph& g,
                             const ReferenceGraph& m) {
  ASSERT_EQ(g.num_vertices(), static_cast<int>(m.verts.size()));
  EXPECT_EQ(g.num_alive(), m.NumAlive());
  EXPECT_EQ(g.num_edges(), static_cast<int>(m.edges.size()));

  // Per-vertex state and adjacency.
  std::map<int, std::map<int, std::set<int>>> model_adj;
  for (const auto& [key, papers] : m.edges) {
    model_adj[key.first][key.second] = papers;
    model_adj[key.second][key.first] = papers;
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& mv = m.verts[static_cast<size_t>(v)];
    ASSERT_EQ(g.alive(v), mv.alive) << "vertex " << v;
    EXPECT_EQ(g.NameOf(v), mv.name);
    EXPECT_EQ(std::set<int>(g.vertex(v).papers.begin(),
                            g.vertex(v).papers.end()),
              mv.papers);
    EXPECT_TRUE(std::is_sorted(g.vertex(v).papers.begin(),
                               g.vertex(v).papers.end()));

    const auto& row = model_adj[v];
    const auto view = g.NeighborsOf(v);
    ASSERT_EQ(static_cast<size_t>(g.DegreeOf(v)),
              mv.alive ? row.size() : size_t{0});
    EXPECT_EQ(view.size(), static_cast<size_t>(g.DegreeOf(v)));
    int prev = -1;
    size_t seen = 0;
    for (const auto& [nbr, papers] : view) {
      EXPECT_GT(nbr, prev) << "ascending neighbor order, vertex " << v;
      prev = nbr;
      auto it = row.find(nbr);
      ASSERT_NE(it, row.end()) << "edge " << v << "-" << nbr;
      EXPECT_EQ(std::set<int>(papers.begin(), papers.end()), it->second);
      EXPECT_EQ(view.count(nbr), 1u);
      EXPECT_EQ(&view.at(nbr), &papers);
      ++seen;
    }
    EXPECT_EQ(seen, view.size());
    if (!row.empty()) {
      EXPECT_EQ(view.count(g.num_vertices() + 7), 0u);  // absent neighbor
    }
  }

  // Canonical edge list.
  const auto edge_list = g.Edges();
  ASSERT_EQ(edge_list.size(), m.edges.size());
  auto mit = m.edges.begin();
  for (const auto& e : edge_list) {
    EXPECT_EQ(std::make_pair(e.u, e.v), mit->first);
    EXPECT_EQ(std::set<int>(e.papers.begin(), e.papers.end()), mit->second);
    ++mit;
  }

  // Name index: same ids, same (insertion) order.
  for (const auto& [name, ids] : m.by_name) {
    EXPECT_EQ(g.VerticesWithName(name), ids) << "name " << name;
  }
}

class GraphModelTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphModelTest, RandomOpSequencesMatchReferenceModel) {
  iuad::Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  graph::CollabGraph g;
  ReferenceGraph m;
  int next_paper = 0;

  auto random_papers = [&] {
    std::vector<int> papers;
    const int k = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < k; ++i) papers.push_back(next_paper++);
    if (!papers.empty() && rng.Bernoulli(0.3)) {
      papers.push_back(papers.front());  // duplicates must be deduplicated
    }
    return papers;
  };
  auto random_alive = [&]() -> int {
    std::vector<int> alive;
    for (int v = 0; v < static_cast<int>(m.verts.size()); ++v) {
      if (m.verts[static_cast<size_t>(v)].alive) alive.push_back(v);
    }
    if (alive.empty()) return -1;
    return alive[rng.NextBounded(alive.size())];
  };

  for (int i = 0; i < 8; ++i) {  // seed population
    const std::string name = "blk" + std::to_string(rng.NextBounded(4));
    auto papers = random_papers();
    ASSERT_EQ(g.AddVertex(name, papers), m.AddVertex(name, papers));
  }

  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op == 0) {
      const std::string name = "blk" + std::to_string(rng.NextBounded(4));
      auto papers = random_papers();
      ASSERT_EQ(g.AddVertex(name, papers), m.AddVertex(name, papers));
    } else if (op <= 4) {  // grow/extend edges — the common mutation
      const int u = random_alive(), v = random_alive();
      if (u < 0 || v < 0 || u == v) continue;
      auto papers = random_papers();
      ASSERT_TRUE(g.AddEdgePapers(u, v, papers).ok());
      m.AddEdgePapers(u, v, papers);
    } else if (op <= 6) {  // replace or remove an existing edge
      if (m.edges.empty()) continue;
      auto it = m.edges.begin();
      std::advance(it, rng.NextBounded(m.edges.size()));
      const auto [u, v] = it->first;
      auto papers = rng.Bernoulli(0.4) ? std::vector<int>{} : random_papers();
      ASSERT_TRUE(g.SetEdgePapers(u, v, papers).ok());
      m.SetEdgePapers(u, v, papers);
    } else if (op == 7) {  // merge (GCN-style vertex absorption)
      const int kept = random_alive(), absorbed = random_alive();
      if (kept < 0 || absorbed < 0 || kept == absorbed) continue;
      ASSERT_TRUE(g.MergeVertices(kept, absorbed).ok());
      m.Merge(kept, absorbed);
    } else if (op == 8) {  // vertex paper updates
      const int v = random_alive();
      if (v < 0) continue;
      auto papers = random_papers();
      g.AddVertexPapers(v, papers);
      m.verts[static_cast<size_t>(v)].papers.insert(papers.begin(),
                                                    papers.end());
    } else {  // explicit compaction at a random point
      g.Compact();
    }
    if (step % 25 == 0) ExpectGraphMatchesModel(g, m);
    if (::testing::Test::HasFatalFailure()) return;
  }
  ExpectGraphMatchesModel(g, m);
  g.Compact();  // final fold must change nothing observable
  ExpectGraphMatchesModel(g, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace iuad
