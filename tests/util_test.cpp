#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/interner.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace iuad {
namespace {

// --------------------------- Status / Result --------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eta");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalfIfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UsesMacros(int x, int* out) {
  IUAD_ASSIGN_OR_RETURN(int half, HalfIfEven(x));
  IUAD_RETURN_NOT_OK(Status::OK());
  *out = half;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UsesMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UsesMacros(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --------------------------- Strings ----------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringsTest, SplitViewMatchesSplitAndAliasesInput) {
  const std::string inputs[] = {"a\t\tb", "abc", "", "\t", "x\ty\tz\t"};
  for (const std::string& s : inputs) {
    const auto owned = Split(s, '\t');
    const auto views = SplitView(s, '\t');
    ASSERT_EQ(views.size(), owned.size()) << "input: " << s;
    for (size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(views[i], owned[i]);
      if (!views[i].empty()) {
        // Views alias the input buffer — no copies.
        EXPECT_GE(views[i].data(), s.data());
        EXPECT_LE(views[i].data() + views[i].size(), s.data() + s.size());
      }
    }
  }
}

TEST(StringsTest, SplitWhitespaceViewMatchesSplitWhitespace) {
  const std::string inputs[] = {"  foo \t bar\nbaz  ", "", "   ", "one"};
  for (const std::string& s : inputs) {
    const auto owned = SplitWhitespace(s);
    const auto views = SplitWhitespaceView(s);
    ASSERT_EQ(views.size(), owned.size()) << "input: " << s;
    for (size_t i = 0; i < owned.size(); ++i) EXPECT_EQ(views[i], owned[i]);
  }
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ToLowerAscii) { EXPECT_EQ(ToLower("MiXeD-42"), "mixed-42"); }

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, FormatAndPad) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("long", 2), "long");
}

// --------------------------- RNG --------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Gaussian(2.0, 3.0);
  EXPECT_NEAR(Mean(xs), 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(Variance(xs)), 3.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(6);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Exponential(4.0);
  EXPECT_NEAR(Mean(xs), 0.25, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexDegenerate) {
  Rng rng(12);
  std::vector<double> all_zero{0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(all_zero), -1);
  EXPECT_EQ(rng.WeightedIndex({}), -1);
}

TEST(ZipfSamplerTest, RankZeroMostFrequent) {
  Rng rng(13);
  ZipfSampler z(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(z.Sample(&rng))];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[40]);
}

TEST(ZipfSamplerTest, MatchesInversionSampler) {
  Rng r1(14), r2(14);
  ZipfSampler z(20, 1.5);
  // Distributional check: mean rank should agree with Rng::Zipf (1-based).
  double m1 = 0.0, m2 = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) m1 += z.Sample(&r1) + 1;
  for (int i = 0; i < n; ++i) m2 += r2.Zipf(20, 1.5);
  EXPECT_NEAR(m1 / n, m2 / n, 0.25);
}

// --------------------------- Stats ------------------------------------------

TEST(StatsTest, MeanVariance) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(StatsTest, PaperTailProbabilityExample) {
  // Sec. IV-A worked example: na = nb = 5e2, N = 5e5, x = 3
  // => Pr(X >= 3) = 2.3389e-3.
  const double p = CoOccurrenceTailProbability(5e2, 5e2, 5e5, 3);
  EXPECT_NEAR(p, 2.3389e-3, 2e-4);
}

TEST(StatsTest, TailProbabilityShrinksWithRarerNames) {
  const double common = CoOccurrenceTailProbability(500, 500, 5e5, 3);
  const double rare = CoOccurrenceTailProbability(50, 50, 5e5, 3);
  EXPECT_LT(rare, common);
  EXPECT_GE(rare, 0.0);
}

TEST(StatsTest, TailProbabilityEdgeCases) {
  EXPECT_DOUBLE_EQ(CoOccurrenceTailProbability(0, 10, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(CoOccurrenceTailProbability(10, 10, 0, 1), 0.0);
  const double p = CoOccurrenceTailProbability(100, 100, 100, 1);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(StatsTest, PowerLawFitRecoversExponent) {
  // y = 1000 * x^-2.5 exactly.
  std::vector<double> x, y;
  for (int i = 1; i <= 60; ++i) {
    x.push_back(i);
    y.push_back(1000.0 * std::pow(i, -2.5));
  }
  auto fit = FitPowerLaw(x, y);
  EXPECT_NEAR(fit.slope, -2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.used_points, 60);
}

TEST(StatsTest, PowerLawFitIgnoresNonPositivePoints) {
  std::vector<double> x{0, 1, 2, -3, 4};
  std::vector<double> y{5, 10, 5, 2, 2.5};
  auto fit = FitPowerLaw(x, y);
  EXPECT_EQ(fit.used_points, 3);
}

TEST(StatsTest, PowerLawFitDegenerate) {
  auto fit = FitPowerLaw(std::vector<double>{1.0}, std::vector<double>{2.0});
  EXPECT_EQ(fit.used_points, 1);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(StatsTest, FrequencyHistogram) {
  auto h = FrequencyHistogram({1, 1, 2, 5, 5, 5});
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 1);
  EXPECT_EQ(h[5], 3);
  EXPECT_EQ(h.size(), 3u);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1, 1, 1, 1}), 0.0);
}

// --------------------------- Stopwatch --------------------------------------

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

// --------------------------- TSV --------------------------------------------

TEST(TsvTest, ParseSkipsCommentsAndEmpties) {
  auto rows = ParseTsv("# header\na\tb\n\nc\td\te\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (TsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (TsvRow{"c", "d", "e"}));
}

TEST(TsvTest, ParseHandlesCrLf) {
  auto rows = ParseTsv("a\tb\r\nc\td\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (TsvRow{"c", "d"}));
}

TEST(TsvTest, RoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iuad_tsv_test.tsv").string();
  std::vector<TsvRow> rows{{"1", "x y", "z"}, {"2", "", "w"}};
  ASSERT_TRUE(WriteTsvFile(path, rows).ok());
  auto read = ReadTsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(TsvTest, WriteRejectsTabsInFields) {
  auto s = WriteTsvFile("/tmp/iuad_tsv_bad.tsv", {{"a\tb"}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TsvTest, ReadMissingFileIsIoError) {
  auto r = ReadTsvFile("/nonexistent/dir/definitely_missing.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ------------------------------ StringInterner -------------------------------

TEST(InternerTest, IdsAreDenseStableAndIdempotent) {
  util::StringInterner in;
  EXPECT_EQ(in.size(), 0);
  const util::NameId a = in.Intern("alice");
  const util::NameId b = in.Intern("bob");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(in.Intern("alice"), a);  // re-intern returns the same id
  EXPECT_EQ(in.size(), 2);
  EXPECT_EQ(in.View(a), "alice");
  EXPECT_EQ(in.View(b), "bob");
  EXPECT_EQ(in.Lookup("alice"), a);
  EXPECT_EQ(in.Lookup("carol"), util::kInvalidNameId);
}

TEST(InternerTest, ViewsStayValidAcrossArenaGrowth) {
  util::StringInterner in;
  const std::string_view first = in.View(in.Intern("pinned-first-entry"));
  const char* first_data = first.data();
  // Enough material to roll over several 64 KiB arena blocks.
  std::vector<util::NameId> ids;
  for (int i = 0; i < 20000; ++i) {
    ids.push_back(in.Intern("author-" + std::to_string(i)));
  }
  EXPECT_EQ(first.data(), first_data);  // the arena never relocates strings
  EXPECT_EQ(in.View(ids.front()), "author-0");
  EXPECT_EQ(in.View(ids.back()), "author-19999");
  EXPECT_EQ(in.size(), 20001);
  EXPECT_GT(in.MemoryBytes(), size_t{20000 * 8});
}

TEST(InternerTest, OversizedStringsDoNotDisturbTheArena) {
  util::StringInterner in;
  const util::NameId small_before = in.Intern("before");
  const std::string huge(3u << 16, 'x');  // 3 blocks worth, one string
  const util::NameId big = in.Intern(huge);
  const util::NameId small_after = in.Intern("after");
  EXPECT_EQ(in.View(big), huge);
  EXPECT_EQ(in.View(small_before), "before");
  EXPECT_EQ(in.View(small_after), "after");
  EXPECT_EQ(in.Lookup(huge), big);
}

TEST(InternerTest, DeepCopyPreservesIdsWithIndependentStorage) {
  util::StringInterner in;
  for (int i = 0; i < 100; ++i) in.Intern("name-" + std::to_string(i));
  util::StringInterner copy(in);
  ASSERT_EQ(copy.size(), in.size());
  for (util::NameId id = 0; id < in.size(); ++id) {
    EXPECT_EQ(copy.View(id), in.View(id));
    EXPECT_NE(copy.View(id).data(), in.View(id).data());  // own arena
  }
  // Divergence after the copy is independent.
  const util::NameId fresh = copy.Intern("only-in-copy");
  EXPECT_EQ(in.Lookup("only-in-copy"), util::kInvalidNameId);
  EXPECT_EQ(copy.View(fresh), "only-in-copy");
}

TEST(InternerTest, RandomizedRoundTripAgainstReferenceMap) {
  // Property: the interner behaves exactly like first-encounter-order
  // enumeration of distinct strings, for any interleaving of duplicates.
  iuad::Rng rng(1234);
  util::StringInterner in;
  std::unordered_map<std::string, util::NameId> expected;
  std::vector<std::string> order;
  for (int step = 0; step < 5000; ++step) {
    std::string s = "w" + std::to_string(rng.NextBounded(700));
    const util::NameId id = in.Intern(s);
    auto [it, fresh] = expected.emplace(s, id);
    if (fresh) {
      EXPECT_EQ(id, static_cast<util::NameId>(order.size()));
      order.push_back(s);
    } else {
      EXPECT_EQ(id, it->second);
    }
    EXPECT_EQ(in.Lookup(s), it->second);
    EXPECT_EQ(in.View(it->second), s);
  }
  ASSERT_EQ(in.size(), static_cast<int32_t>(order.size()));
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(in.View(static_cast<util::NameId>(i)), order[i]);
  }
}

TEST(MemoryTest, CurrentRssIsPositive) {
  // /proc/self/statm is always readable on Linux; the reading feeds the
  // `rss_mb` stats field, so a zero here would silently blind GetStats.
  EXPECT_GT(util::CurrentRssMb(), 0.0);
}

/// Pins the logging contract from util/logging.h: concurrent loggers emit
/// whole lines — every line in the sink matches the prefix grammar and
/// carries exactly one intact payload, never a sheared mix of two threads.
/// (The old fprintf path interleaved fragments under load.)
TEST(LoggingTest, ConcurrentLogLinesNeverShear) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iuad_log_shear.txt").string();
  const int saved_stderr = ::dup(STDERR_FILENO);
  ASSERT_GE(saved_stderr, 0);
  const int sink =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  ASSERT_GE(sink, 0);
  ASSERT_GE(::dup2(sink, STDERR_FILENO), 0);
  ::close(sink);

  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        IUAD_LOG(kInfo) << "shear-probe thread=" << t << " line=" << i
                        << " padpadpadpadpadpadpadpadpadpadpadpad";
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_GE(::dup2(saved_stderr, STDERR_FILENO), 0);
  ::close(saved_stderr);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::regex line_re(
      R"(^\[I [0-9]+\.[0-9]{3} t[0-9]+ util_test\.cpp:[0-9]+\] )"
      R"(shear-probe thread=([0-9]+) line=([0-9]+) )"
      R"(padpadpadpadpadpadpadpadpadpadpadpad$)");
  std::set<std::pair<int, int>> seen;
  std::string line;
  int total = 0;
  while (std::getline(in, line)) {
    ++total;
    std::smatch m;
    ASSERT_TRUE(std::regex_match(line, m, line_re))
        << "sheared or malformed log line: " << line;
    seen.emplace(std::stoi(m[1]), std::stoi(m[2]));
  }
  EXPECT_EQ(total, kThreads * kLines);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kLines));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iuad
