#include <gtest/gtest.h>

#include <algorithm>

#include "graph/collab_graph.h"
#include "graph/components.h"
#include "graph/triangles.h"
#include "graph/union_find.h"
#include "graph/wl_kernel.h"

namespace iuad::graph {
namespace {

// --------------------------- UnionFind --------------------------------------

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_EQ(uf.SetSize(2), 1);
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.SetSize(0), 3);
}

TEST(UnionFindTest, UnionIsIdempotent) {
  UnionFind uf(3);
  const int r1 = uf.Union(0, 1);
  const int r2 = uf.Union(0, 1);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(uf.num_sets(), 2);
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.Union(0, 2);
  uf.Reset(3);
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_FALSE(uf.Connected(0, 2));
}

// --------------------------- CollabGraph ------------------------------------

CollabGraph TriangleGraph() {
  // a - b - c triangle plus pendant d.
  CollabGraph g;
  const VertexId a = g.AddVertex("a", {0, 1});
  const VertexId b = g.AddVertex("b", {0, 2});
  const VertexId c = g.AddVertex("c", {1, 2});
  const VertexId d = g.AddVertex("d", {3});
  EXPECT_TRUE(g.AddEdgePapers(a, b, {0}).ok());
  EXPECT_TRUE(g.AddEdgePapers(a, c, {1}).ok());
  EXPECT_TRUE(g.AddEdgePapers(b, c, {2}).ok());
  EXPECT_TRUE(g.AddEdgePapers(c, d, {3}).ok());
  return g;
}

TEST(CollabGraphTest, AddVertexDeduplicatesPapers) {
  CollabGraph g;
  const VertexId v = g.AddVertex("x", {3, 1, 3, 2, 1});
  EXPECT_EQ(g.vertex(v).papers, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(g.num_alive(), 1);
}

TEST(CollabGraphTest, EdgesAreSymmetricWithSharedPapers) {
  CollabGraph g = TriangleGraph();
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.NeighborsOf(0).at(1), (std::vector<int>{0}));
  EXPECT_EQ(g.NeighborsOf(1).at(0), (std::vector<int>{0}));
  EXPECT_EQ(g.DegreeOf(2), 3);
}

TEST(CollabGraphTest, SelfLoopRejected) {
  CollabGraph g;
  const VertexId v = g.AddVertex("x", {});
  EXPECT_FALSE(g.AddEdgePapers(v, v, {1}).ok());
}

TEST(CollabGraphTest, EdgePapersAccumulate) {
  CollabGraph g;
  const VertexId a = g.AddVertex("a", {});
  const VertexId b = g.AddVertex("b", {});
  ASSERT_TRUE(g.AddEdgePapers(a, b, {2, 1}).ok());
  ASSERT_TRUE(g.AddEdgePapers(a, b, {2, 3}).ok());
  EXPECT_EQ(g.NeighborsOf(a).at(b), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CollabGraphTest, NameIndexTracksVertices) {
  CollabGraph g;
  g.AddVertex("Wei Wang", {1});
  g.AddVertex("Wei Wang", {2});
  g.AddVertex("Lei Zou", {3});
  EXPECT_EQ(g.VerticesWithName("Wei Wang").size(), 2u);
  EXPECT_EQ(g.VerticesWithName("Lei Zou").size(), 1u);
  EXPECT_TRUE(g.VerticesWithName("Nobody").empty());
  EXPECT_EQ(g.Names(), (std::vector<std::string>{"Lei Zou", "Wei Wang"}));
}

TEST(CollabGraphTest, MergeUnionsPapersAndRewires) {
  CollabGraph g = TriangleGraph();
  // Merge c (2) into a (0): a should inherit edge to d and union papers.
  ASSERT_TRUE(g.MergeVertices(0, 2).ok());
  EXPECT_FALSE(g.alive(2));
  EXPECT_EQ(g.num_alive(), 3);
  EXPECT_EQ(g.vertex(0).papers, (std::vector<int>{0, 1, 2}));
  // Edge a-b must now carry both {0} (a-b) and {2} (c-b).
  EXPECT_EQ(g.NeighborsOf(0).at(1), (std::vector<int>{0, 2}));
  // a inherits c's edge to d.
  EXPECT_EQ(g.NeighborsOf(0).at(3), (std::vector<int>{3}));
  // The a-c edge disappeared (would be a self-loop).
  EXPECT_EQ(g.DegreeOf(0), 2);
  // Edge count: a-b, a-d.
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(CollabGraphTest, MergeUpdatesNameIndex) {
  CollabGraph g;
  const VertexId v1 = g.AddVertex("x", {1});
  const VertexId v2 = g.AddVertex("x", {2});
  ASSERT_TRUE(g.MergeVertices(v1, v2).ok());
  EXPECT_EQ(g.VerticesWithName("x"), (std::vector<VertexId>{v1}));
}

TEST(CollabGraphTest, MergeRejectsDegenerateCases) {
  CollabGraph g;
  const VertexId v1 = g.AddVertex("x", {});
  const VertexId v2 = g.AddVertex("y", {});
  EXPECT_FALSE(g.MergeVertices(v1, v1).ok());
  ASSERT_TRUE(g.MergeVertices(v1, v2).ok());
  EXPECT_FALSE(g.MergeVertices(v1, v2).ok());  // v2 already dead
}

TEST(CollabGraphTest, SetEdgePapersReplacesOrRemoves) {
  CollabGraph g;
  const VertexId a = g.AddVertex("a", {});
  const VertexId b = g.AddVertex("b", {});
  ASSERT_TRUE(g.AddEdgePapers(a, b, {1, 2}).ok());
  ASSERT_TRUE(g.SetEdgePapers(a, b, {5}).ok());
  EXPECT_EQ(g.NeighborsOf(b).at(a), (std::vector<int>{5}));
  ASSERT_TRUE(g.SetEdgePapers(a, b, {}).ok());
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.DegreeOf(a), 0);
}

TEST(CollabGraphTest, AliveVerticesSkipsDead) {
  CollabGraph g;
  g.AddVertex("a", {});
  g.AddVertex("b", {});
  g.AddVertex("c", {});
  ASSERT_TRUE(g.MergeVertices(0, 1).ok());
  EXPECT_EQ(g.AliveVertices(), (std::vector<VertexId>{0, 2}));
}

// --------------------------- Triangles --------------------------------------

TEST(TrianglesTest, FindsTheOneTriangle) {
  CollabGraph g = TriangleGraph();
  auto tris = EnumerateTriangles(g);
  ASSERT_EQ(tris.size(), 1u);
  EXPECT_EQ(tris[0], (Triangle{0, 1, 2}));
}

TEST(TrianglesTest, TrianglesOfVertex) {
  CollabGraph g = TriangleGraph();
  auto t0 = TrianglesOf(g, 0);
  ASSERT_EQ(t0.size(), 1u);
  EXPECT_EQ(t0[0], (std::array<VertexId, 2>{1, 2}));
  EXPECT_TRUE(TrianglesOf(g, 3).empty());
}

TEST(TrianglesTest, CountsPerVertex) {
  CollabGraph g = TriangleGraph();
  auto counts = TriangleCounts(g);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);
}

TEST(TrianglesTest, K4HasFourTriangles) {
  CollabGraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex("v" + std::to_string(i), {});
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(g.AddEdgePapers(i, j, {i * 4 + j}).ok());
    }
  }
  EXPECT_EQ(EnumerateTriangles(g).size(), 4u);
  EXPECT_EQ(TrianglesOf(g, 0).size(), 3u);
}

TEST(TrianglesTest, EmptyAndEdgeOnlyGraphs) {
  CollabGraph g;
  EXPECT_TRUE(EnumerateTriangles(g).empty());
  g.AddVertex("a", {});
  g.AddVertex("b", {});
  ASSERT_TRUE(g.AddEdgePapers(0, 1, {0}).ok());
  EXPECT_TRUE(EnumerateTriangles(g).empty());
}

// --------------------------- Components -------------------------------------

TEST(ComponentsTest, CountsComponents) {
  CollabGraph g = TriangleGraph();
  g.AddVertex("iso", {9});
  int n = 0;
  auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(ComponentsTest, DeadVerticesExcluded) {
  CollabGraph g;
  g.AddVertex("a", {});
  g.AddVertex("a", {});
  ASSERT_TRUE(g.MergeVertices(0, 1).ok());
  int n = 0;
  auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(comp[1], -1);
}

TEST(ComponentsTest, DegreeSequence) {
  CollabGraph g = TriangleGraph();
  auto deg = DegreeSequence(g);
  std::sort(deg.begin(), deg.end());
  EXPECT_EQ(deg, (std::vector<int64_t>{1, 2, 2, 3}));
}

// --------------------------- WL kernel --------------------------------------

TEST(WlKernelTest, SelfNormalizedKernelIsOneForConnectedVertices) {
  CollabGraph g = TriangleGraph();
  WlVertexKernel wl(g, 2);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(wl.NormalizedKernel(v, v), 1.0, 1e-12);
  }
  // Isolated vertices carry no structural evidence at all — by design the
  // (center-excluded) kernel is 0 even against themselves.
  const VertexId iso = g.AddVertex("loner", {});
  WlVertexKernel wl2(g, 2);
  EXPECT_DOUBLE_EQ(wl2.NormalizedKernel(iso, iso), 0.0);
}

TEST(WlKernelTest, SymmetricAndBounded) {
  CollabGraph g = TriangleGraph();
  WlVertexKernel wl(g, 2);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const double kuv = wl.NormalizedKernel(u, v);
      EXPECT_NEAR(kuv, wl.NormalizedKernel(v, u), 1e-12);
      EXPECT_GE(kuv, 0.0);
      EXPECT_LE(kuv, 1.0 + 1e-12);
    }
  }
}

TEST(WlKernelTest, StructurallyIdenticalTwinsShareLabels) {
  // Two disjoint copies of the same star with identical names must get the
  // same WL labels at every iteration.
  CollabGraph g;
  const VertexId hub1 = g.AddVertex("Hub", {});
  const VertexId leaf1a = g.AddVertex("LeafA", {});
  const VertexId leaf1b = g.AddVertex("LeafB", {});
  ASSERT_TRUE(g.AddEdgePapers(hub1, leaf1a, {0}).ok());
  ASSERT_TRUE(g.AddEdgePapers(hub1, leaf1b, {1}).ok());
  const VertexId hub2 = g.AddVertex("Hub", {});
  const VertexId leaf2a = g.AddVertex("LeafA", {});
  const VertexId leaf2b = g.AddVertex("LeafB", {});
  ASSERT_TRUE(g.AddEdgePapers(hub2, leaf2a, {2}).ok());
  ASSERT_TRUE(g.AddEdgePapers(hub2, leaf2b, {3}).ok());

  WlVertexKernel wl(g, 3);
  for (int iter = 0; iter <= 3; ++iter) {
    EXPECT_EQ(wl.LabelAt(hub1, iter), wl.LabelAt(hub2, iter));
    EXPECT_EQ(wl.LabelAt(leaf1a, iter), wl.LabelAt(leaf2a, iter));
  }
  EXPECT_NEAR(wl.NormalizedKernel(hub1, hub2), 1.0, 1e-12);
}

TEST(WlKernelTest, SharedCoauthorNamesBeatDisjointOnes) {
  // v1 and v2 share both co-author names; v1 and v3 share none.
  CollabGraph g;
  const VertexId v1 = g.AddVertex("X", {});
  const VertexId c1 = g.AddVertex("Alice", {});
  const VertexId c2 = g.AddVertex("Bob", {});
  ASSERT_TRUE(g.AddEdgePapers(v1, c1, {0}).ok());
  ASSERT_TRUE(g.AddEdgePapers(v1, c2, {1}).ok());
  const VertexId v2 = g.AddVertex("X", {});
  const VertexId c3 = g.AddVertex("Alice", {});
  const VertexId c4 = g.AddVertex("Bob", {});
  ASSERT_TRUE(g.AddEdgePapers(v2, c3, {2}).ok());
  ASSERT_TRUE(g.AddEdgePapers(v2, c4, {3}).ok());
  const VertexId v3 = g.AddVertex("X", {});
  const VertexId c5 = g.AddVertex("Carol", {});
  const VertexId c6 = g.AddVertex("Dan", {});
  ASSERT_TRUE(g.AddEdgePapers(v3, c5, {4}).ok());
  ASSERT_TRUE(g.AddEdgePapers(v3, c6, {5}).ok());

  WlVertexKernel wl(g, 2);
  EXPECT_GT(wl.NormalizedKernel(v1, v2), wl.NormalizedKernel(v1, v3));
  EXPECT_NEAR(wl.NormalizedKernel(v1, v2), 1.0, 1e-12);
}

TEST(WlKernelTest, DepthZeroCarriesNoSignal) {
  // h = 0 leaves every (center-excluded) ball empty; γ1 needs h >= 1.
  CollabGraph g = TriangleGraph();
  WlVertexKernel wl(g, 0);
  EXPECT_DOUBLE_EQ(wl.NormalizedKernel(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(wl.NormalizedKernel(0, 0), 0.0);
}

TEST(WlKernelTest, IsolatedVerticesHaveZeroKernel) {
  // The semantic fix motivating center exclusion: two isolated same-name
  // vertices share NO collaboration evidence, so their kernel must be 0
  // (a literal Eq. 3 reading would give a spurious 1.0).
  CollabGraph g;
  const VertexId iso1 = g.AddVertex("X", {});
  const VertexId iso2 = g.AddVertex("X", {});
  const VertexId named = g.AddVertex("X", {});
  const VertexId other = g.AddVertex("Y", {});
  ASSERT_TRUE(g.AddEdgePapers(named, other, {0}).ok());
  WlVertexKernel wl(g, 2);
  EXPECT_DOUBLE_EQ(wl.NormalizedKernel(iso1, iso2), 0.0);
  EXPECT_DOUBLE_EQ(wl.NormalizedKernel(iso1, named), 0.0);
}

TEST(WlKernelTest, NameSetKernelCountsBallMatches) {
  CollabGraph g;
  const VertexId v = g.AddVertex("X", {});
  const VertexId a = g.AddVertex("Alice", {});
  const VertexId b = g.AddVertex("Bob", {});
  ASSERT_TRUE(g.AddEdgePapers(v, a, {0}).ok());
  ASSERT_TRUE(g.AddEdgePapers(v, b, {1}).ok());
  WlVertexKernel wl(g, 2);
  // Both names in the ball: strong signal.
  const double both = wl.NormalizedKernelVsNameSet(v, {"Alice", "Bob"});
  const double one = wl.NormalizedKernelVsNameSet(v, {"Alice", "Nobody"});
  const double none = wl.NormalizedKernelVsNameSet(v, {"Zed", "Nobody"});
  EXPECT_GT(both, one);
  EXPECT_GT(one, none);
  EXPECT_DOUBLE_EQ(none, 0.0);
  EXPECT_LE(both, 1.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(wl.NormalizedKernelVsNameSet(v, {}), 0.0);
  const VertexId iso = g.AddVertex("Q", {});
  WlVertexKernel wl2(g, 2);
  EXPECT_DOUBLE_EQ(wl2.NormalizedKernelVsNameSet(iso, {"Alice"}), 0.0);
}

TEST(WlKernelTest, PostBuildVerticesHandledConservatively) {
  CollabGraph g;
  const VertexId a = g.AddVertex("A", {});
  const VertexId b = g.AddVertex("B", {});
  ASSERT_TRUE(g.AddEdgePapers(a, b, {0}).ok());
  WlVertexKernel wl(g, 2);
  const VertexId late = g.AddVertex("A", {});  // added after Build
  EXPECT_DOUBLE_EQ(wl.NormalizedKernelVsNameSet(late, {"B"}), 0.0);
  EXPECT_DOUBLE_EQ(wl.NormalizedKernel(a, late), 0.0);
}

}  // namespace
}  // namespace iuad::graph
